//! Op-sequence differential fuzz for the sharded serving layer:
//! seeded-PRNG sequences driven through a [`ShardedMap`], an unsharded
//! [`DynamicMap`] **mirror**, and a `BTreeMap` oracle in lockstep.
//!
//! Two claims are pinned, after every single op:
//!
//! * **oracle exactness** — every scalar and batched query agrees with
//!   the `BTreeMap`;
//! * **bit-identity to the single map** — `batch_get` / `batch_rank` /
//!   `batch_range_count` return exactly what the unsharded
//!   `DynamicMap` returns for the same input batch, element for
//!   element: partition → parallel per-shard descents → scatter must be
//!   invisible.
//!
//! What the generator stresses beyond `dynamic_differential`:
//!
//! * batch calls whose keys straddle every shard boundary (keys are
//!   uniform over the universe, splits sit inside it);
//! * cross-shard ranges, including ranges spanning all shards, reversed
//!   and empty ranges, and ranges with both endpoints on split keys;
//! * split layouts from balanced to pathological (`[1, 58]` leaves a
//!   giant middle shard; a single split makes two); shards emptying out
//!   entirely (deletes), then refilling;
//! * order queries that must walk across empty shards.
//!
//! Both compaction modes run: inline, and background (per-shard merge
//! workers overlapping the op stream). CI runs fixed seeds;
//! `IST_FUZZ_LONG=1` widens the sweep.

use implicit_search_trees::{
    Algorithm, CompactionMode, CompactionPolicy, DynamicMap, QueryKind, ShardedMap,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Bound::{Excluded, Unbounded};

/// Small universe: collisions, overwrites, and boundary-straddling
/// batches are the common case.
const UNIVERSE: u64 = 60;

#[derive(Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    BatchInsert(Vec<(u64, u64)>),
    BatchRemove(Vec<u64>),
    BatchGet(Vec<u64>),
    BatchRank(Vec<u64>),
    BatchRangeCount(Vec<(u64, u64)>),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Insert(k, v) => write!(f, "insert({k}, {v})"),
            Op::Remove(k) => write!(f, "remove({k})"),
            Op::BatchInsert(pairs) => write!(f, "batch_insert({pairs:?})"),
            Op::BatchRemove(keys) => write!(f, "batch_remove({keys:?})"),
            Op::BatchGet(keys) => write!(f, "batch_get(len={})", keys.len()),
            Op::BatchRank(keys) => write!(f, "batch_rank(len={})", keys.len()),
            Op::BatchRangeCount(r) => write!(f, "batch_range_count(len={})", r.len()),
        }
    }
}

fn gen_batch_keys(rng: &mut StdRng) -> Vec<u64> {
    // Lengths straddling the pipeline window (32) and the empty /
    // singleton corners; keys straddle every shard boundary.
    let len = *[0usize, 1, 2, 31, 32, 33, 40, 64, 65]
        .get(rng.gen_range(0..9usize))
        .unwrap();
    (0..len).map(|_| rng.gen_range(0..UNIVERSE + 4)).collect()
}

/// Mutation route: scalar per-key ops, or bulk deltas (batches span
/// shard boundaries by construction — keys are uniform over the
/// universe, so a batch of length ≥ 2 usually straddles a split).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ingest {
    PerKey,
    Bulk,
}

fn gen_op(rng: &mut StdRng, op_index: usize, ingest: Ingest) -> Op {
    let key = rng.gen_range(0..UNIVERSE);
    match rng.gen_range(0..100u32) {
        0..=39 if ingest == Ingest::Bulk => {
            let len = rng.gen_range(0..10usize);
            Op::BatchInsert(
                (0..len)
                    .map(|j| {
                        let k = rng.gen_range(0..UNIVERSE);
                        (k, (op_index as u64) << 8 | j as u64)
                    })
                    .collect(),
            )
        }
        0..=39 => Op::Insert(key, op_index as u64),
        40..=59 if ingest == Ingest::Bulk => {
            let len = rng.gen_range(0..10usize);
            Op::BatchRemove((0..len).map(|_| rng.gen_range(0..UNIVERSE)).collect())
        }
        40..=59 => Op::Remove(key),
        60..=74 => Op::BatchGet(gen_batch_keys(rng)),
        75..=84 => Op::BatchRank(gen_batch_keys(rng)),
        _ => {
            let len = rng.gen_range(0..12usize);
            Op::BatchRangeCount(
                (0..len)
                    .map(|_| {
                        (
                            rng.gen_range(0..UNIVERSE + 4),
                            rng.gen_range(0..UNIVERSE + 4),
                        )
                    })
                    .collect(),
            )
        }
    }
}

// --- oracle-side helpers ---

fn oracle_rank(oracle: &BTreeMap<u64, u64>, key: u64) -> usize {
    oracle.range(..key).count()
}

fn oracle_range_count(oracle: &BTreeMap<u64, u64>, lo: u64, hi: u64) -> usize {
    if lo >= hi {
        0
    } else {
        oracle.range(lo..hi).count()
    }
}

/// Every scalar query vs the oracle, and every batched query vs BOTH
/// the oracle and the unsharded mirror (elementwise bit-identity).
fn check_full_state(
    sharded: &ShardedMap<u64, u64>,
    mirror: &DynamicMap<u64, u64>,
    oracle: &BTreeMap<u64, u64>,
) -> Result<(), String> {
    let fail = |what: String| -> Result<(), String> { Err(what) };
    if sharded.len() != oracle.len() {
        return fail(format!(
            "len: sharded={} oracle={}",
            sharded.len(),
            oracle.len()
        ));
    }
    if sharded.is_empty() != oracle.is_empty() {
        return fail("is_empty disagrees".to_string());
    }
    if sharded.shard_lens().iter().sum::<usize>() != sharded.len() {
        return fail("shard_lens do not sum to len".to_string());
    }
    let probes: Vec<u64> = (0..UNIVERSE + 4).chain([u64::MAX]).collect();
    for &k in &probes {
        if sharded.get(&k) != oracle.get(&k) {
            return fail(format!(
                "get({k}): sharded={:?} oracle={:?}",
                sharded.get(&k),
                oracle.get(&k)
            ));
        }
        if sharded.contains_key(&k) != oracle.contains_key(&k) {
            return fail(format!("contains_key({k}) disagrees"));
        }
        if sharded.rank(&k) != oracle_rank(oracle, k) {
            return fail(format!(
                "rank({k}): sharded={} oracle={}",
                sharded.rank(&k),
                oracle_rank(oracle, k)
            ));
        }
        let lb = sharded.lower_bound(&k).map(|(a, b)| (*a, *b));
        let oracle_lb = oracle.range(k..).next().map(|(a, b)| (*a, *b));
        if lb != oracle_lb {
            return fail(format!(
                "lower_bound({k}): sharded={lb:?} oracle={oracle_lb:?}"
            ));
        }
        let succ = sharded.successor(&k).map(|(a, b)| (*a, *b));
        let oracle_succ = oracle
            .range((Excluded(k), Unbounded))
            .next()
            .map(|(a, b)| (*a, *b));
        if succ != oracle_succ {
            return fail(format!(
                "successor({k}): sharded={succ:?} oracle={oracle_succ:?}"
            ));
        }
        let pred = sharded.predecessor(&k).map(|(a, b)| (*a, *b));
        let oracle_pred = oracle.range(..k).next_back().map(|(a, b)| (*a, *b));
        if pred != oracle_pred {
            return fail(format!(
                "predecessor({k}): sharded={pred:?} oracle={oracle_pred:?}"
            ));
        }
    }
    // Batched tiers: oracle exactness AND bit-identity to the mirror.
    let batch = sharded.batch_get(&probes);
    let mirror_batch = mirror.batch_get(&probes);
    for (i, &k) in probes.iter().enumerate() {
        if batch[i] != oracle.get(&k) {
            return fail(format!("batch_get[{k}] disagrees with oracle"));
        }
        if batch[i] != mirror_batch[i] {
            return fail(format!("batch_get[{k}] not identical to single-map mirror"));
        }
    }
    let ranks = sharded.batch_rank(&probes);
    if ranks != mirror.batch_rank(&probes) {
        return fail("batch_rank not identical to single-map mirror".to_string());
    }
    for (i, &k) in probes.iter().enumerate() {
        if ranks[i] != oracle_rank(oracle, k) {
            return fail(format!("batch_rank[{k}] disagrees with oracle"));
        }
    }
    // Range pairs crossing every boundary, reversed and empty included,
    // plus split-key endpoints.
    let pairs: Vec<(u64, u64)> = (0..10)
        .flat_map(|i| {
            let lo = 6 * i;
            [(lo, lo + 13), (lo + 13, lo), (lo, lo), (0, u64::MAX)]
        })
        .chain(
            sharded
                .splits()
                .iter()
                .map(|&s| (s.saturating_sub(1), s + 1)),
        )
        .collect();
    let counts = sharded.batch_range_count(&pairs);
    if counts != mirror.batch_range_count(&pairs) {
        return fail("batch_range_count not identical to single-map mirror".to_string());
    }
    for (i, &(lo, hi)) in pairs.iter().enumerate() {
        let expect = oracle_range_count(oracle, lo, hi);
        if sharded.range_count(&lo, &hi) != expect {
            return fail(format!("range_count({lo},{hi}) != {expect}"));
        }
        if counts[i] != expect {
            return fail(format!("batch_range_count({lo},{hi}) != {expect}"));
        }
    }
    // Composite snapshots: the writer-side globally-consistent cut and
    // a fresh reader handle's published cut must both answer every
    // query bit-identically to the live sharded map they froze.
    let writer_snap = sharded.snapshot();
    let reader_snap = sharded.reader().snapshot();
    for (name, snap) in [("snapshot", &writer_snap), ("reader", &reader_snap)] {
        if snap.len() != sharded.len() {
            return fail(format!("{name}: len differs from live map"));
        }
        if snap.batch_get(&probes) != batch {
            return fail(format!("{name}: batch_get differs from live map"));
        }
        if snap.batch_rank(&probes) != ranks {
            return fail(format!("{name}: batch_rank differs from live map"));
        }
        if snap.batch_range_count(&pairs) != counts {
            return fail(format!("{name}: batch_range_count differs from live map"));
        }
        for &k in probes.iter().step_by(7) {
            if snap.successor(&k).map(|(a, b)| (*a, *b))
                != sharded.successor(&k).map(|(a, b)| (*a, *b))
            {
                return fail(format!("{name}: successor({k}) differs from live map"));
            }
            if snap.predecessor(&k).map(|(a, b)| (*a, *b))
                != sharded.predecessor(&k).map(|(a, b)| (*a, *b))
            {
                return fail(format!("{name}: predecessor({k}) differs from live map"));
            }
        }
    }
    Ok(())
}

/// Apply one op to all three structures; compare the op's own result.
fn apply_op(
    sharded: &mut ShardedMap<u64, u64>,
    mirror: &mut DynamicMap<u64, u64>,
    oracle: &mut BTreeMap<u64, u64>,
    op: &Op,
) -> Result<(), String> {
    match op {
        Op::Insert(k, v) => {
            let got = sharded.insert(*k, *v);
            let mirror_got = mirror.insert(*k, *v);
            let expect = oracle.insert(*k, *v).is_some();
            if got != expect || mirror_got != expect {
                return Err(format!("insert returned {got}, oracle {expect}"));
            }
        }
        Op::Remove(k) => {
            let got = sharded.remove(k);
            let mirror_got = mirror.remove(k);
            let expect = oracle.remove(k).is_some();
            if got != expect || mirror_got != expect {
                return Err(format!("remove returned {got}, oracle {expect}"));
            }
        }
        Op::BatchInsert(pairs) => {
            // Per-shard parallel application must report exactly what
            // the unsharded map reports: distinct keys live before.
            let distinct: BTreeSet<u64> = pairs.iter().map(|(k, _)| *k).collect();
            let expect = distinct.iter().filter(|k| oracle.contains_key(k)).count();
            let got = sharded.batch_insert(pairs.clone());
            let mirror_got = mirror.batch_insert(pairs.clone());
            for &(k, v) in pairs {
                oracle.insert(k, v);
            }
            if got != expect || mirror_got != expect {
                return Err(format!(
                    "batch_insert returned {got} (mirror {mirror_got}), oracle {expect}"
                ));
            }
        }
        Op::BatchRemove(keys) => {
            let distinct: BTreeSet<u64> = keys.iter().copied().collect();
            let expect = distinct.iter().filter(|k| oracle.contains_key(k)).count();
            let got = sharded.batch_remove(keys);
            let mirror_got = mirror.batch_remove(keys);
            for k in keys {
                oracle.remove(k);
            }
            if got != expect || mirror_got != expect {
                return Err(format!(
                    "batch_remove returned {got} (mirror {mirror_got}), oracle {expect}"
                ));
            }
        }
        Op::BatchGet(keys) => {
            let got = sharded.batch_get(keys);
            if got != mirror.batch_get(keys) {
                return Err("batch_get differs from single-map mirror".into());
            }
            for (i, k) in keys.iter().enumerate() {
                if got[i] != oracle.get(k) {
                    return Err(format!("batch_get[{k}] disagrees with oracle"));
                }
            }
        }
        Op::BatchRank(keys) => {
            let got = sharded.batch_rank(keys);
            if got != mirror.batch_rank(keys) {
                return Err("batch_rank differs from single-map mirror".into());
            }
            for (i, k) in keys.iter().enumerate() {
                if got[i] != oracle_rank(oracle, *k) {
                    return Err(format!("batch_rank[{k}] disagrees with oracle"));
                }
            }
        }
        Op::BatchRangeCount(ranges) => {
            let got = sharded.batch_range_count(ranges);
            if got != mirror.batch_range_count(ranges) {
                return Err("batch_range_count differs from single-map mirror".into());
            }
            for (i, &(lo, hi)) in ranges.iter().enumerate() {
                if got[i] != oracle_range_count(oracle, lo, hi) {
                    return Err(format!("batch_range_count({lo},{hi}) disagrees"));
                }
            }
        }
    }
    Ok(())
}

fn run_sequence(
    seed: u64,
    splits: &[u64],
    kind: QueryKind,
    buffer_cap: usize,
    num_ops: usize,
    mode: CompactionMode,
) {
    run_sequence_with(
        seed,
        splits,
        kind,
        buffer_cap,
        num_ops,
        mode,
        CompactionPolicy::default(),
        Ingest::PerKey,
    );
}

/// The full-matrix variant: a [`CompactionPolicy`] (applied to every
/// shard AND the unsharded mirror) and an ingest route.
#[allow(clippy::too_many_arguments)]
fn run_sequence_with(
    seed: u64,
    splits: &[u64],
    kind: QueryKind,
    buffer_cap: usize,
    num_ops: usize,
    mode: CompactionMode,
    policy: CompactionPolicy,
    ingest: Ingest,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sharded: ShardedMap<u64, u64> =
        ShardedMap::with_splits_config(splits.to_vec(), kind, Algorithm::CycleLeader, buffer_cap)
            .with_compaction_mode(mode)
            .with_policy(policy);
    let mut mirror: DynamicMap<u64, u64> =
        DynamicMap::with_config(kind, Algorithm::CycleLeader, buffer_cap)
            .with_compaction_mode(mode)
            .with_policy(policy);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut ops: Vec<Op> = Vec::with_capacity(num_ops);
    for i in 0..num_ops {
        let op = gen_op(&mut rng, i, ingest);
        ops.push(op.clone());
        let result = apply_op(&mut sharded, &mut mirror, &mut oracle, &op)
            .and_then(|()| check_full_state(&sharded, &mirror, &oracle));
        if let Err(why) = result {
            let prefix: Vec<String> = ops.iter().map(|o| format!("  {o}")).collect();
            panic!(
                "sharded_differential diverged\n\
                 seed        = {seed:#x}\n\
                 config      = splits={splits:?} kind={kind:?} buffer_cap={buffer_cap} mode={mode:?} \
                 policy={policy:?} ingest={ingest:?}\n\
                 failure     = {why}\n\
                 minimal op prefix that first diverges ({} ops, last one diverges):\n{}",
                ops.len(),
                prefix.join("\n")
            );
        }
    }
    sharded.quiesce();
    mirror.quiesce();
    assert!(!sharded.compaction_in_flight());
    check_full_state(&sharded, &mirror, &oracle)
        .unwrap_or_else(|why| panic!("state diverged after quiesce (seed={seed:#x}): {why}"));
}

/// Split layouts: balanced, skewed-to-pathological, single boundary.
fn split_sets() -> [Vec<u64>; 3] {
    [vec![15, 30, 45], vec![1, 58], vec![30]]
}

const CI_SEEDS: [u64; 2] = [0x5AADD, 0xD15C0];

#[test]
fn sharded_differential_fixed_seeds() {
    for &seed in &CI_SEEDS {
        for splits in &split_sets() {
            for (kind, cap) in [
                (QueryKind::Veb, 1usize),
                (QueryKind::Veb, 4),
                (QueryKind::BstPrefetch, 4),
                (QueryKind::Sorted, 1),
            ] {
                for mode in [CompactionMode::Inline, CompactionMode::Background] {
                    run_sequence(seed, splits, kind, cap, 160, mode);
                }
            }
        }
    }
}

/// Bulk-loaded shards (duplicates, equal-count splits) must behave
/// identically under subsequent fuzz.
#[test]
fn sharded_differential_after_bulk_build() {
    for &seed in &CI_SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5B1D);
        let n = 150usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..UNIVERSE)).collect();
        let values: Vec<u64> = (0..n as u64).collect();
        let mut sharded = ShardedMap::build_for_kind(
            keys.clone(),
            values.clone(),
            QueryKind::Veb,
            Algorithm::CycleLeader,
            4,
            4,
        )
        .unwrap();
        let mut mirror = DynamicMap::build_for_kind(
            keys.clone(),
            values.clone(),
            QueryKind::Veb,
            Algorithm::CycleLeader,
            4,
        )
        .unwrap();
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, v) in keys.into_iter().zip(values) {
            oracle.insert(k, v);
        }
        check_full_state(&sharded, &mirror, &oracle).expect("bulk build state");
        for i in 0..120 {
            let op = gen_op(&mut rng, 1000 + i, Ingest::Bulk);
            apply_op(&mut sharded, &mut mirror, &mut oracle, &op)
                .and_then(|()| check_full_state(&sharded, &mirror, &oracle))
                .unwrap_or_else(|why| {
                    panic!("bulk-build sharded fuzz diverged (seed={seed:#x}, op {i}): {why}")
                });
        }
    }
}

/// Policy × ingest matrix over the sharded layer: tunable compaction
/// applied per shard (and to the mirror) must stay bit-identical to
/// the unsharded map and exact vs the oracle — shard-parallel bulk
/// deltas included, with batches straddling every split.
#[test]
fn sharded_differential_policy_and_bulk_matrix() {
    let policies = [
        CompactionPolicy::tiered(2).with_merge_threads(4),
        CompactionPolicy::leveled(2)
            .with_lazy_bottom(true)
            .with_merge_threads(1),
    ];
    for (p, policy) in policies.into_iter().enumerate() {
        for splits in &split_sets() {
            for ingest in [Ingest::PerKey, Ingest::Bulk] {
                for mode in [CompactionMode::Inline, CompactionMode::Background] {
                    run_sequence_with(
                        0xE0_11C7 + p as u64,
                        splits,
                        QueryKind::Veb,
                        3,
                        140,
                        mode,
                        policy,
                        ingest,
                    );
                }
            }
        }
    }
}

/// Extended sweep behind `IST_FUZZ_LONG=1` (CI runs it in release in
/// the dedicated fuzz job).
#[test]
fn sharded_differential_long_sweep() {
    if std::env::var_os("IST_FUZZ_LONG").is_none() {
        eprintln!("IST_FUZZ_LONG not set; skipping the sharded long sweep");
        return;
    }
    for seed in 0..12u64 {
        for splits in &split_sets() {
            for mode in [CompactionMode::Inline, CompactionMode::Background] {
                run_sequence(0x20_0000 + seed, splits, QueryKind::Veb, 3, 300, mode);
                run_sequence(0x30_0000 + seed, splits, QueryKind::Btree(2), 1, 250, mode);
            }
        }
    }
}
