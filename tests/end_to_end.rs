//! End-to-end integration tests spanning construction, layout maps, and
//! queries across crates.

use implicit_search_trees::{
    permute_in_place, permute_in_place_seq, reference_permutation, Algorithm, Layout, QueryKind,
    Searcher,
};

fn layouts() -> Vec<Layout> {
    vec![
        Layout::Bst,
        Layout::Btree { b: 1 },
        Layout::Btree { b: 2 },
        Layout::Btree { b: 8 },
        Layout::Veb,
    ]
}

#[test]
fn construction_matches_oracle_for_many_sizes() {
    let sizes = [
        1usize, 2, 3, 4, 7, 8, 15, 16, 26, 27, 63, 80, 100, 255, 256, 257, 728, 729, 1000, 4095,
        10_000,
    ];
    for &n in &sizes {
        let sorted: Vec<u64> = (0..n as u64).collect();
        for layout in layouts() {
            let expect = reference_permutation(&sorted, layout);
            for algo in Algorithm::ALL {
                let mut seq = sorted.clone();
                permute_in_place_seq(&mut seq, layout, algo).unwrap();
                assert_eq!(seq, expect, "seq n={n} {layout:?} {algo:?}");
                let mut par = sorted.clone();
                permute_in_place(&mut par, layout, algo).unwrap();
                assert_eq!(par, expect, "par n={n} {layout:?} {algo:?}");
            }
        }
    }
}

#[test]
fn every_key_findable_after_every_construction() {
    for n in [1usize, 5, 63, 100, 511, 1000, 4096] {
        let sorted: Vec<u64> = (0..n as u64).map(|x| 10 * x + 3).collect();
        for layout in layouts() {
            for algo in Algorithm::ALL {
                let mut data = sorted.clone();
                permute_in_place(&mut data, layout, algo).unwrap();
                let s = Searcher::for_layout(&data, layout);
                for &key in &sorted {
                    let hit = s.search(&key);
                    assert_eq!(
                        hit.map(|p| data[p]),
                        Some(key),
                        "n={n} {layout:?} {algo:?} key={key}"
                    );
                    assert!(!s.contains(&(key + 1)), "phantom hit n={n} {layout:?}");
                }
            }
        }
    }
}

#[test]
fn search_agrees_with_binary_search_on_original() {
    let n = 4321usize;
    let sorted: Vec<u64> = (0..n as u64).map(|x| x * x % 65_521).collect();
    let mut uniq = sorted.clone();
    uniq.sort_unstable();
    uniq.dedup();
    for layout in layouts() {
        let mut data = uniq.clone();
        permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
        let s = Searcher::for_layout(&data, layout);
        for probe in 0..70_000u64 {
            let expect = uniq.binary_search(&probe).is_ok();
            assert_eq!(s.contains(&probe), expect, "{layout:?} probe={probe}");
        }
    }
}

#[test]
fn prefetch_variant_agrees_with_plain_bst() {
    let n = 9999usize;
    let mut data: Vec<u64> = (0..n as u64).map(|x| 2 * x).collect();
    permute_in_place(&mut data, Layout::Bst, Algorithm::Involution).unwrap();
    let plain = Searcher::new(&data, QueryKind::Bst);
    let pf = Searcher::new(&data, QueryKind::BstPrefetch);
    for key in 0..2 * n as u64 {
        assert_eq!(plain.search(&key), pf.search(&key), "key={key}");
    }
}

#[test]
fn works_with_non_copy_ordered_types() {
    // The construction is generic over T: the involution/cycle moves
    // never clone. Strings exercise a non-Copy payload.
    let n = 1000usize;
    let sorted: Vec<String> = (0..n).map(|i| format!("{i:06}")).collect();
    let mut data = sorted.clone();
    permute_in_place(&mut data, Layout::Veb, Algorithm::CycleLeader).unwrap();
    let expect = reference_permutation(&sorted, Layout::Veb);
    assert_eq!(data, expect);
    let s = Searcher::for_layout(&data, Layout::Veb);
    assert!(s.contains(&"000123".to_string()));
    assert!(!s.contains(&"999999".to_string()));
}

#[test]
fn algorithms_agree_with_each_other_large() {
    let n = (1usize << 20) - 1;
    let sorted: Vec<u64> = (0..n as u64).collect();
    for layout in [Layout::Bst, Layout::Btree { b: 8 }, Layout::Veb] {
        let mut a = sorted.clone();
        let mut b = sorted.clone();
        permute_in_place(&mut a, layout, Algorithm::Involution).unwrap();
        permute_in_place(&mut b, layout, Algorithm::CycleLeader).unwrap();
        assert_eq!(a, b, "{layout:?}");
    }
}

#[test]
fn thread_count_does_not_change_result() {
    let n = 123_456usize;
    let sorted: Vec<u64> = (0..n as u64).collect();
    let reference = {
        let mut v = sorted.clone();
        permute_in_place_seq(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
        v
    };
    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(|| {
            let mut v = sorted.clone();
            permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
            v
        });
        assert_eq!(got, reference, "threads={threads}");
    }
}
