//! End-to-end integration tests spanning construction, layout maps, and
//! queries across crates.

use implicit_search_trees::{
    permute_in_place, permute_in_place_seq, reference_permutation, Algorithm, Layout, QueryKind,
    Searcher, StaticIndex,
};

fn layouts() -> Vec<Layout> {
    vec![
        Layout::Bst,
        Layout::Btree { b: 1 },
        Layout::Btree { b: 2 },
        Layout::Btree { b: 8 },
        Layout::Veb,
    ]
}

#[test]
fn construction_matches_oracle_for_many_sizes() {
    let sizes = [
        1usize, 2, 3, 4, 7, 8, 15, 16, 26, 27, 63, 80, 100, 255, 256, 257, 728, 729, 1000, 4095,
        10_000,
    ];
    for &n in &sizes {
        let sorted: Vec<u64> = (0..n as u64).collect();
        for layout in layouts() {
            let expect = reference_permutation(&sorted, layout);
            for algo in Algorithm::ALL {
                let mut seq = sorted.clone();
                permute_in_place_seq(&mut seq, layout, algo).unwrap();
                assert_eq!(seq, expect, "seq n={n} {layout:?} {algo:?}");
                let mut par = sorted.clone();
                permute_in_place(&mut par, layout, algo).unwrap();
                assert_eq!(par, expect, "par n={n} {layout:?} {algo:?}");
            }
        }
    }
}

#[test]
fn every_key_findable_after_every_construction() {
    for n in [1usize, 5, 63, 100, 511, 1000, 4096] {
        let sorted: Vec<u64> = (0..n as u64).map(|x| 10 * x + 3).collect();
        for layout in layouts() {
            for algo in Algorithm::ALL {
                let mut data = sorted.clone();
                permute_in_place(&mut data, layout, algo).unwrap();
                let s = Searcher::for_layout(&data, layout);
                for &key in &sorted {
                    let hit = s.search(&key);
                    assert_eq!(
                        hit.map(|p| data[p]),
                        Some(key),
                        "n={n} {layout:?} {algo:?} key={key}"
                    );
                    assert!(!s.contains(&(key + 1)), "phantom hit n={n} {layout:?}");
                }
            }
        }
    }
}

#[test]
fn search_agrees_with_binary_search_on_original() {
    let n = 4321usize;
    let sorted: Vec<u64> = (0..n as u64).map(|x| x * x % 65_521).collect();
    let mut uniq = sorted.clone();
    uniq.sort_unstable();
    uniq.dedup();
    for layout in layouts() {
        let mut data = uniq.clone();
        permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
        let s = Searcher::for_layout(&data, layout);
        for probe in 0..70_000u64 {
            let expect = uniq.binary_search(&probe).is_ok();
            assert_eq!(s.contains(&probe), expect, "{layout:?} probe={probe}");
        }
    }
}

#[test]
fn prefetch_variant_agrees_with_plain_bst() {
    let n = 9999usize;
    let mut data: Vec<u64> = (0..n as u64).map(|x| 2 * x).collect();
    permute_in_place(&mut data, Layout::Bst, Algorithm::Involution).unwrap();
    let plain = Searcher::new(&data, QueryKind::Bst);
    let pf = Searcher::new(&data, QueryKind::BstPrefetch);
    for key in 0..2 * n as u64 {
        assert_eq!(plain.search(&key), pf.search(&key), "key={key}");
    }
}

#[test]
fn works_with_non_copy_ordered_types() {
    // The construction is generic over T: the involution/cycle moves
    // never clone. Strings exercise a non-Copy payload.
    let n = 1000usize;
    let sorted: Vec<String> = (0..n).map(|i| format!("{i:06}")).collect();
    let mut data = sorted.clone();
    permute_in_place(&mut data, Layout::Veb, Algorithm::CycleLeader).unwrap();
    let expect = reference_permutation(&sorted, Layout::Veb);
    assert_eq!(data, expect);
    let s = Searcher::for_layout(&data, Layout::Veb);
    assert!(s.contains(&"000123".to_string()));
    assert!(!s.contains(&"999999".to_string()));
}

#[test]
fn algorithms_agree_with_each_other_large() {
    let n = (1usize << 20) - 1;
    let sorted: Vec<u64> = (0..n as u64).collect();
    for layout in [Layout::Bst, Layout::Btree { b: 8 }, Layout::Veb] {
        let mut a = sorted.clone();
        let mut b = sorted.clone();
        permute_in_place(&mut a, layout, Algorithm::Involution).unwrap();
        permute_in_place(&mut b, layout, Algorithm::CycleLeader).unwrap();
        assert_eq!(a, b, "{layout:?}");
    }
}

/// The StaticIndex facade: unsorted duplicated input in, the whole
/// query API out, for every layout — including the batched engine and
/// range queries, cross-checked against both the scalar tier and a
/// sorted-vector oracle.
#[test]
fn static_index_end_to_end() {
    let n = 4321usize;
    let raw: Vec<u64> = (0..n as u64).map(|x| x * x % 9973).collect(); // unsorted, duplicates
    let mut sorted = raw.clone();
    sorted.sort_unstable();
    let queries: Vec<u64> = (0..10_000u64).collect();
    let expect_count = queries
        .iter()
        .filter(|q| sorted.binary_search(q).is_ok())
        .count();
    for layout in layouts() {
        let index = StaticIndex::build(raw.clone(), layout).unwrap();
        assert_eq!(index.len(), n, "{layout:?}");
        assert_eq!(index.layout(), Some(layout), "{layout:?}");

        // The stored data is a permutation of the sorted input.
        let mut back = index.as_slice().to_vec();
        back.sort_unstable();
        assert_eq!(back, sorted, "{layout:?}");

        // Batched engine vs scalar vs oracle.
        assert_eq!(index.batch_count(&queries), expect_count, "{layout:?}");
        let found = index.batch_search(&queries);
        assert_eq!(
            found,
            index.searcher().batch_search_seq(&queries),
            "{layout:?}"
        );
        for (q, hit) in queries.iter().zip(&found) {
            if let Some(pos) = hit {
                assert_eq!(index.get(*pos), Some(q), "{layout:?} q={q}");
            }
        }

        // Ranks and range counts vs oracle.
        for probe in (0..10_000u64).step_by(619) {
            assert_eq!(
                index.rank(&probe),
                sorted.partition_point(|x| *x < probe),
                "{layout:?} probe={probe}"
            );
            assert_eq!(
                index.range_count(&probe, &(probe + 1000)),
                sorted.partition_point(|x| *x < probe + 1000)
                    - sorted.partition_point(|x| *x < probe),
                "{layout:?} probe={probe}"
            );
        }
    }
}

/// Round-trip through the facade: an index built via the explicit
/// (sorted, Searcher) path answers identically to StaticIndex.
#[test]
fn static_index_agrees_with_manual_pipeline() {
    let n = 2000usize;
    let sorted: Vec<u64> = (0..n as u64).map(|x| 7 * x).collect();
    for layout in layouts() {
        let index = StaticIndex::build(sorted.clone(), layout).unwrap();
        let mut manual = sorted.clone();
        permute_in_place(&mut manual, layout, Algorithm::CycleLeader).unwrap();
        assert_eq!(index.as_slice(), &manual[..], "{layout:?}");
        let s = Searcher::for_layout(&manual, layout);
        for probe in (0..14_000u64).step_by(391) {
            assert_eq!(index.contains(&probe), s.contains(&probe), "{layout:?}");
            assert_eq!(index.rank(&probe), s.rank(&probe), "{layout:?}");
        }
    }
}

#[test]
fn thread_count_does_not_change_result() {
    let n = 123_456usize;
    let sorted: Vec<u64> = (0..n as u64).collect();
    let reference = {
        let mut v = sorted.clone();
        permute_in_place_seq(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
        v
    };
    for threads in [1usize, 2, 3, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(|| {
            let mut v = sorted.clone();
            permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
            v
        });
        assert_eq!(got, reference, "threads={threads}");
    }
}
