//! Allocation-count regression test for the rebuild hot path.
//!
//! `StaticMap::build_presorted` is the only construction work on
//! `DynamicMap`'s writer path (seals and tier merges both funnel into
//! it), so an accidental intermediate copy there — e.g. permuting into
//! a scratch `Vec` and then relocating into the aligned buffer — would
//! tax every compaction. The build must allocate exactly **one**
//! payload-sized buffer per array (keys, values): the aligned
//! destination the layout scatter writes into directly.
//!
//! Lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`; run with `--test-threads=1`
//! semantics by construction (single `#[test]`).

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts allocations at least `THRESHOLD` bytes (0 = disarmed). The
/// size gate filters out incidental small allocations (thread-spawn
/// packets from the parallel scatter, test-harness bookkeeping) so the
/// count isolates payload-sized buffers.
struct CountingAlloc;

static THRESHOLD: AtomicUsize = AtomicUsize::new(0);
static BIG_ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` plus a counter — allocation
// behavior (size, alignment, validity of returned pointers) is exactly
// the system allocator's.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` under the caller's layout
    // contract, unchanged.
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        let t = THRESHOLD.load(Ordering::Relaxed);
        if t != 0 && layout.size() >= t {
            BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: delegates to `System.dealloc` under the caller's
    // pointer/layout contract, unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        // SAFETY: same pointer and layout the caller vouched for.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn rebuild_hot_path_allocates_once_per_array() {
    use implicit_search_trees::{Algorithm, QueryKind, StaticMap};

    let n = 1usize << 16;
    let payload = n * size_of::<u64>();
    let keys: Vec<u64> = (0..n as u64).collect();
    let vals: Vec<u64> = (0..n as u64).map(|x| x * 7).collect();

    for kind in [
        QueryKind::Bst,
        QueryKind::Btree(8),
        QueryKind::Btree(16),
        QueryKind::Veb,
    ] {
        let (k, v) = (keys.clone(), vals.clone()); // cloned while disarmed
        BIG_ALLOCS.store(0, Ordering::SeqCst);
        THRESHOLD.store(payload, Ordering::SeqCst);
        let map = StaticMap::build_presorted(k, v, kind, Algorithm::CycleLeader);
        THRESHOLD.store(0, Ordering::SeqCst);
        let map = map.unwrap();
        assert_eq!(
            BIG_ALLOCS.load(Ordering::SeqCst),
            2,
            "{kind:?}: rebuild must allocate exactly the 2 aligned destination buffers"
        );
        assert_eq!(map.len(), n);
    }

    // The sorted (zero-copy adoption) path allocates nothing at all.
    let (k, v) = (keys.clone(), vals.clone());
    BIG_ALLOCS.store(0, Ordering::SeqCst);
    THRESHOLD.store(payload, Ordering::SeqCst);
    let map = StaticMap::build_presorted(k, v, QueryKind::Sorted, Algorithm::CycleLeader);
    THRESHOLD.store(0, Ordering::SeqCst);
    assert_eq!(
        BIG_ALLOCS.load(Ordering::SeqCst),
        0,
        "Sorted: zero-copy adoption must not allocate"
    );
    assert_eq!(map.unwrap().len(), n);
}
