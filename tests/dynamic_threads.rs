//! Concurrency smoke test: one writer thread driving a [`DynamicMap`]
//! through constant merges while reader threads take snapshots through
//! a [`Reader`] handle the whole time.
//!
//! The op sequence is chosen so that **every** prefix state is
//! recognizable from the outside:
//!
//! * phase 1 inserts keys `0, 1, …, N−1` in order — after `i` ops the
//!   live set is exactly `{0, …, i−1}`;
//! * phase 2 deletes keys `0, 1, …, N/2−1` in order — after `d`
//!   deletes the live set is exactly `{d, …, N−1}`.
//!
//! Each reader repeatedly snapshots and asserts the observed state *is*
//! one of those prefix states (shape, boundary membership, rank, and
//! order queries all agree), and that successive snapshots never move
//! backwards — publications are seal/compaction-granular but always
//! happen on the writer thread in op order, so every published state is
//! a prefix state and publication order is operation order. A torn or
//! half-merged state (e.g. a run visible without its buffer, or a
//! tombstone applied twice) cannot satisfy the checks.
//!
//! The writer runs under **both** compaction modes: inline (merges on
//! the writer's own path, the deterministic baseline) and background
//! (seals publish immediately while the k-way merges overlap subsequent
//! ops on a worker thread — installs must never tear a published
//! state). A separate test holds a compaction **mid-flight** with
//! slow-cloning values and checks every query against an oracle while
//! the merge is provably still running.
//!
//! The tests must pass under both CI profiles: release (this crate's
//! tier-1 build) and the debug job (overflow checks + debug_asserts,
//! which also arm the weight-invariant debug assertions inside the
//! merge).

use implicit_search_trees::{
    Algorithm, CompactionMode, CrashModel, DynamicMap, MemVfs, QueryKind, StoreConfig,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

const N: u64 = 3000;
/// Small enough that the writer merges hundreds of times under load.
const CAP: usize = 64;
const READERS: usize = 3;

/// Value stored under `k` (phase-independent, so readers can verify
/// payload integrity, not just membership).
fn value_of(k: u64) -> u64 {
    k * 10 + 1
}

/// Assert `snap` is a valid prefix state; return its logical epoch
/// (number of writer ops it reflects) for the monotonicity check.
fn check_prefix_state(snap: &implicit_search_trees::Frozen<u64, u64>) -> u64 {
    let len = snap.len() as u64;
    assert!(len <= N, "more live keys than were ever inserted");
    if len == 0 {
        // Initial state only: phase 2 ends at N/2 live keys, never 0.
        assert_eq!(snap.get(&0), None);
        return 0;
    }
    if let Some(&v) = snap.get(&0) {
        // Phase 1 state {0, …, len−1}.
        assert_eq!(v, value_of(0));
        let last = len - 1;
        assert_eq!(snap.get(&last), Some(&value_of(last)), "len={len}");
        if len < N {
            assert_eq!(snap.get(&len), None, "key {len} must not exist yet");
            assert_eq!(
                snap.successor(&last),
                None,
                "nothing may be live above key {last}"
            );
        }
        assert_eq!(snap.rank(&len), len as usize);
        assert_eq!(snap.range_count(&0, &len), len as usize);
        assert_eq!(snap.lower_bound(&0), Some((&0, &value_of(0))));
        len
    } else {
        // Phase 2 state {d, …, N−1} with d = N − len deletes applied.
        let d = N - len;
        assert!((1..=N / 2).contains(&d), "impossible delete count {d}");
        assert_eq!(snap.get(&d), Some(&value_of(d)), "first live key");
        assert_eq!(snap.get(&(d - 1)), None, "key {} must be deleted", d - 1);
        assert_eq!(snap.rank(&N), len as usize);
        assert_eq!(snap.predecessor(&d), None, "nothing live below {d}");
        assert_eq!(snap.lower_bound(&0), Some((&d, &value_of(d))));
        assert_eq!(snap.successor(&(N - 1)), None);
        N + d
    }
}

#[test]
fn snapshots_stay_prefix_consistent_under_inline_merges() {
    run_concurrent_snapshot_load(CompactionMode::Inline);
}

#[test]
fn snapshots_stay_prefix_consistent_under_background_merges() {
    run_concurrent_snapshot_load(CompactionMode::Background);
}

fn run_concurrent_snapshot_load(mode: CompactionMode) {
    let mut map: DynamicMap<u64, u64> =
        DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, CAP)
            .with_compaction_mode(mode);
    let reader = map.reader();
    let done = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for r in 0..READERS {
        let reader = reader.clone();
        let done = Arc::clone(&done);
        handles.push(thread::spawn(move || {
            let mut last_epoch = 0u64;
            let mut observed = 0usize;
            // Poll until the writer finishes, then take one final look.
            while !done.load(Ordering::Acquire) {
                let snap = reader.snapshot();
                let epoch = check_prefix_state(&snap);
                assert!(
                    epoch >= last_epoch,
                    "reader {r} went backwards: {epoch} < {last_epoch}"
                );
                last_epoch = epoch;
                observed += 1;
                // Batched reads on a snapshot while the writer merges.
                if observed.is_multiple_of(64) && !snap.is_empty() {
                    let probes: Vec<u64> = (0..48).map(|i| i * (N / 48)).collect();
                    let got = snap.batch_get(&probes);
                    for (i, &k) in probes.iter().enumerate() {
                        assert_eq!(got[i], snap.get(&k), "batch/scalar split on snapshot");
                    }
                }
            }
            let epoch = check_prefix_state(&reader.snapshot());
            assert!(epoch >= last_epoch);
            observed
        }));
    }

    // Writer: phase 1 inserts, phase 2 deletes; merges happen every CAP
    // ops throughout, while the readers above are snapshotting.
    let writer = thread::spawn(move || {
        for k in 0..N {
            map.insert(k, value_of(k));
        }
        for k in 0..N / 2 {
            assert!(map.remove(&k), "key {k} was live");
        }
        map
    });

    let map = writer.join().expect("writer must not panic");
    done.store(true, Ordering::Release);
    for handle in handles {
        let observed = handle.join().expect("reader must not panic");
        assert!(observed > 0, "reader never got a snapshot in");
    }

    // Final state, on the live map and on a fresh snapshot.
    assert_eq!(map.len() as u64, N / 2);
    let snap = map.snapshot();
    assert_eq!(check_prefix_state(&snap), N + N / 2);
    assert_eq!(map.get(&(N / 2 - 1)), None);
    assert_eq!(map.get(&(N / 2)), Some(&value_of(N / 2)));

    // Draining deferred merges changes nothing observable.
    let mut map = map;
    map.quiesce();
    assert_eq!(map.sealed_runs(), 0);
    assert!(!map.compaction_in_flight());
    assert_eq!(map.len() as u64, N / 2);
    assert_eq!(check_prefix_state(&map.snapshot()), N + N / 2);
}

/// Restart under concurrent readers: a **persistent** map is killed
/// (power-cycle dropping everything unsynced) and reopened several
/// times while reader threads snapshot continuously through a shared
/// [`implicit_search_trees::Reader`] slot.
///
/// What must hold:
///
/// * readers polling the *old* map's reader during the restart window
///   keep getting valid prefix states — never a panic, never a torn
///   state, even though the map behind their handle is gone;
/// * the reopened map's reader starts at the full recovered state, and
///   under fsync-always that state is **exactly** the pre-kill state —
///   so no reader ever observes time moving backwards across a restart;
/// * recovery composes with the concurrent-reader machinery: sealing,
///   background compaction, and publication all resume on the reopened
///   map while the same reader threads keep polling.
#[test]
fn restart_under_concurrent_readers() {
    const RN: u64 = 900;
    const RCAP: usize = 32;
    let vfs = Arc::new(MemVfs::new());
    let cfg = StoreConfig::with_vfs(vfs.clone());
    let mut map: DynamicMap<u64, u64> =
        DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, RCAP)
            .with_compaction_mode(CompactionMode::Background);
    map.persist_to("db", cfg.clone()).expect("persist_to");

    // Readers fetch the *current* reader from this slot each round; the
    // writer swaps in the reopened map's reader after every restart.
    let slot = Arc::new(Mutex::new(map.reader()));
    let done = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for r in 0..READERS {
        let slot = Arc::clone(&slot);
        let done = Arc::clone(&done);
        handles.push(thread::spawn(move || {
            let mut last_len = 0u64;
            let mut observed = 0usize;
            while !done.load(Ordering::Acquire) {
                let snap = slot.lock().expect("slot").snapshot();
                let len = snap.len() as u64;
                assert!(len <= RN, "reader {r}: more keys than ever inserted");
                if len > 0 {
                    // Insert-only workload: the state is {0, …, len−1}.
                    assert_eq!(snap.get(&0), Some(&value_of(0)));
                    assert_eq!(snap.get(&(len - 1)), Some(&value_of(len - 1)));
                    if len < RN {
                        assert_eq!(snap.get(&len), None, "key {len} must not exist yet");
                    }
                    assert_eq!(snap.rank(&len), len as usize);
                    assert_eq!(snap.lower_bound(&0), Some((&0, &value_of(0))));
                }
                assert!(
                    len >= last_len,
                    "reader {r} went backwards across a restart: {len} < {last_len}"
                );
                last_len = len;
                observed += 1;
            }
            observed
        }));
    }

    for k in 0..RN {
        map.insert(k, value_of(k));
        if k == RN / 4 || k == RN / 2 || k == 3 * RN / 4 {
            // Kill-and-restart while the readers above keep polling the
            // old reader handle.
            drop(map);
            vfs.power_cycle(CrashModel::DropUnsynced);
            map = DynamicMap::open_with("db", cfg.clone())
                .expect("reopen after power cycle")
                .with_compaction_mode(CompactionMode::Background);
            assert_eq!(map.len() as u64, k + 1, "fsync-always recovery is exact");
            *slot.lock().expect("slot") = map.reader();
        }
    }
    done.store(true, Ordering::Release);
    for handle in handles {
        let observed = handle.join().expect("reader must not panic");
        assert!(observed > 0, "reader never got a snapshot in");
    }

    map.quiesce();
    assert_eq!(map.len() as u64, RN);
    assert!(
        map.store_error().is_none(),
        "store poisoned during restarts"
    );
    for k in (0..RN).step_by(97) {
        assert_eq!(map.get(&k), Some(&value_of(k)));
    }
    // One final cold open confirms the whole history is on disk.
    drop(map);
    vfs.power_cycle(CrashModel::DropUnsynced);
    let cold = DynamicMap::<u64, u64>::open_with("db", cfg).expect("final open");
    assert_eq!(cold.len() as u64, RN);
    assert_eq!(cold.rank(&RN), RN as usize);
}

/// A payload whose `Clone` sleeps: every clone a compaction streams
/// keeps the merge observably in flight, so the assertions below run
/// against a map whose background worker is provably mid-merge.
#[derive(Debug)]
struct SlowVal {
    n: u64,
    clones: Arc<AtomicUsize>,
}

impl Clone for SlowVal {
    fn clone(&self) -> Self {
        self.clones.fetch_add(1, Ordering::Relaxed);
        thread::sleep(Duration::from_micros(200));
        Self {
            n: self.n,
            clones: Arc::clone(&self.clones),
        }
    }
}

/// Queries against a live map while a background compaction is
/// mid-flight must be exact and untorn: the sealed-but-uncompacted runs
/// carry the answers until the install.
#[test]
fn queries_stay_exact_while_compaction_is_mid_flight() {
    let clones = Arc::new(AtomicUsize::new(0));
    let cap = 16usize;
    let mut map: DynamicMap<u64, SlowVal> =
        DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, cap);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut checked_mid_flight = 0usize;

    for k in 0..300u64 {
        let n = k * 7 + 1;
        map.insert(
            k,
            SlowVal {
                n,
                clones: Arc::clone(&clones),
            },
        );
        oracle.insert(k, n);
        if k % 11 == 10 {
            let dead = k / 2;
            map.remove(&dead);
            oracle.remove(&dead);
        }
        if map.compaction_in_flight() {
            checked_mid_flight += 1;
            // Full query battery while the merge worker is running.
            for probe in [0u64, 1, k / 2, k.saturating_sub(1), k, k + 1, 100_000] {
                assert_eq!(
                    map.get(&probe).map(|v| v.n),
                    oracle.get(&probe).copied(),
                    "get({probe}) diverged mid-flight at op {k}"
                );
                assert_eq!(
                    map.rank(&probe),
                    oracle.range(..probe).count(),
                    "rank({probe}) diverged mid-flight at op {k}"
                );
                assert_eq!(
                    map.successor(&probe).map(|(sk, sv)| (*sk, sv.n)),
                    oracle
                        .range((std::ops::Bound::Excluded(probe), std::ops::Bound::Unbounded))
                        .next()
                        .map(|(sk, sv)| (*sk, *sv)),
                    "successor({probe}) diverged mid-flight at op {k}"
                );
            }
            assert_eq!(map.len(), oracle.len(), "len diverged mid-flight at op {k}");
            // A snapshot taken mid-merge is exact and untorn too.
            let snap = map.snapshot();
            assert_eq!(snap.len(), oracle.len());
            let probes: Vec<u64> = (0..=k).step_by(7).collect();
            let got = snap.batch_get(&probes);
            for (i, &p) in probes.iter().enumerate() {
                assert_eq!(
                    got[i].map(|v| v.n),
                    oracle.get(&p).copied(),
                    "snapshot batch_get({p}) diverged mid-flight at op {k}"
                );
            }
        }
    }
    assert!(
        checked_mid_flight > 0,
        "slow clones never held a compaction in flight — the test lost its subject"
    );

    // Quiesce and verify the drained map answers identically.
    map.quiesce();
    assert_eq!(map.sealed_runs(), 0);
    assert!(!map.compaction_in_flight());
    assert_eq!(map.len(), oracle.len());
    for k in 0..301u64 {
        assert_eq!(map.get(&k).map(|v| v.n), oracle.get(&k).copied());
        assert_eq!(map.rank(&k), oracle.range(..k).count());
    }
}
