//! Cross-backend equivalence: every (layout, algorithm, backend)
//! combination must produce output bit-identical to
//! [`reference_permutation`], for perfect and non-perfect sizes.
//!
//! This is the contract that makes the cost simulators meaningful: the
//! PEM and GPU backends drive the *same* generic construction code as
//! the production `Ram` backend (`ist_core::algorithms`), so if any
//! backend diverged from the oracle — or from the others — the "the
//! simulators measure the real algorithms" claim would be false.

use implicit_search_trees::gpu_sim::{Gpu, GpuConfig};
use implicit_search_trees::pem_sim::{PemConfig, TrackedArray};
use implicit_search_trees::{construct, reference_permutation, Algorithm, Layout, Ram, Searcher};

/// Perfect sizes for binary layouts (2^d − 1), B-tree-perfect sizes for a
/// couple of B values, and decidedly non-perfect sizes.
fn sizes() -> Vec<usize> {
    vec![
        1, 2, 3, 4, 7, 8, 15, 26, 27, 63, 80, 100, 255, 256, 624, 625, 1000, 4095, 4096, 5000,
        8191, 12_345,
    ]
}

fn layouts() -> Vec<Layout> {
    vec![
        Layout::Bst,
        Layout::Veb,
        Layout::Btree { b: 1 },
        Layout::Btree { b: 4 },
        Layout::Btree { b: 8 },
    ]
}

fn check_all_backends(n: usize) {
    let sorted: Vec<u64> = (0..n as u64).collect();
    for layout in layouts() {
        let expect = reference_permutation(&sorted, layout);
        for algorithm in Algorithm::ALL {
            let tag = format!("n={n} {layout:?} {algorithm:?}");

            let mut ram_seq = sorted.clone();
            construct(&mut Ram::seq(&mut ram_seq), layout, algorithm).unwrap();
            assert_eq!(ram_seq, expect, "Ram(seq) {tag}");

            let mut ram_par = sorted.clone();
            construct(&mut Ram::par(&mut ram_par), layout, algorithm).unwrap();
            assert_eq!(ram_par, expect, "Ram(par) {tag}");

            for p in [1usize, 3] {
                let mut pem = TrackedArray::from_sorted(n, PemConfig { m: 256, b: 16, p });
                construct(&mut pem, layout, algorithm).unwrap();
                assert_eq!(pem.data(), &expect[..], "Pem(p={p}) {tag}");
            }

            let mut gpu = Gpu::from_sorted(n, GpuConfig::default());
            construct(&mut gpu, layout, algorithm).unwrap();
            assert_eq!(gpu.data, expect, "Gpu {tag}");
        }
    }
}

#[test]
fn all_backends_match_oracle_small_and_nonperfect() {
    for n in sizes() {
        if n <= 1024 {
            check_all_backends(n);
        }
    }
}

#[test]
fn all_backends_match_oracle_large() {
    for n in sizes() {
        if n > 1024 {
            check_all_backends(n);
        }
    }
}

/// The GPU block-local path (subtrees under BLOCK_LOCAL keys handled by
/// one launch via a sequential Ram over the region) must cross the
/// threshold without changing the permutation.
#[test]
fn gpu_block_local_threshold_is_seamless() {
    use implicit_search_trees::gpu_sim::kernels::BLOCK_LOCAL;
    for n in [BLOCK_LOCAL - 1, 2 * BLOCK_LOCAL - 1, 4 * BLOCK_LOCAL - 1] {
        let sorted: Vec<u64> = (0..n as u64).collect();
        let expect = reference_permutation(&sorted, Layout::Veb);
        for algorithm in Algorithm::ALL {
            let mut gpu = Gpu::from_sorted(n, GpuConfig::default());
            construct(&mut gpu, Layout::Veb, algorithm).unwrap();
            assert_eq!(gpu.data, expect, "n={n} {algorithm:?}");
        }
    }
}

/// Layouts built by the cost backends are served by the same query
/// engine as production layouts: batched queries over a simulator-built
/// array are bit-identical to the scalar loop over the Ram-built one.
#[test]
fn backend_built_layouts_serve_identical_batched_queries() {
    let n = 2000usize;
    let sorted: Vec<u64> = (0..n as u64).map(|x| 2 * x).collect();
    let queries: Vec<u64> = (0..4 * n as u64).step_by(3).collect();
    for layout in layouts() {
        let mut ram = sorted.clone();
        construct(&mut Ram::par(&mut ram), layout, Algorithm::Involution).unwrap();
        let ram_s = Searcher::for_layout(&ram, layout);
        let expect = ram_s.batch_search_seq(&queries);

        let mut pem = TrackedArray::from_sorted(
            n,
            PemConfig {
                m: 256,
                b: 16,
                p: 2,
            },
        );
        construct(&mut pem, layout, Algorithm::Involution).unwrap();
        // PEM stores 0..n; remap the queries onto its key space.
        let pem_data: Vec<u64> = pem.data().to_vec();
        let pem_s = Searcher::for_layout(&pem_data, layout);
        let pem_queries: Vec<u64> = queries.iter().map(|q| q / 2).collect();
        assert_eq!(
            pem_s.batch_search(&pem_queries),
            pem_s.batch_search_seq(&pem_queries),
            "{layout:?} pem"
        );

        let gpu = {
            let mut g = Gpu::from_sorted(n, GpuConfig::default());
            construct(&mut g, layout, Algorithm::Involution).unwrap();
            g.data
        };
        let gpu_scaled: Vec<u64> = gpu.iter().map(|x| 2 * x).collect();
        let gpu_s = Searcher::for_layout(&gpu_scaled, layout);
        assert_eq!(gpu_s.batch_search(&queries), expect, "{layout:?} gpu");
        assert_eq!(
            gpu_s.batch_search_pipelined(&queries),
            expect,
            "{layout:?} gpu pipelined"
        );
    }
}

/// Cost backends actually charge something on every non-trivial run —
/// a regression guard against silently skipping the accounting when
/// driving the shared algorithms.
#[test]
fn cost_backends_charge_costs() {
    let n = (1usize << 12) - 1;
    for layout in layouts() {
        for algorithm in Algorithm::ALL {
            let mut pem = TrackedArray::from_sorted(
                n,
                PemConfig {
                    m: 256,
                    b: 16,
                    p: 2,
                },
            );
            construct(&mut pem, layout, algorithm).unwrap();
            assert!(
                pem.stats().total() > 0,
                "PEM charged nothing: {layout:?} {algorithm:?}"
            );

            let mut gpu = Gpu::from_sorted(n, GpuConfig::default());
            construct(&mut gpu, layout, algorithm).unwrap();
            let cost = gpu.cost();
            assert!(
                cost.launches > 0 && cost.transactions > 0,
                "GPU charged nothing: {layout:?} {algorithm:?}"
            );
        }
    }
}
