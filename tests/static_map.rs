//! `StaticMap` differential suite: every lookup checked against a
//! `std::collections::BTreeMap` oracle, across layouts, adversarial
//! sizes (empty/singleton/perfect±1/node boundaries), and duplicated
//! key multisets.
//!
//! Duplicate-key contract: the map stores every (key, value) pair; a
//! lookup resolves to **some** slot holding a matching key, so the
//! returned value must be one of the values inserted under that key
//! (`oracle: BTreeMap<K, Vec<V>>`). `batch_get` must be bit-identical
//! to per-key `get` (same slot, hence the same `&V`, not merely an
//! equal one).

use implicit_search_trees::{Algorithm, QueryKind, StaticMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const BTREE_BS: [usize; 3] = [1, 3, 8];

fn kinds() -> Vec<QueryKind> {
    let mut v = vec![
        QueryKind::Sorted,
        QueryKind::Bst,
        QueryKind::BstPrefetch,
        QueryKind::Veb,
    ];
    for b in BTREE_BS {
        v.push(QueryKind::Btree(b));
    }
    v
}

/// Empty, singleton, perfect binary sizes ± 1, and B-tree node
/// boundaries for the exercised branching factors.
fn adversarial_sizes() -> Vec<usize> {
    let mut sizes = vec![0usize, 1, 2, 3];
    for d in [2u32, 3, 6, 7, 9] {
        let perfect = (1usize << d) - 1;
        sizes.extend([perfect - 1, perfect, perfect + 1]);
    }
    for b in BTREE_BS {
        let k = b + 1;
        for m in 1..=3u32 {
            let perfect = k.pow(m) - 1;
            if perfect > 1500 {
                break;
            }
            sizes.extend([perfect, perfect + 1, perfect + b]);
        }
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

/// Keys with duplicates (step 3, each key twice for odd sizes), values
/// tagged with the insertion index so distinct pairs stay
/// distinguishable even under equal keys.
fn keyset(n: usize, rng: &mut StdRng) -> Vec<u64> {
    (0..n)
        .map(|_| 3 * rng.gen_range(0..(n as u64).max(1) / 2 + 1))
        .collect()
}

fn oracle(keys: &[u64], values: &[(u64, usize)]) -> BTreeMap<u64, Vec<(u64, usize)>> {
    let mut m: BTreeMap<u64, Vec<(u64, usize)>> = BTreeMap::new();
    for (k, v) in keys.iter().zip(values) {
        m.entry(*k).or_default().push(*v);
    }
    m
}

#[test]
fn get_and_batch_get_match_btreemap_oracle() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for n in adversarial_sizes() {
        let keys = keyset(n, &mut rng);
        let values: Vec<(u64, usize)> = keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        let oracle = oracle(&keys, &values);
        let probes: Vec<u64> = (0..(3 * n as u64 / 2 + 5)).collect();
        for kind in kinds() {
            let map = StaticMap::build_for_kind(
                keys.clone(),
                values.clone(),
                kind,
                Algorithm::CycleLeader,
            )
            .unwrap();
            assert_eq!(map.len(), n, "{kind:?} n={n}");
            let batch = map.batch_get(&probes);
            for (i, probe) in probes.iter().enumerate() {
                let got = map.get(probe);
                match oracle.get(probe) {
                    None => assert!(got.is_none(), "{kind:?} n={n} probe={probe}"),
                    Some(copies) => {
                        let v = got.unwrap_or_else(|| {
                            panic!("{kind:?} n={n} probe={probe}: stored key not found")
                        });
                        // Some matching slot: the value must be one of
                        // the copies inserted under this key.
                        assert_eq!(
                            v.0, *probe,
                            "{kind:?} n={n} probe={probe}: wrong key's value"
                        );
                        assert!(
                            copies.contains(v),
                            "{kind:?} n={n} probe={probe}: value {v:?} not among {copies:?}"
                        );
                    }
                }
                // batch_get is bit-identical to per-key get: the same
                // slot, hence the same reference target.
                match (got, batch[i]) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert!(
                            std::ptr::eq(a, b),
                            "{kind:?} n={n} probe={probe}: slot differs"
                        )
                    }
                    (a, b) => panic!("{kind:?} n={n} probe={probe}: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

#[test]
fn order_queries_match_btreemap_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for n in [0usize, 1, 2, 7, 26, 100, 511, 1000] {
        let keys = keyset(n, &mut rng);
        let values: Vec<(u64, usize)> = keys.iter().enumerate().map(|(i, &k)| (k, i)).collect();
        let oracle = oracle(&keys, &values);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let probes: Vec<u64> = (0..(3 * n as u64 / 2 + 5)).collect();
        for kind in kinds() {
            let map = StaticMap::build_for_kind(
                keys.clone(),
                values.clone(),
                kind,
                Algorithm::Involution,
            )
            .unwrap();
            for probe in &probes {
                let tag = format!("{kind:?} n={n} probe={probe}");
                assert_eq!(map.contains_key(probe), oracle.contains_key(probe), "{tag}");
                assert_eq!(
                    map.rank(probe),
                    sorted.partition_point(|x| x < probe),
                    "{tag}"
                );
                // lower_bound / successor / predecessor against the
                // BTreeMap's range views; values must belong to the key.
                let lb = oracle.range(probe..).next().map(|(k, _)| *k);
                assert_eq!(map.lower_bound(probe).map(|(k, _)| *k), lb, "{tag}");
                let succ = oracle.range(probe + 1..).next().map(|(k, _)| *k);
                assert_eq!(map.successor(probe).map(|(k, _)| *k), succ, "{tag}");
                let pred = oracle.range(..probe).next_back().map(|(k, _)| *k);
                assert_eq!(map.predecessor(probe).map(|(k, _)| *k), pred, "{tag}");
                for (k, v) in [map.lower_bound(probe), map.successor(probe)]
                    .into_iter()
                    .flatten()
                {
                    assert!(oracle[k].contains(v), "{tag}: entry value/key mismatch");
                }
            }
            // Range counts with multiplicity, batched through the rank
            // pipeline.
            let ranges: Vec<(u64, u64)> = probes
                .iter()
                .zip(probes.iter().rev())
                .map(|(a, b)| (*a, *b))
                .chain(probes.windows(2).map(|w| (w[0], w[1])))
                .collect();
            let expect: Vec<usize> = ranges
                .iter()
                .map(|(lo, hi)| {
                    sorted.partition_point(|x| x < hi)
                        - sorted
                            .partition_point(|x| x < hi)
                            .min(sorted.partition_point(|x| x < lo))
                })
                .collect();
            assert_eq!(map.batch_range_count(&ranges), expect, "{kind:?} n={n}");
        }
    }
}

/// Layout-order views stay parallel, and `values()` really is the
/// buffer `batch_get` serves from (zero-copy).
#[test]
fn parallel_views_and_zero_copy() {
    let keys: Vec<u64> = vec![9, 1, 5, 5, 7, 3, 1];
    let values: Vec<String> = keys.iter().map(|k| format!("v{k}")).collect();
    for kind in kinds() {
        let map =
            StaticMap::build_for_kind(keys.clone(), values.clone(), kind, Algorithm::CycleLeader)
                .unwrap();
        assert_eq!(map.keys().len(), map.values().len());
        for (k, v) in map.keys().iter().zip(map.values()) {
            assert_eq!(*v, format!("v{k}"), "{kind:?}");
        }
        let got = map.get(&5).unwrap();
        let base = map.values().as_ptr() as usize;
        let p = got as *const String as usize;
        assert!(
            (p - base) / std::mem::size_of::<String>() < map.len(),
            "{kind:?}: get() must serve from the values() buffer"
        );
    }
}
