//! Format-level tests for the durability substrate: round-trips across
//! every layout and value shape, total (never-panicking) decoders under
//! byte-level fuzz, checksum rejection of every single-bit flip, and a
//! **pinned golden store** that fails CI the moment any on-disk codec
//! changes without a version bump.
//!
//! The crash/recovery *semantics* live in `tests/store_crash.rs`; this
//! file pins the *bytes*.

use implicit_search_trees::store::{
    crc64, encode_run, parse_wal, run_file_name, wal_file_name, FsyncPolicy, Manifest, MemVfs,
    RunHeader, RunReader, RunSections, ShardsFile, StoreConfig, WalWriter, MANIFEST_NAME,
    RUN_HEADER_LEN,
};
use implicit_search_trees::{Algorithm, CompactionMode, DynamicMap, QueryKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn mem_cfg(vfs: &Arc<MemVfs>) -> StoreConfig {
    StoreConfig::with_vfs(Arc::clone(vfs) as Arc<dyn implicit_search_trees::store::Vfs>)
}

/// Deterministic LCG so fuzz bytes are reproducible without a PRNG
/// crate dependency in this file.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

// ---------------------------------------------------------------------
// Round-trips: every layout × several key/value shapes, through the
// public persist/open API (which exercises run files, WAL, manifest).
// ---------------------------------------------------------------------

/// Drive a deterministic mutation mix on a fresh persistent map, then
/// reopen and compare the full state against a `BTreeMap` oracle.
fn round_trip<K, V>(kind: QueryKind, key_of: impl Fn(u64) -> K, val_of: impl Fn(u64) -> V)
where
    K: Ord + Clone + Send + Sync + std::fmt::Debug + implicit_search_trees::store::Codec + 'static,
    V: Clone
        + Send
        + Sync
        + PartialEq
        + std::fmt::Debug
        + implicit_search_trees::store::Codec
        + 'static,
{
    let vfs = Arc::new(MemVfs::new());
    let mut map: DynamicMap<K, V> = DynamicMap::with_config(kind, Algorithm::CycleLeader, 4)
        .with_compaction_mode(CompactionMode::Inline);
    let mut oracle: BTreeMap<K, V> = BTreeMap::new();
    let put = |map: &mut DynamicMap<K, V>, oracle: &mut BTreeMap<K, V>, i: u64| {
        let (k, v) = (key_of(i % 23), val_of(i));
        map.insert(k.clone(), v.clone());
        oracle.insert(k, v);
    };
    for i in 0..40 {
        put(&mut map, &mut oracle, i);
    }
    for i in 0..6 {
        let k = key_of(i * 3);
        map.remove(&k);
        oracle.remove(&k);
    }
    map.persist_to("db", mem_cfg(&vfs)).expect("persist_to");
    // Post-persist mutations ride the WAL (including a batch record).
    for i in 40..55 {
        put(&mut map, &mut oracle, i);
    }
    let delta: Vec<(K, Option<V>)> = (0..8)
        .map(|i| (key_of(i * 2), (i % 2 == 0).then(|| val_of(100 + i))))
        .collect();
    for (k, slot) in &delta {
        match slot {
            Some(v) => {
                oracle.insert(k.clone(), v.clone());
            }
            None => {
                oracle.remove(k);
            }
        }
    }
    map.batch_insert(
        delta
            .iter()
            .filter_map(|(k, s)| s.clone().map(|v| (k.clone(), v)))
            .collect(),
    );
    map.batch_remove(
        &delta
            .iter()
            .filter(|(_, s)| s.is_none())
            .map(|(k, _)| k.clone())
            .collect::<Vec<_>>(),
    );
    drop(map);
    let reopened = DynamicMap::<K, V>::open_with("db", mem_cfg(&vfs)).expect("open");
    assert_eq!(reopened.len(), oracle.len(), "kind={kind:?}");
    for i in 0..30u64 {
        let k = key_of(i);
        assert_eq!(reopened.get(&k), oracle.get(&k), "kind={kind:?} get({k:?})");
        assert_eq!(
            reopened.rank(&k),
            oracle.range(..k.clone()).count(),
            "kind={kind:?} rank({k:?})"
        );
    }
}

#[test]
fn round_trip_every_layout() {
    for kind in [
        QueryKind::Sorted,
        QueryKind::BstPrefetch,
        QueryKind::Btree(8),
        QueryKind::Veb,
    ] {
        round_trip::<u64, u64>(kind, |i| i, |i| i * 1000);
    }
}

#[test]
fn round_trip_value_shapes() {
    // Pod (zero-copy) key widths other than u64, plus heap-allocated
    // and composite values through the generic codec path.
    round_trip::<u32, Vec<u8>>(
        QueryKind::Veb,
        |i| i as u32,
        |i| vec![i as u8; (i % 5) as usize],
    );
    round_trip::<u64, String>(QueryKind::Btree(8), |i| i, |i| format!("value-{i}"));
    round_trip::<u16, (u64, bool)>(QueryKind::Sorted, |i| i as u16, |i| (i, i % 3 == 0));
    round_trip::<i64, Option<u64>>(
        QueryKind::Veb,
        |i| i as i64 - 11,
        |i| (i % 2 == 0).then_some(i),
    );
}

// ---------------------------------------------------------------------
// Total decoders: arbitrary bytes must yield Ok or a typed error,
// never a panic, never an absurd allocation.
// ---------------------------------------------------------------------

#[test]
fn decoders_are_total_on_arbitrary_bytes() {
    let mut lcg = Lcg(0x5EED_F00D);
    for round in 0..400 {
        let len = (lcg.next() % 256) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| lcg.next() as u8).collect();
        // Half the rounds, plant a valid magic so the fuzz gets past
        // the first gate and into the field decoders.
        if round % 2 == 0 && bytes.len() >= 8 {
            let magic: &[u8; 8] = match round % 8 {
                0 => b"IST-RUN\0",
                2 => b"IST-MAN\0",
                4 => b"IST-SHD\0",
                _ => b"IST-WAL\0",
            };
            bytes[..8].copy_from_slice(magic);
        }
        let _ = RunHeader::decode(&bytes);
        let _ = Manifest::decode(&bytes);
        let _ = ShardsFile::<u64>::decode(&bytes);
        let _ = parse_wal(&bytes, None);
    }
}

// ---------------------------------------------------------------------
// Checksums: every single-bit flip in every structure is rejected (or,
// for the WAL, at worst demoted to a shorter *prefix* of records —
// never a wrong record).
// ---------------------------------------------------------------------

/// A small but fully populated run file: every section non-empty.
fn sample_run_bytes() -> Vec<u8> {
    let keys: Vec<u8> = (0..5u64).flat_map(|k| (k * 7).to_le_bytes()).collect();
    let values: Vec<u8> = vec![0b0001_0110, 9, 8, 7];
    let weights: Vec<u8> = (0..6i64).flat_map(|w| w.to_le_bytes()).collect();
    encode_run(
        QueryKind::Veb,
        5,
        (3, 17),
        RunSections {
            keys: &keys,
            values: &values,
            weights: &weights,
        },
    )
}

/// Header plus the raw bytes of the keys, values, and weights sections.
type RunContents = (RunHeader, Vec<u8>, Vec<u8>, Vec<u8>);

/// Open + fully read a run file on `vfs`; any checksum or structural
/// problem surfaces as `Err`.
fn read_run_fully(
    vfs: &MemVfs,
    path: &Path,
) -> Result<RunContents, implicit_search_trees::store::StoreError> {
    let mut r = RunReader::open(vfs, path)?;
    let header = *r.header();
    let mut keys = vec![0u8; r.keys_len()];
    r.read_keys_into(&mut keys)?;
    let values = r.read_values()?;
    let mut weights = vec![0u8; r.weights_len()];
    r.read_weights_into(&mut weights)?;
    Ok((header, keys, values, weights))
}

#[test]
fn run_file_rejects_every_bit_flip() {
    let bytes = sample_run_bytes();
    assert!(bytes.len() > RUN_HEADER_LEN);
    let vfs = MemVfs::new();
    let path = PathBuf::from(run_file_name(0));
    vfs.restore(&[(path.clone(), bytes.clone())]);
    read_run_fully(&vfs, &path).expect("pristine file reads");
    for bit in 0..(bytes.len() as u64 * 8) {
        assert!(vfs.flip_bit(&path, bit));
        assert!(
            read_run_fully(&vfs, &path).is_err(),
            "bit flip at {bit} went undetected"
        );
        assert!(vfs.flip_bit(&path, bit)); // restore
    }
}

#[test]
fn run_file_rejects_every_truncation() {
    let bytes = sample_run_bytes();
    let vfs = MemVfs::new();
    let path = PathBuf::from(run_file_name(0));
    for cut in 0..bytes.len() as u64 {
        vfs.restore(&[(path.clone(), bytes.clone())]);
        assert!(vfs.truncate(&path, cut));
        assert!(
            read_run_fully(&vfs, &path).is_err(),
            "truncation to {cut} bytes went undetected"
        );
    }
}

#[test]
fn manifest_and_shards_reject_every_bit_flip() {
    let manifest = {
        let vfs = Arc::new(MemVfs::new());
        let mut map: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 2)
                .with_compaction_mode(CompactionMode::Inline);
        for i in 0..9u64 {
            map.insert(i, i);
        }
        map.persist_to("db", mem_cfg(&vfs)).expect("persist");
        vfs.file_bytes(Path::new("db").join(MANIFEST_NAME).as_path())
            .expect("manifest written")
    };
    Manifest::decode(&manifest).expect("pristine manifest decodes");
    for bit in 0..(manifest.len() as u64 * 8) {
        let mut wounded = manifest.clone();
        wounded[(bit / 8) as usize] ^= 1 << (bit % 8);
        assert!(
            Manifest::decode(&wounded).is_err(),
            "manifest bit flip at {bit} went undetected"
        );
    }
    let shards = ShardsFile {
        splits: vec![10u64, 20, 30],
    }
    .encode();
    ShardsFile::<u64>::decode(&shards).expect("pristine shards file decodes");
    for bit in 0..(shards.len() as u64 * 8) {
        let mut wounded = shards.clone();
        wounded[(bit / 8) as usize] ^= 1 << (bit % 8);
        assert!(
            ShardsFile::<u64>::decode(&wounded).is_err(),
            "shards bit flip at {bit} went undetected"
        );
    }
}

#[test]
fn wal_flips_yield_error_or_record_prefix() {
    let vfs = MemVfs::new();
    let path = PathBuf::from(wal_file_name(1));
    let mut wal = WalWriter::create(&vfs, &path, 1, FsyncPolicy::Always).expect("create");
    let payloads: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 3 + i as usize]).collect();
    for p in &payloads {
        wal.append(p).expect("append");
    }
    drop(wal);
    let bytes = vfs.file_bytes(&path).expect("wal written");
    let pristine = parse_wal(&bytes, Some(1)).expect("pristine wal parses");
    assert_eq!(pristine.records, payloads);
    for bit in 0..(bytes.len() as u64 * 8) {
        let mut wounded = bytes.clone();
        wounded[(bit / 8) as usize] ^= 1 << (bit % 8);
        // A flip may mimic a torn tail; what parses must then be an
        // exact prefix of the real records — never a wrong record.
        if let Ok(contents) = parse_wal(&wounded, Some(1)) {
            assert!(
                contents.records.len() < payloads.len()
                    && contents.records == payloads[..contents.records.len()],
                "wal bit flip at {bit} produced non-prefix records"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Golden store: byte-for-byte pinned format. `IST_WRITE_GOLDEN=1`
// regenerates `tests/golden/map-v1/` (commit the result deliberately —
// it is a format change); the normal run asserts the current encoder
// still produces those exact bytes AND that the committed files open
// to the expected state.
// ---------------------------------------------------------------------

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/map-v1")
}

/// The deterministic workload behind the golden store: fixed ops, fixed
/// buffer cap, inline compaction, single-threaded merges — every byte
/// of the output is a pure function of the codec.
fn build_golden() -> (Arc<MemVfs>, BTreeMap<u64, u64>) {
    let vfs = Arc::new(MemVfs::new());
    let mut map: DynamicMap<u64, u64> =
        DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4)
            .with_compaction_mode(CompactionMode::Inline);
    let mut oracle = BTreeMap::new();
    for i in 0..33u64 {
        let k = (i * 13) % 29;
        map.insert(k, i);
        oracle.insert(k, i);
    }
    for k in [0u64, 13, 26] {
        map.remove(&k);
        oracle.remove(&k);
    }
    map.persist_to("db", mem_cfg(&vfs)).expect("persist");
    // A WAL tail with all three record types.
    map.insert(100, 1);
    oracle.insert(100, 1);
    map.remove(&1);
    oracle.remove(&1);
    map.batch_insert(vec![(101, 2), (102, 3)]);
    oracle.insert(101, 2);
    oracle.insert(102, 3);
    drop(map);
    (vfs, oracle)
}

#[test]
fn golden_store_bytes_and_recovery() {
    let (vfs, oracle) = build_golden();
    let mut produced: Vec<(String, Vec<u8>)> = vfs
        .dump()
        .into_iter()
        .map(|(p, b)| {
            (
                p.file_name()
                    .expect("flat store dir")
                    .to_string_lossy()
                    .into_owned(),
                b,
            )
        })
        .collect();
    produced.sort();
    let dir = golden_dir();
    if std::env::var_os("IST_WRITE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).expect("mkdir golden");
        for entry in std::fs::read_dir(&dir).expect("read golden dir") {
            std::fs::remove_file(entry.expect("entry").path()).expect("clear stale golden");
        }
        for (name, bytes) in &produced {
            std::fs::write(dir.join(name), bytes).expect("write golden file");
        }
        eprintln!(
            "rewrote {} golden files in {}",
            produced.len(),
            dir.display()
        );
        return;
    }
    // 1. The committed bytes still open — on a copy (opening rotates
    //    the WAL and manifest, so never open the golden dir itself).
    let mut committed: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
        .expect("golden dir exists (regenerate with IST_WRITE_GOLDEN=1)")
        .map(|e| {
            let e = e.expect("entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read golden file"),
            )
        })
        .collect();
    committed.sort();
    let replay = MemVfs::new();
    replay.restore(
        &committed
            .iter()
            .map(|(n, b)| (Path::new("db").join(n), b.clone()))
            .collect::<Vec<_>>(),
    );
    let reopened = DynamicMap::<u64, u64>::open_with(
        "db",
        StoreConfig::with_vfs(Arc::new(replay_clone(&replay))),
    )
    .expect("golden store opens");
    assert_eq!(reopened.len(), oracle.len());
    for k in 0..110u64 {
        assert_eq!(reopened.get(&k), oracle.get(&k), "golden get({k})");
    }
    // 2. The current encoder reproduces the committed bytes exactly.
    let produced_names: Vec<&String> = produced.iter().map(|(n, _)| n).collect();
    let committed_names: Vec<&String> = committed.iter().map(|(n, _)| n).collect();
    assert_eq!(
        produced_names, committed_names,
        "golden file set changed — format change? regenerate with IST_WRITE_GOLDEN=1"
    );
    for ((name, new_bytes), (_, old_bytes)) in produced.iter().zip(&committed) {
        assert_eq!(
            crc64(new_bytes),
            crc64(old_bytes),
            "{name}: on-disk bytes changed — format change? bump the \
             version and regenerate with IST_WRITE_GOLDEN=1"
        );
        assert_eq!(new_bytes, old_bytes, "{name}: byte drift");
    }
}

/// `MemVfs` is not `Clone`; re-materialize one from a dump so the
/// golden copy can be handed to `StoreConfig::with_vfs` by value.
fn replay_clone(vfs: &MemVfs) -> MemVfs {
    let fresh = MemVfs::new();
    fresh.restore(&vfs.dump());
    fresh
}
