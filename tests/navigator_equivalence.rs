//! Navigator equivalence: the scalar engine, the software-pipelined
//! batched engine, and the gpu-sim lane model must visit **bit-identical
//! node sequences** for every (layout, n, key).
//!
//! All three execution paths step the same `ist_query::nav::Navigator`
//! per layout — this suite is what makes that claim checkable instead
//! of aspirational. Contracts pinned here:
//!
//! * **rank descents** never exit early, so scalar and pipelined
//!   address traces are *equal*;
//! * **search descents** early-exit on equality in the scalar engine
//!   and the gpu lane, while the pipelined window keeps descending with
//!   the hit latched in a result register — so the scalar trace is a
//!   *prefix* of the pipelined trace, and the gpu lane trace *equals*
//!   the scalar trace (the sorted baseline replays the rank descent and
//!   never exits early, on every path);
//! * results agree across all tiers regardless (also enforced, more
//!   broadly, by `tests/query_differential.rs`).

use implicit_search_trees::gpu_sim::{lane_node_trace, GpuQueryKind};
use implicit_search_trees::{permute_in_place, Algorithm, Layout, QueryKind, Searcher};

/// (CPU kind, construction layout, gpu-sim kind) triples. The scalar
/// BST prefetch variant shares the BST node sequence by construction
/// (the hint is a prefetch, not a read), so it maps to the same gpu
/// kind.
fn kinds() -> Vec<(QueryKind, Option<Layout>, GpuQueryKind)> {
    vec![
        (QueryKind::Sorted, None, GpuQueryKind::BinarySearch),
        (QueryKind::Bst, Some(Layout::Bst), GpuQueryKind::Bst),
        (QueryKind::BstPrefetch, Some(Layout::Bst), GpuQueryKind::Bst),
        (
            QueryKind::Btree(1),
            Some(Layout::Btree { b: 1 }),
            GpuQueryKind::Btree(1),
        ),
        (
            QueryKind::Btree(3),
            Some(Layout::Btree { b: 3 }),
            GpuQueryKind::Btree(3),
        ),
        (
            QueryKind::Btree(8),
            Some(Layout::Btree { b: 8 }),
            GpuQueryKind::Btree(8),
        ),
        (
            QueryKind::Btree(16),
            Some(Layout::Btree { b: 16 }),
            GpuQueryKind::Btree(16),
        ),
        (QueryKind::Veb, Some(Layout::Veb), GpuQueryKind::Veb),
    ]
}

/// Perfect sizes, their neighbors, B-tree node boundaries, and tiny
/// degenerate trees.
fn sizes() -> Vec<usize> {
    vec![
        1, 2, 3, 4, 7, 8, 15, 16, 26, 27, 30, 63, 80, 100, 127, 128, 511, 624, 625, 1000,
    ]
}

fn layout_data(n: usize, layout: Option<Layout>) -> Vec<u64> {
    // Keys 3x+2 so that probes hit stored keys, gaps, and out-of-range
    // values on both sides.
    let mut data: Vec<u64> = (0..n as u64).map(|x| 3 * x + 2).collect();
    if let Some(l) = layout {
        permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
    }
    data
}

fn probes(n: usize) -> Vec<u64> {
    (0..=(3 * n as u64 + 4)).collect()
}

/// Search: scalar == gpu lane; scalar is a prefix of pipelined; rank:
/// scalar == pipelined. Every probe key, every size, every layout.
#[test]
fn all_paths_visit_identical_node_sequences() {
    for (kind, layout, gpu_kind) in kinds() {
        for n in sizes() {
            let data = layout_data(n, layout);
            let s = Searcher::new(&data, kind);
            let keys = probes(n);
            let piped_search = s.trace_search_pipelined(&keys);
            let piped_rank = s.trace_rank_pipelined(&keys);
            for (i, key) in keys.iter().enumerate() {
                let tag = format!("{kind:?} n={n} key={key}");
                let scalar_search = s.trace_search(key);
                let scalar_rank = s.trace_rank(key);
                assert!(
                    scalar_search.len() <= piped_search[i].len(),
                    "{tag}: scalar longer than pipelined"
                );
                assert_eq!(
                    scalar_search[..],
                    piped_search[i][..scalar_search.len()],
                    "{tag}: scalar search not a prefix of pipelined"
                );
                assert_eq!(scalar_rank, piped_rank[i], "{tag}: rank traces differ");
                let gpu = lane_node_trace(&data, gpu_kind, *key);
                assert_eq!(gpu, scalar_search, "{tag}: gpu lane trace differs");
            }
        }
    }
}

/// The const-width wide kernel visits the **same node sequence** as the
/// runtime navigator at the same `b` — not just the same results. Both
/// widths 8 and 16 are on u64 keys, so `Searcher::new` routes through
/// `WideBtreeNav` (pinned by `is_wide`) while `new_runtime` steps the
/// general `BtreeNav` over the identical buffer; every trace flavor
/// must agree exactly, at perfect and non-perfect sizes.
#[test]
fn wide_kernel_traces_equal_runtime_traces() {
    for b in [8usize, 16] {
        let kind = QueryKind::Btree(b);
        let layout = Layout::Btree { b };
        for n in sizes() {
            let data = layout_data(n, Some(layout));
            let wide = Searcher::new(&data, kind);
            let runtime = Searcher::new_runtime(&data, kind);
            assert!(wide.is_wide(), "b={b} n={n}");
            assert!(!runtime.is_wide(), "b={b} n={n}");
            let keys = probes(n);
            assert_eq!(
                wide.trace_search_pipelined(&keys),
                runtime.trace_search_pipelined(&keys),
                "b={b} n={n} pipelined search traces"
            );
            assert_eq!(
                wide.trace_rank_pipelined(&keys),
                runtime.trace_rank_pipelined(&keys),
                "b={b} n={n} pipelined rank traces"
            );
            for key in &keys {
                assert_eq!(
                    wide.trace_search(key),
                    runtime.trace_search(key),
                    "b={b} n={n} key={key} search trace"
                );
                assert_eq!(
                    wide.trace_rank(key),
                    runtime.trace_rank(key),
                    "b={b} n={n} key={key} rank trace"
                );
            }
        }
    }
}

/// The pipelined search trace always runs the full round count (hits
/// are latched, not short-circuited), and rank/search traces agree up
/// to the early exit — i.e. the two descent flavors really share one
/// probe structure.
#[test]
fn pipelined_full_depth_and_misses_share_structure() {
    for (kind, layout, _) in kinds() {
        let n = 511usize;
        let data = layout_data(n, layout);
        let s = Searcher::new(&data, kind);
        let keys = probes(n);
        let piped = s.trace_search_pipelined(&keys);
        for (i, key) in keys.iter().enumerate() {
            // Misses never exit early, so the scalar trace must be the
            // whole pipelined trace.
            if !s.contains(key) {
                assert_eq!(
                    s.trace_search(key),
                    piped[i],
                    "{kind:?} miss key={key} truncated"
                );
            }
        }
        // All pipelined traces of one layout have the same depth: the
        // window is level-synchronous.
        let depth = piped[0].len();
        if !matches!(kind, QueryKind::Sorted) {
            for (i, t) in piped.iter().enumerate() {
                assert_eq!(t.len(), depth, "{kind:?} query {i} depth");
            }
        }
    }
}

/// Window width is an engine parameter, not a semantics parameter: the
/// node traces and results are identical for every width (spot-checked
/// against results here; the differential suite covers results more
/// broadly).
#[test]
fn window_width_never_changes_results() {
    for (kind, layout, _) in kinds() {
        for n in [26usize, 100, 625] {
            let data = layout_data(n, layout);
            let s = Searcher::new(&data, kind);
            let keys = probes(n);
            let expect = s.batch_search_seq(&keys);
            assert_eq!(
                s.batch_search_pipelined_with_window::<1>(&keys),
                expect,
                "{kind:?} n={n} W=1"
            );
            assert_eq!(
                s.batch_search_pipelined_with_window::<7>(&keys),
                expect,
                "{kind:?} n={n} W=7"
            );
            assert_eq!(
                s.batch_search_pipelined_with_window::<64>(&keys),
                expect,
                "{kind:?} n={n} W=64"
            );
            let expect_rank = s.batch_rank_seq(&keys);
            assert_eq!(
                s.batch_rank_pipelined_with_window::<5>(&keys),
                expect_rank,
                "{kind:?} n={n} W=5 rank"
            );
        }
    }
}
