//! Differential query sweep: every `Searcher` operation — point, batch,
//! and range — checked against the sorted-array oracle, for all five
//! `QueryKind`s, over adversarial tree shapes and key multisets
//! (duplicates included).
//!
//! Two layers of checking:
//!
//! 1. **Oracle**: results must match what a plain sorted `Vec` answers
//!    (`partition_point` for ranks, membership for search, rank
//!    differences for range counts).
//! 2. **Tier identity**: the batched tiers (`*_pipelined` and the
//!    parallel un-suffixed entry points) must be **bit-identical** to
//!    the per-key scalar loop — same `Option<usize>` positions, not
//!    just the same keys found.
//!
//! Sizes cover the adversarial shapes: 0, 1, perfect binary trees
//! `2^d − 1` and their neighbors, and B-tree node boundaries
//! `((b+1)^m − 1) ± {0, 1, b}` for every exercised `b`.

use implicit_search_trees::{permute_in_place, Algorithm, Layout, QueryKind, Searcher};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Includes both compiled wide-kernel widths (8, 16): `Searcher::new`
/// on `u64` keys routes those through `WideBtreeNav`, so every sweep
/// below exercises the SIMD kernels against the oracle.
const BTREE_BS: [usize; 5] = [1, 2, 3, 8, 16];

fn kinds() -> Vec<(QueryKind, Option<Layout>)> {
    let mut v = vec![
        (QueryKind::Sorted, None),
        (QueryKind::Bst, Some(Layout::Bst)),
        (QueryKind::BstPrefetch, Some(Layout::Bst)),
        (QueryKind::Veb, Some(Layout::Veb)),
    ];
    for b in BTREE_BS {
        v.push((QueryKind::Btree(b), Some(Layout::Btree { b })));
    }
    v
}

/// 0, 1, perfect binary sizes ± 1, and B-tree node boundaries ± {1, b}
/// for the exercised branching factors.
fn adversarial_sizes() -> Vec<usize> {
    let mut sizes = vec![0usize, 1, 2, 3];
    for d in [2u32, 3, 6, 7, 10] {
        let perfect = (1usize << d) - 1;
        sizes.extend([perfect - 1, perfect, perfect + 1]);
    }
    for b in BTREE_BS {
        let k = b + 1;
        for m in 1..=3u32 {
            let perfect = k.pow(m) - 1;
            if perfect > 2500 {
                break;
            }
            sizes.extend([
                perfect.saturating_sub(1),
                perfect,
                perfect + 1,
                perfect + b,
                perfect + b + 1,
            ]);
        }
    }
    sizes.sort_unstable();
    sizes.dedup();
    sizes.retain(|&n| n <= 3000);
    sizes
}

/// Key multisets for a given size: distinct strided keys, heavy
/// duplication, all-equal, and seeded-PRNG draws from a small universe
/// (guaranteeing collisions).
fn key_sets(n: usize, rng: &mut StdRng) -> Vec<Vec<u64>> {
    let mut sets = Vec::new();
    sets.push((0..n as u64).map(|x| 3 * x + 5).collect());
    sets.push((0..n as u64).map(|x| x / 3).collect()); // runs of 3
    sets.push(vec![42u64; n]); // all equal
    if n > 0 {
        let universe = (n as u64 / 2).max(1);
        let mut random: Vec<u64> = (0..n).map(|_| rng.gen_range(0..universe * 3)).collect();
        random.sort_unstable();
        sets.push(random);
    }
    sets
}

/// Probes covering every stored key, its neighbors, the extremes, and
/// seeded random values.
fn probes(sorted: &[u64], rng: &mut StdRng) -> Vec<u64> {
    let mut probes = vec![0u64, 1, u64::MAX / 2];
    for &k in sorted.iter().take(200) {
        probes.extend([k.saturating_sub(1), k, k + 1]);
    }
    if let (Some(&lo), Some(&hi)) = (sorted.first(), sorted.last()) {
        probes.extend([lo.saturating_sub(2), hi + 2]);
        for _ in 0..100 {
            probes.push(rng.gen_range(lo.saturating_sub(3)..hi + 4));
        }
    }
    probes
}

/// Check every operation of one (kind, key multiset) combination
/// against the oracle and across tiers.
fn check_all_ops(sorted: &[u64], kind: QueryKind, layout: Option<Layout>, rng: &mut StdRng) {
    let mut data = sorted.to_vec();
    if let Some(l) = layout {
        if !data.is_empty() {
            permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
        }
    }
    let s = Searcher::new(&data, kind);
    let n = sorted.len();
    let probes = probes(sorted, rng);
    let tag = |p: u64| format!("n={n} {kind:?} probe={p}");

    // --- point ops vs oracle ---
    for &p in &probes {
        let oracle_rank = sorted.partition_point(|x| *x < p);
        let oracle_has = sorted.binary_search(&p).is_ok();

        let hit = s.search(&p);
        assert_eq!(hit.is_some(), oracle_has, "search {}", tag(p));
        if let Some(pos) = hit {
            assert_eq!(data[pos], p, "search position {}", tag(p));
        }
        assert_eq!(s.contains(&p), oracle_has, "contains {}", tag(p));

        // rank = count strictly smaller (duplicates not self-counting).
        assert_eq!(s.rank(&p), oracle_rank, "rank {}", tag(p));

        // rank_upper = count <= probe, so the gap is the multiplicity.
        let oracle_upper = sorted.partition_point(|x| *x <= p);
        assert_eq!(s.rank_upper(&p), oracle_upper, "rank_upper {}", tag(p));

        // lower_bound = slot of the sorted-order-first key >= probe.
        let lb = s.lower_bound(&p);
        assert_eq!(
            lb.map(|pos| data[pos]),
            sorted.get(oracle_rank).copied(),
            "lower_bound value {}",
            tag(p)
        );

        // successor/predecessor skip duplicates of the probe entirely.
        assert_eq!(
            s.successor(&p).map(|pos| data[pos]),
            sorted.get(oracle_upper).copied(),
            "successor {}",
            tag(p)
        );
        assert_eq!(
            s.predecessor(&p).map(|pos| data[pos]),
            oracle_rank.checked_sub(1).map(|r| sorted[r]),
            "predecessor {}",
            tag(p)
        );
    }

    // --- batch tiers: oracle + bit-identity with the scalar loop ---
    let scalar_search = s.batch_search_seq(&probes);
    assert_eq!(
        s.batch_search_pipelined(&probes),
        scalar_search,
        "batch_search_pipelined n={n} {kind:?}"
    );
    assert_eq!(
        s.batch_search(&probes),
        scalar_search,
        "batch_search n={n} {kind:?}"
    );

    let scalar_rank = s.batch_rank_seq(&probes);
    assert_eq!(
        s.batch_rank_pipelined(&probes),
        scalar_rank,
        "batch_rank_pipelined n={n} {kind:?}"
    );
    assert_eq!(
        s.batch_rank(&probes),
        scalar_rank,
        "batch_rank n={n} {kind:?}"
    );

    let scalar_lb: Vec<Option<usize>> = probes.iter().map(|p| s.lower_bound(p)).collect();
    assert_eq!(
        s.batch_lower_bound(&probes),
        scalar_lb,
        "batch_lower_bound n={n} {kind:?}"
    );

    assert_eq!(
        s.batch_successor(&probes),
        s.batch_successor_seq(&probes),
        "batch_successor n={n} {kind:?}"
    );
    assert_eq!(
        s.batch_predecessor(&probes),
        s.batch_predecessor_seq(&probes),
        "batch_predecessor n={n} {kind:?}"
    );

    assert_eq!(
        s.batch_count(&probes),
        s.batch_count_seq(&probes),
        "batch_count n={n} {kind:?}"
    );

    // --- range ops: oracle + tier identity (inverted ranges included) ---
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for w in probes.windows(2) {
        ranges.push((w[0], w[1]));
    }
    for &p in probes.iter().take(40) {
        ranges.push((p, p)); // empty
        ranges.push((p + 3, p)); // inverted
    }
    for &(lo, hi) in &ranges {
        let expect = sorted
            .partition_point(|x| *x < hi)
            .saturating_sub(sorted.partition_point(|x| *x < lo));
        assert_eq!(
            s.range_count(&lo, &hi),
            expect,
            "range_count [{lo},{hi}) n={n} {kind:?}"
        );
    }
    assert_eq!(
        s.batch_range_count(&ranges),
        s.batch_range_count_seq(&ranges),
        "batch_range_count n={n} {kind:?}"
    );
}

#[test]
fn differential_sweep_small_sizes() {
    let mut rng = StdRng::seed_from_u64(0xd1ff);
    for n in adversarial_sizes() {
        if n > 130 {
            continue;
        }
        for keys in key_sets(n, &mut rng) {
            for (kind, layout) in kinds() {
                check_all_ops(&keys, kind, layout, &mut rng);
            }
        }
    }
}

#[test]
fn differential_sweep_large_sizes() {
    let mut rng = StdRng::seed_from_u64(0xd1ff + 1);
    for n in adversarial_sizes() {
        if n <= 130 {
            continue;
        }
        for keys in key_sets(n, &mut rng) {
            for (kind, layout) in kinds() {
                check_all_ops(&keys, kind, layout, &mut rng);
            }
        }
    }
}

/// Randomized sizes (not just the adversarial grid), PRNG key multisets
/// with heavy duplication, all kinds.
#[test]
fn differential_random_sizes() {
    let mut rng = StdRng::seed_from_u64(0x5eed5);
    for _case in 0..12 {
        let n = rng.gen_range(1usize..2000);
        for keys in key_sets(n, &mut rng) {
            for (kind, layout) in kinds() {
                check_all_ops(&keys, kind, layout, &mut rng);
            }
        }
    }
}

/// Batches that straddle the pipeline window and the parallel chunking
/// grain must stay bit-identical to scalar (off-by-one window drain
/// bugs live here).
#[test]
fn differential_batch_length_boundaries() {
    let mut rng = StdRng::seed_from_u64(0xba7c4);
    let n = 1023usize; // perfect
    let sorted: Vec<u64> = (0..n as u64).map(|x| 2 * x).collect();
    for (kind, layout) in kinds() {
        let mut data = sorted.clone();
        if let Some(l) = layout {
            permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
        }
        let s = Searcher::new(&data, kind);
        for batch_len in [0usize, 1, 2, 15, 16, 17, 31, 32, 33, 63, 65, 127, 129, 1000] {
            let keys: Vec<u64> = (0..batch_len)
                .map(|_| rng.gen_range(0..2 * n as u64 + 2))
                .collect();
            assert_eq!(
                s.batch_search_pipelined(&keys),
                s.batch_search_seq(&keys),
                "{kind:?} batch_len={batch_len}"
            );
            assert_eq!(
                s.batch_search(&keys),
                s.batch_search_seq(&keys),
                "{kind:?} batch_len={batch_len}"
            );
            assert_eq!(
                s.batch_rank_pipelined(&keys),
                s.batch_rank_seq(&keys),
                "{kind:?} batch_len={batch_len}"
            );
            assert_eq!(
                s.batch_count(&keys),
                s.batch_count_seq(&keys),
                "{kind:?} batch_len={batch_len}"
            );
        }
    }
}

/// Reversed-bound contract: `range_count(lo, hi)` with `lo > hi`
/// describes an empty interval and yields 0 on every facade, every
/// layout, every tier — never a panic (debug profile included, where
/// an unchecked `rank(hi) - rank(lo)` would overflow-panic instead).
#[test]
fn reversed_range_bounds_yield_zero() {
    use implicit_search_trees::{StaticIndex, StaticMap};
    let n = 500usize;
    let sorted: Vec<u64> = (0..n as u64).map(|x| 2 * x + 1).collect();
    // Extremes, interior points, off-by-one around stored keys.
    let bounds: Vec<(u64, u64)> = vec![
        (u64::MAX, 0),
        (u64::MAX, u64::MAX - 1),
        (1, 0),
        (2, 1),
        (500, 499),
        (999, 3),
        (1000, 999),
        (42, 42), // empty, not reversed
    ];
    for (kind, layout) in kinds() {
        let mut data = sorted.clone();
        if let Some(l) = layout {
            permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
        }
        let s = Searcher::new(&data, kind);
        for &(lo, hi) in &bounds {
            assert_eq!(s.range_count(&lo, &hi), 0, "{kind:?} [{lo},{hi})");
        }
        assert_eq!(
            s.batch_range_count(&bounds),
            vec![0; bounds.len()],
            "{kind:?}"
        );
        // The owning facades share the contract.
        let index =
            StaticIndex::build_for_kind(sorted.clone(), kind, Algorithm::CycleLeader).unwrap();
        let map =
            StaticMap::build_for_kind(sorted.clone(), sorted.clone(), kind, Algorithm::CycleLeader)
                .unwrap();
        for &(lo, hi) in &bounds {
            assert_eq!(index.range_count(&lo, &hi), 0, "{kind:?} [{lo},{hi})");
            assert_eq!(map.range_count(&lo, &hi), 0, "{kind:?} [{lo},{hi})");
        }
        assert_eq!(index.batch_range_count(&bounds), vec![0; bounds.len()]);
        assert_eq!(map.batch_range_count(&bounds), vec![0; bounds.len()]);
    }
}

/// The const-width wide kernel must be **bit-identical** to the runtime
/// `BtreeNav` at the same `b` — same `Option<usize>` positions out of
/// every op and tier, across non-perfect sizes, heavy duplication, and
/// batch boundaries. `Searcher::new` is the wide route (pinned by
/// `is_wide`), `Searcher::new_runtime` forces the general path over the
/// very same layout buffer.
#[test]
fn wide_kernel_bit_identical_to_runtime() {
    let mut rng = StdRng::seed_from_u64(0x51de);
    for b in [8usize, 16] {
        let kind = QueryKind::Btree(b);
        let layout = Layout::Btree { b };
        // Perfect node counts ± 1, sizes straddling the overflow node,
        // and arbitrary non-perfect sizes.
        let perfect = (b + 1) * (b + 1) - 1;
        for n in [
            1,
            b - 1,
            b,
            b + 1,
            perfect - 1,
            perfect,
            perfect + 1,
            perfect + b,
            1000,
            2047,
        ] {
            for sorted in key_sets(n, &mut rng) {
                let mut data = sorted.clone();
                permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
                let wide = Searcher::new(&data, kind);
                let runtime = Searcher::new_runtime(&data, kind);
                assert!(wide.is_wide(), "b={b}: u64 keys must take the wide kernel");
                assert!(!runtime.is_wide(), "new_runtime must stay general");
                let probes = probes(&sorted, &mut rng);
                for p in &probes {
                    let t = format!("b={b} n={n} probe={p}");
                    assert_eq!(wide.search(p), runtime.search(p), "search {t}");
                    assert_eq!(wide.rank(p), runtime.rank(p), "rank {t}");
                    assert_eq!(wide.rank_upper(p), runtime.rank_upper(p), "rank_upper {t}");
                    assert_eq!(
                        wide.lower_bound(p),
                        runtime.lower_bound(p),
                        "lower_bound {t}"
                    );
                    assert_eq!(wide.successor(p), runtime.successor(p), "successor {t}");
                    assert_eq!(
                        wide.predecessor(p),
                        runtime.predecessor(p),
                        "predecessor {t}"
                    );
                }
                // Batch tiers, including lengths around the pipeline
                // window drain.
                for len in [1usize, 15, 16, 17, 63, 65, probes.len()] {
                    let chunk = &probes[..len.min(probes.len())];
                    let t = format!("b={b} n={n} len={len}");
                    assert_eq!(
                        wide.batch_search_pipelined(chunk),
                        runtime.batch_search_pipelined(chunk),
                        "batch_search {t}"
                    );
                    assert_eq!(
                        wide.batch_rank_pipelined(chunk),
                        runtime.batch_rank_pipelined(chunk),
                        "batch_rank {t}"
                    );
                }
                let ranges: Vec<(u64, u64)> = probes.windows(2).map(|w| (w[0], w[1])).collect();
                assert_eq!(
                    wide.batch_range_count(&ranges),
                    runtime.batch_range_count(&ranges),
                    "batch_range_count b={b} n={n}"
                );
            }
        }
    }
    // Non-SimdKey key types never take the wide route, even at a
    // compiled width.
    let data: Vec<(u64, u64)> = (0..100).map(|x| (x, x)).collect();
    let mut tree = data.clone();
    permute_in_place(&mut tree, Layout::Btree { b: 8 }, Algorithm::CycleLeader).unwrap();
    assert!(!Searcher::new(&tree, QueryKind::Btree(8)).is_wide());
    // Non-compiled widths stay runtime for SIMD keys too.
    let mut seven: Vec<u64> = (0..100).collect();
    permute_in_place(&mut seven, Layout::Btree { b: 7 }, Algorithm::CycleLeader).unwrap();
    assert!(!Searcher::new(&seven, QueryKind::Btree(7)).is_wide());
}

/// Duplicate-key contract, spelled out on a hand-checkable multiset.
#[test]
fn duplicate_key_contract() {
    // sorted: [3, 3, 3, 7, 7, 9]
    let sorted = vec![3u64, 3, 3, 7, 7, 9];
    for (kind, layout) in kinds() {
        let mut data = sorted.clone();
        if let Some(l) = layout {
            permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
        }
        let s = Searcher::new(&data, kind);
        // rank = strictly smaller.
        assert_eq!(s.rank(&3), 0, "{kind:?}");
        assert_eq!(s.rank(&4), 3, "{kind:?}");
        assert_eq!(s.rank(&7), 3, "{kind:?}");
        assert_eq!(s.rank(&8), 5, "{kind:?}");
        assert_eq!(s.rank(&10), 6, "{kind:?}");
        // search returns *some* matching slot.
        for k in [3u64, 7, 9] {
            let pos = s.search(&k).unwrap();
            assert_eq!(data[pos], k, "{kind:?}");
        }
        assert!(!s.contains(&5), "{kind:?}");
        // lower_bound lands on a slot holding the first key >= probe.
        assert_eq!(s.lower_bound(&0).map(|p| data[p]), Some(3), "{kind:?}");
        assert_eq!(s.lower_bound(&7).map(|p| data[p]), Some(7), "{kind:?}");
        assert_eq!(s.lower_bound(&8).map(|p| data[p]), Some(9), "{kind:?}");
        assert_eq!(s.lower_bound(&10), None, "{kind:?}");
        // range_count counts with multiplicity.
        assert_eq!(s.range_count(&3, &8), 5, "{kind:?}");
        assert_eq!(s.range_count(&3, &4), 3, "{kind:?}");
        assert_eq!(s.range_count(&4, &7), 0, "{kind:?}");
    }
}
