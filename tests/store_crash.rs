//! Crash and corruption fault injection for the durability layer.
//!
//! The harness drives a deterministic workload against a persistent
//! [`DynamicMap`] on [`MemVfs`] and kills the write stream at every
//! byte offset of the schedule (strided in the default run; byte-exact
//! under `IST_FUZZ_LONG=1`), under both disk models ([`CrashModel`]):
//! `Torn` keeps unsynced bytes, `DropUnsynced` rolls every file back to
//! its last fsync. After each simulated power cycle the directory is
//! reopened and the recovered state must be **exactly** the committed
//! prefix `committed[j]` for some `j` in `[acked, attempted]`:
//!
//! * never less than `acked` — an acknowledged (fsynced) write is never
//!   lost, the core durability promise;
//! * never more than `attempted` — recovery cannot fabricate writes;
//! * never a state outside the committed sequence — no torn mixtures.
//!
//! A second sweep crashes the *recovery itself* at every offset and
//! reopens again: recovery must be idempotent under repeated crashes.
//! Corruption injection (bit flips and truncations over every file of a
//! cleanly-closed store) must yield a typed [`StoreError`] or a valid
//! committed state — never a panic, never an invented state.

use std::collections::BTreeMap;
use std::sync::Arc;

use implicit_search_trees::{
    Algorithm, CompactionMode, CrashModel, DynamicMap, FsyncPolicy, MemVfs, QueryKind, StoreConfig,
};

/// Small key universe: overwrites, deletes of absent keys, and
/// re-inserts over tombstones are the common case.
const UNIVERSE: u64 = 24;
/// Tiny buffer: the workload crosses many seal and compaction
/// boundaries, so the sweep hits every phase of the seal/install
/// protocols.
const CAP: usize = 4;
/// Keys inserted before `persist_to` — a multiple of `CAP`, so the
/// buffer is empty at persist time and the WAL-record count maps 1:1
/// onto workload ops (asserted in the dry run).
const PREPOP: u64 = 8;

fn long_mode() -> bool {
    std::env::var_os("IST_FUZZ_LONG").is_some()
}

/// One workload step == exactly one WAL record (batches are single
/// records; none are empty).
#[derive(Debug, Clone)]
enum Wop {
    Put(u64, u64),
    Del(u64),
    BatchPut(Vec<(u64, u64)>),
    BatchDel(Vec<u64>),
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Deterministic mixed workload: scalar puts/deletes with periodic
/// multi-key batches (which log one delta record each).
fn workload(n: usize, seed: u64) -> Vec<Wop> {
    let mut s = seed;
    (0..n)
        .map(|i| {
            let k = lcg(&mut s) % UNIVERSE;
            match lcg(&mut s) % 10 {
                0..=4 => Wop::Put(k, i as u64),
                5..=7 => Wop::Del(k),
                8 => Wop::BatchPut(
                    (0..3)
                        .map(|j| (lcg(&mut s) % UNIVERSE, ((i as u64) << 8) | j))
                        .collect(),
                ),
                _ => Wop::BatchDel((0..3).map(|_| lcg(&mut s) % UNIVERSE).collect()),
            }
        })
        .collect()
}

fn apply_map(map: &mut DynamicMap<u64, u64>, op: &Wop) {
    match op {
        Wop::Put(k, v) => {
            map.insert(*k, *v);
        }
        Wop::Del(k) => {
            map.remove(k);
        }
        Wop::BatchPut(pairs) => {
            map.batch_insert(pairs.clone());
        }
        Wop::BatchDel(keys) => {
            map.batch_remove(keys);
        }
    }
}

fn apply_oracle(oracle: &mut BTreeMap<u64, u64>, op: &Wop) {
    match op {
        Wop::Put(k, v) => {
            oracle.insert(*k, *v);
        }
        Wop::Del(k) => {
            oracle.remove(k);
        }
        Wop::BatchPut(pairs) => {
            for (k, v) in pairs {
                oracle.insert(*k, *v);
            }
        }
        Wop::BatchDel(keys) => {
            for k in keys {
                oracle.remove(k);
            }
        }
    }
}

/// `committed[j]` = the exact live state after the prepopulation plus
/// the first `j` workload records.
fn committed_states(ops: &[Wop]) -> Vec<BTreeMap<u64, u64>> {
    let mut oracle: BTreeMap<u64, u64> = (0..PREPOP).map(|k| (k, k)).collect();
    let mut states = Vec::with_capacity(ops.len() + 1);
    states.push(oracle.clone());
    for op in ops {
        apply_oracle(&mut oracle, op);
        states.push(oracle.clone());
    }
    states
}

fn cfg_on(vfs: &MemVfs, fsync: FsyncPolicy) -> StoreConfig {
    StoreConfig::with_vfs(Arc::new(vfs.clone())).fsync(fsync)
}

/// What one workload run observed before the injected crash (if any).
struct Drive {
    /// `persist_to` returned `Ok`: the initial manifest is durable and
    /// every later crash must leave a recoverable directory.
    persist_ok: bool,
    /// Records whose logging was attempted (the op that hit the poison
    /// included) — the recovery upper bound.
    attempted: usize,
    /// Crash-durable records per the engine — the recovery lower bound.
    acked: u64,
}

/// Run prepopulation + persist + workload until completion or until the
/// armed write budget kills the store. Never panics: a poisoned sink
/// rejects writes, it does not abort.
fn drive(vfs: &MemVfs, fsync: FsyncPolicy, ops: &[Wop]) -> Drive {
    let mut map: DynamicMap<u64, u64> =
        DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, CAP)
            .with_compaction_mode(CompactionMode::Inline);
    for k in 0..PREPOP {
        map.insert(k, k);
    }
    if map.persist_to("db", cfg_on(vfs, fsync)).is_err() {
        return Drive {
            persist_ok: false,
            attempted: 0,
            acked: 0,
        };
    }
    assert_eq!(
        map.acked_records(),
        0,
        "buffer must be empty at persist (PREPOP a multiple of CAP), \
         so records map 1:1 onto workload ops"
    );
    for (i, op) in ops.iter().enumerate() {
        apply_map(&mut map, op);
        if map.store_error().is_some() {
            return Drive {
                persist_ok: true,
                attempted: i + 1,
                acked: map.acked_records(),
            };
        }
    }
    Drive {
        persist_ok: true,
        attempted: ops.len(),
        acked: map.acked_records(),
    }
}

/// Extract the full live state of a recovered map.
fn state_of(map: &DynamicMap<u64, u64>) -> BTreeMap<u64, u64> {
    (0..UNIVERSE + 8)
        .filter_map(|k| map.get(&k).map(|v| (k, *v)))
        .collect()
}

/// Assert `map` is exactly `committed[j]` for some `j` in `[lo, hi]`,
/// including order statistics (which exercise the recovered weight
/// prefixes, not just the key/value sections). Returns `j`.
fn assert_committed_state(
    map: &DynamicMap<u64, u64>,
    committed: &[BTreeMap<u64, u64>],
    lo: usize,
    hi: usize,
    ctx: &str,
) -> usize {
    let got = state_of(map);
    let Some(j) = (lo..=hi).find(|&j| committed[j] == got) else {
        panic!(
            "{ctx}: recovered state matches no committed prefix in [{lo}, {hi}]\n\
             recovered ({} keys) = {got:?}\n\
             committed[{lo}] = {:?}\ncommitted[{hi}] = {:?}",
            got.len(),
            committed[lo],
            committed[hi]
        );
    };
    let oracle = &committed[j];
    assert_eq!(map.len(), oracle.len(), "{ctx}: len at j={j}");
    for k in 0..UNIVERSE + 2 {
        assert_eq!(
            map.rank(&k),
            oracle.range(..k).count(),
            "{ctx}: rank({k}) at j={j}"
        );
        assert_eq!(
            map.successor(&k).map(|(a, b)| (*a, *b)),
            oracle
                .range((std::ops::Bound::Excluded(k), std::ops::Bound::Unbounded))
                .next()
                .map(|(a, b)| (*a, *b)),
            "{ctx}: successor({k}) at j={j}"
        );
    }
    j
}

/// Kill the write stream at byte offset `budget`, power-cycle under
/// `model`, reopen, and check the recovery contract.
fn run_one_crash(
    budget: u64,
    model: CrashModel,
    fsync: FsyncPolicy,
    ops: &[Wop],
    committed: &[BTreeMap<u64, u64>],
) {
    let vfs = MemVfs::new();
    vfs.set_write_budget(Some(budget));
    let d = drive(&vfs, fsync, ops);
    vfs.power_cycle(model);
    let ctx = format!("budget={budget} model={model:?} fsync={fsync:?}");
    match DynamicMap::<u64, u64>::open_with("db", cfg_on(&vfs, fsync)) {
        Ok(mut rec) => {
            assert!(
                d.persist_ok,
                "{ctx}: open succeeded though persist_to never completed"
            );
            assert!(rec.store_error().is_none(), "{ctx}: recovered map poisoned");
            let acked = usize::try_from(d.acked).unwrap();
            assert!(acked <= d.attempted, "{ctx}: acked beyond attempted");
            assert_committed_state(&rec, committed, acked, d.attempted, &ctx);
            // The recovered map must keep working (and keep logging).
            rec.insert(UNIVERSE + 100, 1);
            assert_eq!(
                rec.get(&(UNIVERSE + 100)),
                Some(&1),
                "{ctx}: post-open write"
            );
            assert!(rec.store_error().is_none(), "{ctx}: post-open poison");
        }
        Err(e) => {
            // Only acceptable before the first manifest ever landed: no
            // write was acknowledged yet, so nothing was lost.
            assert!(
                !d.persist_ok,
                "{ctx}: open failed after a durable persist: {e}"
            );
        }
    }
}

fn sweep(model: CrashModel, fsync: FsyncPolicy, seed: u64) {
    let ops = workload(48, seed);
    let committed = committed_states(&ops);
    // Dry run (failpoint disarmed) measures the schedule's write volume
    // and validates the record accounting the sweep depends on.
    let dry = MemVfs::new();
    let d = drive(&dry, fsync, &ops);
    assert!(d.persist_ok && d.attempted == ops.len(), "dry run crashed");
    if fsync == FsyncPolicy::Always {
        assert_eq!(
            d.acked,
            ops.len() as u64,
            "with fsync=always every completed record is acked"
        );
    }
    let total = dry.total_written();
    let stride = if long_mode() {
        1
    } else {
        (total / 1000).max(1)
    };
    let mut budget = 0u64;
    while budget <= total {
        run_one_crash(budget, model, fsync, &ops, &committed);
        budget += stride;
    }
}

#[test]
fn crash_sweep_torn_fsync_always() {
    sweep(CrashModel::Torn, FsyncPolicy::Always, 0xC0A5);
}

#[test]
fn crash_sweep_drop_unsynced_fsync_always() {
    sweep(CrashModel::DropUnsynced, FsyncPolicy::Always, 0xC0A5);
}

/// Batched fsync: unacked records may be lost (DropUnsynced) or survive
/// (Torn) — recovery must land inside exactly that window.
#[test]
fn crash_sweep_torn_fsync_every_n() {
    sweep(CrashModel::Torn, FsyncPolicy::EveryN(3), 0xE7E7);
}

#[test]
fn crash_sweep_drop_unsynced_fsync_every_n() {
    sweep(CrashModel::DropUnsynced, FsyncPolicy::EveryN(3), 0xE7E7);
}

/// Crash the *recovery* at every byte offset, then recover again: the
/// open path (WAL checkpoint + manifest rotation + cleanup) must be
/// idempotent under repeated crashes, and the doubly-recovered state
/// must satisfy the same `[acked, attempted]` contract as the first.
#[test]
fn recovery_is_idempotent_under_repeated_crashes() {
    let fsync = FsyncPolicy::Always;
    let ops = workload(48, 0xD0B1E);
    let committed = committed_states(&ops);
    // First crash: kill the workload two-thirds through its schedule.
    let dry = MemVfs::new();
    let full = drive(&dry, fsync, &ops);
    assert!(full.persist_ok);
    let first_budget = dry.total_written() * 2 / 3;

    let vfs = MemVfs::new();
    vfs.set_write_budget(Some(first_budget));
    let d = drive(&vfs, fsync, &ops);
    assert!(d.persist_ok, "2/3 budget must outlive persist_to");
    vfs.power_cycle(CrashModel::Torn);
    let wounded = vfs.dump();
    let acked = usize::try_from(d.acked).unwrap();

    // Measure how many bytes a clean recovery writes.
    let before = vfs.total_written();
    drop(DynamicMap::<u64, u64>::open_with("db", cfg_on(&vfs, fsync)).expect("clean recovery"));
    let recovery_bytes = vfs.total_written() - before;

    let stride = if long_mode() {
        1
    } else {
        (recovery_bytes / 300).max(1)
    };
    let mut budget = 0u64;
    while budget <= recovery_bytes {
        vfs.restore(&wounded);
        vfs.set_write_budget(Some(budget));
        let ctx = format!("recovery crash at budget={budget}");
        match DynamicMap::<u64, u64>::open_with("db", cfg_on(&vfs, fsync)) {
            Ok(rec) => {
                // Budget outlived the checkpoint: a complete recovery.
                assert_committed_state(&rec, &committed, acked, d.attempted, &ctx);
            }
            Err(_) => {
                // Recovery died mid-checkpoint; the next attempt must
                // still succeed and land in the same window.
                vfs.power_cycle(CrashModel::Torn);
                let rec = DynamicMap::<u64, u64>::open_with("db", cfg_on(&vfs, fsync))
                    .unwrap_or_else(|e| panic!("{ctx}: second recovery failed: {e}"));
                assert_committed_state(&rec, &committed, acked, d.attempted, &ctx);
            }
        }
        budget += stride;
    }
}

/// A cleanly-flushed store whose every file is then corrupted in place.
fn clean_store(fsync: FsyncPolicy) -> (MemVfs, Vec<BTreeMap<u64, u64>>) {
    let ops = workload(48, 0xF11F);
    let committed = committed_states(&ops);
    let vfs = MemVfs::new();
    let mut map: DynamicMap<u64, u64> =
        DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, CAP)
            .with_compaction_mode(CompactionMode::Inline);
    for k in 0..PREPOP {
        map.insert(k, k);
    }
    map.persist_to("db", cfg_on(&vfs, fsync)).unwrap();
    for op in &ops {
        apply_map(&mut map, op);
    }
    assert!(map.store_error().is_none());
    map.flush().unwrap();
    (vfs, committed)
}

/// Property shared by both corruptors: open yields a typed error or a
/// valid committed state — never a panic, never an invented state.
fn check_corrupted_open(vfs: &MemVfs, committed: &[BTreeMap<u64, u64>], ctx: &str) {
    if let Ok(rec) = DynamicMap::<u64, u64>::open_with("db", cfg_on(vfs, FsyncPolicy::Always)) {
        // E.g. a flip in the WAL tail that mimics a torn record: the
        // recovered state must still be SOME committed prefix.
        assert_committed_state(&rec, committed, 0, committed.len() - 1, ctx);
    }
}

#[test]
fn bit_flips_yield_typed_errors_or_valid_states() {
    let (vfs, committed) = clean_store(FsyncPolicy::Always);
    let snapshot = vfs.dump();
    // Coprime stride walks every bit position class across files.
    let stride = if long_mode() { 1 } else { 13 };
    for (path, bytes) in &snapshot {
        let mut bit = 0u64;
        while bit < bytes.len() as u64 * 8 {
            vfs.restore(&snapshot);
            assert!(vfs.flip_bit(path, bit), "flip in range");
            check_corrupted_open(
                &vfs,
                &committed,
                &format!("flip bit {bit} of {}", path.display()),
            );
            bit += stride;
        }
    }
}

#[test]
fn truncations_yield_typed_errors_or_valid_states() {
    let (vfs, committed) = clean_store(FsyncPolicy::Always);
    let snapshot = vfs.dump();
    let stride = if long_mode() { 1 } else { 17 };
    for (path, bytes) in &snapshot {
        let len = bytes.len() as u64;
        let mut cuts: Vec<u64> = (0..len).step_by(stride).collect();
        cuts.extend([0, 1, len.saturating_sub(1)]);
        for cut in cuts {
            vfs.restore(&snapshot);
            assert!(vfs.truncate(path, cut), "cut in range");
            check_corrupted_open(
                &vfs,
                &committed,
                &format!("truncate {} to {cut}", path.display()),
            );
        }
    }
}

/// The poison latch: after the store dies, mutations are rejected (not
/// applied, not panicking), reads keep answering from memory, and the
/// error is reported until the map is reopened.
#[test]
fn poisoned_store_rejects_writes_and_keeps_reads() {
    let vfs = MemVfs::new();
    let mut map: DynamicMap<u64, u64> =
        DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, CAP)
            .with_compaction_mode(CompactionMode::Inline);
    map.persist_to("db", cfg_on(&vfs, FsyncPolicy::Always))
        .unwrap();
    for k in 0..6u64 {
        assert!(!map.insert(k, k));
    }
    let len_before = map.len();
    // Kill the disk permanently (budget 0, never power-cycled).
    vfs.set_write_budget(Some(0));
    assert!(!map.insert(100, 1), "rejected write must report no-replace");
    assert!(map.store_error().is_some(), "first failure latches");
    assert_eq!(map.len(), len_before, "rejected write was not applied");
    assert!(!map.remove(&0), "removes rejected too");
    assert_eq!(map.batch_insert(vec![(101, 1), (102, 2)]), 0);
    assert_eq!(map.len(), len_before);
    assert_eq!(map.get(&0), Some(&0), "reads still served from memory");
    assert!(map.flush().is_err(), "flush surfaces the latched error");
    // acked_records stays frozen at the pre-poison watermark.
    assert_eq!(map.acked_records(), 6);
}
