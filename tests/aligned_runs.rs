//! Run-storage alignment contract: every tree-layout `StaticIndex` /
//! `StaticMap` buffer starts on a cache-line boundary, so the "one node
//! = one memory transfer" arithmetic of the layouts is physically true,
//! not just true modulo where the allocator happened to put the `Vec`.

use implicit_search_trees::{Algorithm, Layout, QueryKind, StaticIndex, StaticMap};

const LINE: usize = 64;

fn tree_kinds() -> Vec<QueryKind> {
    vec![
        QueryKind::Bst,
        QueryKind::BstPrefetch,
        QueryKind::Btree(3),
        QueryKind::Btree(8),
        QueryKind::Btree(16),
        QueryKind::Veb,
    ]
}

#[test]
fn tree_layout_runs_are_cache_line_aligned() {
    for kind in tree_kinds() {
        for n in [1usize, 7, 100, 1 << 12] {
            let keys: Vec<u64> = (0..n as u64).rev().collect();
            let index = StaticIndex::build_for_kind(keys, kind, Algorithm::CycleLeader).unwrap();
            assert!(index.buffer_alignment() >= LINE, "{kind:?} n={n}");
            assert_eq!(
                index.as_slice().as_ptr() as usize % LINE,
                0,
                "{kind:?} n={n}: key buffer not line-aligned"
            );

            let keys: Vec<u64> = (0..n as u64).collect();
            let vals: Vec<u32> = (0..n as u32).collect();
            let map = StaticMap::build_presorted(keys, vals, kind, Algorithm::CycleLeader).unwrap();
            assert_eq!(
                map.keys().as_ptr() as usize % LINE,
                0,
                "{kind:?} n={n}: map key buffer not line-aligned"
            );
            assert_eq!(
                map.values().as_ptr() as usize % LINE,
                0,
                "{kind:?} n={n}: map value buffer not line-aligned"
            );
        }
    }
}

/// The sorted baseline adopts the caller's `Vec` zero-copy, so it only
/// promises the type's natural alignment — pinned here so a future
/// "just always scatter" change (which would cost the seal path its
/// zero-copy build) trips a test instead of sliding in silently.
#[test]
fn sorted_runs_reuse_the_callers_buffer() {
    let keys: Vec<u64> = (0..1000).collect();
    let p = keys.as_ptr();
    let index =
        StaticIndex::build_presorted(keys, QueryKind::Sorted, Algorithm::CycleLeader).unwrap();
    assert_eq!(
        index.as_slice().as_ptr(),
        p,
        "Sorted build must not relocate the key buffer"
    );
    assert_eq!(index.buffer_alignment(), core::mem::align_of::<u64>());
}

/// The default build path (`StaticIndex::build` with a width-8 B-tree
/// layout on `u64` keys) must land on the wide SIMD kernel — the
/// "default construction prefers the wide btree" half of the width
/// dispatch, checked end to end through the facade.
#[test]
fn default_build_routes_to_wide_kernel() {
    for (b, wide) in [(7usize, false), (8, true), (15, false), (16, true)] {
        let idx = StaticIndex::build((0..1000u64).collect(), Layout::Btree { b }).unwrap();
        assert_eq!(idx.searcher().is_wide(), wide, "u64 b={b}");
    }
    // Non-SimdKey keys stay on the runtime navigator at every width.
    let idx = StaticIndex::build(
        (0..1000u64).map(|x| (x, x)).collect::<Vec<_>>(),
        Layout::Btree { b: 8 },
    )
    .unwrap();
    assert!(!idx.searcher().is_wide(), "(u64,u64) b=8");
}
