//! Property-based tests (proptest) over the core invariants.

use implicit_search_trees::bits::{gcd, mod_inverse, mod_mul, rev_k};
use implicit_search_trees::gather::{
    equidistant_gather, extended_equidistant_gather, gather_len, reference_gather,
};
use implicit_search_trees::shuffle::{shuffle_mod, unshuffle_mod};
use implicit_search_trees::{
    permute_in_place, permute_in_place_seq, reference_permutation, Algorithm, Layout, Searcher,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rev_k is an involution and preserves high digits.
    #[test]
    fn rev_k_involution(k in 2u64..12, b in 0u32..6, i in 0u64..100_000) {
        let window = k.pow(b);
        prop_assume!(i < window * 50);
        let r = rev_k(k, b, i);
        prop_assert_eq!(rev_k(k, b, r), i);
        prop_assert_eq!(r / window, i / window);
    }

    /// Modular inverses invert.
    #[test]
    fn modular_inverse(m in 2u64..1_000_000, a in 1u64..1_000_000) {
        let a = a % m;
        prop_assume!(a != 0);
        match mod_inverse(a, m) {
            Some(inv) => prop_assert_eq!(mod_mul(a, inv, m), 1),
            None => prop_assert!(gcd(a, m) != 1),
        }
    }

    /// shuffle then unshuffle is the identity for arbitrary (k, m).
    #[test]
    fn shuffle_roundtrip(k in 1usize..9, m in 1usize..200) {
        let n = k * m;
        let orig: Vec<u32> = (0..n as u32).collect();
        let mut v = orig.clone();
        shuffle_mod(&mut v, k);
        unshuffle_mod(&mut v, k);
        prop_assert_eq!(v, orig);
    }

    /// The shuffle interleaves decks correctly (direct semantics check).
    #[test]
    fn shuffle_semantics(k in 2usize..7, m in 1usize..60) {
        let n = k * m;
        let orig: Vec<usize> = (0..n).collect();
        let mut v = orig.clone();
        shuffle_mod(&mut v, k);
        for l in 0..k {
            for j in 0..m {
                prop_assert_eq!(v[j * k + l], l * m + j);
            }
        }
    }

    /// Equidistant gather matches its out-of-place reference for
    /// arbitrary r <= l.
    #[test]
    fn gather_matches_reference(l in 1usize..40, r_frac in 0usize..41) {
        let r = r_frac.min(l);
        let n = gather_len(r, l);
        let orig: Vec<u32> = (0..n as u32).rev().collect();
        let expect = reference_gather(&orig, r, l);
        let mut got = orig;
        equidistant_gather(&mut got, r, l);
        prop_assert_eq!(got, expect);
    }

    /// Extended gather = stable partition by (i mod (b+1) == b).
    #[test]
    fn extended_gather_is_stable_partition(b in 1usize..6, m in 1u32..6) {
        let n = (b + 1).pow(m) - 1;
        prop_assume!(n <= 1 << 14);
        let orig: Vec<usize> = (0..n).collect();
        let mut got = orig.clone();
        extended_equidistant_gather(&mut got, b);
        let k = b + 1;
        let mut expect: Vec<usize> = (0..n).filter(|i| i % k == b).collect();
        expect.extend((0..n).filter(|i| i % k != b));
        prop_assert_eq!(got, expect);
    }

    /// Every construction output is a permutation of the input that
    /// matches the closed-form oracle, for arbitrary sizes.
    #[test]
    fn construction_is_correct_permutation(
        n in 1usize..3000,
        b in 1usize..10,
        algo_idx in 0usize..2,
        layout_idx in 0usize..3,
    ) {
        let layout = match layout_idx {
            0 => Layout::Bst,
            1 => Layout::Btree { b },
            _ => Layout::Veb,
        };
        let algo = Algorithm::ALL[algo_idx];
        let sorted: Vec<u64> = (0..n as u64).collect();
        let mut got = sorted.clone();
        permute_in_place_seq(&mut got, layout, algo).unwrap();
        let expect = reference_permutation(&sorted, layout);
        prop_assert_eq!(&got, &expect);
        // Permutation check: sorting recovers the input.
        let mut back = got;
        back.sort_unstable();
        prop_assert_eq!(back, sorted);
    }

    /// Searches over any permuted layout agree with binary search over
    /// the original sorted data, for hits and misses.
    #[test]
    fn search_agrees_with_sorted_baseline(
        n in 1usize..2000,
        b in 1usize..12,
        layout_idx in 0usize..3,
        probes in proptest::collection::vec(0u64..6000, 50),
    ) {
        let layout = match layout_idx {
            0 => Layout::Bst,
            1 => Layout::Btree { b },
            _ => Layout::Veb,
        };
        let sorted: Vec<u64> = (0..n as u64).map(|x| 3 * x).collect();
        let mut data = sorted.clone();
        permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
        let s = Searcher::for_layout(&data, layout);
        for probe in probes {
            prop_assert_eq!(
                s.contains(&probe),
                sorted.binary_search(&probe).is_ok(),
                "probe {}", probe
            );
        }
    }

    /// The found index always points at the key in the permuted array.
    #[test]
    fn found_indices_point_at_keys(n in 1usize..1500, key_idx in 0usize..1500) {
        prop_assume!(key_idx < n);
        let sorted: Vec<u64> = (0..n as u64).map(|x| 5 * x + 1).collect();
        let key = sorted[key_idx];
        for layout in [Layout::Bst, Layout::Btree { b: 4 }, Layout::Veb] {
            let mut data = sorted.clone();
            permute_in_place_seq(&mut data, layout, Algorithm::Involution).unwrap();
            let s = Searcher::for_layout(&data, layout);
            let pos = s.search(&key).expect("present key must be found");
            prop_assert_eq!(data[pos], key);
        }
    }
}
