//! Property-based tests over the core invariants.
//!
//! Each property is checked over a deterministic stream of randomized
//! inputs (sizes, branching factors, probes) drawn from the workspace's
//! seeded PRNG — the offline stand-in for a proptest harness. On failure
//! the assert message carries the generating parameters, which together
//! with the fixed seeds makes every counterexample reproducible.

use implicit_search_trees::bits::{gcd, mod_inverse, mod_mul, rev_k};
use implicit_search_trees::gather::{
    equidistant_gather, extended_equidistant_gather, gather_len, reference_gather,
};
use implicit_search_trees::shuffle::{shuffle_mod, unshuffle_mod};
use implicit_search_trees::{
    permute_in_place, permute_in_place_seq, reference_permutation, Algorithm, Layout, QueryKind,
    Searcher, StaticIndex,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

/// rev_k is an involution and preserves high digits.
#[test]
fn rev_k_involution() {
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for case in 0..CASES {
        let k = rng.gen_range(2u64..12);
        let b = rng.gen_range(0u64..6) as u32;
        let window = k.pow(b);
        let i = rng.gen_range(0..window * 50);
        let r = rev_k(k, b, i);
        assert_eq!(rev_k(k, b, r), i, "case {case}: k={k} b={b} i={i}");
        assert_eq!(r / window, i / window, "case {case}: k={k} b={b} i={i}");
    }
}

/// Modular inverses invert.
#[test]
fn modular_inverse() {
    let mut rng = StdRng::seed_from_u64(0xcafe);
    for case in 0..CASES {
        let m = rng.gen_range(2u64..1_000_000);
        let a = rng.gen_range(1u64..1_000_000) % m;
        if a == 0 {
            continue;
        }
        match mod_inverse(a, m) {
            Some(inv) => assert_eq!(mod_mul(a, inv, m), 1, "case {case}: a={a} m={m}"),
            None => assert_ne!(gcd(a, m), 1, "case {case}: a={a} m={m}"),
        }
    }
}

/// shuffle then unshuffle is the identity for arbitrary (k, m), and the
/// shuffle interleaves decks correctly (direct semantics check).
#[test]
fn shuffle_roundtrip_and_semantics() {
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for case in 0..CASES {
        let k = rng.gen_range(1usize..9);
        let m = rng.gen_range(1usize..200);
        let n = k * m;
        let orig: Vec<u32> = (0..n as u32).collect();
        let mut v = orig.clone();
        shuffle_mod(&mut v, k);
        if k >= 2 {
            for l in 0..k {
                for j in 0..m {
                    assert_eq!(
                        v[j * k + l] as usize,
                        l * m + j,
                        "case {case}: k={k} m={m} deck={l} offset={j}"
                    );
                }
            }
        }
        unshuffle_mod(&mut v, k);
        assert_eq!(v, orig, "case {case}: k={k} m={m} roundtrip");
    }
}

/// Equidistant gather matches its out-of-place reference for arbitrary
/// r <= l.
#[test]
fn gather_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xd00d);
    for case in 0..CASES {
        let l = rng.gen_range(1usize..40);
        let r = rng.gen_range(0usize..41).min(l);
        let n = gather_len(r, l);
        let orig: Vec<u32> = (0..n as u32).rev().collect();
        let expect = reference_gather(&orig, r, l);
        let mut got = orig;
        equidistant_gather(&mut got, r, l);
        assert_eq!(got, expect, "case {case}: r={r} l={l}");
    }
}

/// Extended gather = stable partition by (i mod (b+1) == b).
#[test]
fn extended_gather_is_stable_partition() {
    let mut rng = StdRng::seed_from_u64(0xace);
    for case in 0..CASES {
        let b = rng.gen_range(1usize..6);
        let m = rng.gen_range(1usize..6) as u32;
        let n = (b + 1).pow(m) - 1;
        if n > 1 << 14 {
            continue;
        }
        let orig: Vec<usize> = (0..n).collect();
        let mut got = orig.clone();
        extended_equidistant_gather(&mut got, b);
        let k = b + 1;
        let mut expect: Vec<usize> = (0..n).filter(|i| i % k == b).collect();
        expect.extend((0..n).filter(|i| i % k != b));
        assert_eq!(got, expect, "case {case}: b={b} m={m}");
    }
}

fn random_layout(rng: &mut StdRng, b: usize) -> Layout {
    match rng.gen_range(0usize..3) {
        0 => Layout::Bst,
        1 => Layout::Btree { b },
        _ => Layout::Veb,
    }
}

/// Every construction output is a permutation of the input that matches
/// the closed-form oracle, for arbitrary sizes.
#[test]
fn construction_is_correct_permutation() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..3000);
        let b = rng.gen_range(1usize..10);
        let layout = random_layout(&mut rng, b);
        let algo = Algorithm::ALL[rng.gen_range(0usize..2)];
        let sorted: Vec<u64> = (0..n as u64).collect();
        let mut got = sorted.clone();
        permute_in_place_seq(&mut got, layout, algo).unwrap();
        let expect = reference_permutation(&sorted, layout);
        assert_eq!(got, expect, "case {case}: n={n} {layout:?} {algo:?}");
        // Permutation check: sorting recovers the input.
        let mut back = got;
        back.sort_unstable();
        assert_eq!(back, sorted, "case {case}: n={n} {layout:?} {algo:?}");
    }
}

/// Searches over any permuted layout agree with binary search over the
/// original sorted data, for hits and misses.
#[test]
fn search_agrees_with_sorted_baseline() {
    let mut rng = StdRng::seed_from_u64(0xbead);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..2000);
        let b = rng.gen_range(1usize..12);
        let layout = random_layout(&mut rng, b);
        let sorted: Vec<u64> = (0..n as u64).map(|x| 3 * x).collect();
        let mut data = sorted.clone();
        permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
        let s = Searcher::for_layout(&data, layout);
        for _ in 0..50 {
            let probe = rng.gen_range(0u64..6000);
            assert_eq!(
                s.contains(&probe),
                sorted.binary_search(&probe).is_ok(),
                "case {case}: n={n} {layout:?} probe={probe}"
            );
        }
    }
}

/// The found index always points at the key in the permuted array.
#[test]
fn found_indices_point_at_keys() {
    let mut rng = StdRng::seed_from_u64(0xf00d);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..1500);
        let key_idx = rng.gen_range(0usize..n.max(1));
        let sorted: Vec<u64> = (0..n as u64).map(|x| 5 * x + 1).collect();
        let key = sorted[key_idx];
        for layout in [Layout::Bst, Layout::Btree { b: 4 }, Layout::Veb] {
            let mut data = sorted.clone();
            permute_in_place_seq(&mut data, layout, Algorithm::Involution).unwrap();
            let s = Searcher::for_layout(&data, layout);
            let pos = s
                .search(&key)
                .unwrap_or_else(|| panic!("case {case}: present key lost, n={n} {layout:?}"));
            assert_eq!(data[pos], key, "case {case}: n={n} {layout:?}");
        }
    }
}

fn query_kinds(b: usize) -> Vec<(QueryKind, Option<Layout>)> {
    vec![
        (QueryKind::Sorted, None),
        (QueryKind::Bst, Some(Layout::Bst)),
        (QueryKind::BstPrefetch, Some(Layout::Bst)),
        (QueryKind::Btree(b), Some(Layout::Btree { b })),
        (QueryKind::Veb, Some(Layout::Veb)),
    ]
}

/// `Searcher::rank` equals the sorted array's partition point for every
/// layout, over randomized (including decidedly non-perfect) sizes and
/// probes on, between, below, and above the stored keys.
#[test]
fn rank_matches_sorted_oracle() {
    let mut rng = StdRng::seed_from_u64(0x0a11);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..4000);
        let b = rng.gen_range(1usize..12);
        let stride = rng.gen_range(1u64..6);
        let offset = rng.gen_range(0u64..10);
        let sorted: Vec<u64> = (0..n as u64).map(|x| offset + stride * x).collect();
        for (kind, layout) in query_kinds(b) {
            let mut data = sorted.clone();
            if let Some(l) = layout {
                permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
            }
            let s = Searcher::new(&data, kind);
            for _ in 0..40 {
                let probe = rng.gen_range(0..offset + stride * (n as u64 + 2));
                let expect = sorted.partition_point(|x| *x < probe);
                assert_eq!(
                    s.rank(&probe),
                    expect,
                    "case {case}: n={n} {kind:?} probe={probe}"
                );
            }
        }
    }
}

/// `Searcher::lower_bound` returns the layout position of the successor
/// key (sorted-array oracle), or `None` past the maximum.
#[test]
fn lower_bound_matches_sorted_oracle() {
    let mut rng = StdRng::seed_from_u64(0x10b0);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..4000);
        let b = rng.gen_range(1usize..12);
        let sorted: Vec<u64> = (0..n as u64).map(|x| 4 * x + 2).collect();
        for (kind, layout) in query_kinds(b) {
            let mut data = sorted.clone();
            if let Some(l) = layout {
                permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
            }
            let s = Searcher::new(&data, kind);
            for _ in 0..40 {
                let probe = rng.gen_range(0..4 * (n as u64 + 2));
                let expect = sorted.get(sorted.partition_point(|x| *x < probe)).copied();
                assert_eq!(
                    s.lower_bound(&probe).map(|p| data[p]),
                    expect,
                    "case {case}: n={n} {kind:?} probe={probe}"
                );
            }
        }
    }
}

/// `batch_count` (parallel) and `batch_count_seq` agree with a scalar
/// count over the sorted baseline, over randomized non-perfect sizes.
#[test]
fn batch_count_matches_sorted_oracle() {
    let mut rng = StdRng::seed_from_u64(0xba7c);
    for case in 0..24 {
        let n = rng.gen_range(1usize..20_000);
        let b = rng.gen_range(1usize..12);
        let layout = random_layout(&mut rng, b);
        let sorted: Vec<u64> = (0..n as u64).map(|x| 2 * x).collect();
        let queries: Vec<u64> = (0..rng.gen_range(1usize..3000))
            .map(|_| rng.gen_range(0..2 * n as u64 + 4))
            .collect();
        let expect = queries
            .iter()
            .filter(|q| sorted.binary_search(q).is_ok())
            .count();
        let mut data = sorted.clone();
        permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
        let s = Searcher::for_layout(&data, layout);
        assert_eq!(
            s.batch_count_seq(&queries),
            expect,
            "case {case}: n={n} {layout:?} seq"
        );
        assert_eq!(
            s.batch_count(&queries),
            expect,
            "case {case}: n={n} {layout:?} par"
        );
    }
}

/// Every batched tier (pipelined, parallel) is bit-identical to the
/// scalar per-key loop, for randomized sizes, batch lengths, and key
/// multisets (duplicates included).
#[test]
fn batched_tiers_match_scalar_bitwise() {
    let mut rng = StdRng::seed_from_u64(0x9199);
    for case in 0..24 {
        let n = rng.gen_range(1usize..5000);
        let b = rng.gen_range(1usize..12);
        let dup = rng.gen_range(1u64..4); // 1 = distinct, >1 = duplicated
        let sorted: Vec<u64> = (0..n as u64).map(|x| x / dup).collect();
        let queries: Vec<u64> = (0..rng.gen_range(0usize..2000))
            .map(|_| rng.gen_range(0..n as u64 / dup + 3))
            .collect();
        for (kind, layout) in query_kinds(b) {
            let mut data = sorted.clone();
            if let Some(l) = layout {
                permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
            }
            let s = Searcher::new(&data, kind);
            let tag = format!("case {case}: n={n} {kind:?} q={}", queries.len());
            assert_eq!(
                s.batch_search_pipelined(&queries),
                s.batch_search_seq(&queries),
                "{tag} search pipelined"
            );
            assert_eq!(
                s.batch_search(&queries),
                s.batch_search_seq(&queries),
                "{tag} search parallel"
            );
            assert_eq!(
                s.batch_rank_pipelined(&queries),
                s.batch_rank_seq(&queries),
                "{tag} rank pipelined"
            );
            assert_eq!(
                s.batch_rank(&queries),
                s.batch_rank_seq(&queries),
                "{tag} rank parallel"
            );
        }
    }
}

/// `range_count` and `batch_range_count` equal the sorted oracle's rank
/// difference for arbitrary (including inverted) endpoints.
#[test]
fn range_count_matches_sorted_oracle() {
    let mut rng = StdRng::seed_from_u64(0x4a4e);
    for case in 0..24 {
        let n = rng.gen_range(1usize..4000);
        let b = rng.gen_range(1usize..12);
        let layout = random_layout(&mut rng, b);
        let sorted: Vec<u64> = (0..n as u64).map(|x| 2 * x + 1).collect();
        let mut data = sorted.clone();
        permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
        let s = Searcher::for_layout(&data, layout);
        let ranges: Vec<(u64, u64)> = (0..rng.gen_range(1usize..500))
            .map(|_| {
                (
                    rng.gen_range(0..2 * n as u64 + 4),
                    rng.gen_range(0..2 * n as u64 + 4),
                )
            })
            .collect();
        for &(lo, hi) in &ranges {
            let expect = sorted
                .partition_point(|x| *x < hi)
                .saturating_sub(sorted.partition_point(|x| *x < lo));
            assert_eq!(
                s.range_count(&lo, &hi),
                expect,
                "case {case}: n={n} {layout:?} [{lo},{hi})"
            );
        }
        assert_eq!(
            s.batch_range_count(&ranges),
            s.batch_range_count_seq(&ranges),
            "case {case}: n={n} {layout:?}"
        );
    }
}

/// `StaticIndex` answers every query like a sorted-vector oracle, for
/// random unsorted duplicated inputs and every layout.
#[test]
fn static_index_matches_sorted_oracle() {
    let mut rng = StdRng::seed_from_u64(0xfacade);
    for case in 0..16 {
        let n = rng.gen_range(0usize..3000);
        let b = rng.gen_range(1usize..12);
        let layout = random_layout(&mut rng, b);
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..(n as u64 + 2))).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let index = StaticIndex::build(keys, layout).unwrap();
        assert_eq!(index.len(), n, "case {case}");
        for _ in 0..60 {
            let p = rng.gen_range(0..n as u64 + 4);
            let expect_rank = sorted.partition_point(|x| *x < p);
            assert_eq!(
                index.rank(&p),
                expect_rank,
                "case {case}: n={n} {layout:?} probe={p}"
            );
            assert_eq!(
                index.contains(&p),
                sorted.binary_search(&p).is_ok(),
                "case {case}: n={n} {layout:?} probe={p}"
            );
            assert_eq!(
                index.lower_bound(&p).copied(),
                sorted.get(expect_rank).copied(),
                "case {case}: n={n} {layout:?} probe={p}"
            );
        }
    }
}
