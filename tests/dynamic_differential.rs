//! Op-sequence differential fuzz: seeded-PRNG insert / delete / query
//! sequences driven through [`DynamicMap`] and a `BTreeMap` oracle in
//! lockstep, with the **entire observable state** compared after every
//! single operation.
//!
//! What the generator stresses:
//!
//! * duplicate and re-inserted keys — a small key universe guarantees
//!   overwrites, deletes of absent keys, tombstones shadowing live
//!   versions in deeper runs, and re-inserts over tombstones;
//! * adversarial buffer/tier boundaries — buffer capacities 1, 3, and 8
//!   make merges constant and tier shapes degenerate;
//! * every query: `get`, `rank`, `lower_bound`, `successor`,
//!   `predecessor`, `range_count` (reversed bounds included), and
//!   `batch_get` at window-straddling batch lengths;
//! * snapshot coherence — a [`DynamicMap::snapshot`] taken mid-sequence
//!   must answer exactly like the live map at that instant.
//!
//! On divergence the test panics with the **seed, the configuration,
//! and the minimal op prefix that first diverges** (state is checked
//! after every op, so the first failing index is minimal); re-running
//! that seed replays it exactly.
//!
//! CI runs 3 fixed seeds; `IST_FUZZ_LONG=1` widens the sweep to 30
//! seeds with longer sequences.

use implicit_search_trees::{
    Algorithm, CompactionMode, CompactionPolicy, CrashModel, DynamicMap, FsyncPolicy, MemVfs,
    QueryKind, StoreConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Bound::{Excluded, Unbounded};
use std::sync::Arc;

/// Key universe: small, so collisions, overwrites and re-inserts are
/// the common case rather than the rare one.
const UNIVERSE: u64 = 40;

#[derive(Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    BatchInsert(Vec<(u64, u64)>),
    BatchRemove(Vec<u64>),
    Get(u64),
    Rank(u64),
    LowerBound(u64),
    Successor(u64),
    Predecessor(u64),
    RangeCount(u64, u64),
    BatchGet(Vec<u64>),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Insert(k, v) => write!(f, "insert({k}, {v})"),
            Op::Remove(k) => write!(f, "remove({k})"),
            Op::BatchInsert(pairs) => write!(f, "batch_insert({pairs:?})"),
            Op::BatchRemove(keys) => write!(f, "batch_remove({keys:?})"),
            Op::Get(k) => write!(f, "get({k})"),
            Op::Rank(k) => write!(f, "rank({k})"),
            Op::LowerBound(k) => write!(f, "lower_bound({k})"),
            Op::Successor(k) => write!(f, "successor({k})"),
            Op::Predecessor(k) => write!(f, "predecessor({k})"),
            Op::RangeCount(lo, hi) => write!(f, "range_count({lo}, {hi})"),
            Op::BatchGet(keys) => write!(f, "batch_get(len={})", keys.len()),
        }
    }
}

/// How the generator routes mutations: per-key scalar ops, or bulk
/// deltas through `batch_insert` / `batch_remove` (with intra-batch
/// duplicate keys, so last-pair-wins dedup is stressed too).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ingest {
    PerKey,
    Bulk,
}

fn gen_op(rng: &mut StdRng, op_index: usize, ingest: Ingest) -> Op {
    let key = rng.gen_range(0..UNIVERSE);
    match rng.gen_range(0..100u32) {
        // Mutation-heavy mix: versions must pile up across runs.
        0..=29 if ingest == Ingest::Bulk => {
            // Empty, singleton, and duplicate-heavy batches included.
            let len = rng.gen_range(0..8usize);
            Op::BatchInsert(
                (0..len)
                    .map(|j| {
                        let k = rng.gen_range(0..UNIVERSE);
                        (k, (op_index as u64) << 8 | j as u64)
                    })
                    .collect(),
            )
        }
        0..=29 => Op::Insert(key, op_index as u64),
        30..=49 if ingest == Ingest::Bulk => {
            let len = rng.gen_range(0..8usize);
            Op::BatchRemove((0..len).map(|_| rng.gen_range(0..UNIVERSE)).collect())
        }
        30..=49 => Op::Remove(key),
        50..=59 => Op::Get(key),
        60..=69 => Op::Rank(key),
        70..=74 => Op::LowerBound(key),
        75..=79 => Op::Successor(key),
        80..=84 => Op::Predecessor(key),
        85..=89 => {
            // Half the ranges reversed or empty on purpose.
            let other = rng.gen_range(0..UNIVERSE + 3);
            Op::RangeCount(key, other)
        }
        _ => {
            // Batch lengths straddling the pipeline window (32) and the
            // empty/singleton corners.
            let len = *[0usize, 1, 2, 31, 32, 33, 40, 64, 65]
                .get(rng.gen_range(0..9usize))
                .unwrap();
            Op::BatchGet((0..len).map(|_| rng.gen_range(0..UNIVERSE + 2)).collect())
        }
    }
}

// --- oracle-side query helpers ---

fn oracle_rank(oracle: &BTreeMap<u64, u64>, key: u64) -> usize {
    oracle.range(..key).count()
}

fn oracle_range_count(oracle: &BTreeMap<u64, u64>, lo: u64, hi: u64) -> usize {
    if lo >= hi {
        0
    } else {
        oracle.range(lo..hi).count()
    }
}

fn oracle_lower_bound(oracle: &BTreeMap<u64, u64>, key: u64) -> Option<(u64, u64)> {
    oracle.range(key..).next().map(|(k, v)| (*k, *v))
}

fn oracle_successor(oracle: &BTreeMap<u64, u64>, key: u64) -> Option<(u64, u64)> {
    oracle
        .range((Excluded(key), Unbounded))
        .next()
        .map(|(k, v)| (*k, *v))
}

fn oracle_predecessor(oracle: &BTreeMap<u64, u64>, key: u64) -> Option<(u64, u64)> {
    oracle.range(..key).next_back().map(|(k, v)| (*k, *v))
}

/// Compare the complete observable state of `map` (or a snapshot of
/// it) against the oracle: every universe key, every query, reversed
/// ranges, batched tiers.
fn check_full_state(map: &DynamicMap<u64, u64>, oracle: &BTreeMap<u64, u64>) -> Result<(), String> {
    let fail = |what: String| -> Result<(), String> { Err(what) };
    if map.len() != oracle.len() {
        return fail(format!("len: map={} oracle={}", map.len(), oracle.len()));
    }
    if map.is_empty() != oracle.is_empty() {
        return fail("is_empty disagrees".to_string());
    }
    let probes: Vec<u64> = (0..UNIVERSE + 2).chain([u64::MAX]).collect();
    for &k in &probes {
        if map.get(&k) != oracle.get(&k) {
            return fail(format!(
                "get({k}): map={:?} oracle={:?}",
                map.get(&k),
                oracle.get(&k)
            ));
        }
        if map.contains_key(&k) != oracle.contains_key(&k) {
            return fail(format!("contains_key({k}) disagrees"));
        }
        if map.rank(&k) != oracle_rank(oracle, k) {
            return fail(format!(
                "rank({k}): map={} oracle={}",
                map.rank(&k),
                oracle_rank(oracle, k)
            ));
        }
        let lb = map.lower_bound(&k).map(|(a, b)| (*a, *b));
        if lb != oracle_lower_bound(oracle, k) {
            return fail(format!(
                "lower_bound({k}): map={lb:?} oracle={:?}",
                oracle_lower_bound(oracle, k)
            ));
        }
        let succ = map.successor(&k).map(|(a, b)| (*a, *b));
        if succ != oracle_successor(oracle, k) {
            return fail(format!(
                "successor({k}): map={succ:?} oracle={:?}",
                oracle_successor(oracle, k)
            ));
        }
        let pred = map.predecessor(&k).map(|(a, b)| (*a, *b));
        if pred != oracle_predecessor(oracle, k) {
            return fail(format!(
                "predecessor({k}): map={pred:?} oracle={:?}",
                oracle_predecessor(oracle, k)
            ));
        }
    }
    // Batched tiers answer exactly like the scalar loop / oracle.
    let batch = map.batch_get(&probes);
    for (i, &k) in probes.iter().enumerate() {
        if batch[i] != oracle.get(&k) {
            return fail(format!("batch_get[{k}] disagrees with oracle get"));
        }
    }
    let ranks = map.batch_rank(&probes);
    for (i, &k) in probes.iter().enumerate() {
        if ranks[i] != oracle_rank(oracle, k) {
            return fail(format!("batch_rank[{k}] disagrees with oracle rank"));
        }
    }
    // Range pairs, reversed and empty included.
    let pairs: Vec<(u64, u64)> = (0..8)
        .flat_map(|i| {
            let lo = 5 * i;
            [(lo, lo + 7), (lo + 7, lo), (lo, lo), (0, u64::MAX)]
        })
        .collect();
    let counts = map.batch_range_count(&pairs);
    for (i, &(lo, hi)) in pairs.iter().enumerate() {
        let expect = oracle_range_count(oracle, lo, hi);
        if map.range_count(&lo, &hi) != expect {
            return fail(format!("range_count({lo},{hi}) != {expect}"));
        }
        if counts[i] != expect {
            return fail(format!("batch_range_count({lo},{hi}) != {expect}"));
        }
    }
    Ok(())
}

/// Apply one op to both sides; compare the op's own observable result.
fn apply_op(
    map: &mut DynamicMap<u64, u64>,
    oracle: &mut BTreeMap<u64, u64>,
    op: &Op,
) -> Result<(), String> {
    match op {
        Op::Insert(k, v) => {
            let replaced = map.insert(*k, *v);
            let expect = oracle.insert(*k, *v).is_some();
            if replaced != expect {
                return Err(format!("insert returned {replaced}, oracle {expect}"));
            }
        }
        Op::Remove(k) => {
            let removed = map.remove(k);
            let expect = oracle.remove(k).is_some();
            if removed != expect {
                return Err(format!("remove returned {removed}, oracle {expect}"));
            }
        }
        Op::BatchInsert(pairs) => {
            // The return counts *distinct* batch keys live before the
            // batch; applying the pairs in order gives last-pair-wins.
            let distinct: BTreeSet<u64> = pairs.iter().map(|(k, _)| *k).collect();
            let expect = distinct.iter().filter(|k| oracle.contains_key(k)).count();
            let got = map.batch_insert(pairs.clone());
            for &(k, v) in pairs {
                oracle.insert(k, v);
            }
            if got != expect {
                return Err(format!("batch_insert returned {got}, oracle {expect}"));
            }
        }
        Op::BatchRemove(keys) => {
            let distinct: BTreeSet<u64> = keys.iter().copied().collect();
            let expect = distinct.iter().filter(|k| oracle.contains_key(k)).count();
            let got = map.batch_remove(keys);
            for k in keys {
                oracle.remove(k);
            }
            if got != expect {
                return Err(format!("batch_remove returned {got}, oracle {expect}"));
            }
        }
        Op::Get(k) => {
            if map.get(k) != oracle.get(k) {
                return Err(format!(
                    "get: map={:?} oracle={:?}",
                    map.get(k),
                    oracle.get(k)
                ));
            }
        }
        Op::Rank(k) => {
            if map.rank(k) != oracle_rank(oracle, *k) {
                return Err(format!(
                    "rank: map={} oracle={}",
                    map.rank(k),
                    oracle_rank(oracle, *k)
                ));
            }
        }
        Op::LowerBound(k) => {
            let got = map.lower_bound(k).map(|(a, b)| (*a, *b));
            if got != oracle_lower_bound(oracle, *k) {
                return Err(format!(
                    "lower_bound: map={got:?} oracle={:?}",
                    oracle_lower_bound(oracle, *k)
                ));
            }
        }
        Op::Successor(k) => {
            let got = map.successor(k).map(|(a, b)| (*a, *b));
            if got != oracle_successor(oracle, *k) {
                return Err(format!(
                    "successor: map={got:?} oracle={:?}",
                    oracle_successor(oracle, *k)
                ));
            }
        }
        Op::Predecessor(k) => {
            let got = map.predecessor(k).map(|(a, b)| (*a, *b));
            if got != oracle_predecessor(oracle, *k) {
                return Err(format!(
                    "predecessor: map={got:?} oracle={:?}",
                    oracle_predecessor(oracle, *k)
                ));
            }
        }
        Op::RangeCount(lo, hi) => {
            let got = map.range_count(lo, hi);
            let expect = oracle_range_count(oracle, *lo, *hi);
            if got != expect {
                return Err(format!("range_count: map={got} oracle={expect}"));
            }
        }
        Op::BatchGet(keys) => {
            let got = map.batch_get(keys);
            for (i, k) in keys.iter().enumerate() {
                if got[i] != oracle.get(k) {
                    return Err(format!("batch_get[{k}] disagrees"));
                }
            }
        }
    }
    Ok(())
}

/// Run one seeded sequence against one configuration; panic with the
/// seed and the minimal diverging prefix on failure.
///
/// In [`CompactionMode::Background`] merges overlap the op sequence
/// (install timing depends on scheduling), so the suite doubles as a
/// proof that mid-flight compactions never perturb an answer; the op
/// sequence itself is still seed-deterministic for replay.
fn run_sequence(
    seed: u64,
    kind: QueryKind,
    buffer_cap: usize,
    num_ops: usize,
    mode: CompactionMode,
) {
    run_sequence_with(
        seed,
        kind,
        buffer_cap,
        num_ops,
        mode,
        CompactionPolicy::default(),
        Ingest::PerKey,
    );
}

/// The full-matrix variant: a [`CompactionPolicy`] (fanout, style,
/// lazy bottom, merge parallelism) and an ingest route on top of the
/// base harness.
fn run_sequence_with(
    seed: u64,
    kind: QueryKind,
    buffer_cap: usize,
    num_ops: usize,
    mode: CompactionMode,
    policy: CompactionPolicy,
    ingest: Ingest,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map: DynamicMap<u64, u64> =
        DynamicMap::with_config(kind, Algorithm::CycleLeader, buffer_cap)
            .with_compaction_mode(mode)
            .with_policy(policy);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut ops: Vec<Op> = Vec::with_capacity(num_ops);
    for i in 0..num_ops {
        let op = gen_op(&mut rng, i, ingest);
        ops.push(op.clone());
        let result = apply_op(&mut map, &mut oracle, &op)
            .and_then(|()| check_full_state(&map, &oracle))
            .and_then(|()| {
                if i % 32 == 7 {
                    // Snapshot coherence: a snapshot taken now answers
                    // exactly like the live map.
                    let snap = map.snapshot();
                    if snap.len() != oracle.len() {
                        return Err("snapshot len diverges from live state".into());
                    }
                    for k in 0..UNIVERSE {
                        if snap.get(&k) != oracle.get(&k) {
                            return Err(format!("snapshot get({k}) diverges"));
                        }
                    }
                }
                Ok(())
            });
        if let Err(why) = result {
            let prefix: Vec<String> = ops.iter().map(|o| format!("  {o}")).collect();
            panic!(
                "dynamic_differential diverged\n\
                 seed        = {seed:#x}\n\
                 config      = kind={kind:?} buffer_cap={buffer_cap} mode={mode:?} \
                 policy={policy:?} ingest={ingest:?}\n\
                 failure     = {why}\n\
                 minimal op prefix that first diverges ({} ops, last one diverges):\n{}",
                ops.len(),
                prefix.join("\n")
            );
        }
    }
    // Draining all deferred compaction work must not change anything
    // observable.
    map.quiesce();
    assert_eq!(map.sealed_runs(), 0);
    assert!(!map.compaction_in_flight());
    check_full_state(&map, &oracle)
        .unwrap_or_else(|why| panic!("state diverged after quiesce (seed={seed:#x}): {why}"));
}

fn kinds() -> [QueryKind; 4] {
    [
        QueryKind::Sorted,
        QueryKind::BstPrefetch,
        QueryKind::Btree(2),
        QueryKind::Veb,
    ]
}

/// Buffer capacities that keep merges constant and tier shapes
/// adversarial (cap 1 flushes every write; 3 and 8 exercise uneven
/// binomial-counter states).
const CAPS: [usize; 3] = [1, 3, 8];

/// The CI seeds (fixed: failures must reproduce byte-for-byte).
const CI_SEEDS: [u64; 3] = [0xA11CE, 0xB0B5EED, 0xC0FFEE];

#[test]
fn differential_fixed_seeds() {
    for &seed in &CI_SEEDS {
        for kind in kinds() {
            for &cap in &CAPS {
                run_sequence(seed, kind, cap, 250, CompactionMode::Inline);
            }
        }
    }
}

/// The same harness with merges on the background worker: installs land
/// at scheduling-dependent points between ops, and the full observable
/// state must still match the oracle after every single op.
#[test]
fn differential_fixed_seeds_background_compaction() {
    for &seed in &CI_SEEDS {
        for kind in kinds() {
            for &cap in &[1usize, 8] {
                run_sequence(seed, kind, cap, 250, CompactionMode::Background);
            }
        }
    }
}

/// The policy matrix: every [`CompactionPolicy`] style (tiered fanouts,
/// leveled, lazy bottom) × merge parallelism {1, 4} × bulk vs per-key
/// ingest, in both compaction modes — full observable state vs the
/// oracle after every op, snapshots included (in background mode those
/// land mid-merge).
fn policies() -> [CompactionPolicy; 5] {
    [
        CompactionPolicy::tiered(1).with_merge_threads(1),
        CompactionPolicy::tiered(2).with_merge_threads(4),
        CompactionPolicy::tiered(3)
            .with_lazy_bottom(true)
            .with_merge_threads(1),
        CompactionPolicy::leveled(2).with_merge_threads(4),
        CompactionPolicy::leveled(3)
            .with_lazy_bottom(true)
            .with_merge_threads(4),
    ]
}

#[test]
fn differential_policy_and_bulk_matrix() {
    for (p, policy) in policies().into_iter().enumerate() {
        for ingest in [Ingest::PerKey, Ingest::Bulk] {
            for mode in [CompactionMode::Inline, CompactionMode::Background] {
                run_sequence_with(
                    0xD0_11C7 + p as u64,
                    QueryKind::Veb,
                    3,
                    200,
                    mode,
                    policy,
                    ingest,
                );
            }
        }
    }
}

/// Bulk ingest through adversarial buffer capacities and query kinds
/// (cap 1 seals on every non-empty batch; cap 8 exercises the
/// buffer/batch linear merge repeatedly).
#[test]
fn differential_bulk_ingest_fixed_seeds() {
    for &seed in &CI_SEEDS {
        for kind in [QueryKind::Veb, QueryKind::Btree(2)] {
            for &cap in &CAPS {
                run_sequence_with(
                    seed,
                    kind,
                    cap,
                    200,
                    CompactionMode::Inline,
                    CompactionPolicy::default(),
                    Ingest::Bulk,
                );
            }
        }
    }
}

/// The sliced parallel merge must be **bit-identical** to the
/// sequential merge — same tier shapes, same answers. Runs here are
/// large enough (thousands of versions) that the merge actually
/// splits into slices; the fuzz sequences above stay below the
/// slicing threshold and pin only the `merge_threads` plumbing.
#[test]
fn parallel_merge_bit_identical_to_serial() {
    let mk = |threads: usize| -> DynamicMap<u64, u64> {
        DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 2048)
            .with_compaction_mode(CompactionMode::Inline)
            .with_policy(CompactionPolicy::tiered(1).with_merge_threads(threads))
    };
    let mut serial = mk(1);
    let mut parallel = mk(4);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(0x511_CE5);
    for round in 0..4u64 {
        let pairs: Vec<(u64, u64)> = (0..3000u64)
            .map(|i| (rng.gen_range(0..8192), round * 10_000 + i))
            .collect();
        let s = serial.batch_insert(pairs.clone());
        let p = parallel.batch_insert(pairs.clone());
        assert_eq!(s, p, "round {round} insert counts");
        for (k, v) in pairs {
            oracle.insert(k, v);
        }
        let removes: Vec<u64> = (0..800).map(|_| rng.gen_range(0..8192)).collect();
        assert_eq!(
            serial.batch_remove(&removes),
            parallel.batch_remove(&removes),
            "round {round} remove counts"
        );
        for k in &removes {
            oracle.remove(k);
        }
        // Tier shapes (run sizes per tier) must match exactly: the
        // sliced merge may not change what gets merged or its result.
        assert_eq!(
            serial.tier_versions(),
            parallel.tier_versions(),
            "round {round} tier shapes"
        );
    }
    assert_eq!(serial.len(), oracle.len());
    assert_eq!(parallel.len(), oracle.len());
    let probes: Vec<u64> = (0..8192u64).collect();
    let serial_get = serial.batch_get(&probes);
    assert_eq!(serial_get, parallel.batch_get(&probes));
    assert_eq!(serial.batch_rank(&probes), parallel.batch_rank(&probes));
    for (i, &k) in probes.iter().enumerate() {
        assert_eq!(serial_get[i], oracle.get(&k), "get({k}) vs oracle");
    }
}

/// Extended sweep: 30 seeds, longer sequences, both compaction modes,
/// plus a policy × ingest sweep. `IST_FUZZ_LONG=1` turns it on (a
/// dedicated CI job runs it in release).
#[test]
fn differential_long_sweep() {
    if std::env::var_os("IST_FUZZ_LONG").is_none() {
        eprintln!("IST_FUZZ_LONG not set; skipping the 30-seed sweep");
        return;
    }
    for seed in 0..30u64 {
        for kind in kinds() {
            for &cap in &CAPS {
                for mode in [CompactionMode::Inline, CompactionMode::Background] {
                    run_sequence(0x10_0000 + seed, kind, cap, 400, mode);
                }
            }
        }
    }
    for seed in 0..6u64 {
        for policy in policies() {
            for ingest in [Ingest::PerKey, Ingest::Bulk] {
                for mode in [CompactionMode::Inline, CompactionMode::Background] {
                    run_sequence_with(
                        0x40_0000 + seed,
                        QueryKind::Veb,
                        3,
                        400,
                        mode,
                        policy,
                        ingest,
                    );
                }
            }
        }
    }
    // Persistent kill-and-restart sweep: kinds × caps × modes × fsync.
    for seed in 0..8u64 {
        for kind in [QueryKind::Veb, QueryKind::Btree(2)] {
            for &cap in &CAPS {
                for mode in [CompactionMode::Inline, CompactionMode::Background] {
                    for fsync in [FsyncPolicy::Always, FsyncPolicy::EveryN(3)] {
                        run_persistent_sequence(
                            0x70_0000 + seed,
                            kind,
                            cap,
                            300,
                            mode,
                            CompactionPolicy::tiered(2),
                            Ingest::Bulk,
                            fsync,
                        );
                    }
                }
            }
        }
    }
}

/// The persistent variant of the harness: the map lives on a [`MemVfs`]
/// store and is **killed and reopened at random points** mid-sequence
/// (power-cycle with `CrashModel::DropUnsynced` — everything that was
/// not fsynced vanishes, the strictest loss model). Under
/// [`FsyncPolicy::Always`] every applied op is durable at the op
/// boundary, so the recovered map must equal the oracle *exactly*; for
/// the weaker policies the harness calls `flush()` before the kill, at
/// which point the same exactness holds. The sequence then continues on
/// the reopened map, so recovery composes with further mutation,
/// sealing, and compaction — full observable state checked after every
/// op, exactly like the volatile harness.
#[allow(clippy::too_many_arguments)]
fn run_persistent_sequence(
    seed: u64,
    kind: QueryKind,
    buffer_cap: usize,
    num_ops: usize,
    mode: CompactionMode,
    policy: CompactionPolicy,
    ingest: Ingest,
    fsync: FsyncPolicy,
) {
    let vfs = Arc::new(MemVfs::new());
    let cfg = StoreConfig::with_vfs(vfs.clone()).fsync(fsync);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map: DynamicMap<u64, u64> =
        DynamicMap::with_config(kind, Algorithm::CycleLeader, buffer_cap)
            .with_compaction_mode(mode)
            .with_policy(policy);
    map.persist_to("db", cfg.clone()).expect("persist_to");
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let mut restarts = 0usize;
    let ctx = |i: usize, restarts: usize| {
        format!(
            "persistent differential (seed={seed:#x} kind={kind:?} cap={buffer_cap} \
             mode={mode:?} fsync={fsync:?} ingest={ingest:?}, op {i}, {restarts} restarts)"
        )
    };
    for i in 0..num_ops {
        let op = gen_op(&mut rng, i, ingest);
        apply_op(&mut map, &mut oracle, &op)
            .and_then(|()| check_full_state(&map, &oracle))
            .unwrap_or_else(|why| panic!("{}: {why} after {op}", ctx(i, restarts)));
        assert!(
            map.store_error().is_none(),
            "{}: store poisoned: {:?}",
            ctx(i, restarts),
            map.store_error()
        );
        // Kill-and-restart at random (seed-reproducible) points.
        if rng.gen_range(0..32u32) == 0 {
            if !matches!(fsync, FsyncPolicy::Always) {
                // Acked-but-unsynced records would (correctly) vanish
                // under DropUnsynced; flush makes the check exact.
                map.flush().expect("flush before restart");
            }
            drop(map);
            vfs.power_cycle(CrashModel::DropUnsynced);
            map = DynamicMap::open_with("db", cfg.clone())
                .unwrap_or_else(|e| panic!("{}: reopen failed: {e}", ctx(i, restarts)))
                .with_compaction_mode(mode)
                .with_policy(policy);
            restarts += 1;
            check_full_state(&map, &oracle)
                .unwrap_or_else(|why| panic!("{}: diverged after reopen: {why}", ctx(i, restarts)));
        }
    }
    // Draining deferred compactions goes through the durable install
    // path here; one final kill/reopen pins the quiesced state too.
    map.quiesce();
    check_full_state(&map, &oracle)
        .unwrap_or_else(|why| panic!("{}: diverged after quiesce: {why}", ctx(num_ops, restarts)));
    if !matches!(fsync, FsyncPolicy::Always) {
        map.flush().expect("final flush");
    }
    drop(map);
    vfs.power_cycle(CrashModel::DropUnsynced);
    let reopened = DynamicMap::<u64, u64>::open_with("db", cfg).expect("final reopen");
    check_full_state(&reopened, &oracle)
        .unwrap_or_else(|why| panic!("{}: final reopen diverged: {why}", ctx(num_ops, restarts)));
}

/// Kill-and-restart differential across both compaction modes with the
/// always-fsync policy: every op is durable the moment it returns, so
/// the reopened map must equal the oracle exactly at every kill point.
#[test]
fn differential_persistent_restarts() {
    for &seed in &CI_SEEDS {
        for mode in [CompactionMode::Inline, CompactionMode::Background] {
            run_persistent_sequence(
                seed,
                QueryKind::Veb,
                3,
                160,
                mode,
                CompactionPolicy::default(),
                Ingest::PerKey,
                FsyncPolicy::Always,
            );
        }
    }
}

/// The persistent matrix rides the weaker fsync policies (flush before
/// each kill), bulk ingest, non-default compaction policies, and a
/// second query kind — recovery must compose with all of them.
#[test]
fn differential_persistent_policy_matrix() {
    let cases = [
        (
            QueryKind::Veb,
            CompactionPolicy::tiered(2).with_merge_threads(4),
            Ingest::Bulk,
            FsyncPolicy::EveryN(4),
        ),
        (
            QueryKind::Btree(2),
            CompactionPolicy::leveled(2),
            Ingest::PerKey,
            FsyncPolicy::Never,
        ),
        (
            QueryKind::Sorted,
            CompactionPolicy::tiered(3).with_lazy_bottom(true),
            Ingest::Bulk,
            FsyncPolicy::Always,
        ),
    ];
    for (c, (kind, policy, ingest, fsync)) in cases.into_iter().enumerate() {
        for mode in [CompactionMode::Inline, CompactionMode::Background] {
            run_persistent_sequence(
                0xD15C + c as u64,
                kind,
                if c == 0 { 1 } else { 4 },
                140,
                mode,
                policy,
                ingest,
                fsync,
            );
        }
    }
}

/// A bulk-loaded map must behave identically: start from `build` with
/// duplicate keys, then fuzz on top of the pre-populated tiers.
#[test]
fn differential_after_bulk_build() {
    for &seed in &CI_SEEDS {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB01D);
        let n = 120usize;
        let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..UNIVERSE)).collect();
        let values: Vec<u64> = (0..n as u64).collect();
        let mut map = DynamicMap::build_for_kind(
            keys.clone(),
            values.clone(),
            QueryKind::Veb,
            Algorithm::CycleLeader,
            4,
        )
        .unwrap();
        // Oracle with the same last-duplicate-wins bulk semantics.
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for (k, v) in keys.into_iter().zip(values) {
            oracle.insert(k, v);
        }
        check_full_state(&map, &oracle).expect("bulk build state");
        for i in 0..150 {
            let op = gen_op(&mut rng, 1000 + i, Ingest::Bulk);
            apply_op(&mut map, &mut oracle, &op)
                .and_then(|()| check_full_state(&map, &oracle))
                .unwrap_or_else(|why| {
                    panic!("bulk-build fuzz diverged (seed={seed:#x}, op {i}): {why}")
                });
        }
    }
}
