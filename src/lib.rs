//! # implicit-search-trees
//!
//! Parallel **in-place** construction of implicit search tree layouts
//! (level-order BST, level-order B-tree, van Emde Boas) from sorted
//! arrays, plus cache-efficient queries over them — a faithful Rust
//! implementation of *Beyond Binary Search: Parallel In-Place
//! Construction of Implicit Search Tree Layouts* (Berney, 2018).
//!
//! ## Why
//!
//! Binary search over a sorted array is optimal in comparisons but poor
//! in cache behavior: each probe lands half the remaining range away.
//! If the data is static and queried often, permuting it into an
//! implicit tree layout pays for itself quickly — and the permutation
//! here needs **no second buffer** (crucial when the array fills
//! memory) and runs in parallel.
//!
//! ## Quick start
//!
//! [`StaticIndex`] owns its keys: it sorts them, permutes them in place
//! into the chosen layout, and serves the whole query API — point
//! lookups, ranks, successors/predecessors, range counts, and batched
//! variants that run on a software-pipelined multi-descent engine.
//!
//! ```
//! use implicit_search_trees::{Layout, StaticIndex};
//!
//! // Any size (non-perfect trees are handled), any order, duplicates ok.
//! let keys: Vec<u64> = (0..100_000u64).map(|x| 3 * x).collect();
//! let index = StaticIndex::build(keys, Layout::Veb).unwrap();
//!
//! assert!(index.contains(&299_997));
//! assert!(!index.contains(&299_998));
//! assert_eq!(index.rank(&150_000), 50_000);
//! assert_eq!(index.range_count(&0, &30), 10);
//! assert_eq!(index.batch_count(&[3, 4, 5, 6]), 2); // pipelined batch
//! ```
//!
//! [`StaticMap`] serves key→**value** lookups: the layout permutation
//! is data-oblivious (position depends only on `n` and the layout), so
//! payloads ride the same permutation as their keys without ever being
//! compared — `V` needs no `Ord`, and `values()` is a zero-copy view
//! parallel to the keys (see [`perm::oblivious`] for the argument).
//!
//! ```
//! use implicit_search_trees::{Layout, StaticMap};
//!
//! let map = StaticMap::build(
//!     vec![30u64, 10, 20],
//!     vec!["thirty", "ten", "twenty"],
//!     Layout::Btree { b: 8 },
//! ).unwrap();
//! assert_eq!(map.get(&20), Some(&"twenty"));
//! assert_eq!(map.batch_get(&[10, 15]), vec![Some(&"ten"), None]);
//! assert_eq!(map.predecessor(&30), Some((&20, &"twenty")));
//! ```
//!
//! [`DynamicMap`] makes the structure **write-capable**: a logarithmic-
//! method (LSM-style) dynamization that absorbs inserts and deletes in
//! a small sorted buffer and keeps every resident run in a static
//! layout, using the paper's fast parallel in-place rebuild as the
//! mutation primitive (merges skip the argsort entirely —
//! [`StaticMap::build_presorted`]). The merge itself is **deamortized**:
//! an overflowing buffer is cheaply *sealed* into an L0 run while the
//! k-way merge + rebuild runs on a background worker
//! ([`CompactionMode`]), installed atomically when done — reads consult
//! sealed runs in the interim, so answers stay exact and a write never
//! waits for an `O(n)` merge. Reads fan out newest-run-first on the
//! same pipelined engines; [`DynamicMap::snapshot`] /
//! [`DynamicMap::reader`] give concurrent readers frozen views that
//! never block on a merge. See [`dynamic`](ist_dynamic) for the tier,
//! tombstone, and weight design.
//!
//! ```
//! use implicit_search_trees::{DynamicMap, Layout};
//!
//! let mut m: DynamicMap<u64, &str> = DynamicMap::new(Layout::Veb);
//! m.insert(10, "ten");
//! m.insert(20, "twenty");
//! m.insert(10, "TEN"); // overwrite
//! m.remove(&20);
//! assert_eq!(m.get(&10), Some(&"TEN"));
//! assert_eq!(m.len(), 1);
//! assert_eq!(m.batch_get(&[10, 20]), vec![Some(&"TEN"), None]);
//!
//! let snapshot = m.snapshot(); // frozen: later writes are invisible
//! m.insert(30, "thirty");
//! assert_eq!(snapshot.len(), 1);
//! ```
//!
//! [`ShardedMap`] is the scale-out front-end: key-range-partitioned
//! shards, each an independent [`DynamicMap`] (own buffer, own
//! background compactor), behind one exact API. Batched queries
//! partition per shard, drive every shard's pipelined engine in
//! parallel, and scatter results back in input order — bit-identical
//! to a single unsharded map; global `rank`/`range_count` stay exact
//! via the range-partition invariant.
//!
//! ```
//! use implicit_search_trees::{Layout, ShardedMap};
//!
//! let keys: Vec<u64> = (0..40_000u64).collect();
//! let vals = keys.clone();
//! let mut m = ShardedMap::build(keys, vals, Layout::Veb, 4).unwrap();
//! m.insert(7, 700);
//! m.remove(&8);
//! assert_eq!(m.batch_get(&[7, 8, 39_999]), vec![Some(&700), None, Some(&39_999)]);
//! assert_eq!(m.rank(&20_000), 19_999); // exact across shards
//! ```
//!
//! Both [`DynamicMap`] and [`ShardedMap`] can be made **durable**:
//! [`DynamicMap::persist_to`] writes every resident run as an immutable
//! run file (one sequential pass — the flat implicit-layout arrays need
//! no pointer fixup) and from then on logs each mutation to a
//! write-ahead log before applying it; `DynamicMap::open` recovers the
//! exact pre-crash state (manifest → run files → WAL-tail replay). See
//! the [`store`] module for the format, the fsync/atomicity contract,
//! and the fault-injection harness that pins it down.
//!
//! ```
//! use implicit_search_trees::{DynamicMap, Layout};
//! use implicit_search_trees::store::{MemVfs, StoreConfig};
//! use std::sync::Arc;
//!
//! // MemVfs keeps the doctest off the real disk; StoreConfig::new()
//! // is the production (std::fs + fsync-always) configuration.
//! let cfg = StoreConfig::with_vfs(Arc::new(MemVfs::new()));
//! let mut m: DynamicMap<u64, u64> = DynamicMap::new(Layout::Veb);
//! m.insert(1, 100);
//! m.persist_to("db", cfg.clone()).unwrap();
//! m.insert(2, 200); // WAL-logged before it is applied
//! drop(m);
//! let m = DynamicMap::<u64, u64>::open_with("db", cfg).unwrap();
//! assert_eq!(m.batch_get(&[1, 2]), vec![Some(&100), Some(&200)]);
//! ```
//!
//! For borrowed data (or full control over the descent variant and
//! construction algorithm), use [`permute_in_place`] + [`Searcher`]
//! directly:
//!
//! ```
//! use implicit_search_trees::{permute_in_place, Algorithm, Layout, Searcher};
//!
//! let mut data: Vec<u64> = (0..100_000u64).map(|x| 3 * x).collect(); // sorted
//! permute_in_place(&mut data, Layout::Veb, Algorithm::CycleLeader).unwrap();
//!
//! let searcher = Searcher::for_layout(&data, Layout::Veb);
//! assert!(searcher.contains(&299_997));
//! ```
//!
//! ## One algorithm, N machines
//!
//! Each of the six construction algorithms is implemented **once**, in
//! [`ist_core::algorithms`], generic over the [`machine::Machine`] trait.
//! Three backends instantiate it: [`machine::Ram`] (the production path
//! used by [`permute_in_place`]; zero-overhead via monomorphization), the
//! PEM I/O counter in [`pem_sim`], and the SIMT cost model in
//! [`gpu_sim`]. The simulators therefore measure the *real* algorithms
//! by construction — `tests/machine_equivalence.rs` asserts bit-identical
//! output across every (layout, algorithm, backend) combination.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | `core` (re-exported at the root) | the construction algorithms (written once, `Machine`-generic) and public API |
//! | [`StaticIndex`] (`ist-dynamic`, re-exported here) | owning sort + permute + full-query-API facade |
//! | [`StaticMap`] (`ist-dynamic`, re-exported here) | key→value facade: payloads co-permuted obliviously alongside the keys |
//! | [`DynamicMap`] (`ist-dynamic`, re-exported here) | log-structured tiers of static runs: write buffer, sealed L0 runs, background compaction, tombstones + weights, snapshot readers |
//! | [`ShardedMap`] (`ist-shard`, re-exported here) | key-range-sharded serving layer: per-shard `DynamicMap`s, parallel scatter/gather batch routing |
//! | [`store`] (`ist-store`, re-exported here) | durability substrate: zero-copy run files, write-ahead log, atomically-rotated manifest, fault-injection VFS |
//! | [`machine`] | the `Machine` execution-substrate trait and the `Ram` backend |
//! | [`query`] | the per-layout `Navigator`s (`nav` — the single home of all descent arithmetic) and the layout-agnostic engines: scalar descents, `batch` (software-pipelined multi-descent window, rayon composition), `range` (range counts over rank descents), `order` (successor/predecessor on the rank engine) |
//! | [`layout`] | position maps / index arithmetic per layout |
//! | [`gather`] | equidistant gather operations |
//! | [`shuffle`] | perfect shuffles and rotations |
//! | [`perm`] | involution/cycle permutation framework |
//! | [`bits`] | digit reversal and modular arithmetic |
//! | [`pem_sim`] | PEM-model I/O cost backend |
//! | [`gpu_sim`] | SIMT (GPU) execution cost backend |

pub use ist_dynamic::{
    default_kind_for_layout, AlignedVec, CompactionMode, CompactionPolicy, CompactionStyle,
    DynamicMap, Frozen, Reader, StaticIndex, StaticMap, DEFAULT_BUFFER_CAP, MAX_SEALED_RUNS,
};
pub use ist_shard::{ShardedFrozen, ShardedMap, ShardedReader};
pub use ist_store::{CrashModel, FsyncPolicy, MemVfs, StdVfs, StoreConfig, StoreError, Vfs};

pub use ist_core::{
    construct, cycle_leader, fich_baseline, involution, nonperfect, permute_in_place,
    permute_in_place_seq, reference_permutation, Algorithm, Error, GatherMode, IndexArith, Layout,
    LayoutKind, Machine, Ram, Region,
};
pub use ist_query::{
    search_bst, search_bst_prefetch, search_btree, search_sorted, search_veb, QueryKind, Searcher,
    SimdKey,
};

/// Digit reversal and modular arithmetic primitives.
pub use ist_bits as bits;
/// The serving facades (`StaticIndex` / `StaticMap` / `DynamicMap`).
pub use ist_dynamic;
/// Equidistant gather operations.
pub use ist_gather as gather;
/// SIMT (GPU) execution cost model.
pub use ist_gpu_sim as gpu_sim;
/// Layout position maps and tree geometry.
pub use ist_layout as layout;
/// Machine abstraction (execution substrates) and the Ram backend.
pub use ist_machine as machine;
/// PEM-model I/O cost simulator.
pub use ist_pem_sim as pem_sim;
/// Permutation framework (involutions, cycles).
pub use ist_perm as perm;
/// Per-layout searchers.
pub use ist_query as query;
/// Key-range-sharded serving layer (`ShardedMap`).
pub use ist_shard as shard;
/// Perfect shuffles and rotations.
pub use ist_shuffle as shuffle;
/// Durability substrate: run files, WAL, manifest, fault-injection VFS.
pub use ist_store as store;
