//! Virtual filesystem with a production backend and a fault-injecting
//! in-memory backend.
//!
//! All durability code in this workspace talks to storage through the
//! [`Vfs`] trait. [`StdVfs`] maps it onto `std::fs`. [`MemVfs`] is the
//! crash laboratory: it models the sync/unsync state of every byte,
//! can kill the write stream at an exact byte offset
//! ([`FailpointFile`]), simulate a power cycle under two disk models
//! ([`CrashModel`]), and corrupt files in place (bit flips,
//! truncation) — the substrate for the exhaustive crash sweep in
//! `tests/store_crash.rs`.
//!
//! ## MemVfs disk model
//!
//! - Writes append to an in-memory file; bytes written but not yet
//!   synced are *pending*.
//! - [`MemVfs::power_cycle`] with [`CrashModel::Torn`] keeps pending
//!   bytes (the disk happened to persist them); with
//!   [`CrashModel::DropUnsynced`] it discards them (the disk lost
//!   everything after the last fsync). Real crashes land anywhere
//!   between these two extremes, so recovery must tolerate both.
//! - `rename` is modeled as atomic and immediately durable — the
//!   POSIX contract the manifest rotation relies on (it still syncs
//!   the temp file *before* the rename, which `DropUnsynced` would
//!   otherwise punish with an empty manifest).
//! - Once the injected byte budget is exhausted the "process" is dead:
//!   every subsequent operation fails until the next `power_cycle`.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Writable file handle produced by [`Vfs::create`].
pub trait VfsFile: Write + Send {
    /// Durably flush everything written so far (fsync).
    fn sync(&mut self) -> io::Result<()>;
}

/// Readable file handle with a known size, produced by
/// [`Vfs::open_read`]. The size lets readers validate section tables
/// before allocating.
pub trait ReadFile: Read + Send {
    /// Total file size in bytes.
    fn len(&self) -> u64;

    /// True when the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Filesystem abstraction for the persistence layer.
pub trait Vfs: Send + Sync {
    /// Create (or truncate) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Open a file for sequential reading.
    fn open_read(&self, path: &Path) -> io::Result<Box<dyn ReadFile>>;

    /// Read an entire file into memory.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = self.open_read(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    /// Whether `path` names an existing file.
    fn exists(&self, path: &Path) -> bool;

    /// Atomically rename `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// File names (not paths) of the direct children of `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Durably flush directory metadata (new/renamed/removed entries).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// StdVfs
// ---------------------------------------------------------------------------

/// Production backend: `std::fs` with buffered writes and real fsync.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

struct StdFile {
    inner: io::BufWriter<std::fs::File>,
}

impl Write for StdFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl VfsFile for StdFile {
    fn sync(&mut self) -> io::Result<()> {
        self.inner.flush()?;
        self.inner.get_ref().sync_all()
    }
}

struct StdReadFile {
    inner: io::BufReader<std::fs::File>,
    len: u64,
}

impl Read for StdReadFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl ReadFile for StdReadFile {
    fn len(&self) -> u64 {
        self.len
    }
}

impl Vfs for StdVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::File::create(path)?;
        Ok(Box::new(StdFile {
            inner: io::BufWriter::new(file),
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn ReadFile>> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        Ok(Box::new(StdReadFile {
            inner: io::BufReader::new(file),
            len,
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it flushes the
        // entry metadata on POSIX systems; best-effort elsewhere.
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// MemVfs
// ---------------------------------------------------------------------------

/// What the simulated disk does with unsynced bytes at a power cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashModel {
    /// Pending (written-but-unsynced) bytes survive: the torn prefix
    /// of the interrupted write is visible after restart.
    Torn,
    /// Pending bytes are lost: every file rolls back to its last
    /// fsynced length.
    DropUnsynced,
}

#[derive(Debug, Default, Clone)]
struct MemFile {
    data: Vec<u8>,
    synced: usize,
}

#[derive(Debug, Default)]
struct MemState {
    files: BTreeMap<PathBuf, MemFile>,
    dirs: std::collections::BTreeSet<PathBuf>,
    /// Remaining bytes the "process" may write before the injected
    /// crash; `None` disarms the failpoint.
    budget: Option<u64>,
    /// Set when the budget ran out; every operation fails until the
    /// next power cycle.
    crashed: bool,
    /// Cumulative bytes ever written (across crashes) — lets the crash
    /// sweep measure a schedule's total write volume in a dry run.
    total_written: u64,
}

fn injected() -> io::Error {
    io::Error::other("injected fault: write stream killed at byte budget")
}

fn dead() -> io::Error {
    io::Error::other("injected fault: process is dead until power_cycle")
}

/// In-memory [`Vfs`] with byte-exact fault injection.
#[derive(Debug, Default, Clone)]
pub struct MemVfs {
    state: Arc<Mutex<MemState>>,
}

impl MemVfs {
    /// Fresh empty filesystem with the failpoint disarmed.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, MemState> {
        self.state.lock().expect("MemVfs poisoned")
    }

    /// Arm the failpoint: after `bytes` more written bytes, the write
    /// stream dies mid-write and the process is dead until
    /// [`power_cycle`](Self::power_cycle). `None` disarms.
    pub fn set_write_budget(&self, bytes: Option<u64>) {
        self.lock().budget = bytes;
    }

    /// Whether the injected crash has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Cumulative bytes written since construction (survives crashes).
    #[must_use]
    pub fn total_written(&self) -> u64 {
        self.lock().total_written
    }

    /// Simulate restart after a crash: settle every file per `model`,
    /// clear the crashed flag, and disarm the failpoint.
    pub fn power_cycle(&self, model: CrashModel) {
        let mut st = self.lock();
        for file in st.files.values_mut() {
            match model {
                CrashModel::Torn => file.synced = file.data.len(),
                CrashModel::DropUnsynced => file.data.truncate(file.synced),
            }
        }
        st.crashed = false;
        st.budget = None;
    }

    /// XOR one bit of an existing file (corruption injection).
    ///
    /// Returns false when the file is missing or too short.
    pub fn flip_bit(&self, path: &Path, bit: u64) -> bool {
        let mut st = self.lock();
        match st.files.get_mut(path) {
            Some(f) if (bit / 8) < f.data.len() as u64 => {
                f.data[(bit / 8) as usize] ^= 1 << (bit % 8);
                true
            }
            _ => false,
        }
    }

    /// Truncate an existing file to `len` bytes (corruption injection).
    pub fn truncate(&self, path: &Path, len: u64) -> bool {
        let mut st = self.lock();
        match st.files.get_mut(path) {
            Some(f) => {
                f.data.truncate(len as usize);
                f.synced = f.synced.min(len as usize);
                true
            }
            None => false,
        }
    }

    /// Current length of `path`, if it exists.
    #[must_use]
    pub fn file_len(&self, path: &Path) -> Option<u64> {
        self.lock().files.get(path).map(|f| f.data.len() as u64)
    }

    /// Full contents of `path`, if it exists.
    #[must_use]
    pub fn file_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).map(|f| f.data.clone())
    }

    /// Paths of every file currently on the filesystem.
    #[must_use]
    pub fn file_paths(&self) -> Vec<PathBuf> {
        self.lock().files.keys().cloned().collect()
    }

    /// Snapshot every file (for corruption tests that restore state
    /// between injected faults).
    #[must_use]
    pub fn dump(&self) -> Vec<(PathBuf, Vec<u8>)> {
        self.lock()
            .files
            .iter()
            .map(|(p, f)| (p.clone(), f.data.clone()))
            .collect()
    }

    /// Replace the entire filesystem with a [`dump`](Self::dump)ed
    /// snapshot (all bytes marked synced) and clear fault state.
    pub fn restore(&self, snapshot: &[(PathBuf, Vec<u8>)]) {
        let mut st = self.lock();
        st.files = snapshot
            .iter()
            .map(|(p, data)| {
                (
                    p.clone(),
                    MemFile {
                        data: data.clone(),
                        synced: data.len(),
                    },
                )
            })
            .collect();
        st.crashed = false;
        st.budget = None;
    }
}

/// Writer handle into a [`MemVfs`] that enforces the byte budget: the
/// write stream dies at an exact byte offset, leaving the torn prefix
/// behind — the primitive the kill-at-every-offset sweep is built on.
pub struct FailpointFile {
    state: Arc<Mutex<MemState>>,
    path: PathBuf,
}

impl Write for FailpointFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock().expect("MemVfs poisoned");
        if st.crashed {
            return Err(dead());
        }
        let writable = match st.budget {
            Some(b) => (b as usize).min(buf.len()),
            None => buf.len(),
        };
        st.total_written += writable as u64;
        if let Some(b) = st.budget.as_mut() {
            *b -= writable as u64;
        }
        let Some(file) = st.files.get_mut(&self.path) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "file removed while open for writing",
            ));
        };
        file.data.extend_from_slice(&buf[..writable]);
        if writable < buf.len() {
            st.crashed = true;
            return Err(injected());
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        let st = self.state.lock().expect("MemVfs poisoned");
        if st.crashed {
            return Err(dead());
        }
        Ok(())
    }
}

impl VfsFile for FailpointFile {
    fn sync(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().expect("MemVfs poisoned");
        if st.crashed {
            return Err(dead());
        }
        if let Some(file) = st.files.get_mut(&self.path) {
            file.synced = file.data.len();
        }
        Ok(())
    }
}

struct MemReadFile {
    data: Vec<u8>,
    pos: usize,
}

impl Read for MemReadFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl ReadFile for MemReadFile {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

impl Vfs for MemVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.lock();
        if st.crashed {
            return Err(dead());
        }
        st.files.insert(path.to_path_buf(), MemFile::default());
        Ok(Box::new(FailpointFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn open_read(&self, path: &Path) -> io::Result<Box<dyn ReadFile>> {
        let st = self.lock();
        if st.crashed {
            return Err(dead());
        }
        match st.files.get(path) {
            Some(f) => Ok(Box::new(MemReadFile {
                data: f.data.clone(),
                pos: 0,
            })),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().files.contains_key(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.crashed {
            return Err(dead());
        }
        match st.files.remove(from) {
            Some(f) => {
                // Atomic and immediately durable (see module docs).
                st.files.insert(to.to_path_buf(), f);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.crashed {
            return Err(dead());
        }
        match st.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let st = self.lock();
        if st.crashed {
            return Err(dead());
        }
        Ok(st
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name())
            .map(|n| n.to_string_lossy().into_owned())
            .collect())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.crashed {
            return Err(dead());
        }
        st.dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        let st = self.lock();
        if st.crashed {
            return Err(dead());
        }
        // Directory entries are modeled as immediately durable.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_kills_mid_write_and_keeps_torn_prefix() {
        let vfs = MemVfs::new();
        vfs.set_write_budget(Some(5));
        let mut f = vfs.create(Path::new("/x")).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert!(vfs.crashed());
        // Everything fails until restart.
        assert!(vfs.create(Path::new("/y")).is_err());
        vfs.power_cycle(CrashModel::Torn);
        assert_eq!(vfs.read(Path::new("/x")).unwrap(), b"01234");
    }

    #[test]
    fn drop_unsynced_rolls_back_to_last_sync() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(Path::new("/x")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync().unwrap();
        f.write_all(b" pending").unwrap();
        drop(f);
        vfs.power_cycle(CrashModel::DropUnsynced);
        assert_eq!(vfs.read(Path::new("/x")).unwrap(), b"durable");
        vfs.power_cycle(CrashModel::Torn); // no-op: already settled
        assert_eq!(vfs.read(Path::new("/x")).unwrap(), b"durable");
    }

    #[test]
    fn corruptors_flip_and_truncate() {
        let vfs = MemVfs::new();
        let mut f = vfs.create(Path::new("/x")).unwrap();
        f.write_all(&[0u8; 4]).unwrap();
        drop(f);
        assert!(vfs.flip_bit(Path::new("/x"), 9));
        assert_eq!(vfs.read(Path::new("/x")).unwrap(), vec![0, 2, 0, 0]);
        assert!(vfs.truncate(Path::new("/x"), 2));
        assert_eq!(vfs.file_len(Path::new("/x")), Some(2));
        assert!(!vfs.flip_bit(Path::new("/missing"), 0));
    }

    #[test]
    fn rename_is_atomic_replace() {
        let vfs = MemVfs::new();
        for (name, content) in [("/a", b"aaa"), ("/b", b"bbb")] {
            let mut f = vfs.create(Path::new(name)).unwrap();
            f.write_all(content).unwrap();
            f.sync().unwrap();
        }
        vfs.rename(Path::new("/a"), Path::new("/b")).unwrap();
        assert!(!vfs.exists(Path::new("/a")));
        assert_eq!(vfs.read(Path::new("/b")).unwrap(), b"aaa");
    }
}
