//! Typed durability errors.
//!
//! Every decode path in this crate is total: arbitrary on-disk bytes —
//! including bytes produced by a torn write, a bit flip, or an
//! adversarial fuzzer — map to `Err(StoreError)` and never to a panic
//! or an unbounded allocation. The crash-injection suite
//! (`tests/store_crash.rs`) pins this contract.

use std::fmt;
use std::io;

/// Error type for every fallible operation in the persistence layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed (including injected
    /// crash faults from [`crate::MemVfs`]).
    Io(io::Error),
    /// A file's leading magic bytes did not match; `what` names the
    /// file kind we were trying to read.
    BadMagic {
        /// File kind ("run", "manifest", "wal", "shards").
        what: &'static str,
    },
    /// The file carries a format version this build cannot read.
    UnsupportedVersion {
        /// File kind whose version field was rejected.
        what: &'static str,
        /// Version found on disk.
        found: u32,
        /// Newest version this build understands.
        supported: u32,
    },
    /// A checksum over `what` did not match its stored value: the
    /// bytes were fully present but corrupted in place.
    ChecksumMismatch {
        /// Region whose checksum failed ("run header", "keys section", ...).
        what: &'static str,
    },
    /// The file ended before a structurally-required region was
    /// complete. For the write-ahead log a truncated *tail record* is
    /// tolerated (it is the signature of a crash mid-append); for
    /// every other file a short read is fatal.
    Truncated {
        /// Region that was cut short.
        what: &'static str,
    },
    /// Structurally invalid contents: impossible lengths, unknown
    /// record tags, sections that disagree with the header.
    Corrupt(String),
    /// The map's durability engine latched an earlier storage error
    /// and refuses further writes; `reason` is the original failure.
    /// The in-memory map stays readable — only mutation and flush are
    /// rejected.
    Poisoned {
        /// Display form of the error that poisoned the engine.
        reason: String,
    },
}

impl StoreError {
    /// Short helper used by decode paths.
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        StoreError::Corrupt(msg.into())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic { what } => write!(f, "bad magic: not a {what} file"),
            StoreError::UnsupportedVersion {
                what,
                found,
                supported,
            } => write!(
                f,
                "unsupported {what} format version {found} (this build reads <= {supported})"
            ),
            StoreError::ChecksumMismatch { what } => {
                write!(f, "checksum mismatch in {what}")
            }
            StoreError::Truncated { what } => write!(f, "truncated file: {what} cut short"),
            StoreError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
            StoreError::Poisoned { reason } => {
                write!(f, "store poisoned by earlier error: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}
