//! Write-ahead log: length-prefixed, checksummed records with a
//! truncated-tail-tolerant reader.
//!
//! ## File format
//!
//! ```text
//! magic "IST-WAL\0" (8) | version u32 | seq u64 | crc64(header) u64
//! then per record:
//! payload_len u32 | crc64(payload) u64 | payload
//! ```
//!
//! The header is fsynced at creation, *before* the manifest is rotated
//! to name the new log — a manifest never points at a file whose
//! header might be torn.
//!
//! ## Tail policy
//!
//! A record that extends past end-of-file is the signature of a crash
//! mid-append: the reader stops there and reports a clean truncated
//! tail. A record whose bytes are fully present but whose checksum
//! fails is *corruption* and surfaces as a typed error — it cannot be
//! a torn append, because appends are strictly sequential.
//!
//! One ambiguity is inherent to length-prefixed logs: a bit flip in
//! the *final* record's length field can make it look like it extends
//! past EOF, i.e. like a torn tail. Media corruption of fsynced bytes
//! is outside the crash contract (the crash sweep distinguishes the
//! two schedules), so this reader resolves the ambiguity in favor of
//! truncation tolerance, like other production logs do.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades acknowledgment durability for append cost:
//! `Always` fsyncs every record, `EveryN(n)` group-commits, `Never`
//! leaves flushing to the OS. [`WalWriter::acked`] reports how many
//! records are *guaranteed* after a crash — the crash harness checks
//! recovery against exactly this number.

use std::path::{Path, PathBuf};

use crate::checksum::crc64;
use crate::codec::{Codec, Input};
use crate::error::StoreError;
use crate::vfs::{Vfs, VfsFile};

/// Leading bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"IST-WAL\0";
/// Newest WAL format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;

const HEADER_LEN: usize = 8 + 4 + 8 + 8;
const RECORD_HEADER_LEN: usize = 4 + 8;

/// When the log fsyncs relative to record appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every record: an applied write is a durable write.
    Always,
    /// Group commit: fsync after every `n` records.
    EveryN(u32),
    /// Never fsync from the hot path; the OS flushes when it pleases.
    /// Only explicit `flush()`/checkpoints guarantee anything.
    Never,
}

impl FsyncPolicy {
    /// Parse a command-line spelling: `always`, `never`, or `every=N`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                let n: u32 = s.strip_prefix("every=")?.parse().ok()?;
                (n > 0).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }
}

/// File name of the WAL with sequence number `seq`.
#[must_use]
pub fn wal_file_name(seq: u64) -> String {
    format!("wal-{seq:06}.log")
}

/// Appender for one WAL file.
pub struct WalWriter {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    seq: u64,
    policy: FsyncPolicy,
    appended: u64,
    acked: u64,
    since_sync: u32,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("seq", &self.seq)
            .field("policy", &self.policy)
            .field("appended", &self.appended)
            .field("acked", &self.acked)
            .finish()
    }
}

impl WalWriter {
    /// Create a fresh log at `path` and durably write its header.
    pub fn create(
        vfs: &dyn Vfs,
        path: &Path,
        seq: u64,
        policy: FsyncPolicy,
    ) -> Result<Self, StoreError> {
        let mut file = vfs.create(path)?;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(WAL_MAGIC);
        WAL_VERSION.encode_into(&mut header);
        seq.encode_into(&mut header);
        crc64(&header).encode_into(&mut header);
        file.write_all(&header)?;
        // Always durable, regardless of policy: the manifest is about
        // to name this file, so its header must survive any crash.
        file.sync()?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            seq,
            policy,
            appended: 0,
            acked: 0,
            since_sync: 0,
        })
    }

    /// Sequence number this log was created with.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records appended so far (durable or not).
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Records guaranteed to survive a crash (covered by an fsync).
    #[must_use]
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Append one record; fsyncs per the policy. Returns whether this
    /// append is already durable.
    pub fn append(&mut self, payload: &[u8]) -> Result<bool, StoreError> {
        debug_assert!(payload.len() <= u32::MAX as usize, "WAL record too large");
        let mut frame = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        (payload.len() as u32).encode_into(&mut frame);
        crc64(payload).encode_into(&mut frame);
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.appended += 1;
        self.since_sync += 1;
        let want_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.since_sync >= n,
            FsyncPolicy::Never => false,
        };
        if want_sync {
            self.sync()?;
        } else {
            self.file.flush()?;
        }
        Ok(want_sync)
    }

    /// Fsync the log, making every appended record durable.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync()?;
        self.acked = self.appended;
        self.since_sync = 0;
        Ok(())
    }
}

/// Parsed contents of a WAL file.
#[derive(Debug)]
pub struct WalContents {
    /// Sequence number from the header.
    pub seq: u64,
    /// Complete, checksum-verified record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether the file ended in a torn (crash-truncated) record.
    pub truncated_tail: bool,
}

/// Read and verify a WAL file, tolerating a torn tail record.
pub fn read_wal(
    vfs: &dyn Vfs,
    path: &Path,
    expect_seq: Option<u64>,
) -> Result<WalContents, StoreError> {
    let bytes = vfs.read(path)?;
    parse_wal(&bytes, expect_seq)
}

/// Parse WAL bytes (see [`read_wal`]). Total over arbitrary input.
pub fn parse_wal(bytes: &[u8], expect_seq: Option<u64>) -> Result<WalContents, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated { what: "wal header" });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(StoreError::BadMagic { what: "wal" });
    }
    let mut input = Input::new(&bytes[8..HEADER_LEN]);
    let version = u32::decode_from(&mut input)?;
    let seq = u64::decode_from(&mut input)?;
    let stored_crc = u64::decode_from(&mut input)?;
    if crc64(&bytes[..HEADER_LEN - 8]) != stored_crc {
        return Err(StoreError::ChecksumMismatch { what: "wal header" });
    }
    if version != WAL_VERSION {
        return Err(StoreError::UnsupportedVersion {
            what: "wal",
            found: version,
            supported: WAL_VERSION,
        });
    }
    if let Some(expected) = expect_seq {
        if seq != expected {
            return Err(StoreError::corrupt(format!(
                "wal seq {seq} does not match manifest seq {expected}"
            )));
        }
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    let mut truncated_tail = false;
    while pos < bytes.len() {
        if bytes.len() - pos < RECORD_HEADER_LEN {
            truncated_tail = true; // crash mid record header
            break;
        }
        let mut rh = Input::new(&bytes[pos..pos + RECORD_HEADER_LEN]);
        let len = u32::decode_from(&mut rh)? as usize;
        let payload_crc = u64::decode_from(&mut rh)?;
        let start = pos + RECORD_HEADER_LEN;
        if bytes.len() - start < len {
            truncated_tail = true; // crash mid payload (see module docs)
            break;
        }
        let payload = &bytes[start..start + len];
        if crc64(payload) != payload_crc {
            return Err(StoreError::ChecksumMismatch { what: "wal record" });
        }
        records.push(payload.to_vec());
        pos = start + len;
    }
    Ok(WalContents {
        seq,
        records,
        truncated_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    fn path() -> PathBuf {
        PathBuf::from("/wal-000000.log")
    }

    #[test]
    fn append_and_read_back() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::create(&vfs, &path(), 0, FsyncPolicy::Always).unwrap();
        assert!(w.append(b"one").unwrap());
        assert!(w.append(b"two").unwrap());
        assert_eq!(w.acked(), 2);
        let contents = read_wal(&vfs, &path(), Some(0)).unwrap();
        assert_eq!(contents.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!contents.truncated_tail);
    }

    #[test]
    fn every_n_group_commit_acks_at_sync_points() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::create(&vfs, &path(), 3, FsyncPolicy::EveryN(3)).unwrap();
        assert!(!w.append(b"a").unwrap());
        assert!(!w.append(b"b").unwrap());
        assert_eq!(w.acked(), 0);
        assert!(w.append(b"c").unwrap());
        assert_eq!(w.acked(), 3);
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_offset() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::create(&vfs, &path(), 0, FsyncPolicy::Never).unwrap();
        w.append(b"first record").unwrap();
        w.append(b"second record").unwrap();
        drop(w);
        let full = vfs.read(&path()).unwrap();
        let first_end = HEADER_LEN + RECORD_HEADER_LEN + b"first record".len();
        for cut in HEADER_LEN..full.len() {
            let contents = parse_wal(&full[..cut], Some(0)).unwrap();
            // Only fully-present records are returned; the cut point
            // decides how many that is, and the tail flag fires unless
            // the cut landed exactly on a record boundary.
            let expect = usize::from(cut >= first_end) + usize::from(cut >= full.len());
            assert_eq!(contents.records.len(), expect, "cut at {cut}");
            let clean_boundary = cut == HEADER_LEN || cut == first_end || cut == full.len();
            assert_eq!(contents.truncated_tail, !clean_boundary, "cut at {cut}");
        }
    }

    #[test]
    fn interior_corruption_is_a_typed_error() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::create(&vfs, &path(), 0, FsyncPolicy::Always).unwrap();
        w.append(b"record one").unwrap();
        w.append(b"record two").unwrap();
        drop(w);
        let mut bytes = vfs.read(&path()).unwrap();
        // Flip a payload byte of the first record: complete bytes, bad crc.
        bytes[HEADER_LEN + RECORD_HEADER_LEN] ^= 0x40;
        match parse_wal(&bytes, Some(0)) {
            Err(StoreError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn header_fuzz_never_panics() {
        let mut state = 1u64;
        for len in 0..80 {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 56) as u8
                })
                .collect();
            let _ = parse_wal(&bytes, None);
        }
    }

    #[test]
    fn policy_parsing() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
