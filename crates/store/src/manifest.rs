//! The manifest: one small, atomically-rotated file naming everything
//! that is live in a map directory.
//!
//! A map directory contains immutable run files, exactly one live WAL,
//! and `MANIFEST`. The manifest is the *root of trust*: a run or WAL
//! file not named by the manifest is garbage (a leftover from a crash
//! window) and is deleted on the next successful open or structural
//! change. Rotation is the classic atomic dance:
//!
//! 1. write `MANIFEST.tmp` in full,
//! 2. fsync it (so `DropUnsynced` crashes cannot surface a torn
//!    manifest through the rename),
//! 3. rename over `MANIFEST` (atomic on POSIX),
//! 4. fsync the directory.
//!
//! A crash strictly before the rename leaves the old manifest — and
//! therefore the old, fully consistent file set — in force.
//!
//! The sharded layer has its own tiny root file ([`ShardsFile`],
//! written with the same dance) naming the split points; each shard is
//! then a full map directory of its own.

use std::path::Path;

use crate::checksum::crc64;
use crate::codec::{
    decode_algorithm, decode_kind, decode_seq, encode_algorithm, encode_kind, encode_seq, Codec,
    Input,
};
use crate::error::StoreError;
use crate::vfs::Vfs;
use ist_core::Algorithm;
use ist_query::QueryKind;

/// File name of the manifest inside a map directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_TMP_NAME: &str = "MANIFEST.tmp";

/// Leading bytes of a manifest file.
pub const MANIFEST_MAGIC: &[u8; 8] = b"IST-MAN\0";
/// Newest manifest format version this build reads and writes.
pub const MANIFEST_VERSION: u32 = 1;

/// Reference to one immutable run file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunRef {
    /// Run file id (`run-{id}.ist`).
    pub id: u64,
    /// First mutation sequence number the run absorbed.
    pub seq_lo: u64,
    /// Last mutation sequence number the run absorbed.
    pub seq_hi: u64,
}

impl Codec for RunRef {
    const FIXED_WIDTH: Option<usize> = Some(24);

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.id.encode_into(out);
        self.seq_lo.encode_into(out);
        self.seq_hi.encode_into(out);
    }

    fn decode_from(input: &mut Input<'_>) -> Result<Self, StoreError> {
        Ok(RunRef {
            id: u64::decode_from(input)?,
            seq_lo: u64::decode_from(input)?,
            seq_hi: u64::decode_from(input)?,
        })
    }
}

/// File name of the run with id `id`.
#[must_use]
pub fn run_file_name(id: u64) -> String {
    format!("run-{id:06}.ist")
}

/// The live state of one map directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Layout the map's compacted tiers are built in.
    pub kind: QueryKind,
    /// Construction algorithm for rebuilds.
    pub algorithm: Algorithm,
    /// Write-buffer capacity.
    pub buffer_cap: u64,
    /// Next unused run file id.
    pub next_run_id: u64,
    /// Sequence number of the live WAL file.
    pub wal_seq: u64,
    /// Next unused mutation sequence number at the last rotation.
    pub next_seq: u64,
    /// Sealed L0 runs, oldest first.
    pub l0: Vec<RunRef>,
    /// Compacted tiers, shallowest first; newest-first within a tier.
    /// Empty tiers are kept so depth indices round-trip exactly.
    pub tiers: Vec<Vec<RunRef>>,
}

impl Manifest {
    /// Serialize to the on-disk representation.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(MANIFEST_MAGIC);
        MANIFEST_VERSION.encode_into(&mut out);
        encode_kind(self.kind, &mut out);
        encode_algorithm(self.algorithm, &mut out);
        self.buffer_cap.encode_into(&mut out);
        self.next_run_id.encode_into(&mut out);
        self.wal_seq.encode_into(&mut out);
        self.next_seq.encode_into(&mut out);
        encode_seq(&self.l0, &mut out);
        (self.tiers.len() as u32).encode_into(&mut out);
        for tier in &self.tiers {
            encode_seq(tier, &mut out);
        }
        crc64(&out).encode_into(&mut out);
        out
    }

    /// Parse the on-disk representation. Total over arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < MANIFEST_MAGIC.len() + 12 {
            return Err(StoreError::Truncated { what: "manifest" });
        }
        if &bytes[..8] != MANIFEST_MAGIC {
            return Err(StoreError::BadMagic { what: "manifest" });
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 8);
        let stored_crc = u64::decode_from(&mut Input::new(crc_bytes))?;
        if crc64(body) != stored_crc {
            return Err(StoreError::ChecksumMismatch { what: "manifest" });
        }
        let mut input = Input::new(&body[8..]);
        let version = u32::decode_from(&mut input)?;
        if version != MANIFEST_VERSION {
            return Err(StoreError::UnsupportedVersion {
                what: "manifest",
                found: version,
                supported: MANIFEST_VERSION,
            });
        }
        let kind = decode_kind(&mut input)?;
        let algorithm = decode_algorithm(&mut input)?;
        let buffer_cap = u64::decode_from(&mut input)?;
        let next_run_id = u64::decode_from(&mut input)?;
        let wal_seq = u64::decode_from(&mut input)?;
        let next_seq = u64::decode_from(&mut input)?;
        let l0 = decode_seq::<RunRef>(&mut input)?;
        let tier_count = u32::decode_from(&mut input)? as usize;
        if tier_count > input.remaining() {
            return Err(StoreError::corrupt("implausible tier count"));
        }
        let mut tiers = Vec::with_capacity(tier_count);
        for _ in 0..tier_count {
            tiers.push(decode_seq::<RunRef>(&mut input)?);
        }
        if !input.is_empty() {
            return Err(StoreError::corrupt("trailing bytes after manifest body"));
        }
        if buffer_cap == 0 {
            return Err(StoreError::corrupt("manifest buffer_cap is zero"));
        }
        Ok(Manifest {
            kind,
            algorithm,
            buffer_cap,
            next_run_id,
            wal_seq,
            next_seq,
            l0,
            tiers,
        })
    }

    /// Every run the manifest names, in load order (L0 then tiers).
    pub fn all_runs(&self) -> impl Iterator<Item = &RunRef> {
        self.l0.iter().chain(self.tiers.iter().flatten())
    }

    /// Atomically install this manifest as `dir/MANIFEST`.
    pub fn write_atomic(&self, vfs: &dyn Vfs, dir: &Path) -> Result<(), StoreError> {
        write_root_file_atomic(vfs, dir, MANIFEST_NAME, &self.encode())
    }

    /// Read and verify `dir/MANIFEST`.
    pub fn read(vfs: &dyn Vfs, dir: &Path) -> Result<Self, StoreError> {
        Self::decode(&vfs.read(&dir.join(MANIFEST_NAME))?)
    }
}

/// Write `dir/{name}` through the tmp + fsync + rename + dir-fsync
/// dance so the file is replaced atomically or not at all.
pub fn write_root_file_atomic(
    vfs: &dyn Vfs,
    dir: &Path,
    name: &str,
    bytes: &[u8],
) -> Result<(), StoreError> {
    use std::io::Write as _;
    let tmp = dir.join(MANIFEST_TMP_NAME);
    let mut file = vfs.create(&tmp)?;
    file.write_all(bytes)?;
    file.sync()?;
    drop(file);
    vfs.rename(&tmp, &dir.join(name))?;
    vfs.sync_dir(dir)?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Sharded root file
// ---------------------------------------------------------------------------

/// File name of the sharded-map root file.
pub const SHARDS_NAME: &str = "SHARDS";
/// Leading bytes of a shards file.
pub const SHARDS_MAGIC: &[u8; 8] = b"IST-SHD\0";
/// Newest shards-file format version this build reads and writes.
pub const SHARDS_VERSION: u32 = 1;

/// Root file of a sharded map directory: the split points that
/// key-range-partition the shard subdirectories `shard-0000/`,
/// `shard-0001/`, ... (always `splits.len() + 1` shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardsFile<K> {
    /// Split keys, strictly increasing; shard `i` owns keys in
    /// `[splits[i-1], splits[i])`.
    pub splits: Vec<K>,
}

/// Directory name of shard `i` under a sharded map directory.
#[must_use]
pub fn shard_dir_name(i: usize) -> String {
    format!("shard-{i:04}")
}

impl<K: Codec> ShardsFile<K> {
    /// Serialize to the on-disk representation.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(SHARDS_MAGIC);
        SHARDS_VERSION.encode_into(&mut out);
        encode_seq(&self.splits, &mut out);
        crc64(&out).encode_into(&mut out);
        out
    }

    /// Parse the on-disk representation. Total over arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < SHARDS_MAGIC.len() + 12 {
            return Err(StoreError::Truncated {
                what: "shards file",
            });
        }
        if &bytes[..8] != SHARDS_MAGIC {
            return Err(StoreError::BadMagic { what: "shards" });
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 8);
        let stored_crc = u64::decode_from(&mut Input::new(crc_bytes))?;
        if crc64(body) != stored_crc {
            return Err(StoreError::ChecksumMismatch {
                what: "shards file",
            });
        }
        let mut input = Input::new(&body[8..]);
        let version = u32::decode_from(&mut input)?;
        if version != SHARDS_VERSION {
            return Err(StoreError::UnsupportedVersion {
                what: "shards",
                found: version,
                supported: SHARDS_VERSION,
            });
        }
        let splits = decode_seq::<K>(&mut input)?;
        if !input.is_empty() {
            return Err(StoreError::corrupt("trailing bytes after shards body"));
        }
        Ok(ShardsFile { splits })
    }

    /// Atomically install this file as `dir/SHARDS`.
    pub fn write_atomic(&self, vfs: &dyn Vfs, dir: &Path) -> Result<(), StoreError> {
        write_root_file_atomic(vfs, dir, SHARDS_NAME, &self.encode())
    }

    /// Read and verify `dir/SHARDS`.
    pub fn read(vfs: &dyn Vfs, dir: &Path) -> Result<Self, StoreError> {
        Self::decode(&vfs.read(&dir.join(SHARDS_NAME))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use std::path::PathBuf;

    fn sample() -> Manifest {
        Manifest {
            kind: QueryKind::Veb,
            algorithm: Algorithm::CycleLeader,
            buffer_cap: 256,
            next_run_id: 7,
            wal_seq: 3,
            next_seq: 1000,
            l0: vec![RunRef {
                id: 5,
                seq_lo: 900,
                seq_hi: 950,
            }],
            tiers: vec![
                vec![],
                vec![
                    RunRef {
                        id: 6,
                        seq_lo: 500,
                        seq_hi: 899,
                    },
                    RunRef {
                        id: 2,
                        seq_lo: 1,
                        seq_hi: 499,
                    },
                ],
            ],
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn rotation_replaces_atomically() {
        let vfs = MemVfs::new();
        let dir = PathBuf::from("/db");
        sample().write_atomic(&vfs, &dir).unwrap();
        let mut second = sample();
        second.wal_seq = 4;
        second.write_atomic(&vfs, &dir).unwrap();
        assert_eq!(Manifest::read(&vfs, &dir).unwrap().wal_seq, 4);
        assert!(!vfs.exists(&dir.join("MANIFEST.tmp")));
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut copy = bytes.clone();
                copy[i] ^= 1 << bit;
                assert!(
                    Manifest::decode(&copy).is_err(),
                    "flip at byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn decode_fuzz_never_panics() {
        let mut state = 42u64;
        for len in 0..160 {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(2862933555777941757)
                        .wrapping_add(3037000493);
                    (state >> 40) as u8
                })
                .collect();
            let _ = Manifest::decode(&bytes);
            let _ = ShardsFile::<u64>::decode(&bytes);
        }
    }

    #[test]
    fn shards_round_trip() {
        let s = ShardsFile {
            splits: vec![10u64, 20, 30],
        };
        assert_eq!(ShardsFile::<u64>::decode(&s.encode()).unwrap(), s);
    }
}
