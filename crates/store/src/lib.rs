//! # ist-store
//!
//! Durability primitives for the implicit-search-tree maps: immutable
//! run files, a write-ahead log, an atomically-rotated manifest, and a
//! fault-injectable virtual filesystem — the storage substrate behind
//! `DynamicMap::open` / `ShardedMap::open` in the higher layers.
//!
//! The design leans on the paper's core property: an implicit search
//! tree layout is a *flat array*, so persistence needs no pointer
//! fixup. A run file is one sequential write of three contiguous
//! sections (keys, value slots, weight prefix — already in layout
//! order), and a load is one sequential pass that bulk-adopts
//! fixed-width keys into an aligned buffer. The durability contract:
//!
//! - **Run files and manifests are always fsynced** before anything
//!   references them; the [`FsyncPolicy`] knob only trades off WAL
//!   append cost.
//! - **The manifest is the root of trust**: rotated via write-temp +
//!   fsync + atomic rename, so a crash leaves either the old or the
//!   new file set fully consistent, never a mix.
//! - **The WAL covers exactly the write buffer**: every seal rotates
//!   the log, so replay after the manifest's runs reconstructs the
//!   pre-crash state. A torn tail record (crash mid-append) is
//!   tolerated; any other corruption is a typed [`StoreError`], never
//!   a panic.
//!
//! ## Quickstart
//!
//! Persist a map, reopen it, and keep writing (using the in-memory
//! [`MemVfs`]; production code uses [`StdVfs`], the default of
//! [`StoreConfig::new`]):
//!
//! ```
//! use implicit_search_trees::{DynamicMap, Layout};
//! use ist_store::{FsyncPolicy, MemVfs, StoreConfig};
//! use std::sync::Arc;
//!
//! let vfs = MemVfs::new();
//! let cfg = StoreConfig::with_vfs(Arc::new(vfs.clone())).fsync(FsyncPolicy::Always);
//!
//! let mut m: DynamicMap<u64, u64> = DynamicMap::new(Layout::Veb);
//! m.insert(1, 10);
//! m.persist_to("db", cfg.clone()).unwrap();
//! m.insert(2, 20); // logged to the WAL before it is applied
//! drop(m);
//!
//! let mut m = DynamicMap::<u64, u64>::open_with("db", cfg).unwrap();
//! assert_eq!(m.get(&1), Some(&10));
//! assert_eq!(m.get(&2), Some(&20));
//! m.remove(&1); // still durable: the reopened map keeps logging
//! ```
//!
//! The crash story is verified exhaustively in `tests/store_crash.rs`
//! by killing the write stream at every byte offset (via
//! [`FailpointFile`]) and corrupting files bit by bit, differentially
//! against a `BTreeMap` oracle.

#![warn(missing_docs)]

mod checksum;
mod codec;
mod error;
mod manifest;
mod runfile;
mod vfs;
mod wal;

pub use checksum::{crc64, Crc64};
pub use codec::{
    decode_algorithm, decode_kind, decode_seq, encode_algorithm, encode_kind, encode_seq, Codec,
    Input,
};
pub use error::StoreError;
pub use manifest::{
    run_file_name, shard_dir_name, write_root_file_atomic, Manifest, RunRef, ShardsFile,
    MANIFEST_MAGIC, MANIFEST_NAME, MANIFEST_VERSION, SHARDS_MAGIC, SHARDS_NAME, SHARDS_VERSION,
};
pub use runfile::{
    encode_run, write_run, RunHeader, RunReader, RunSections, RUN_HEADER_LEN, RUN_MAGIC,
    RUN_VERSION,
};
pub use vfs::{CrashModel, FailpointFile, MemVfs, ReadFile, StdVfs, Vfs, VfsFile};
pub use wal::{
    parse_wal, read_wal, wal_file_name, FsyncPolicy, WalContents, WalWriter, WAL_MAGIC, WAL_VERSION,
};

use std::sync::Arc;

/// How a map directory talks to storage: the filesystem backend plus
/// the WAL fsync policy.
///
/// Cloning is cheap (the backend is shared). The default is the real
/// filesystem with per-record fsync — every applied write is durable.
#[derive(Clone)]
pub struct StoreConfig {
    /// WAL fsync policy (run files and manifests always fsync).
    pub fsync: FsyncPolicy,
    /// Filesystem backend.
    pub vfs: Arc<dyn Vfs>,
}

impl StoreConfig {
    /// Real filesystem, fsync on every WAL append.
    #[must_use]
    pub fn new() -> Self {
        Self::with_vfs(Arc::new(StdVfs))
    }

    /// Custom backend (e.g. [`MemVfs`] for tests), fsync on every
    /// WAL append.
    #[must_use]
    pub fn with_vfs(vfs: Arc<dyn Vfs>) -> Self {
        Self {
            fsync: FsyncPolicy::Always,
            vfs,
        }
    }

    /// Replace the WAL fsync policy.
    #[must_use]
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for StoreConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreConfig")
            .field("fsync", &self.fsync)
            .finish_non_exhaustive()
    }
}
