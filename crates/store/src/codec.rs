//! Minimal byte-level serialization for keys, values, and file
//! metadata.
//!
//! Everything persisted by this crate goes through [`Codec`]: a
//! little-endian, length-prefixed, panic-free encoding. Decoding is
//! defensive by construction — every read is bounds-checked against
//! the remaining input and every declared length is validated before
//! allocation, so arbitrary (fuzzed, torn, bit-flipped) bytes can
//! never panic or trigger an unbounded allocation; they produce a
//! typed [`StoreError`] instead.
//!
//! Fixed-width integer encodings are bit-identical to the machine's
//! in-memory representation on little-endian targets, which is what
//! lets the run-file reader adopt a whole key section into an aligned
//! buffer with a single bulk read (see `ist-dynamic`'s persistence
//! module) instead of decoding element by element.

use crate::error::StoreError;
use ist_core::Algorithm;
use ist_query::QueryKind;

/// Bounds-checked cursor over an input byte slice.
#[derive(Debug)]
pub struct Input<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Input<'a> {
    /// Cursor over `buf`, starting at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes or fail with a typed error.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if n > self.remaining() {
            return Err(StoreError::corrupt(format!(
                "need {n} bytes, {} remaining",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Panic-free little-endian serialization.
///
/// `encode_into` appends the encoding of `self` to `out`;
/// `decode_from` consumes exactly the bytes `encode_into` produced.
pub trait Codec: Sized {
    /// `Some(w)` when every encoding of this type is exactly `w`
    /// bytes *and* matches the little-endian in-memory representation
    /// (the precondition for bulk section adoption).
    const FIXED_WIDTH: Option<usize>;

    /// Append the encoding of `self` to `out`.
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decode one value, consuming its bytes from `input`.
    fn decode_from(input: &mut Input<'_>) -> Result<Self, StoreError>;
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            const FIXED_WIDTH: Option<usize> = Some(std::mem::size_of::<$t>());

            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            fn decode_from(input: &mut Input<'_>) -> Result<Self, StoreError> {
                let bytes = input.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact take")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Codec for bool {
    const FIXED_WIDTH: Option<usize> = Some(1);

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode_from(input: &mut Input<'_>) -> Result<Self, StoreError> {
        match input.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StoreError::corrupt(format!("invalid bool byte {b:#04x}"))),
        }
    }
}

impl Codec for Vec<u8> {
    const FIXED_WIDTH: Option<usize> = None;

    fn encode_into(&self, out: &mut Vec<u8>) {
        debug_assert!(self.len() <= u32::MAX as usize, "blob too large to encode");
        (self.len() as u32).encode_into(out);
        out.extend_from_slice(self);
    }

    fn decode_from(input: &mut Input<'_>) -> Result<Self, StoreError> {
        let len = u32::decode_from(input)? as usize;
        // `take` bounds-checks `len` against the remaining input, so a
        // corrupted length can never drive an oversized allocation.
        Ok(input.take(len)?.to_vec())
    }
}

impl Codec for String {
    const FIXED_WIDTH: Option<usize> = None;

    fn encode_into(&self, out: &mut Vec<u8>) {
        debug_assert!(
            self.len() <= u32::MAX as usize,
            "string too large to encode"
        );
        (self.len() as u32).encode_into(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode_from(input: &mut Input<'_>) -> Result<Self, StoreError> {
        let len = u32::decode_from(input)? as usize;
        let bytes = input.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt("string section is not UTF-8"))
    }
}

impl<T: Codec> Codec for Option<T> {
    const FIXED_WIDTH: Option<usize> = None;

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode_into(out);
            }
        }
    }

    fn decode_from(input: &mut Input<'_>) -> Result<Self, StoreError> {
        match input.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode_from(input)?)),
            b => Err(StoreError::corrupt(format!("invalid option tag {b:#04x}"))),
        }
    }
}

const fn pair_width(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x + y),
        _ => None,
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    const FIXED_WIDTH: Option<usize> = pair_width(A::FIXED_WIDTH, B::FIXED_WIDTH);

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
    }

    fn decode_from(input: &mut Input<'_>) -> Result<Self, StoreError> {
        Ok((A::decode_from(input)?, B::decode_from(input)?))
    }
}

impl<A: Codec, B: Codec, C: Codec> Codec for (A, B, C) {
    const FIXED_WIDTH: Option<usize> =
        pair_width(pair_width(A::FIXED_WIDTH, B::FIXED_WIDTH), C::FIXED_WIDTH);

    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
        self.1.encode_into(out);
        self.2.encode_into(out);
    }

    fn decode_from(input: &mut Input<'_>) -> Result<Self, StoreError> {
        Ok((
            A::decode_from(input)?,
            B::decode_from(input)?,
            C::decode_from(input)?,
        ))
    }
}

/// Encode a sequence as a `u32` count followed by the elements.
pub fn encode_seq<T: Codec>(items: &[T], out: &mut Vec<u8>) {
    debug_assert!(items.len() <= u32::MAX as usize, "sequence too large");
    (items.len() as u32).encode_into(out);
    for item in items {
        item.encode_into(out);
    }
}

/// Decode a sequence written by [`encode_seq`].
///
/// The declared count is validated against the remaining input (every
/// element encoding is at least one byte) before any allocation.
pub fn decode_seq<T: Codec>(input: &mut Input<'_>) -> Result<Vec<T>, StoreError> {
    let count = u32::decode_from(input)? as usize;
    if count > input.remaining() {
        return Err(StoreError::corrupt(format!(
            "sequence claims {count} elements but only {} bytes remain",
            input.remaining()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(T::decode_from(input)?);
    }
    Ok(out)
}

/// Encode a [`QueryKind`] as a one-byte tag plus a `u32` parameter.
pub fn encode_kind(kind: QueryKind, out: &mut Vec<u8>) {
    let (tag, param): (u8, u32) = match kind {
        QueryKind::Sorted => (0, 0),
        QueryKind::Bst => (1, 0),
        QueryKind::BstPrefetch => (2, 0),
        QueryKind::Btree(b) => (3, b as u32),
        QueryKind::Veb => (4, 0),
    };
    tag.encode_into(out);
    param.encode_into(out);
}

/// Decode a [`QueryKind`] written by [`encode_kind`].
pub fn decode_kind(input: &mut Input<'_>) -> Result<QueryKind, StoreError> {
    let tag = u8::decode_from(input)?;
    let param = u32::decode_from(input)?;
    match tag {
        0 => Ok(QueryKind::Sorted),
        1 => Ok(QueryKind::Bst),
        2 => Ok(QueryKind::BstPrefetch),
        3 => {
            if param == 0 || param > 1 << 20 {
                return Err(StoreError::corrupt(format!(
                    "implausible B-tree node width {param}"
                )));
            }
            Ok(QueryKind::Btree(param as usize))
        }
        4 => Ok(QueryKind::Veb),
        t => Err(StoreError::corrupt(format!("unknown layout tag {t:#04x}"))),
    }
}

/// Encode an [`Algorithm`] as a one-byte tag.
pub fn encode_algorithm(algorithm: Algorithm, out: &mut Vec<u8>) {
    let tag: u8 = match algorithm {
        Algorithm::Involution => 0,
        Algorithm::CycleLeader => 1,
    };
    tag.encode_into(out);
}

/// Decode an [`Algorithm`] written by [`encode_algorithm`].
pub fn decode_algorithm(input: &mut Input<'_>) -> Result<Algorithm, StoreError> {
    match u8::decode_from(input)? {
        0 => Ok(Algorithm::Involution),
        1 => Ok(Algorithm::CycleLeader),
        t => Err(StoreError::corrupt(format!(
            "unknown algorithm tag {t:#04x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode_into(&mut buf);
        let mut input = Input::new(&buf);
        assert_eq!(T::decode_from(&mut input).unwrap(), v);
        assert!(input.is_empty());
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u64::MAX);
        round_trip(-1i64);
        round_trip(true);
        round_trip(String::from("héllo"));
        round_trip(vec![1u8, 2, 3]);
        round_trip(Option::<u64>::None);
        round_trip(Some((3u32, String::from("x"))));
        round_trip((1u64, 2u64, vec![9u8]));
    }

    #[test]
    fn corrupt_lengths_do_not_allocate() {
        // A length prefix far beyond the actual input must fail fast.
        let mut buf = Vec::new();
        u32::MAX.encode_into(&mut buf);
        assert!(Vec::<u8>::decode_from(&mut Input::new(&buf)).is_err());
        assert!(decode_seq::<u64>(&mut Input::new(&buf)).is_err());
    }

    #[test]
    fn kind_and_algorithm_round_trip() {
        for kind in [
            QueryKind::Sorted,
            QueryKind::Bst,
            QueryKind::BstPrefetch,
            QueryKind::Btree(8),
            QueryKind::Veb,
        ] {
            let mut buf = Vec::new();
            encode_kind(kind, &mut buf);
            assert_eq!(decode_kind(&mut Input::new(&buf)).unwrap(), kind);
        }
        for algorithm in [Algorithm::Involution, Algorithm::CycleLeader] {
            let mut buf = Vec::new();
            encode_algorithm(algorithm, &mut buf);
            assert_eq!(decode_algorithm(&mut Input::new(&buf)).unwrap(), algorithm);
        }
    }

    #[test]
    fn random_bytes_never_panic() {
        // Cheap deterministic byte soup; decoding must return, not panic.
        let mut state = 0x9e37_79b9u64;
        for len in 0..64 {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            let _ = u64::decode_from(&mut Input::new(&bytes));
            let _ = String::decode_from(&mut Input::new(&bytes));
            let _ = Vec::<u8>::decode_from(&mut Input::new(&bytes));
            let _ = Option::<(u64, u64)>::decode_from(&mut Input::new(&bytes));
            let _ = decode_seq::<u32>(&mut Input::new(&bytes));
            let _ = decode_kind(&mut Input::new(&bytes));
        }
    }
}
