//! Immutable run files: one implicit-layout run serialized as a fixed
//! header plus three contiguous sections.
//!
//! ## File format
//!
//! ```text
//! offset 0                                      97
//! +--------------------------------------------+------+--------+---------+
//! | header (fixed 97 bytes, crc-terminated)    | keys | values | weights |
//! +--------------------------------------------+------+--------+---------+
//!
//! header := magic "IST-RUN\0" (8) | version u32 | kind tag u8 |
//!           kind param u32 | n u64 | seq_lo u64 | seq_hi u64 |
//!           keys_len u64 | keys_crc u64 | vals_len u64 | vals_crc u64 |
//!           wts_len u64 | wts_crc u64 | crc64(header[..89]) u64
//! ```
//!
//! The sections hold the run's three parallel arrays **in layout
//! order** (the order the in-memory `AlignedVec`s already use), so a
//! load is one sequential pass with no re-permutation: fixed-width
//! keys are adopted into an aligned buffer by a single bulk read, and
//! the weight prefix is always a raw little-endian `i64` column. The
//! whole file is produced by a single sequential write at seal or
//! compaction-install time and never modified afterwards.
//!
//! This module frames and checksums the sections; how key/value bytes
//! are produced and consumed is the caller's contract (see the
//! persistence module in `ist-dynamic`, which owns the generic
//! encode/decode and the zero-copy adoption).

use std::path::Path;

use crate::checksum::{crc64, Crc64};
use crate::codec::{decode_kind, encode_kind, Codec, Input};
use crate::error::StoreError;
use crate::vfs::{ReadFile, Vfs};
use ist_query::QueryKind;

/// Leading bytes of every run file.
pub const RUN_MAGIC: &[u8; 8] = b"IST-RUN\0";
/// Newest run-file format version this build reads and writes.
pub const RUN_VERSION: u32 = 1;
/// Exact byte length of the fixed header.
pub const RUN_HEADER_LEN: usize = 8 + 4 + 1 + 4 + 8 * 10;

/// Parsed run-file header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunHeader {
    /// Layout of the serialized run.
    pub kind: QueryKind,
    /// Number of key/slot pairs.
    pub n: u64,
    /// First mutation sequence number the run absorbed.
    pub seq_lo: u64,
    /// Last mutation sequence number the run absorbed.
    pub seq_hi: u64,
    /// Byte length of the keys section.
    pub keys_len: u64,
    /// Checksum of the keys section.
    pub keys_crc: u64,
    /// Byte length of the values section.
    pub vals_len: u64,
    /// Checksum of the values section.
    pub vals_crc: u64,
    /// Byte length of the weight-prefix section.
    pub wts_len: u64,
    /// Checksum of the weight-prefix section.
    pub wts_crc: u64,
}

impl RunHeader {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RUN_HEADER_LEN);
        out.extend_from_slice(RUN_MAGIC);
        RUN_VERSION.encode_into(&mut out);
        encode_kind(self.kind, &mut out);
        self.n.encode_into(&mut out);
        self.seq_lo.encode_into(&mut out);
        self.seq_hi.encode_into(&mut out);
        self.keys_len.encode_into(&mut out);
        self.keys_crc.encode_into(&mut out);
        self.vals_len.encode_into(&mut out);
        self.vals_crc.encode_into(&mut out);
        self.wts_len.encode_into(&mut out);
        self.wts_crc.encode_into(&mut out);
        crc64(&out).encode_into(&mut out);
        debug_assert_eq!(out.len(), RUN_HEADER_LEN);
        out
    }

    /// Parse a fixed-size header block. Total over arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < RUN_HEADER_LEN {
            return Err(StoreError::Truncated { what: "run header" });
        }
        let bytes = &bytes[..RUN_HEADER_LEN];
        if &bytes[..8] != RUN_MAGIC {
            return Err(StoreError::BadMagic { what: "run" });
        }
        let mut input = Input::new(&bytes[8..]);
        let version = u32::decode_from(&mut input)?;
        // Verify the checksum before interpreting any other field.
        let stored_crc = u64::decode_from(&mut Input::new(&bytes[RUN_HEADER_LEN - 8..]))?;
        if crc64(&bytes[..RUN_HEADER_LEN - 8]) != stored_crc {
            return Err(StoreError::ChecksumMismatch { what: "run header" });
        }
        if version != RUN_VERSION {
            return Err(StoreError::UnsupportedVersion {
                what: "run",
                found: version,
                supported: RUN_VERSION,
            });
        }
        let kind = decode_kind(&mut input)?;
        Ok(RunHeader {
            kind,
            n: u64::decode_from(&mut input)?,
            seq_lo: u64::decode_from(&mut input)?,
            seq_hi: u64::decode_from(&mut input)?,
            keys_len: u64::decode_from(&mut input)?,
            keys_crc: u64::decode_from(&mut input)?,
            vals_len: u64::decode_from(&mut input)?,
            vals_crc: u64::decode_from(&mut input)?,
            wts_len: u64::decode_from(&mut input)?,
            wts_crc: u64::decode_from(&mut input)?,
        })
    }
}

/// The three serialized sections of a run, in file order.
#[derive(Debug, Clone, Copy)]
pub struct RunSections<'a> {
    /// Keys in layout order.
    pub keys: &'a [u8],
    /// Tombstone bitmap + present values in layout order.
    pub values: &'a [u8],
    /// Rank-indexed weight prefix (`n + 1` raw LE `i64`s).
    pub weights: &'a [u8],
}

/// Serialize a run into its on-disk representation (header + sections).
#[must_use]
pub fn encode_run(kind: QueryKind, n: u64, seq: (u64, u64), sections: RunSections<'_>) -> Vec<u8> {
    let header = RunHeader {
        kind,
        n,
        seq_lo: seq.0,
        seq_hi: seq.1,
        keys_len: sections.keys.len() as u64,
        keys_crc: crc64(sections.keys),
        vals_len: sections.values.len() as u64,
        vals_crc: crc64(sections.values),
        wts_len: sections.weights.len() as u64,
        wts_crc: crc64(sections.weights),
    };
    let mut out = Vec::with_capacity(
        RUN_HEADER_LEN + sections.keys.len() + sections.values.len() + sections.weights.len(),
    );
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(sections.keys);
    out.extend_from_slice(sections.values);
    out.extend_from_slice(sections.weights);
    out
}

/// Durably write a run file in one sequential write.
pub fn write_run(
    vfs: &dyn Vfs,
    path: &Path,
    kind: QueryKind,
    n: u64,
    seq: (u64, u64),
    sections: RunSections<'_>,
) -> Result<(), StoreError> {
    use std::io::Write as _;
    let bytes = encode_run(kind, n, seq, sections);
    let mut file = vfs.create(path)?;
    file.write_all(&bytes)?;
    file.sync()?;
    Ok(())
}

/// The three sections, in mandatory read order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Keys,
    Values,
    Weights,
    Done,
}

/// Single-pass, checksum-verifying reader for a run file.
///
/// [`RunReader::open`] validates the header and checks that the
/// declared section lengths exactly tile the physical file *before*
/// the caller allocates anything based on them; the sections are then
/// consumed strictly in file order, each verified against its
/// checksum as it streams out.
pub struct RunReader {
    header: RunHeader,
    file: Box<dyn ReadFile>,
    next: Section,
}

impl std::fmt::Debug for RunReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunReader")
            .field("header", &self.header)
            .field("next", &self.next)
            .finish()
    }
}

impl RunReader {
    /// Open `path`, verify the header, and validate the section table
    /// against the physical file size.
    pub fn open(vfs: &dyn Vfs, path: &Path) -> Result<Self, StoreError> {
        let mut file = vfs.open_read(path)?;
        let mut header_bytes = [0u8; RUN_HEADER_LEN];
        read_exact_or_truncated(&mut file, &mut header_bytes, "run header")?;
        let header = RunHeader::decode(&header_bytes)?;
        let declared = (RUN_HEADER_LEN as u64)
            .checked_add(header.keys_len)
            .and_then(|x| x.checked_add(header.vals_len))
            .and_then(|x| x.checked_add(header.wts_len))
            .ok_or_else(|| StoreError::corrupt("run section lengths overflow"))?;
        if declared != file.len() {
            return Err(StoreError::corrupt(format!(
                "run sections declare {declared} bytes but file has {}",
                file.len()
            )));
        }
        Ok(RunReader {
            header,
            file,
            next: Section::Keys,
        })
    }

    /// The verified header.
    #[must_use]
    pub fn header(&self) -> &RunHeader {
        &self.header
    }

    fn advance(&mut self, expect: Section) -> (u64, u64) {
        assert_eq!(self.next, expect, "run sections must be read in file order");
        let (len, crc) = match expect {
            Section::Keys => (self.header.keys_len, self.header.keys_crc),
            Section::Values => (self.header.vals_len, self.header.vals_crc),
            Section::Weights => (self.header.wts_len, self.header.wts_crc),
            Section::Done => unreachable!(),
        };
        self.next = match expect {
            Section::Keys => Section::Values,
            Section::Values => Section::Weights,
            Section::Weights | Section::Done => Section::Done,
        };
        (len, crc)
    }

    fn read_verified(
        &mut self,
        expect: Section,
        what: &'static str,
        dst: &mut [u8],
    ) -> Result<(), StoreError> {
        let (len, crc) = self.advance(expect);
        assert_eq!(dst.len() as u64, len, "destination must match section size");
        // Fill in bounded chunks, folding each into the checksum while
        // it is still cache-hot: one pass of memory traffic instead of
        // a read followed by a full re-scan of a multi-megabyte
        // section — on the cold-start path both passes run at memory
        // bandwidth, so fusing them nearly halves the cost.
        const CHUNK: usize = 256 * 1024;
        let mut hasher = Crc64::new();
        let mut filled = 0;
        while filled < dst.len() {
            let end = (filled + CHUNK).min(dst.len());
            read_exact_or_truncated(&mut self.file, &mut dst[filled..end], what)?;
            hasher.update(&dst[filled..end]);
            filled = end;
        }
        if hasher.finalize() != crc {
            return Err(StoreError::ChecksumMismatch { what });
        }
        Ok(())
    }

    /// Byte length of the keys section (for sizing the destination).
    #[must_use]
    pub fn keys_len(&self) -> usize {
        self.header.keys_len as usize
    }

    /// Stream the keys section directly into `dst` (which must be
    /// exactly [`keys_len`](Self::keys_len) bytes — typically the raw
    /// bytes of a freshly allocated aligned key buffer) and verify it.
    pub fn read_keys_into(&mut self, dst: &mut [u8]) -> Result<(), StoreError> {
        self.read_verified(Section::Keys, "keys section", dst)
    }

    /// Read and verify the keys section into a fresh buffer.
    pub fn read_keys(&mut self) -> Result<Vec<u8>, StoreError> {
        let mut buf = vec![0u8; self.header.keys_len as usize];
        self.read_keys_into(&mut buf)?;
        Ok(buf)
    }

    /// Read and verify the values section.
    pub fn read_values(&mut self) -> Result<Vec<u8>, StoreError> {
        let mut buf = vec![0u8; self.header.vals_len as usize];
        self.read_verified(Section::Values, "values section", &mut buf)?;
        Ok(buf)
    }

    /// Stream the values section through `sink` in bounded chunks,
    /// without materializing it: the caller decodes each cache-hot
    /// chunk as it arrives instead of re-scanning a section-sized
    /// buffer. The checksum is verified *after* the last chunk — the
    /// sink sees unverified bytes and must treat them as untrusted
    /// (the decoders are total, so a corrupt stream yields `Err`
    /// either from the sink or from the final checksum comparison,
    /// never a panic).
    pub fn read_values_with(
        &mut self,
        mut sink: impl FnMut(&[u8]) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let (len, crc) = self.advance(Section::Values);
        const CHUNK: usize = 256 * 1024;
        let mut remaining = usize::try_from(len)
            .map_err(|_| StoreError::corrupt("values section exceeds address space"))?;
        let mut buf = vec![0u8; CHUNK.min(remaining)];
        let mut hasher = Crc64::new();
        while remaining > 0 {
            let take = CHUNK.min(remaining);
            read_exact_or_truncated(&mut self.file, &mut buf[..take], "values section")?;
            hasher.update(&buf[..take]);
            sink(&buf[..take])?;
            remaining -= take;
        }
        if hasher.finalize() != crc {
            return Err(StoreError::ChecksumMismatch {
                what: "values section",
            });
        }
        Ok(())
    }

    /// Byte length of the weights section.
    #[must_use]
    pub fn weights_len(&self) -> usize {
        self.header.wts_len as usize
    }

    /// Stream the weight-prefix section into `dst` (exactly
    /// [`weights_len`](Self::weights_len) bytes) and verify it.
    pub fn read_weights_into(&mut self, dst: &mut [u8]) -> Result<(), StoreError> {
        self.read_verified(Section::Weights, "weights section", dst)
    }
}

fn read_exact_or_truncated(
    file: &mut Box<dyn ReadFile>,
    dst: &mut [u8],
    what: &'static str,
) -> Result<(), StoreError> {
    use std::io::Read as _;
    let mut filled = 0;
    while filled < dst.len() {
        match file.read(&mut dst[filled..]) {
            Ok(0) => return Err(StoreError::Truncated { what }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use std::path::PathBuf;

    fn write_sample(vfs: &MemVfs, path: &Path) {
        let keys: Vec<u8> = (0..32).collect();
        let values = vec![0xFFu8; 7];
        let weights = vec![1u8; 40];
        write_run(
            vfs,
            path,
            QueryKind::Btree(8),
            4,
            (10, 20),
            RunSections {
                keys: &keys,
                values: &values,
                weights: &weights,
            },
        )
        .unwrap();
    }

    #[test]
    fn round_trip_sections() {
        let vfs = MemVfs::new();
        let path = PathBuf::from("/run-000000.ist");
        write_sample(&vfs, &path);
        let mut r = RunReader::open(&vfs, &path).unwrap();
        assert_eq!(r.header().kind, QueryKind::Btree(8));
        assert_eq!(r.header().n, 4);
        assert_eq!((r.header().seq_lo, r.header().seq_hi), (10, 20));
        assert_eq!(r.read_keys().unwrap(), (0..32).collect::<Vec<u8>>());
        assert_eq!(r.read_values().unwrap(), vec![0xFF; 7]);
        let mut wts = vec![0u8; r.weights_len()];
        r.read_weights_into(&mut wts).unwrap();
        assert_eq!(wts, vec![1u8; 40]);
    }

    #[test]
    fn every_byte_flip_fails_loudly() {
        let vfs = MemVfs::new();
        let path = PathBuf::from("/run-000000.ist");
        write_sample(&vfs, &path);
        let len = vfs.file_len(&path).unwrap();
        for byte in 0..len {
            assert!(vfs.flip_bit(&path, byte * 8 + (byte % 8)));
            let outcome = RunReader::open(&vfs, &path).and_then(|mut r| {
                r.read_keys()?;
                r.read_values()?;
                let mut wts = vec![0u8; r.weights_len()];
                r.read_weights_into(&mut wts)
            });
            assert!(outcome.is_err(), "flip in byte {byte} went undetected");
            assert!(vfs.flip_bit(&path, byte * 8 + (byte % 8))); // restore
        }
    }

    #[test]
    fn every_truncation_fails_loudly() {
        let vfs = MemVfs::new();
        let path = PathBuf::from("/run-000000.ist");
        write_sample(&vfs, &path);
        let full = vfs.file_bytes(&path).unwrap();
        for cut in 0..full.len() {
            assert!(vfs.truncate(&path, cut as u64));
            let outcome = RunReader::open(&vfs, &path).and_then(|mut r| {
                r.read_keys()?;
                r.read_values()?;
                let mut wts = vec![0u8; r.weights_len()];
                r.read_weights_into(&mut wts)
            });
            assert!(outcome.is_err(), "truncation to {cut} went undetected");
            // Restore.
            use std::io::Write as _;
            let mut f = vfs.create(&path).unwrap();
            f.write_all(&full).unwrap();
            f.sync().unwrap();
        }
    }

    #[test]
    fn header_fuzz_never_panics() {
        let mut state = 7u64;
        for len in 0..(RUN_HEADER_LEN + 8) {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 48) as u8
                })
                .collect();
            let _ = RunHeader::decode(&bytes);
        }
    }
}
