//! CRC-64 (ECMA-182 polynomial, as used by XZ). Run files checksum
//! every section on both write and read, so this sits on the
//! cold-start critical path; two implementations share one stream:
//!
//! * **slicing-by-8** — eight compile-time lookup tables fold a whole
//!   64-bit word per step, breaking the byte-serial dependency chain.
//!   Portable baseline, ~1 GB/s.
//! * **carry-less-multiply folding** (`x86_64` with `pclmulqdq`,
//!   runtime-detected) — four 128-bit accumulators each fold 64 bytes
//!   per iteration by multiplying with precomputed `x^(N-1) mod P`
//!   constants, then collapse through the table path for the final
//!   reduction. An order of magnitude faster on large buffers.
//!
//! A 64-bit CRC keeps the per-record overhead at one word while still
//! detecting every burst error shorter than the polynomial and any
//! single bit flip — the corruption classes the fault-injection suite
//! exercises. Table and constant generation are `const fn`s, so the
//! 16 KiB of tables are baked into the binary with no startup cost.

const POLY: u64 = 0xC96C_5795_D787_0F42; // ECMA-182, reflected

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[t][b]` is
/// the CRC contribution of byte `b` seen `t` positions before the end
/// of an 8-byte word.
const fn make_tables() -> [[u64; 256]; 8] {
    let mut tables = [[0u64; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u64; 256]; 8] = make_tables();

/// Fold `bytes` into a running (pre-inversion) CRC state, dispatching
/// to the carry-less-multiply path for large buffers when the CPU has
/// it.
fn fold(crc: u64, bytes: &[u8]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if bytes.len() >= 128 && std::arch::is_x86_feature_detected!("pclmulqdq") {
        // SAFETY: feature presence just checked.
        return unsafe { clmul::fold_pclmul(crc, bytes) };
    }
    fold_table(crc, bytes)
}

/// Slicing-by-8 fold: the portable baseline, and the final-reduction
/// step of the carry-less-multiply path.
fn fold_table(mut crc: u64, bytes: &[u8]) -> u64 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = crc ^ u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        crc = TABLES[7][(word & 0xFF) as usize]
            ^ TABLES[6][((word >> 8) & 0xFF) as usize]
            ^ TABLES[5][((word >> 16) & 0xFF) as usize]
            ^ TABLES[4][((word >> 24) & 0xFF) as usize]
            ^ TABLES[3][((word >> 32) & 0xFF) as usize]
            ^ TABLES[2][((word >> 40) & 0xFF) as usize]
            ^ TABLES[1][((word >> 48) & 0xFF) as usize]
            ^ TABLES[0][(word >> 56) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Carry-less-multiply (PCLMULQDQ) folding for the bulk of a large
/// buffer.
///
/// The reflected-CRC register convention here: a 128-bit lane read as
/// a little-endian value `v` encodes the polynomial whose coefficient
/// of `x^(127-i)` is bit `i` of `v` — exactly the mirrored polynomial
/// of those 16 bytes as a message fragment. Under that convention,
/// multiplying a lane half's content by `x^N (mod P)` is a single
/// `clmul` with the constant `rev64(x^(N-1) mod P)` (the `N-1`
/// absorbs the one-bit skew of carry-less products of bit-reversed
/// operands). Folding one lane over a 16-byte stride therefore
/// multiplies its low half (the *earlier*, higher-degree bytes) by
/// `x^192` and its high half by `x^128`; the four-accumulator loop
/// uses the 64-byte-stride constants `x^576`/`x^512`.
///
/// The final 128→64-bit reduction reuses the table path: because the
/// accumulator register *is* the mirrored polynomial of its own 16
/// bytes, running those bytes through the table fold from state 0
/// yields the exact table-algorithm state — no Barrett reduction
/// needed, and the two implementations can never disagree on the
/// stream's tail handling.
#[cfg(target_arch = "x86_64")]
mod clmul {
    use core::arch::x86_64::*;

    /// Low 64 bits of the ECMA-182 polynomial, normal (non-reflected)
    /// bit order: `P = x^64 + POLY_NORMAL`.
    const POLY_NORMAL: u64 = 0x42F0_E1EB_A9EA_3693;

    /// `x^n mod P` in normal bit order, for `n >= 64`.
    const fn xpow_mod(n: u32) -> u64 {
        let mut r = POLY_NORMAL; // x^64 mod P
        let mut i = 64;
        while i < n {
            r = if r >> 63 != 0 {
                (r << 1) ^ POLY_NORMAL
            } else {
                r << 1
            };
            i += 1;
        }
        r
    }

    /// Fold constants: `rev64(x^(N-1) mod P)` advances a mirrored
    /// 64-bit half by `N` bits.
    const K_128: u64 = xpow_mod(127).reverse_bits();
    const K_192: u64 = xpow_mod(191).reverse_bits();
    const K_512: u64 = xpow_mod(511).reverse_bits();
    const K_576: u64 = xpow_mod(575).reverse_bits();

    /// Unaligned 16-byte load of block `i`. `sse2` is in the `x86_64`
    /// baseline, so no feature gate is needed.
    ///
    /// # Safety
    /// At least `16 * (i + 1)` bytes must be readable from `ptr`.
    #[inline(always)]
    unsafe fn load(ptr: *const u8, i: usize) -> __m128i {
        // SAFETY: caller guarantees at least `16 * (i + 1)` bytes are
        // readable from `ptr`; `_mm_loadu_si128` tolerates any
        // alignment and `sse2` is in the `x86_64` baseline.
        unsafe { _mm_loadu_si128(ptr.add(i * 16).cast()) }
    }

    /// One fold step: advance `x` by the stride encoded in `k`
    /// (`k = [lo-half constant, hi-half constant]`) and absorb the
    /// next data block `y`.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports `pclmulqdq` and `sse2`.
    #[inline]
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    unsafe fn fold16(x: __m128i, k: __m128i, y: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128::<0x00>(x, k);
        let hi = _mm_clmulepi64_si128::<0x11>(x, k);
        _mm_xor_si128(_mm_xor_si128(lo, hi), y)
    }

    /// Fold `bytes` (any length >= 16) into the running state `crc`.
    ///
    /// # Safety
    /// Caller must ensure the CPU supports `pclmulqdq`.
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    pub unsafe fn fold_pclmul(crc: u64, bytes: &[u8]) -> u64 {
        let n16 = bytes.len() / 16;
        debug_assert!(n16 >= 1, "clmul path needs at least one block");
        let (blocks, tail) = bytes.split_at(n16 * 16);
        let p = blocks.as_ptr();
        // SAFETY: `blocks` holds exactly `n16` full 16-byte blocks, so
        // every `load(p, i)` below has `i < n16` and reads in bounds;
        // the clmul intrinsics are covered by the caller's cpuid check
        // (this fn's safety contract) and the fn's own target_feature.
        unsafe {
            let k128 = _mm_set_epi64x(K_128 as i64, K_192 as i64);
            // The running state xors into the *first* 8 bytes: in the
            // mirrored convention the existing state occupies the
            // highest-degree (earliest) positions.
            let crc_v = _mm_cvtsi64_si128(crc as i64);
            let mut i;
            let mut x;
            if n16 >= 8 {
                // Four independent accumulators, 64 bytes per iteration:
                // the clmul latency chains run in parallel.
                let k512 = _mm_set_epi64x(K_512 as i64, K_576 as i64);
                let mut x0 = _mm_xor_si128(load(p, 0), crc_v);
                let mut x1 = load(p, 1);
                let mut x2 = load(p, 2);
                let mut x3 = load(p, 3);
                i = 4;
                while i + 4 <= n16 {
                    x0 = fold16(x0, k512, load(p, i));
                    x1 = fold16(x1, k512, load(p, i + 1));
                    x2 = fold16(x2, k512, load(p, i + 2));
                    x3 = fold16(x3, k512, load(p, i + 3));
                    i += 4;
                }
                // Collapse the accumulators (each 16 bytes apart) into one.
                x = fold16(x0, k128, x1);
                x = fold16(x, k128, x2);
                x = fold16(x, k128, x3);
            } else {
                x = _mm_xor_si128(load(p, 0), crc_v);
                i = 1;
            }
            while i < n16 {
                x = fold16(x, k128, load(p, i));
                i += 1;
            }
            // Final reduction via the table path: the register's 16
            // bytes are the mirrored remainder-so-far, so table-folding
            // them from state 0 produces the exact table-algorithm
            // state.
            let mut buf = [0u8; 16];
            _mm_storeu_si128(buf.as_mut_ptr().cast(), x);
            super::fold_table(super::fold_table(0, &buf), tail)
        }
    }
}

/// CRC-64/XZ of `bytes` (init `!0`, reflected, final xor `!0`).
#[must_use]
pub fn crc64(bytes: &[u8]) -> u64 {
    !fold(!0u64, bytes)
}

/// Incremental CRC-64 over multiple slices (same stream as [`crc64`]
/// over their concatenation).
#[derive(Debug, Clone)]
pub struct Crc64 {
    state: u64,
}

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self { state: !0u64 }
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = fold(self.state, bytes);
    }

    /// Finish and return the checksum.
    #[must_use]
    pub fn finalize(&self) -> u64 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Crc64::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc64(data));
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn clmul_matches_table_every_length() {
        if !std::arch::is_x86_feature_detected!("pclmulqdq") {
            return;
        }
        // Deterministic pseudo-random buffer; compare the clmul fold
        // against the table fold at every length (covering the
        // single-lane, multi-lane, four-accumulator, and ragged-tail
        // regimes) and at an unaligned offset.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..2048)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        for len in 16..512 {
            let table = fold_table(!0u64, &data[..len]);
            // SAFETY: feature presence checked above.
            let fast = unsafe { clmul::fold_pclmul(!0u64, &data[..len]) };
            assert_eq!(fast, table, "clmul diverged at length {len}");
            let table = fold_table(!0u64, &data[3..3 + len]);
            // SAFETY: feature presence checked above.
            let fast = unsafe { clmul::fold_pclmul(!0u64, &data[3..3 + len]) };
            assert_eq!(fast, table, "clmul diverged at offset 3, length {len}");
        }
        let table = fold_table(0x1234_5678_9ABC_DEF0, &data);
        // SAFETY: feature presence checked above.
        let fast = unsafe { clmul::fold_pclmul(0x1234_5678_9ABC_DEF0, &data) };
        assert_eq!(fast, table, "clmul diverged on full buffer");
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"durability is a property of the crash schedule";
        let base = crc64(data);
        let mut copy = data.to_vec();
        for bit in 0..copy.len() * 8 {
            copy[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc64(&copy), base, "flip at bit {bit} went undetected");
            copy[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
