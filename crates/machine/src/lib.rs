//! # ist-machine
//!
//! The **machine abstraction** behind the construction algorithms: each of
//! the paper's six constructions (involution × cycle-leader for BST /
//! B-tree / vEB) is written **once** in `ist-core`, generic over the
//! [`Machine`] trait defined here, and instantiated per execution
//! substrate:
//!
//! * [`Ram`] (this crate) — plain `&mut [T]` plus threads: the production
//!   path. Monomorphization folds the abstraction away, so the generated
//!   code is the direct implementation.
//! * `TrackedArray` in `ist-pem-sim` — charges Parallel External Memory
//!   block I/Os per primitive through per-processor LRU caches.
//! * `Gpu` in `ist-gpu-sim` — charges kernel launches, memory
//!   transactions, and per-lane compute per primitive (the paper's
//!   Figure 6.8 cost model).
//!
//! The trait's altitude is deliberate: the primitives are the units the
//! paper *analyzes* — involution swap rounds, equidistant gathers
//! (plain and chunked), circular shifts, and recursive subtree tasks — so
//! a cost-model backend can price each one the way the corresponding
//! analysis chapter does, while the Ram backend lowers each to the obvious
//! loops. Every backend executes the *same* index arithmetic, so permuted
//! output is bit-identical across backends (asserted by the workspace's
//! equivalence tests).

use ist_gather::{
    equidistant_gather, equidistant_gather_chunks, equidistant_gather_chunks_par,
    equidistant_gather_par, gather_len,
};
use ist_perm::{apply_involution_range, SharedSlice};
use ist_shuffle::{rotate_right, rotate_right_par};
use rayon::prelude::*;
use std::marker::PhantomData;

/// The index arithmetic evaluated per element of an involution round.
///
/// Pure metadata: `Ram` and the PEM backend ignore it, while the GPU
/// backend prices the per-lane compute with it (hardware bit reversal vs
/// software digit loops vs extended-Euclid `J` maps — the paper's
/// `T_REV` parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexArith {
    /// Binary digit reversal over `d` bits (`T_REV₂`).
    Rev2 {
        /// Number of reversed bits.
        d: u32,
    },
    /// Base-`k` digit reversal over `m` digits.
    RevK {
        /// Digit base.
        k: u64,
        /// Number of reversed digits.
        m: u32,
    },
    /// Modular-inverse `J` involution over a domain of `len` positions
    /// (extended-Euclid arithmetic per evaluation).
    Jmap {
        /// Domain size of the involution.
        len: usize,
    },
}

/// How a gather participates in kernel-launch accounting.
///
/// The paper's GPU implementation batches all equidistant gathers at one
/// recursion depth of the extended gather into a single kernel round
/// (§6.0.3); per-launch backends charge fixed costs only for the
/// representative of such a batch. Backends without launch overhead
/// ignore this entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherMode {
    /// A stand-alone gather: fixed costs are charged unconditionally.
    Standalone,
    /// One gather of a depth-level batch; `representative` marks the
    /// single member that carries the batch's fixed costs.
    Batched {
        /// Whether this member carries the batch's fixed costs.
        representative: bool,
    },
}

/// A recursive subtree task: a region of the array plus an
/// algorithm-specific tag (typically the subtree height).
///
/// Tasks passed to [`Machine::run_tasks`] in one call MUST cover pairwise
/// disjoint regions — that is what lets the Ram backend run them
/// concurrently (debug builds verify it).
#[derive(Debug, Clone)]
pub struct Region<K> {
    /// First index of the region.
    pub lo: usize,
    /// Region length in elements.
    pub len: usize,
    /// Algorithm-specific payload.
    pub tag: K,
}

impl<K> Region<K> {
    /// Convenience constructor.
    pub fn new(lo: usize, len: usize, tag: K) -> Self {
        Self { lo, len, tag }
    }
}

/// An execution substrate for the construction algorithms.
///
/// All indices are **global** (relative to the machine's full array);
/// recursive algorithms carry their region offsets explicitly, which is
/// what lets cost backends observe true addresses (cache blocks, memory
/// transaction segments) rather than region-relative ones.
pub trait Machine {
    /// Element type held by the machine's array.
    type Elem: Send;

    /// Total number of elements.
    fn len(&self) -> usize;

    /// `true` iff the array is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Apply the involution `f` on `[lo, hi)` as one round of disjoint
    /// swaps: each unordered pair `{i, f(i)}` with `i < f(i)` is swapped
    /// exactly once. `f` must map `[lo, hi)` into itself and satisfy
    /// `f(f(i)) = i`; `arith` describes its per-evaluation cost.
    fn involution_round<F>(&mut self, lo: usize, hi: usize, arith: IndexArith, f: F)
    where
        F: Fn(usize) -> usize + Sync;

    /// Equidistant gather (two-stage cycle-leader, `r ≤ l`) of the region
    /// `[lo, lo + r + (r+1)·l)`.
    fn gather(&mut self, lo: usize, r: usize, l: usize, mode: GatherMode);

    /// Chunked equidistant gather of `[lo, lo + (r + (r+1)·l)·chunk)`,
    /// treating each `chunk` consecutive elements as one unit.
    fn gather_chunks(&mut self, lo: usize, r: usize, l: usize, chunk: usize, mode: GatherMode);

    /// Circular shift of `[lo, hi)` right by `amount` positions.
    fn rotate_right(&mut self, lo: usize, hi: usize, amount: usize);

    /// Execute `f` once per task. Tasks cover pairwise disjoint regions
    /// and may therefore run concurrently; sequential backends run them
    /// in order, which recursion-sensitive cost models (GPU launches)
    /// rely on.
    fn run_tasks<K, F>(&mut self, tasks: Vec<Region<K>>, f: F)
    where
        K: Send + Sync,
        F: Fn(&mut Self, &Region<K>) + Sync;

    /// Regions of at most this many elements should be handed to
    /// [`Machine::local_task`] as one unit instead of being decomposed
    /// further. `0` (the default) disables local handling.
    fn local_threshold(&self) -> usize {
        0
    }

    /// Process a whole small region as a single local task (e.g. one GPU
    /// thread block permuting a subtree in shared memory). `f` receives
    /// the region's elements and must leave a permutation of them.
    fn local_task<F>(&mut self, lo: usize, len: usize, f: F)
    where
        F: FnOnce(&mut [Self::Elem]);
}

/// Below this many elements the parallel Ram backend keeps an involution
/// round on the calling thread (same grain as `ist_perm`'s).
const RAM_PAR_GRAIN: usize = 1 << 13;

/// Minimum region size worth a spawned task in [`Ram::run_tasks`].
const RAM_TASK_GRAIN: usize = 1 << 12;

/// Rotations below this length run sequentially even on a parallel Ram.
const RAM_ROTATE_GRAIN: usize = 1 << 14;

/// The production backend: the caller's array in RAM, lowered to direct
/// loops (sequential mode) or rayon-style fork-join execution (parallel
/// mode).
///
/// Internally a `Ram` is a raw view (pointer + length) over the borrowed
/// slice so that disjoint recursive tasks can hold simultaneous views —
/// the same discipline as [`ist_perm::SharedSlice`], with the disjointness
/// obligations discharged by the `Machine` contract ([`Region`]s of one
/// `run_tasks` call never overlap; debug builds assert it).
pub struct Ram<'a, T> {
    base: *mut T,
    len: usize,
    par: bool,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a `Ram` view is handed across threads only by `run_tasks`,
// whose tasks touch disjoint regions; elements themselves move between
// threads, hence `T: Send`.
unsafe impl<'a, T: Send> Send for Ram<'a, T> {}

impl<'a, T: Send> Ram<'a, T> {
    /// Sequential machine over `data`.
    pub fn seq(data: &'a mut [T]) -> Self {
        Self::with_mode(data, false)
    }

    /// Parallel machine over `data`.
    pub fn par(data: &'a mut [T]) -> Self {
        Self::with_mode(data, true)
    }

    /// Machine over `data`; parallel iff `par`.
    pub fn with_mode(data: &'a mut [T], par: bool) -> Self {
        Self {
            base: data.as_mut_ptr(),
            len: data.len(),
            par,
            _marker: PhantomData,
        }
    }

    /// An aliasing view used to hand disjoint tasks to worker threads.
    fn view(&self) -> Self {
        Self {
            base: self.base,
            len: self.len,
            par: self.par,
            _marker: PhantomData,
        }
    }

    /// Reborrow `[lo, lo+len)` as a mutable slice.
    ///
    /// The bounds check is unconditional (it runs once per primitive, not
    /// per element): the algorithm entry points derive region sizes from
    /// caller-supplied tree heights, and a mismatch against the actual
    /// array length must panic — never hand out an oversized raw slice —
    /// in release builds too.
    ///
    /// # Safety
    /// No concurrent task may access any of the region's elements for
    /// the returned borrow's lifetime.
    unsafe fn region(&self, lo: usize, len: usize) -> &'a mut [T] {
        assert!(
            lo.checked_add(len).is_some_and(|hi| hi <= self.len),
            "region [{lo}, {lo}+{len}) out of bounds for length {}",
            self.len
        );
        // SAFETY: the assert above proves the range in bounds, and the
        // caller guarantees no concurrent access to it, so the reborrow
        // aliases nothing for its lifetime.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(lo), len) }
    }
}

impl<'a, T: Send> Machine for Ram<'a, T> {
    type Elem = T;

    fn len(&self) -> usize {
        self.len
    }

    fn involution_round<F>(&mut self, lo: usize, hi: usize, _arith: IndexArith, f: F)
    where
        F: Fn(usize) -> usize + Sync,
    {
        debug_assert!(lo <= hi && hi <= self.len);
        let n = hi - lo;
        // SAFETY: this machine holds the unique borrow of `[lo, hi)` here
        // (run_tasks hands out disjoint regions), so reborrowing it as a
        // slice is sound.
        let region = unsafe { self.region(lo, n) };
        if self.par && n >= 2 * RAM_PAR_GRAIN {
            let shared = SharedSlice::new(region);
            (0..n)
                .into_par_iter()
                .with_min_len(RAM_PAR_GRAIN)
                .for_each(|off| {
                    let i = lo + off;
                    let j = f(i);
                    debug_assert!(
                        (lo..hi).contains(&j),
                        "involution escapes range: f({i}) = {j}"
                    );
                    debug_assert_eq!(f(j), i, "not an involution at {i}");
                    if i < j {
                        // SAFETY: pair {i, j} with i < j is processed only
                        // by the iteration owning index i; pairs of an
                        // involution are disjoint, so no two tasks touch
                        // the same element.
                        unsafe { shared.swap(i - lo, j - lo) };
                    }
                });
        } else if lo == 0 {
            // Global indices coincide with region-local ones: skip the
            // per-element offset translation.
            apply_involution_range(region, 0, n, f);
        } else {
            apply_involution_range(region, 0, n, |off| f(lo + off) - lo);
        }
    }

    fn gather(&mut self, lo: usize, r: usize, l: usize, _mode: GatherMode) {
        // SAFETY: unique access to the region per the Machine contract.
        let region = unsafe { self.region(lo, gather_len(r, l)) };
        if self.par {
            equidistant_gather_par(region, r, l);
        } else {
            equidistant_gather(region, r, l);
        }
    }

    fn gather_chunks(&mut self, lo: usize, r: usize, l: usize, chunk: usize, _mode: GatherMode) {
        // SAFETY: unique access to the region per the Machine contract.
        let region = unsafe { self.region(lo, gather_len(r, l) * chunk) };
        if self.par {
            equidistant_gather_chunks_par(region, r, l, chunk);
        } else {
            equidistant_gather_chunks(region, r, l, chunk);
        }
    }

    fn rotate_right(&mut self, lo: usize, hi: usize, amount: usize) {
        debug_assert!(lo <= hi && hi <= self.len);
        // SAFETY: unique access to the region per the Machine contract.
        let region = unsafe { self.region(lo, hi - lo) };
        if self.par && region.len() >= RAM_ROTATE_GRAIN {
            rotate_right_par(region, amount);
        } else {
            rotate_right(region, amount);
        }
    }

    fn run_tasks<K, F>(&mut self, tasks: Vec<Region<K>>, f: F)
    where
        K: Send + Sync,
        F: Fn(&mut Self, &Region<K>) + Sync,
    {
        debug_assert!(regions_disjoint(&tasks), "run_tasks regions overlap");
        let total: usize = tasks.iter().map(|t| t.len).sum();
        if !self.par || total < RAM_TASK_GRAIN {
            for task in &tasks {
                f(self, task);
            }
            return;
        }
        // Deal the tasks into contiguous groups of at least
        // RAM_TASK_GRAIN total elements and spawn one worker per group:
        // a level of many tiny subtrees (the vEB recursions produce
        // hundreds of l-element bottoms) still spreads across threads
        // without paying a spawn per region.
        let mut groups: Vec<Vec<(Self, &Region<K>)>> = Vec::new();
        let mut group: Vec<(Self, &Region<K>)> = Vec::new();
        let mut grouped = 0usize;
        for task in &tasks {
            group.push((self.view(), task));
            grouped += task.len;
            if grouped >= RAM_TASK_GRAIN {
                grouped = 0;
                groups.push(std::mem::take(&mut group));
            }
        }
        rayon::scope(|s| {
            let f = &f;
            for batch in groups {
                s.spawn(move |_| {
                    for (mut view, task) in batch {
                        f(&mut view, task);
                    }
                });
            }
            // Remainder group runs on the calling thread.
            for (mut view, task) in group {
                f(&mut view, task);
            }
        });
    }

    fn local_task<F>(&mut self, lo: usize, len: usize, f: F)
    where
        F: FnOnce(&mut [T]),
    {
        // SAFETY: unique access to the region per the Machine contract.
        f(unsafe { self.region(lo, len) });
    }
}

/// `true` iff no two regions overlap (used by debug assertions).
pub fn regions_disjoint<K>(tasks: &[Region<K>]) -> bool {
    let mut spans: Vec<(usize, usize)> = tasks.iter().map(|t| (t.lo, t.lo + t.len)).collect();
    spans.sort_unstable();
    spans.windows(2).all(|w| w[0].1 <= w[1].0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn involution_round_seq_and_par_agree() {
        for n in [0usize, 5, 100, 1 << 15] {
            let mut a = mk(n);
            let mut b = mk(n);
            let f = move |i: usize| n - 1 - i; // reversal
            Ram::seq(&mut a).involution_round(0, n, IndexArith::Rev2 { d: 1 }, f);
            Ram::par(&mut b).involution_round(0, n, IndexArith::Rev2 { d: 1 }, f);
            let mut expect = mk(n);
            expect.reverse();
            assert_eq!(a, expect, "seq n={n}");
            assert_eq!(b, expect, "par n={n}");
        }
    }

    #[test]
    fn involution_round_respects_offsets() {
        let n = 10usize;
        let mut v = mk(n);
        // Reverse only [2, 8) using global indices.
        Ram::seq(&mut v).involution_round(2, 8, IndexArith::Rev2 { d: 1 }, |i| 2 + 7 - i);
        assert_eq!(v, vec![0, 1, 7, 6, 5, 4, 3, 2, 8, 9]);
    }

    #[test]
    fn gather_matches_reference() {
        let (r, l) = (3usize, 5usize);
        let pad = 4usize;
        let n = pad + gather_len(r, l);
        let mut v = mk(n);
        Ram::par(&mut v).gather(pad, r, l, GatherMode::Standalone);
        let expect = ist_gather::reference_gather(&mk(n)[pad..], r, l);
        assert_eq!(&v[pad..], &expect[..]);
        assert!(v[..pad].iter().copied().eq(0..pad as u64), "pad disturbed");
    }

    #[test]
    fn rotate_right_matches_std() {
        let n = 1000usize;
        let mut v = mk(n);
        Ram::par(&mut v).rotate_right(100, 900, 37);
        let mut expect = mk(n);
        expect[100..900].rotate_right(37);
        assert_eq!(v, expect);
    }

    #[test]
    fn run_tasks_executes_disjoint_regions() {
        let n = 1 << 14;
        let mut v = vec![0u64; n];
        let tasks: Vec<Region<u64>> = (0..4)
            .map(|q| Region::new(q * n / 4, n / 4, q as u64 + 1))
            .collect();
        Ram::par(&mut v).run_tasks(tasks, |m, reg| {
            m.local_task(reg.lo, reg.len, |slice| {
                for x in slice.iter_mut() {
                    *x = reg.tag;
                }
            });
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / (n / 4)) as u64 + 1, "i={i}");
        }
    }

    #[test]
    fn disjointness_checker() {
        let a = vec![
            Region::new(0, 3, ()),
            Region::new(3, 4, ()),
            Region::new(10, 2, ()),
        ];
        assert!(regions_disjoint(&a));
        let b = vec![Region::new(0, 4, ()), Region::new(3, 4, ())];
        assert!(!regions_disjoint(&b));
    }
}
