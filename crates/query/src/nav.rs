//! The layout-navigation abstraction: one descent semantics, every
//! execution engine.
//!
//! A query against an implicit layout is a *descent*: a fixed number of
//! rounds, each reading one node (one key for the binary layouts, `B`
//! keys for the B-tree), comparing, and moving to a child computed by
//! pure index arithmetic. The arithmetic is the only thing that differs
//! between layouts — so it lives **here, once**, behind the
//! [`Navigator`] trait, and every execution strategy is a thin driver
//! over it:
//!
//! * the scalar engine ([`search_with`] / [`rank_with`]) — one descent
//!   at a time, early exit on equality;
//! * the software-pipelined windowed engine (`crate::batch`) — a window
//!   of descents advanced level-synchronously, branchless, with the
//!   navigator supplying the prefetch targets;
//! * the GPU cost model (`ist-gpu-sim`) — warps of lanes stepping the
//!   same navigators and charging coalesced transactions.
//!
//! Because all three run the *same* `step` arithmetic, they visit the
//! same node sequences by construction; `tests/navigator_equivalence.rs`
//! pins this bit-for-bit via the [`Searcher`](crate::Searcher) trace
//! methods and `ist_gpu_sim::lane_node_trace`.
//!
//! ## The descent contract
//!
//! A navigator is built for one specific array (it borrows the data, so
//! the shape can never disagree with the slice it navigates). Per
//! descent:
//!
//! 1. [`Navigator::start`] yields the root registers. A descent keeps
//!    exactly two: a **cursor** (the node position) and an
//!    **accumulator** (the running in-order gap, or the undecided
//!    length for the sorted baseline). They are separate associated
//!    types so the windowed engine can store them
//!    structure-of-arrays — the layout the hand-tuned pre-navigator
//!    kernels used, and measurably faster than an array of state
//!    structs.
//! 2. [`Navigator::first_round`] gives the first round's constant
//!    (e.g. the per-level half-subtree size), advanced by
//!    [`Navigator::next_round`]; round constants are shared by every
//!    descent at the same level, which is what makes level-synchronous
//!    windows cheap.
//! 3. Each round, while [`Navigator::is_live`], the engine may read
//!    [`Navigator::node_base`] / [`Navigator::node_width`] (the
//!    addresses about to be touched), then calls one `step_*` method:
//!    branchless compare-and-advance. Search steps additionally latch a
//!    first equality hit into a result register (`*res` stays [`MISS`]
//!    until then). The **last** round uses the `step_*_last` variants:
//!    the descent falls off the perfect part, so the accumulator
//!    becomes the landing gap and no child is computed (vEB skips its
//!    position recomputation entirely).
//! 4. After the rounds, [`Navigator::gap`] names the in-order gap the
//!    descent fell into; [`Navigator::resolve_miss`] probes the
//!    overflow suffix and [`Navigator::rank_of_gap`] converts the gap
//!    into a rank.
//!
//! Rank descents come in two flavors selected by a const generic:
//! `UPPER = false` counts keys strictly below the probe (ties descend
//! left), `UPPER = true` counts keys `≤` the probe (ties descend
//! right). Successor/predecessor queries are rank queries in disguise
//! (`crate::order`).

use ist_layout::{veb_pos, CompleteShape};

pub use crate::wide::{SimdKey, WideBtreeNav};

/// Sentinel for "no equality hit latched yet" in a search descent's
/// result register (never a valid layout index: indices are
/// `< data.len()`).
pub const MISS: usize = usize::MAX;

/// Issue a best-effort prefetch of `data[index]` into the first-level
/// data cache.
///
/// **Contract**: purely a performance hint — never a semantic
/// dependency. Out-of-bounds indices are dropped (never dereferenced),
/// and on architectures without a wired-up hint instruction the call
/// compiles to nothing; results must be identical either way (the
/// forced-serial and cross-arch CI legs run with whatever this lowers
/// to). Wired instructions: `prefetcht0` on `x86_64`, `prfm pldl1keep`
/// on `aarch64`.
#[inline(always)]
pub(crate) fn prefetch<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if index < data.len() {
            // SAFETY: the pointer is in bounds (checked) and prefetching
            // any address is side-effect free.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    data.as_ptr().add(index) as *const i8,
                );
            }
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if index < data.len() {
            // SAFETY: the pointer is in bounds (checked); PRFM is
            // side-effect free (the stable-toolchain spelling of the
            // unstable `core::arch::aarch64::_prefetch` intrinsic).
            unsafe {
                core::arch::asm!(
                    "prfm pldl1keep, [{ptr}]",
                    ptr = in(reg) data.as_ptr().add(index),
                    options(readonly, nostack, preserves_flags),
                );
            }
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = (data, index);
    }
}

/// Shape data for BST/vEB descents over a complete binary tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BinaryShape {
    /// Depth of the full (perfect) part in levels.
    pub(crate) d: u32,
    /// Keys in the full part: `2^d − 1`.
    pub(crate) i: usize,
    /// Overflow leaves stored sorted in the array suffix.
    pub(crate) l: usize,
}

impl BinaryShape {
    pub(crate) fn new(n: usize) -> Self {
        if n == 0 {
            return Self { d: 0, i: 0, l: 0 };
        }
        let s = CompleteShape::new(n);
        Self {
            d: s.full_levels(),
            i: s.full_count(),
            l: s.overflow(),
        }
    }
}

/// Shape data for B-tree descents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BtreeSearchShape {
    /// Keys per node.
    pub(crate) b: usize,
    /// Keys in the full part.
    pub(crate) i: usize,
    /// Nodes in the full part.
    pub(crate) num_nodes: usize,
    /// Node levels in the full part (`num_nodes = ((b+1)^levels − 1)/b`).
    pub(crate) levels: u32,
    /// Full overflow leaf nodes.
    pub(crate) q: usize,
    /// Keys in the final partial overflow node.
    pub(crate) s: usize,
}

impl BtreeSearchShape {
    pub(crate) fn new(n: usize, b: usize) -> Self {
        if n == 0 {
            return Self {
                b,
                i: 0,
                num_nodes: 0,
                levels: 0,
                q: 0,
                s: 0,
            };
        }
        let s = ist_layout::complete::BtreeCompleteShape::new(n, b);
        Self {
            b,
            i: s.full_count(),
            num_nodes: s.full_count() / b,
            levels: s.full_node_levels(),
            q: s.full_overflow_nodes(),
            s: s.partial_node_len(),
        }
    }
}

/// One layout's descent arithmetic: shape state plus branchless
/// compare-and-advance steps over a two-register descent state. See the
/// [module docs](self) for the engine/navigator contract.
///
/// Implementations borrow the array they navigate, so every address a
/// step dereferences is in bounds by construction (the shape is derived
/// from `data.len()` in the constructor and nowhere else).
pub trait Navigator<T: Ord>: Copy {
    /// The node-cursor register (e.g. the level-order node index).
    type Cursor: Copy;
    /// The accumulator register (the running in-order gap, or the
    /// sorted baseline's undecided length).
    type Acc: Copy;
    /// Per-round constant (identical for all descents at one level).
    type Round: Copy;

    /// The array this navigator descends.
    fn data(&self) -> &[T];
    /// Number of rounds every descent takes before falling off the
    /// perfect part (live lanes; see [`Navigator::is_live`]).
    fn rounds(&self) -> u32;
    /// Root registers of a fresh descent.
    fn start(&self) -> (Self::Cursor, Self::Acc);
    /// Round constant for the first level.
    fn first_round(&self) -> Self::Round;
    /// Round constant for the next level.
    fn next_round(&self, ctx: Self::Round) -> Self::Round;

    /// `false` once a descent has drained before `rounds()` is up (only
    /// the sorted baseline does; tree descents run the full count).
    #[inline(always)]
    fn is_live(&self, _cur: &Self::Cursor, _acc: &Self::Acc) -> bool {
        true
    }
    /// First array index the next `step` will read.
    fn node_base(&self, cur: &Self::Cursor, acc: &Self::Acc) -> usize;
    /// Contiguous keys read per step (1, or `B` for the B-tree).
    #[inline(always)]
    fn node_width(&self) -> usize {
        1
    }

    /// **Search** step: compare `key` against the current node, latch a
    /// first equality hit into `*res` (left at [`MISS`] otherwise), and
    /// branchlessly advance to the child. Ties descend toward smaller
    /// positions, exactly like the pre-navigator per-layout kernels.
    ///
    /// Engines call this for every round **except the last** (see
    /// [`Navigator::step_search_last`]), so implementations may assume
    /// a child node exists.
    fn step_search(
        &self,
        cur: &mut Self::Cursor,
        acc: &mut Self::Acc,
        res: &mut usize,
        key: &T,
        ctx: Self::Round,
    );

    /// Final-round **search** step: same compare-and-latch, but the
    /// descent falls off the perfect part, so the accumulator becomes
    /// the landing gap and no child is computed (vEB skips its position
    /// recomputation here entirely).
    fn step_search_last(
        &self,
        cur: &mut Self::Cursor,
        acc: &mut Self::Acc,
        res: &mut usize,
        key: &T,
    );

    /// **Rank** step: advance without an equality latch. With
    /// `UPPER = false` ties descend left (the final gap counts keys
    /// `< key`); with `UPPER = true` ties descend right (keys `≤ key`).
    /// Like [`Navigator::step_search`], never the last round.
    fn step_rank<const UPPER: bool>(
        &self,
        cur: &mut Self::Cursor,
        acc: &mut Self::Acc,
        key: &T,
        ctx: Self::Round,
    );

    /// Final-round **rank** step (see [`Navigator::step_search_last`]).
    fn step_rank_last<const UPPER: bool>(
        &self,
        cur: &mut Self::Cursor,
        acc: &mut Self::Acc,
        key: &T,
    );

    /// The in-order gap a finished descent fell into.
    fn gap(&self, cur: &Self::Cursor, acc: &Self::Acc) -> usize;
    /// Probe the overflow suffix hanging in `gap` for `key` (search
    /// resolution after a descent with no latched hit).
    fn resolve_miss(&self, gap: usize, key: &T) -> Option<usize>;
    /// Convert a finished rank descent's gap into the rank (`< key`
    /// count, or `≤ key` with `UPPER`).
    fn rank_of_gap<const UPPER: bool>(&self, gap: usize, key: &T) -> usize;

    /// Prefetch the node the registers will read next (windowed engine:
    /// issued right after `step`, long before the lane is re-touched).
    fn prefetch_node(&self, cur: &Self::Cursor, acc: &Self::Acc);
    /// Prefetch the overflow-probe target for a finished descent.
    fn prefetch_gap(&self, gap: usize);
    /// Scalar-loop prefetch hint issued *before* the compare (the BST
    /// grandchild prefetch of Khuong & Morin); no-op elsewhere.
    #[inline(always)]
    fn prefetch_hint(&self, _cur: &Self::Cursor) {}
}

// ---------------------------------------------------------------------
// Shared complete-binary-tree resolution helpers (BST and vEB fall off
// into the same `[perfect | overflow leaves]` suffix format).
// ---------------------------------------------------------------------

#[inline]
fn probe_overflow<T: Ord>(data: &[T], i: usize, l: usize, g: usize, key: &T) -> Option<usize> {
    if g < l && data[i + g] == *key {
        Some(i + g)
    } else {
        None
    }
}

/// Complete-binary-tree rank from the fall-off gap: `g` full elements
/// are on the counted side; add the overflow leaves below gap `g` and
/// the gap-`g` leaf if it too is on the counted side (`< key`, or
/// `≤ key` for `UPPER`).
#[inline]
fn binary_rank_from_gap<T: Ord, const UPPER: bool>(
    data: &[T],
    i: usize,
    l: usize,
    g: usize,
    key: &T,
) -> usize {
    let mut rank = g + g.min(l);
    if g < l && counted::<T, UPPER>(&data[i + g], key) {
        rank += 1;
    }
    rank
}

/// Is `stored` on the counted side of the rank boundary?
#[inline(always)]
fn counted<T: Ord, const UPPER: bool>(stored: &T, key: &T) -> bool {
    if UPPER {
        *stored <= *key
    } else {
        *stored < *key
    }
}

// ---------------------------------------------------------------------
// BST: level-order descent, v → 2v+1 / 2v+2.
// ---------------------------------------------------------------------

/// Navigator for the level-order BST layout (optionally issuing the
/// scalar grandchild-prefetch hint). Cursor: node index `v`;
/// accumulator: full-rank of the subtree's leftmost gap.
pub struct BstNav<'a, T> {
    data: &'a [T],
    shape: BinaryShape,
    prefetch: bool,
}

impl<'a, T> Clone for BstNav<'a, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T> Copy for BstNav<'a, T> {}

impl<'a, T: Ord> BstNav<'a, T> {
    /// Navigator for `data` in BST layout (`[perfect | overflow]`).
    pub fn new(data: &'a [T]) -> Self {
        Self::with_prefetch(data, false)
    }

    /// [`BstNav::new`] with the scalar grandchild-prefetch hint enabled.
    pub fn with_prefetch(data: &'a [T], prefetch: bool) -> Self {
        Self {
            data,
            shape: BinaryShape::new(data.len()),
            prefetch,
        }
    }

    #[inline]
    pub(crate) fn from_shape(data: &'a [T], shape: BinaryShape, prefetch: bool) -> Self {
        debug_assert_eq!(shape, BinaryShape::new(data.len()));
        Self {
            data,
            shape,
            prefetch,
        }
    }
}

impl<'a, T: Ord> Navigator<T> for BstNav<'a, T> {
    type Cursor = usize;
    type Acc = usize;
    /// The per-level half-subtree size `2^{d−1−level} − 1`.
    type Round = usize;

    #[inline(always)]
    fn data(&self) -> &[T] {
        self.data
    }
    #[inline(always)]
    fn rounds(&self) -> u32 {
        self.shape.d
    }
    #[inline(always)]
    fn start(&self) -> (usize, usize) {
        (0, 0)
    }
    #[inline(always)]
    fn first_round(&self) -> usize {
        self.shape.i >> 1
    }
    #[inline(always)]
    fn next_round(&self, half: usize) -> usize {
        half >> 1
    }
    #[inline(always)]
    fn node_base(&self, cur: &usize, _acc: &usize) -> usize {
        *cur
    }

    #[inline(always)]
    fn step_search(&self, cur: &mut usize, acc: &mut usize, res: &mut usize, key: &T, half: usize) {
        let v = *cur;
        debug_assert!(v < self.shape.i);
        // SAFETY: on each of the `d` full levels a node index is at most
        // 2^{level+1} − 2 ≤ 2^d − 2 < i ≤ data.len(), and the shape was
        // derived from this very slice's length.
        let node = unsafe { self.data.get_unchecked(v) };
        let hit = (*res == MISS) & (*key == *node);
        *res = if hit { v } else { *res };
        let gt = usize::from(*key > *node);
        *cur = 2 * v + 1 + gt;
        *acc += (half + 1) * gt;
    }

    #[inline(always)]
    fn step_search_last(&self, cur: &mut usize, acc: &mut usize, res: &mut usize, key: &T) {
        // The last level's subtrees are single nodes: half = 0.
        self.step_search(cur, acc, res, key, 0);
    }

    #[inline(always)]
    fn step_rank<const UPPER: bool>(&self, cur: &mut usize, acc: &mut usize, key: &T, half: usize) {
        let v = *cur;
        debug_assert!(v < self.shape.i);
        // SAFETY: as in `step_search`.
        let node = unsafe { self.data.get_unchecked(v) };
        let gt = usize::from(counted::<T, UPPER>(node, key));
        *cur = 2 * v + 1 + gt;
        *acc += (half + 1) * gt;
    }

    #[inline(always)]
    fn step_rank_last<const UPPER: bool>(&self, cur: &mut usize, acc: &mut usize, key: &T) {
        self.step_rank::<UPPER>(cur, acc, key, 0);
    }

    #[inline(always)]
    fn gap(&self, _cur: &usize, acc: &usize) -> usize {
        *acc
    }
    #[inline]
    fn resolve_miss(&self, gap: usize, key: &T) -> Option<usize> {
        probe_overflow(self.data, self.shape.i, self.shape.l, gap, key)
    }
    #[inline]
    fn rank_of_gap<const UPPER: bool>(&self, gap: usize, key: &T) -> usize {
        binary_rank_from_gap::<T, UPPER>(self.data, self.shape.i, self.shape.l, gap, key)
    }
    #[inline(always)]
    fn prefetch_node(&self, cur: &usize, _acc: &usize) {
        prefetch(self.data, *cur);
    }
    #[inline(always)]
    fn prefetch_gap(&self, gap: usize) {
        prefetch(self.data, self.shape.i + gap);
    }
    #[inline(always)]
    fn prefetch_hint(&self, cur: &usize) {
        if self.prefetch {
            // Grandchildren region: by the time the two comparisons at
            // `v` resolve, the line is (ideally) resident.
            prefetch(self.data, 4 * *cur + 3);
        }
    }
}

// ---------------------------------------------------------------------
// vEB: descent by in-order position with per-node layout-index
// recomputation (O(log d) arithmetic per step).
// ---------------------------------------------------------------------

/// Navigator for the van Emde Boas layout. Cursor: the layout index of
/// the current node (recomputed by `veb_pos` at every advance);
/// accumulator: the 1-indexed in-order position `p`.
pub struct VebNav<'a, T> {
    data: &'a [T],
    shape: BinaryShape,
}

impl<'a, T> Clone for VebNav<'a, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T> Copy for VebNav<'a, T> {}

impl<'a, T: Ord> VebNav<'a, T> {
    /// Navigator for `data` in vEB layout (`[perfect | overflow]`).
    pub fn new(data: &'a [T]) -> Self {
        Self {
            data,
            shape: BinaryShape::new(data.len()),
        }
    }

    #[inline]
    pub(crate) fn from_shape(data: &'a [T], shape: BinaryShape) -> Self {
        debug_assert_eq!(shape, BinaryShape::new(data.len()));
        Self { data, shape }
    }
}

impl<'a, T: Ord> Navigator<T> for VebNav<'a, T> {
    type Cursor = usize;
    type Acc = u64;
    /// The per-level in-order step `2^{d−2−level}` (`≥ 1`; the leaf
    /// round has no step — see [`Navigator::step_search_last`]).
    type Round = u64;

    #[inline(always)]
    fn data(&self) -> &[T] {
        self.data
    }
    #[inline(always)]
    fn rounds(&self) -> u32 {
        self.shape.d
    }
    #[inline]
    fn start(&self) -> (usize, u64) {
        let d = self.shape.d;
        if d == 0 {
            return (MISS, 0);
        }
        let p = 1u64 << (d - 1);
        (veb_pos(d, (p - 1) as usize), p)
    }
    #[inline(always)]
    fn first_round(&self) -> u64 {
        match self.shape.d {
            0 => 0,
            d => (1u64 << (d - 1)) >> 1,
        }
    }
    #[inline(always)]
    fn next_round(&self, st: u64) -> u64 {
        st >> 1
    }
    #[inline(always)]
    fn node_base(&self, cur: &usize, _acc: &u64) -> usize {
        *cur
    }

    #[inline(always)]
    fn step_search(&self, cur: &mut usize, acc: &mut u64, res: &mut usize, key: &T, st: u64) {
        let pos = *cur;
        debug_assert!(pos < self.shape.i);
        debug_assert!(st >= 1);
        // SAFETY: veb_pos maps in-order ranks 0..i to layout positions
        // 0..i, p stays in [1, i] by construction, and the shape was
        // derived from this very slice's length.
        let node = unsafe { self.data.get_unchecked(pos) };
        let hit = (*res == MISS) & (*key == *node);
        *res = if hit { pos } else { *res };
        let lt = u64::from(*key < *node);
        let p = *acc + st - 2 * st * lt;
        *acc = p;
        *cur = veb_pos(self.shape.d, (p - 1) as usize);
    }

    #[inline(always)]
    fn step_search_last(&self, cur: &mut usize, acc: &mut u64, res: &mut usize, key: &T) {
        let pos = *cur;
        debug_assert!(pos < self.shape.i);
        // SAFETY: as in `step_search`.
        let node = unsafe { self.data.get_unchecked(pos) };
        let hit = (*res == MISS) & (*key == *node);
        *res = if hit { pos } else { *res };
        // Fell off a leaf with in-order position p: gap p−1 left, p
        // right. No child, so no position recomputation.
        *acc -= u64::from(*key < *node);
    }

    #[inline(always)]
    fn step_rank<const UPPER: bool>(&self, cur: &mut usize, acc: &mut u64, key: &T, st: u64) {
        let pos = *cur;
        debug_assert!(pos < self.shape.i);
        debug_assert!(st >= 1);
        // SAFETY: as in `step_search`.
        let node = unsafe { self.data.get_unchecked(pos) };
        let left = u64::from(!counted::<T, UPPER>(node, key));
        let p = *acc + st - 2 * st * left;
        *acc = p;
        *cur = veb_pos(self.shape.d, (p - 1) as usize);
    }

    #[inline(always)]
    fn step_rank_last<const UPPER: bool>(&self, cur: &mut usize, acc: &mut u64, key: &T) {
        let pos = *cur;
        debug_assert!(pos < self.shape.i);
        // SAFETY: as in `step_search`.
        let node = unsafe { self.data.get_unchecked(pos) };
        *acc -= u64::from(!counted::<T, UPPER>(node, key));
    }

    #[inline(always)]
    fn gap(&self, _cur: &usize, acc: &u64) -> usize {
        *acc as usize
    }
    #[inline]
    fn resolve_miss(&self, gap: usize, key: &T) -> Option<usize> {
        probe_overflow(self.data, self.shape.i, self.shape.l, gap, key)
    }
    #[inline]
    fn rank_of_gap<const UPPER: bool>(&self, gap: usize, key: &T) -> usize {
        binary_rank_from_gap::<T, UPPER>(self.data, self.shape.i, self.shape.l, gap, key)
    }
    #[inline(always)]
    fn prefetch_node(&self, cur: &usize, _acc: &u64) {
        prefetch(self.data, *cur);
    }
    #[inline(always)]
    fn prefetch_gap(&self, gap: usize) {
        prefetch(self.data, self.shape.i + gap);
    }
}

// ---------------------------------------------------------------------
// B-tree: (B+1)-ary descent, one B-key node per level.
// ---------------------------------------------------------------------

/// Navigator for the level-order B-tree layout. Cursor: node index;
/// accumulator: full-rank of the subtree's leftmost gap.
pub struct BtreeNav<'a, T> {
    data: &'a [T],
    shape: BtreeSearchShape,
}

impl<'a, T> Clone for BtreeNav<'a, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T> Copy for BtreeNav<'a, T> {}

impl<'a, T: Ord> BtreeNav<'a, T> {
    /// Navigator for `data` in B-tree layout with `b ≥ 1` keys per node.
    pub fn new(data: &'a [T], b: usize) -> Self {
        Self {
            data,
            shape: BtreeSearchShape::new(data.len(), b),
        }
    }

    #[inline]
    pub(crate) fn from_shape(data: &'a [T], shape: BtreeSearchShape) -> Self {
        debug_assert_eq!(shape, BtreeSearchShape::new(data.len(), shape.b));
        Self { data, shape }
    }

    /// The node's `B` keys at node index `v`.
    #[inline(always)]
    fn node_keys(&self, v: usize) -> &[T] {
        debug_assert!(v < self.shape.num_nodes);
        let base = v * self.shape.b;
        // SAFETY: on each of the `levels` node levels v < num_nodes, so
        // the node's b keys end at v*b + b ≤ i ≤ data.len(), and the
        // shape was derived from this very slice's length.
        unsafe { self.data.get_unchecked(base..base + self.shape.b) }
    }

    /// Start index and length of the overflow node hanging in gap `g`.
    #[inline]
    fn overflow_node(&self, g: usize) -> (usize, usize) {
        let BtreeSearchShape { b, i, q, s, .. } = self.shape;
        if g < q {
            (i + g * b, b)
        } else if g == q {
            (i + q * b, s)
        } else {
            (0, 0)
        }
    }
}

impl<'a, T: Ord> Navigator<T> for BtreeNav<'a, T> {
    type Cursor = usize;
    type Acc = usize;
    /// The per-level child subtree span `(B+1)^{levels−1−level} − 1`.
    type Round = usize;

    #[inline(always)]
    fn data(&self) -> &[T] {
        self.data
    }
    #[inline(always)]
    fn rounds(&self) -> u32 {
        self.shape.levels
    }
    #[inline(always)]
    fn start(&self) -> (usize, usize) {
        (0, 0)
    }
    #[inline(always)]
    fn first_round(&self) -> usize {
        self.shape.i.saturating_sub(self.shape.b) / (self.shape.b + 1)
    }
    #[inline(always)]
    fn next_round(&self, child: usize) -> usize {
        child.saturating_sub(self.shape.b) / (self.shape.b + 1)
    }
    #[inline(always)]
    fn node_base(&self, cur: &usize, _acc: &usize) -> usize {
        *cur * self.shape.b
    }
    #[inline(always)]
    fn node_width(&self) -> usize {
        self.shape.b
    }

    #[inline(always)]
    fn step_search(
        &self,
        cur: &mut usize,
        acc: &mut usize,
        res: &mut usize,
        key: &T,
        child: usize,
    ) {
        let v = *cur;
        let base = v * self.shape.b;
        let keys = self.node_keys(v);
        // c = number of node keys < key (whole-node branchless scan; B is
        // small enough that the node is one or two cache lines).
        let mut c = 0usize;
        for kk in keys {
            c += usize::from(*key > *kk);
        }
        let hit = *res == MISS && c < self.shape.b && keys[c] == *key;
        *res = if hit { base + c } else { *res };
        *cur = v * (self.shape.b + 1) + c + 1;
        *acc += c * (child + 1);
    }

    #[inline(always)]
    fn step_search_last(&self, cur: &mut usize, acc: &mut usize, res: &mut usize, key: &T) {
        // The last node level's child subtrees are empty: child = 0.
        self.step_search(cur, acc, res, key, 0);
    }

    #[inline(always)]
    fn step_rank<const UPPER: bool>(
        &self,
        cur: &mut usize,
        acc: &mut usize,
        key: &T,
        child: usize,
    ) {
        let v = *cur;
        let keys = self.node_keys(v);
        let mut c = 0usize;
        for kk in keys {
            c += usize::from(counted::<T, UPPER>(kk, key));
        }
        *cur = v * (self.shape.b + 1) + c + 1;
        *acc += c * (child + 1);
    }

    #[inline(always)]
    fn step_rank_last<const UPPER: bool>(&self, cur: &mut usize, acc: &mut usize, key: &T) {
        self.step_rank::<UPPER>(cur, acc, key, 0);
    }

    #[inline(always)]
    fn gap(&self, _cur: &usize, acc: &usize) -> usize {
        *acc
    }

    /// Scan the overflow node hanging in gap `gap` for `key`.
    #[inline]
    fn resolve_miss(&self, gap: usize, key: &T) -> Option<usize> {
        let (start, len) = self.overflow_node(gap);
        self.data[start..start + len]
            .iter()
            .position(|x| *x == *key)
            .map(|off| start + off)
    }

    /// B-tree rank from the fall-off gap: `gap` full elements counted,
    /// plus the overflow keys in gaps before `gap`, plus the
    /// within-gap prefix still on the counted side.
    #[inline]
    fn rank_of_gap<const UPPER: bool>(&self, gap: usize, key: &T) -> usize {
        let BtreeSearchShape { b, q, s, .. } = self.shape;
        let mut rank = gap + gap.min(q) * b + if gap > q { s } else { 0 };
        let (start, len) = self.overflow_node(gap);
        rank += self.data[start..start + len]
            .iter()
            .take_while(|x| counted::<T, UPPER>(x, key))
            .count();
        rank
    }

    #[inline(always)]
    fn prefetch_node(&self, cur: &usize, _acc: &usize) {
        prefetch(self.data, *cur * self.shape.b);
    }
    #[inline(always)]
    fn prefetch_gap(&self, gap: usize) {
        if gap <= self.shape.q {
            prefetch(self.data, self.shape.i + gap * self.shape.b);
        }
    }
}

// ---------------------------------------------------------------------
// Sorted baseline: deterministic partition-point probes on the
// un-permuted array.
// ---------------------------------------------------------------------

/// Navigator for the un-permuted sorted array (the binary-search
/// baseline). Cursor: `lo`, the count of keys known on the counted
/// side; accumulator: the undecided length. A "search" descent is a
/// rank descent plus a verify probe at the partition point, so hits
/// resolve to the **leftmost** matching index.
pub struct SortedNav<'a, T> {
    data: &'a [T],
}

impl<'a, T> Clone for SortedNav<'a, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T> Copy for SortedNav<'a, T> {}

impl<'a, T: Ord> SortedNav<'a, T> {
    /// Navigator over sorted (un-permuted) `data`.
    pub fn new(data: &'a [T]) -> Self {
        Self { data }
    }
}

impl<'a, T: Ord> Navigator<T> for SortedNav<'a, T> {
    type Cursor = usize;
    type Acc = usize;
    type Round = ();

    #[inline(always)]
    fn data(&self) -> &[T] {
        self.data
    }
    /// `len` at least halves per round, so `⌊log2 n⌋ + 1` rounds drain
    /// every descent; drained descents (`len == 0`) stop being live.
    #[inline(always)]
    fn rounds(&self) -> u32 {
        usize::BITS - self.data.len().leading_zeros()
    }
    #[inline(always)]
    fn start(&self) -> (usize, usize) {
        (0, self.data.len())
    }
    #[inline(always)]
    fn first_round(&self) {}
    #[inline(always)]
    fn next_round(&self, (): ()) {}
    #[inline(always)]
    fn is_live(&self, _cur: &usize, acc: &usize) -> bool {
        *acc > 0
    }
    #[inline(always)]
    fn node_base(&self, cur: &usize, acc: &usize) -> usize {
        *cur + *acc / 2
    }

    /// Never latches a hit: equality is resolved by the verify probe in
    /// [`Navigator::resolve_miss`], pinning the leftmost-match contract
    /// and keeping the probe sequence identical to the rank descent.
    #[inline(always)]
    fn step_search(&self, cur: &mut usize, acc: &mut usize, _res: &mut usize, key: &T, (): ()) {
        self.step_rank::<false>(cur, acc, key, ());
    }

    #[inline(always)]
    fn step_search_last(&self, cur: &mut usize, acc: &mut usize, res: &mut usize, key: &T) {
        // Every partition-point round is the same; the "last" round is
        // just the one that drains the final undecided element.
        self.step_search(cur, acc, res, key, ());
    }

    #[inline(always)]
    fn step_rank<const UPPER: bool>(&self, cur: &mut usize, acc: &mut usize, key: &T, (): ()) {
        let len = *acc;
        let half = len / 2;
        let idx = *cur + half;
        debug_assert!(idx < self.data.len());
        // SAFETY: the partition-point loop keeps lo + len ≤ data.len()
        // and probes lo + len/2 < lo + len (engines only step live
        // descents, i.e. len > 0).
        let node = unsafe { self.data.get_unchecked(idx) };
        let take = counted::<T, UPPER>(node, key);
        *cur = if take { idx + 1 } else { *cur };
        *acc = if take { len - half - 1 } else { half };
    }

    #[inline(always)]
    fn step_rank_last<const UPPER: bool>(&self, cur: &mut usize, acc: &mut usize, key: &T) {
        self.step_rank::<UPPER>(cur, acc, key, ());
    }

    #[inline(always)]
    fn gap(&self, cur: &usize, _acc: &usize) -> usize {
        *cur
    }
    #[inline]
    fn resolve_miss(&self, gap: usize, key: &T) -> Option<usize> {
        if gap < self.data.len() && self.data[gap] == *key {
            Some(gap)
        } else {
            None
        }
    }
    #[inline(always)]
    fn rank_of_gap<const UPPER: bool>(&self, gap: usize, _key: &T) -> usize {
        gap
    }
    #[inline(always)]
    fn prefetch_node(&self, cur: &usize, acc: &usize) {
        if *acc > 0 {
            prefetch(self.data, *cur + *acc / 2);
        }
    }
    #[inline(always)]
    fn prefetch_gap(&self, gap: usize) {
        prefetch(self.data, gap);
    }
}

// ---------------------------------------------------------------------
// The scalar engine: one descent at a time, run to completion.
// ---------------------------------------------------------------------

/// Scalar search over any navigator: early exit on equality, overflow
/// probe on falling off. `tap` observes the base address of every node
/// read (a no-op closure compiles away); the equivalence suite uses it
/// to pin execution paths together.
#[inline(always)]
pub fn search_with<T: Ord, N: Navigator<T>>(
    nav: &N,
    key: &T,
    mut tap: impl FnMut(usize),
) -> Option<usize> {
    let (mut cur, mut acc) = nav.start();
    let mut ctx = nav.first_round();
    let mut res = MISS;
    let rounds = nav.rounds();
    for _ in 1..rounds {
        if !nav.is_live(&cur, &acc) {
            break;
        }
        tap(nav.node_base(&cur, &acc));
        nav.prefetch_hint(&cur);
        nav.step_search(&mut cur, &mut acc, &mut res, key, ctx);
        if res != MISS {
            return Some(res);
        }
        ctx = nav.next_round(ctx);
    }
    if rounds > 0 && nav.is_live(&cur, &acc) {
        tap(nav.node_base(&cur, &acc));
        nav.step_search_last(&mut cur, &mut acc, &mut res, key);
        if res != MISS {
            return Some(res);
        }
    }
    nav.resolve_miss(nav.gap(&cur, &acc), key)
}

/// Scalar rank over any navigator (strictly-smaller count, or `≤` with
/// `UPPER`). `tap` as in [`search_with`].
#[inline(always)]
pub fn rank_with<T: Ord, N: Navigator<T>, const UPPER: bool>(
    nav: &N,
    key: &T,
    mut tap: impl FnMut(usize),
) -> usize {
    let (mut cur, mut acc) = nav.start();
    let mut ctx = nav.first_round();
    let rounds = nav.rounds();
    for _ in 1..rounds {
        if !nav.is_live(&cur, &acc) {
            break;
        }
        tap(nav.node_base(&cur, &acc));
        nav.step_rank::<UPPER>(&mut cur, &mut acc, key, ctx);
        ctx = nav.next_round(ctx);
    }
    if rounds > 0 && nav.is_live(&cur, &acc) {
        tap(nav.node_base(&cur, &acc));
        nav.step_rank_last::<UPPER>(&mut cur, &mut acc, key);
    }
    nav.rank_of_gap::<UPPER>(nav.gap(&cur, &acc), key)
}
