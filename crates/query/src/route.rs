//! Scatter/gather batch routing for sharded serving layers.
//!
//! A range-partitioned front-end (e.g. `ShardedMap` in `ist-shard`)
//! answers a batched query in three moves:
//!
//! 1. **partition** the input batch into per-shard sub-batches,
//!    remembering each item's original position
//!    ([`partition_batch_ref`] for read paths — no clones — or
//!    [`partition_batch`] when owned sub-batches are needed, with
//!    [`shard_of_key`] as the router for range partitions; validate the
//!    split vector once per call with [`debug_assert_valid_splits`]);
//! 2. drive every sub-batch through its shard's pipelined engine —
//!    in parallel, since the sub-batches are disjoint;
//! 3. **scatter** the per-shard results back into input order
//!    ([`scatter_to_input_order`]), so the caller sees exactly the
//!    answer a single unsharded structure would have produced.
//!
//! Bulk **mutation** deltas follow the same shape with
//! [`partition_owned`] — items are moved, not cloned, since the shards
//! consume them.
//!
//! The helpers live here (rather than in the sharding crate) because
//! they are pure batch-plumbing over the query engine's inputs and
//! outputs: any front-end that fans a batch out over disjoint indexes
//! and must preserve input order can reuse them.

/// Index of the shard owning `key` under the range partition described
/// by `splits` (sorted, strictly increasing): shard `0` owns keys below
/// `splits[0]`, shard `i` owns `[splits[i-1], splits[i])`, and the last
/// shard owns everything from `splits[len-1]` up. With empty `splits`
/// there is exactly one shard.
///
/// This is the **range-partition invariant** that makes sharded ranks
/// exact: every key in shard `j < i` is strictly smaller than every key
/// in shard `i`, so a global rank is the sum of whole-shard lengths
/// below plus one in-shard rank.
///
/// Sortedness of `splits` is the **caller's** precondition and is *not*
/// re-checked here, not even in debug builds: this function sits inside
/// per-item routing loops, and an earlier revision that `debug_assert!`ed
/// the whole split vector on every call made every debug/fuzz partition
/// pass O(batch × splits). Validate once per batch at the call boundary
/// with [`debug_assert_valid_splits`] instead (the `ShardedMap`
/// constructors also reject unsorted splits outright).
///
/// # Examples
/// ```
/// use ist_query::route::shard_of_key;
/// let splits = [10u64, 20];
/// assert_eq!(shard_of_key(&splits, &3), 0);
/// assert_eq!(shard_of_key(&splits, &10), 1); // boundary key goes right
/// assert_eq!(shard_of_key(&splits, &19), 1);
/// assert_eq!(shard_of_key(&splits, &99), 2);
/// assert_eq!(shard_of_key(&[] as &[u64], &99), 0);
/// ```
#[inline]
pub fn shard_of_key<K: Ord>(splits: &[K], key: &K) -> usize {
    splits.partition_point(|s| s <= key)
}

/// Debug-build check that `splits` satisfies [`shard_of_key`]'s
/// precondition (sorted, strictly increasing). Call it **once per
/// batched operation**, before the per-item routing loop — never inside
/// it. Compiles to nothing in release builds.
#[inline]
pub fn debug_assert_valid_splits<K: Ord>(splits: &[K]) {
    debug_assert!(
        splits.windows(2).all(|w| w[0] < w[1]),
        "splits must be sorted and strictly increasing"
    );
    let _ = splits; // silence the unused warning in release builds
}

/// Partition a batch into `shards` per-shard sub-batches, preserving
/// input order within each: returns, per shard, the original indices
/// and the (cloned) items routed to it. Feed each `(indices, items)`
/// pair's items to the shard's batch engine, then hand the pairs —
/// items replaced by results — to [`scatter_to_input_order`].
///
/// # Panics
/// Panics if `route` returns an index `>= shards`.
///
/// # Examples
/// ```
/// use ist_query::route::partition_batch;
/// let parts = partition_batch(&[5u64, 12, 3, 20], 3, |k| (k / 10) as usize);
/// assert_eq!(parts[0], (vec![0, 2], vec![5, 3]));
/// assert_eq!(parts[1], (vec![1], vec![12]));
/// assert_eq!(parts[2], (vec![3], vec![20]));
/// ```
pub fn partition_batch<T: Clone>(
    items: &[T],
    shards: usize,
    mut route: impl FnMut(&T) -> usize,
) -> Vec<(Vec<usize>, Vec<T>)> {
    let mut parts: Vec<(Vec<usize>, Vec<T>)> = vec![(Vec::new(), Vec::new()); shards];
    for (i, item) in items.iter().enumerate() {
        let s = route(item);
        assert!(s < shards, "route sent item {i} to shard {s} of {shards}");
        parts[s].0.push(i);
        parts[s].1.push(item.clone());
    }
    parts
}

/// [`partition_batch`] without the clones: routes **borrows** of the
/// items into per-shard sub-batches, so read-only paths (`batch_get`,
/// `batch_rank`) never copy a key just to route it — the sub-batches
/// hold `&T` and feed the engines' `*_ref` entry points. Original
/// indices are returned the same way, so [`scatter_to_input_order`]
/// applies unchanged.
///
/// # Panics
/// Panics if `route` returns an index `>= shards`.
///
/// # Examples
/// ```
/// use ist_query::route::partition_batch_ref;
/// let items = [5u64, 12, 3, 20];
/// let parts = partition_batch_ref(&items, 3, |k| (k / 10) as usize);
/// assert_eq!(parts[0], (vec![0, 2], vec![&5, &3]));
/// assert_eq!(parts[1], (vec![1], vec![&12]));
/// assert_eq!(parts[2], (vec![3], vec![&20]));
/// ```
pub fn partition_batch_ref<'a, T>(
    items: &'a [T],
    shards: usize,
    mut route: impl FnMut(&T) -> usize,
) -> Vec<(Vec<usize>, Vec<&'a T>)> {
    let mut parts: Vec<(Vec<usize>, Vec<&'a T>)> = vec![(Vec::new(), Vec::new()); shards];
    for (i, item) in items.iter().enumerate() {
        let s = route(item);
        assert!(s < shards, "route sent item {i} to shard {s} of {shards}");
        parts[s].0.push(i);
        parts[s].1.push(item);
    }
    parts
}

/// [`partition_batch`] for **owned** items: moves each item into its
/// shard's sub-batch instead of cloning — the right shape for bulk
/// mutation deltas, where the routed values are consumed by the shards
/// and per-item results (if any) are scalar. Original indices are
/// returned the same way, so [`scatter_to_input_order`] applies
/// unchanged when results must return in input order.
///
/// # Panics
/// Panics if `route` returns an index `>= shards`.
///
/// # Examples
/// ```
/// use ist_query::route::partition_owned;
/// let parts = partition_owned(vec![5u64, 12, 3, 20], 3, |k| (k / 10) as usize);
/// assert_eq!(parts[0], (vec![0, 2], vec![5, 3]));
/// assert_eq!(parts[1], (vec![1], vec![12]));
/// assert_eq!(parts[2], (vec![3], vec![20]));
/// ```
pub fn partition_owned<T>(
    items: Vec<T>,
    shards: usize,
    mut route: impl FnMut(&T) -> usize,
) -> Vec<(Vec<usize>, Vec<T>)> {
    let mut parts: Vec<(Vec<usize>, Vec<T>)> = std::iter::repeat_with(Default::default)
        .take(shards)
        .collect();
    for (i, item) in items.into_iter().enumerate() {
        let s = route(&item);
        assert!(s < shards, "route sent item {i} to shard {s} of {shards}");
        parts[s].0.push(i);
        parts[s].1.push(item);
    }
    parts
}

/// Scatter per-shard results back into input order: `parts` pairs each
/// shard's original-index list (from [`partition_batch`]) with its
/// result list, and the output places result `j` of shard `s` at
/// `parts[s].0[j]` — undoing the partition, so `out[i]` answers input
/// item `i`.
///
/// # Panics
/// Panics unless the index lists form an exact partition of `0..len`
/// (each index covered once) with one result per index — torn routing
/// is a bug, never silently misattributed.
///
/// # Examples
/// ```
/// use ist_query::route::scatter_to_input_order;
/// let parts = vec![(vec![0, 2], vec!["a", "c"]), (vec![1], vec!["b"])];
/// assert_eq!(scatter_to_input_order(3, parts), vec!["a", "b", "c"]);
/// ```
pub fn scatter_to_input_order<R>(
    len: usize,
    parts: impl IntoIterator<Item = (Vec<usize>, Vec<R>)>,
) -> Vec<R> {
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(len).collect();
    let mut filled = 0usize;
    for (indices, results) in parts {
        assert_eq!(
            indices.len(),
            results.len(),
            "scatter: a shard returned {} results for {} routed items",
            results.len(),
            indices.len()
        );
        for (i, r) in indices.into_iter().zip(results) {
            assert!(
                out[i].replace(r).is_none(),
                "scatter: input slot {i} routed twice"
            );
            filled += 1;
        }
    }
    assert_eq!(filled, len, "scatter: not every input slot was covered");
    out.into_iter()
        .map(|slot| slot.expect("every slot covered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_then_scatter_roundtrips() {
        let items: Vec<u64> = (0..100).map(|i| (i * 37) % 90).collect();
        let parts = partition_batch(&items, 4, |k| shard_of_key(&[20u64, 45, 70], k));
        // Within-shard order is input order.
        for (indices, routed) in &parts {
            assert!(indices.windows(2).all(|w| w[0] < w[1]));
            for (&i, k) in indices.iter().zip(routed) {
                assert_eq!(items[i], *k);
            }
        }
        // Identity results scatter back to the input batch.
        let back = scatter_to_input_order(items.len(), parts);
        assert_eq!(back, items);
    }

    #[test]
    fn partition_ref_matches_partition_batch() {
        let items: Vec<u64> = (0..257).map(|i| (i * 131) % 300).collect();
        let splits = [40u64, 90, 200];
        let owned = partition_batch(&items, 4, |k| shard_of_key(&splits, k));
        let byref = partition_batch_ref(&items, 4, |k| shard_of_key(&splits, k));
        for ((oi, ov), (ri, rv)) in owned.iter().zip(&byref) {
            assert_eq!(oi, ri);
            assert_eq!(ov, &rv.iter().map(|&&k| k).collect::<Vec<_>>());
        }
    }

    /// Regression for the O(batch × splits) debug-assert: `shard_of_key`
    /// must NOT re-validate the split vector per routed item — that is
    /// the caller's per-call responsibility via
    /// [`debug_assert_valid_splits`]. Routing through knowingly-unsorted
    /// splits must therefore not panic (the result is unspecified
    /// garbage, but it is *cheap* garbage).
    #[test]
    fn shard_of_key_does_not_revalidate_splits() {
        let unsorted = [20u64, 10];
        let _ = shard_of_key(&unsorted, &15); // must not panic, even in debug
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly increasing")]
    fn per_call_validation_still_catches_bad_splits() {
        debug_assert_valid_splits(&[20u64, 10]);
    }

    #[test]
    fn empty_batch_and_empty_shards() {
        let parts = partition_batch(&[] as &[u64], 3, |_| 0);
        assert_eq!(parts.len(), 3);
        let out: Vec<u64> = scatter_to_input_order(0, parts);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "not every input slot was covered")]
    fn scatter_rejects_missing_slots() {
        scatter_to_input_order(2, vec![(vec![0], vec!["only"])]);
    }

    #[test]
    #[should_panic(expected = "routed twice")]
    fn scatter_rejects_duplicate_slots() {
        scatter_to_input_order(2, vec![(vec![0, 0], vec!["a", "b"])]);
    }
}
