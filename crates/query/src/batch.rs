//! The batched query execution engine: software-pipelined
//! multi-descent, generic over the layout [`Navigator`].
//!
//! A lone descent spends most of its time waiting: each level's node
//! address depends on the previous level's comparison, so its loads
//! serialize, and the two-way branch per level mispredicts half the
//! time on random probes. Independent queries share neither problem —
//! the engine exploits that by keeping a window of `W` descents in
//! flight and advancing them **level-synchronously**: each round
//! advances every in-flight descent one level (branchlessly, via the
//! navigator's compare-and-advance step) and issues the navigator's
//! prefetch for its next node before any of them is touched again. The
//! in-flight loads are mutually independent, so the core's memory-level
//! parallelism — not its latency — sets the throughput: the
//! batch-parallel analogue of the paper's GPU query model, where a warp
//! keeps 32 descents in flight.
//!
//! There is exactly **one** search window loop and **one** rank window
//! loop ([`window_search_into`] / [`window_rank_into`]); which layout
//! they descend is entirely the navigator's business. Because all
//! in-flight descents sit on the same level, the per-level round
//! constant ([`Navigator::Round`]) is computed once per round for the
//! whole window.
//!
//! The window width is a const-generic engine parameter (default
//! [`DEFAULT_WINDOW`]); `Searcher::batch_search_pipelined_with_window`
//! exposes it, and the `query_batched` bench sweeps 8/16/32/64
//! (committed as `BENCH_window_sweep.json`).
//!
//! Three execution tiers, composed rather than alternative:
//!
//! * `*_seq` — the scalar loop (one query at a time, run to
//!   completion); the baseline the paper's Figures 6.5–6.7 measure.
//! * `*_pipelined` — one thread, [`DEFAULT_WINDOW`] in-flight descents.
//! * the un-suffixed entry points — rayon-parallel over chunks whose
//!   size adapts to the batch length, **pipelining within each chunk**.
//!
//! All three produce bit-identical results for every operation: the
//! windowed kernels replay the scalar engine's comparison sequence (the
//! only liberty taken is that an early-exit equality is recorded in a
//! result register instead of breaking the round structure —
//! first-match-wins, like the scalar loop). The differential suite
//! (`tests/query_differential.rs`) enforces this, and
//! `tests/navigator_equivalence.rs` pins the visited node sequences.

use crate::nav::{Navigator, MISS};
use crate::Searcher;
use rayon::prelude::*;

/// Default in-flight descents per pipelined lane.
///
/// Sized to the memory-level parallelism a core can actually sustain
/// (line-fill buffers plus prefetch queue); measured flat between 24
/// and 64 on the reference host, steeply worse below 8 (see
/// `BENCH_window_sweep.json`).
pub const DEFAULT_WINDOW: usize = 32;

/// Split a batch of `n` queries into parallel chunks: enough chunks to
/// balance the pool (~4 per thread), but never so small that spawn
/// overhead or a truncated pipeline window dominates the descents
/// themselves.
///
/// Returns `n` (one chunk, no parallelism) when the pool is a single
/// thread or the batch is too small to amortize a spawn.
fn adaptive_chunk_len(n: usize) -> usize {
    const MIN_CHUNK: usize = 128;
    let threads = rayon::current_num_threads().max(1);
    if threads == 1 || n <= MIN_CHUNK {
        return n.max(1);
    }
    n.div_ceil(threads * 4).max(MIN_CHUNK)
}

/// Run `work(item_chunk, out_chunk)` over lockstep chunks of
/// `items`/`out` sized by [`adaptive_chunk_len`] — rayon-parallel when
/// the batch is large enough, inline on the caller otherwise. The one
/// place the batch-to-chunk policy lives; every parallel batch entry
/// point (search, rank, count, range count, successor) dispatches
/// through here.
pub(crate) fn par_chunked<I: Sync, O: Send>(
    items: &[I],
    out: &mut [O],
    work: impl Fn(&[I], &mut [O]) + Sync,
) {
    debug_assert_eq!(items.len(), out.len());
    let chunk = adaptive_chunk_len(items.len());
    if chunk >= items.len() {
        work(items, out);
    } else {
        out.par_chunks_mut(chunk).enumerate().for_each(|(c, oc)| {
            work(&items[c * chunk..c * chunk + oc.len()], oc);
        });
    }
}

/// One window of cached key references (`bw ≤ W` live entries).
#[inline(always)]
fn fill_keys<'k, T: 'k, const W: usize>(
    q: usize,
    bw: usize,
    key_of: &impl Fn(usize) -> &'k T,
) -> [&'k T; W] {
    let mut keys = [key_of(q); W];
    for (s, slot) in keys.iter_mut().enumerate().take(bw).skip(1) {
        *slot = key_of(q + s);
    }
    keys
}

/// The pipelined **search** window loop: `n` queries in windows of `W`
/// in-flight descents, delivering `(query index, layout position)`
/// pairs to `sink` in query order. Exactly what the scalar
/// [`crate::nav::search_with`] returns per key, for any navigator.
///
/// `tap(query, node_base)` observes every node read of every live
/// descent (no-op closures compile away; the equivalence suite listens
/// here).
pub(crate) fn window_search_into<'k, T, N, const W: usize>(
    nav: &N,
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, Option<usize>),
    mut tap: impl FnMut(usize, usize),
) where
    T: Ord + 'k,
    N: Navigator<T>,
{
    let rounds = nav.rounds();
    let (cur0, acc0) = nav.start();
    let mut q = 0usize;
    while q < n {
        let bw = W.min(n - q);
        let keys = fill_keys::<T, W>(q, bw, &key_of);
        // Structure-of-arrays descent registers: cursor / accumulator /
        // result latch per lane.
        let mut curs = [cur0; W];
        let mut accs = [acc0; W];
        let mut res = [MISS; W];
        let mut ctx = nav.first_round();
        // All descents share the root; one prefetch warms it (for the
        // sorted baseline this is the shared first midpoint).
        nav.prefetch_node(&curs[0], &accs[0]);
        for _ in 1..rounds {
            for s in 0..bw {
                if !nav.is_live(&curs[s], &accs[s]) {
                    continue;
                }
                tap(q + s, nav.node_base(&curs[s], &accs[s]));
                nav.step_search(&mut curs[s], &mut accs[s], &mut res[s], keys[s], ctx);
                nav.prefetch_node(&curs[s], &accs[s]);
            }
            ctx = nav.next_round(ctx);
        }
        if rounds > 0 {
            // Final round: descents fall off into their gaps; prefetch
            // each gap's overflow probe target instead of a child.
            for s in 0..bw {
                if !nav.is_live(&curs[s], &accs[s]) {
                    continue;
                }
                tap(q + s, nav.node_base(&curs[s], &accs[s]));
                nav.step_search_last(&mut curs[s], &mut accs[s], &mut res[s], keys[s]);
                if res[s] == MISS {
                    nav.prefetch_gap(nav.gap(&curs[s], &accs[s]));
                }
            }
        }
        for s in 0..bw {
            let out = if res[s] != MISS {
                Some(res[s])
            } else {
                nav.resolve_miss(nav.gap(&curs[s], &accs[s]), keys[s])
            };
            sink(q + s, out);
        }
        q += bw;
    }
}

/// The pipelined **rank** window loop (strictly-smaller counts, or `≤`
/// with `UPPER`): the twin of [`window_search_into`] without result
/// registers or overflow probes.
pub(crate) fn window_rank_into<'k, T, N, const W: usize, const UPPER: bool>(
    nav: &N,
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, usize),
    mut tap: impl FnMut(usize, usize),
) where
    T: Ord + 'k,
    N: Navigator<T>,
{
    let rounds = nav.rounds();
    let (cur0, acc0) = nav.start();
    let mut q = 0usize;
    while q < n {
        let bw = W.min(n - q);
        let keys = fill_keys::<T, W>(q, bw, &key_of);
        let mut curs = [cur0; W];
        let mut accs = [acc0; W];
        let mut ctx = nav.first_round();
        nav.prefetch_node(&curs[0], &accs[0]);
        for _ in 1..rounds {
            for s in 0..bw {
                if !nav.is_live(&curs[s], &accs[s]) {
                    continue;
                }
                tap(q + s, nav.node_base(&curs[s], &accs[s]));
                nav.step_rank::<UPPER>(&mut curs[s], &mut accs[s], keys[s], ctx);
                nav.prefetch_node(&curs[s], &accs[s]);
            }
            ctx = nav.next_round(ctx);
        }
        if rounds > 0 {
            for s in 0..bw {
                if !nav.is_live(&curs[s], &accs[s]) {
                    continue;
                }
                tap(q + s, nav.node_base(&curs[s], &accs[s]));
                nav.step_rank_last::<UPPER>(&mut curs[s], &mut accs[s], keys[s]);
                nav.prefetch_gap(nav.gap(&curs[s], &accs[s]));
            }
        }
        for s in 0..bw {
            sink(
                q + s,
                nav.rank_of_gap::<UPPER>(nav.gap(&curs[s], &accs[s]), keys[s]),
            );
        }
        q += bw;
    }
}

impl<'a, T: Ord + Sync + 'static> Searcher<'a, T> {
    /// Run the pipelined **search** engine over `n` queries, delivering
    /// `(query index, layout position)` pairs to `sink` in query order.
    pub(crate) fn pipelined_search_into<'k, const W: usize>(
        &self,
        n: usize,
        key_of: impl Fn(usize) -> &'k T,
        sink: impl FnMut(usize, Option<usize>),
    ) where
        T: 'k,
    {
        crate::dispatch_nav!(self, nav => {
            window_search_into::<T, _, W>(&nav, n, key_of, sink, |_, _| {})
        });
    }

    /// Run the pipelined **rank** engine over `n` queries, delivering
    /// `(query index, rank)` pairs to `sink` in query order.
    pub(crate) fn pipelined_rank_into<'k, const W: usize, const UPPER: bool>(
        &self,
        n: usize,
        key_of: impl Fn(usize) -> &'k T,
        sink: impl FnMut(usize, usize),
    ) where
        T: 'k,
    {
        crate::dispatch_nav!(self, nav => {
            window_rank_into::<T, _, W, UPPER>(&nav, n, key_of, sink, |_, _| {})
        });
    }

    /// Scalar batch search: one descent at a time, run to completion.
    ///
    /// The baseline the pipelined and parallel tiers are measured
    /// against (`query_batched` bench); also the differential oracle's
    /// definition of batch semantics.
    pub fn batch_search_seq(&self, keys: &[T]) -> Vec<Option<usize>> {
        keys.iter().map(|k| self.search(k)).collect()
    }

    /// Software-pipelined batch search on the calling thread: a window
    /// of descents in flight, each round advancing every descent one
    /// level and prefetching its next node.
    ///
    /// Returns exactly what [`Searcher::search`] returns per key, in
    /// key order.
    pub fn batch_search_pipelined(&self, keys: &[T]) -> Vec<Option<usize>> {
        self.batch_search_pipelined_with_window::<DEFAULT_WINDOW>(keys)
    }

    /// [`Searcher::batch_search_pipelined`] with an explicit window
    /// width `W` (in-flight descents per lane). Results are identical
    /// for every `W ≥ 1`; only throughput changes. `W = 0` is rejected
    /// at compile time.
    pub fn batch_search_pipelined_with_window<const W: usize>(
        &self,
        keys: &[T],
    ) -> Vec<Option<usize>> {
        const { assert!(W > 0, "pipeline window must hold at least one descent") }
        let mut out = vec![None; keys.len()];
        self.pipelined_search_into::<W>(keys.len(), |i| &keys[i], |i, r| out[i] = r);
        out
    }

    /// Batch search: pipelined within rayon-parallel chunks sized
    /// adaptively to the batch length (small batches stay on the
    /// calling thread).
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..1000).map(|x| 2 * x).collect();
    /// permute_in_place(&mut v, Layout::Bst, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Bst);
    /// let found = s.batch_search(&[0, 2, 3, 1998]);
    /// assert_eq!(found.len(), 4);
    /// assert_eq!(found[0].map(|p| v[p]), Some(0));
    /// assert_eq!(found[2], None); // 3 is not stored
    /// assert_eq!(found, s.batch_search_seq(&[0, 2, 3, 1998]));
    /// ```
    pub fn batch_search(&self, keys: &[T]) -> Vec<Option<usize>> {
        let mut out = vec![None; keys.len()];
        par_chunked(keys, &mut out, |kc, oc| {
            self.pipelined_search_into::<DEFAULT_WINDOW>(kc.len(), |i| &kc[i], |i, r| oc[i] = r)
        });
        out
    }

    /// [`Searcher::batch_search`] over **borrowed** keys: identical
    /// results for `keys[i]` without requiring a contiguous owned key
    /// array. The engine reads keys through a position→`&T` closure
    /// internally, so this is not a convenience wrapper — no key is
    /// ever cloned or copied into a staging buffer. The entry point for
    /// routing layers that partition a batch by reference
    /// ([`crate::route::partition_batch_ref`]).
    pub fn batch_search_ref(&self, keys: &[&T]) -> Vec<Option<usize>> {
        let mut out = vec![None; keys.len()];
        par_chunked(keys, &mut out, |kc, oc| {
            self.pipelined_search_into::<DEFAULT_WINDOW>(kc.len(), |i| kc[i], |i, r| oc[i] = r)
        });
        out
    }

    /// Scalar batch rank (one [`Searcher::rank`] per key).
    pub fn batch_rank_seq(&self, keys: &[T]) -> Vec<usize> {
        keys.iter().map(|k| self.rank(k)).collect()
    }

    /// Software-pipelined batch rank on the calling thread.
    pub fn batch_rank_pipelined(&self, keys: &[T]) -> Vec<usize> {
        self.batch_rank_pipelined_with_window::<DEFAULT_WINDOW>(keys)
    }

    /// [`Searcher::batch_rank_pipelined`] with an explicit window width
    /// (`W = 0` is rejected at compile time).
    pub fn batch_rank_pipelined_with_window<const W: usize>(&self, keys: &[T]) -> Vec<usize> {
        const { assert!(W > 0, "pipeline window must hold at least one descent") }
        let mut out = vec![0usize; keys.len()];
        self.pipelined_rank_into::<W, false>(keys.len(), |i| &keys[i], |i, r| out[i] = r);
        out
    }

    /// Batch rank: pipelined within adaptively-sized parallel chunks.
    ///
    /// `out[i]` is the number of stored keys strictly smaller than
    /// `keys[i]` (identical to per-key [`Searcher::rank`]).
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..100).map(|x| 2 * x).collect();
    /// permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Veb);
    /// assert_eq!(s.batch_rank(&[0, 1, 10, 999]), vec![0, 1, 5, 100]);
    /// ```
    pub fn batch_rank(&self, keys: &[T]) -> Vec<usize> {
        let mut out = vec![0usize; keys.len()];
        par_chunked(keys, &mut out, |kc, oc| {
            self.pipelined_rank_into::<DEFAULT_WINDOW, false>(
                kc.len(),
                |i| &kc[i],
                |i, r| oc[i] = r,
            )
        });
        out
    }

    /// [`Searcher::batch_rank`] over **borrowed** keys (see
    /// [`Searcher::batch_search_ref`] for why this costs nothing extra).
    pub fn batch_rank_ref(&self, keys: &[&T]) -> Vec<usize> {
        let mut out = vec![0usize; keys.len()];
        par_chunked(keys, &mut out, |kc, oc| {
            self.pipelined_rank_into::<DEFAULT_WINDOW, false>(kc.len(), |i| kc[i], |i, r| oc[i] = r)
        });
        out
    }

    /// Batch lower bound: `out[i]` is the layout position of the first
    /// (in sorted order) stored key `≥ keys[i]`, identical to per-key
    /// [`Searcher::lower_bound`]. Runs on the rank engine plus the
    /// closed-form position maps.
    pub fn batch_lower_bound(&self, keys: &[T]) -> Vec<Option<usize>> {
        self.batch_rank(keys)
            .into_iter()
            .map(|r| self.position_of_rank(r))
            .collect()
    }

    /// Run a batch of queries sequentially, returning the number found
    /// (the paper's query benchmarks measure exactly this loop).
    pub fn batch_count_seq(&self, keys: &[T]) -> usize {
        keys.iter().filter(|k| self.contains(k)).count()
    }

    /// Count how many of `keys` are present: pipelined within
    /// adaptively-sized parallel chunks.
    ///
    /// Always equal to [`Searcher::batch_count_seq`] — including for
    /// batches smaller than any parallel grain, which run pipelined on
    /// the calling thread instead of silently falling back to scalar.
    pub fn batch_count(&self, keys: &[T]) -> usize {
        let mut found = vec![false; keys.len()];
        par_chunked(keys, &mut found, |kc, oc| {
            self.pipelined_search_into::<DEFAULT_WINDOW>(
                kc.len(),
                |i| &kc[i],
                |i, r| oc[i] = r.is_some(),
            )
        });
        found.into_iter().filter(|f| *f).count()
    }
}
