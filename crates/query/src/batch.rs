//! The batched query execution engine: software-pipelined
//! multi-descent.
//!
//! A lone descent spends most of its time waiting: each level's node
//! address depends on the previous level's comparison, so its loads
//! serialize, and the two-way branch per level mispredicts half the
//! time on random probes. Independent queries share neither problem —
//! the engine exploits that by keeping a window of [`WINDOW`] descents
//! in flight and advancing them **level-synchronously**: each round
//! advances every in-flight descent one level (branchlessly, via
//! conditional moves) and issues a prefetch for its next node before
//! any of them is touched again. The in-flight loads are mutually
//! independent, so the core's memory-level parallelism — not its
//! latency — sets the throughput: the batch-parallel analogue of the
//! paper's GPU query model, where a warp keeps 32 descents in flight.
//!
//! Because all in-flight descents of a binary layout sit on the same
//! level, the per-level subtree size is a round constant, and the whole
//! window retires in exactly `d` rounds plus one overflow-probe pass.
//!
//! Three execution tiers, composed rather than alternative:
//!
//! * `*_seq` — the scalar loop (one query at a time, run to
//!   completion); the baseline the paper's Figures 6.5–6.7 measure.
//! * `*_pipelined` — one thread, [`WINDOW`] in-flight descents.
//! * the un-suffixed entry points — rayon-parallel over chunks whose
//!   size adapts to the batch length, **pipelining within each chunk**.
//!
//! All three produce bit-identical results for every operation: each
//! batched kernel replays its scalar twin's comparison sequence (the
//! only liberty taken is that an early-exit equality is recorded in a
//! result register instead of breaking the round structure —
//! first-match-wins, like the scalar loop). The differential suite
//! (`tests/query_differential.rs`) enforces this.

use crate::descent::{
    binary_rank_from_gap, btree_probe, btree_rank_from_gap, prefetch, probe_overflow, BinaryShape,
    BtreeSearchShape,
};
use crate::{Searcher, ShapeData};
use ist_layout::veb_pos;
use rayon::prelude::*;

/// In-flight descents per pipelined lane.
///
/// Sized to the memory-level parallelism a core can actually sustain
/// (line-fill buffers plus prefetch queue); measured flat between 24
/// and 64 on the reference host, steeply worse below 8.
pub(crate) const WINDOW: usize = 32;

/// Sentinel for "no hit recorded yet" in the search kernels' result
/// registers (never a valid layout index: indices are `< data.len()`).
const MISS: usize = usize::MAX;

/// Split a batch of `n` queries into parallel chunks: enough chunks to
/// balance the pool (~4 per thread), but never so small that spawn
/// overhead or a truncated pipeline window dominates the descents
/// themselves.
///
/// Returns `n` (one chunk, no parallelism) when the pool is a single
/// thread or the batch is too small to amortize a spawn.
fn adaptive_chunk_len(n: usize) -> usize {
    const MIN_CHUNK: usize = 128;
    let threads = rayon::current_num_threads().max(1);
    if threads == 1 || n <= MIN_CHUNK {
        return n.max(1);
    }
    n.div_ceil(threads * 4).max(MIN_CHUNK)
}

/// Run `work(item_chunk, out_chunk)` over lockstep chunks of
/// `items`/`out` sized by [`adaptive_chunk_len`] — rayon-parallel when
/// the batch is large enough, inline on the caller otherwise. The one
/// place the batch-to-chunk policy lives; every parallel batch entry
/// point (search, rank, count, range count) dispatches through here.
pub(crate) fn par_chunked<I: Sync, O: Send>(
    items: &[I],
    out: &mut [O],
    work: impl Fn(&[I], &mut [O]) + Sync,
) {
    debug_assert_eq!(items.len(), out.len());
    let chunk = adaptive_chunk_len(items.len());
    if chunk >= items.len() {
        work(items, out);
    } else {
        out.par_chunks_mut(chunk).enumerate().for_each(|(c, oc)| {
            work(&items[c * chunk..c * chunk + oc.len()], oc);
        });
    }
}

/// One window of cached key references (`bw ≤ WINDOW` live entries).
#[inline(always)]
fn fill_keys<'k, T: 'k>(q: usize, bw: usize, key_of: &impl Fn(usize) -> &'k T) -> [&'k T; WINDOW] {
    let mut keys = [key_of(q); WINDOW];
    for (s, slot) in keys.iter_mut().enumerate().take(bw).skip(1) {
        *slot = key_of(q + s);
    }
    keys
}

/// Pipelined BST search (twin of [`crate::descent::bst_descent`]).
fn bst_search_batch<'k, T: Ord + 'k>(
    data: &[T],
    shape: BinaryShape,
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, Option<usize>),
) {
    let BinaryShape { d, i, l } = shape;
    let mut q = 0usize;
    while q < n {
        let bw = WINDOW.min(n - q);
        let keys = fill_keys(q, bw, &key_of);
        let mut vs = [0usize; WINDOW];
        let mut los = [0usize; WINDOW];
        let mut res = [MISS; WINDOW];
        let mut sz = i;
        for _ in 0..d {
            let half = sz >> 1;
            for s in 0..bw {
                let v = vs[s];
                debug_assert!(v < i);
                // SAFETY: on each of the `d` full levels a node index is
                // at most 2^{level+1} − 2 ≤ 2^d − 2 < i ≤ data.len().
                let node = unsafe { data.get_unchecked(v) };
                let key = keys[s];
                let hit = (res[s] == MISS) & (*key == *node);
                res[s] = if hit { v } else { res[s] };
                let gt = usize::from(*key > *node);
                vs[s] = 2 * v + 1 + gt;
                los[s] += (half + 1) * gt;
                prefetch(data, vs[s]);
            }
            sz = half;
        }
        for s in 0..bw {
            if res[s] == MISS {
                prefetch(data, i + los[s]);
            }
        }
        for s in 0..bw {
            let out = if res[s] != MISS {
                Some(res[s])
            } else {
                probe_overflow(data, i, l, los[s], keys[s])
            };
            sink(q + s, out);
        }
        q += bw;
    }
}

/// Pipelined BST rank (twin of [`crate::descent::bst_rank_descent`]).
fn bst_rank_batch<'k, T: Ord + 'k>(
    data: &[T],
    shape: BinaryShape,
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, usize),
) {
    let BinaryShape { d, i, l } = shape;
    let mut q = 0usize;
    while q < n {
        let bw = WINDOW.min(n - q);
        let keys = fill_keys(q, bw, &key_of);
        let mut vs = [0usize; WINDOW];
        let mut los = [0usize; WINDOW];
        let mut sz = i;
        for _ in 0..d {
            let half = sz >> 1;
            for s in 0..bw {
                let v = vs[s];
                debug_assert!(v < i);
                // SAFETY: as in `bst_search_batch`.
                let node = unsafe { data.get_unchecked(v) };
                let gt = usize::from(*keys[s] > *node);
                vs[s] = 2 * v + 1 + gt;
                los[s] += (half + 1) * gt;
                prefetch(data, vs[s]);
            }
            sz = half;
        }
        for g in los.iter().take(bw) {
            prefetch(data, i + g);
        }
        for s in 0..bw {
            sink(q + s, binary_rank_from_gap(data, i, l, los[s], keys[s]));
        }
        q += bw;
    }
}

/// Pipelined vEB search (twin of [`crate::descent::veb_descent`]).
fn veb_search_batch<'k, T: Ord + 'k>(
    data: &[T],
    shape: BinaryShape,
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, Option<usize>),
) {
    let BinaryShape { d, i, l } = shape;
    let root_p = 1u64 << (d - 1);
    let root_pos = veb_pos(d, (root_p - 1) as usize);
    let mut q = 0usize;
    while q < n {
        let bw = WINDOW.min(n - q);
        let keys = fill_keys(q, bw, &key_of);
        let mut ps = [root_p; WINDOW];
        let mut poss = [root_pos; WINDOW];
        let mut gs = [0u64; WINDOW];
        let mut res = [MISS; WINDOW];
        prefetch(data, root_pos);
        // The d−1 in-tree levels: after touching a node, its child's
        // in-order position is p ± step, and the child's layout index
        // is recomputed (and prefetched) immediately.
        for lvl in 0..d.saturating_sub(1) {
            let st = 1u64 << (d - 2 - lvl);
            for s in 0..bw {
                let pos = poss[s];
                debug_assert!(pos < i);
                // SAFETY: veb_pos maps in-order ranks 0..i to layout
                // positions 0..i, and p stays in [1, i] by construction.
                let node = unsafe { data.get_unchecked(pos) };
                let key = keys[s];
                let hit = (res[s] == MISS) & (*key == *node);
                res[s] = if hit { pos } else { res[s] };
                let lt = u64::from(*key < *node);
                let p = ps[s] + st - 2 * st * lt;
                ps[s] = p;
                let next = veb_pos(d, (p - 1) as usize);
                poss[s] = next;
                prefetch(data, next);
            }
        }
        // Leaf level: compute the fall-off gap instead of a child.
        for s in 0..bw {
            let pos = poss[s];
            debug_assert!(pos < i);
            // SAFETY: as above.
            let node = unsafe { data.get_unchecked(pos) };
            let key = keys[s];
            let hit = (res[s] == MISS) & (*key == *node);
            res[s] = if hit { pos } else { res[s] };
            gs[s] = ps[s] - u64::from(*key < *node);
            prefetch(data, i + gs[s] as usize);
        }
        for s in 0..bw {
            let out = if res[s] != MISS {
                Some(res[s])
            } else {
                probe_overflow(data, i, l, gs[s] as usize, keys[s])
            };
            sink(q + s, out);
        }
        q += bw;
    }
}

/// Pipelined vEB rank (twin of [`crate::descent::veb_rank_descent`]).
fn veb_rank_batch<'k, T: Ord + 'k>(
    data: &[T],
    shape: BinaryShape,
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, usize),
) {
    let BinaryShape { d, i, l } = shape;
    let root_p = 1u64 << (d - 1);
    let root_pos = veb_pos(d, (root_p - 1) as usize);
    let mut q = 0usize;
    while q < n {
        let bw = WINDOW.min(n - q);
        let keys = fill_keys(q, bw, &key_of);
        let mut ps = [root_p; WINDOW];
        let mut poss = [root_pos; WINDOW];
        let mut gs = [0u64; WINDOW];
        prefetch(data, root_pos);
        for lvl in 0..d.saturating_sub(1) {
            let st = 1u64 << (d - 2 - lvl);
            for s in 0..bw {
                let pos = poss[s];
                debug_assert!(pos < i);
                // SAFETY: as in `veb_search_batch`.
                let node = unsafe { data.get_unchecked(pos) };
                let le = u64::from(*keys[s] <= *node);
                let p = ps[s] + st - 2 * st * le;
                ps[s] = p;
                let next = veb_pos(d, (p - 1) as usize);
                poss[s] = next;
                prefetch(data, next);
            }
        }
        for s in 0..bw {
            let pos = poss[s];
            debug_assert!(pos < i);
            // SAFETY: as above.
            let node = unsafe { data.get_unchecked(pos) };
            gs[s] = ps[s] - u64::from(*keys[s] <= *node);
            prefetch(data, i + gs[s] as usize);
        }
        for s in 0..bw {
            sink(
                q + s,
                binary_rank_from_gap(data, i, l, gs[s] as usize, keys[s]),
            );
        }
        q += bw;
    }
}

/// Pipelined B-tree search (twin of [`crate::descent::btree_descent`]).
fn btree_search_batch<'k, T: Ord + 'k>(
    data: &[T],
    shape: BtreeSearchShape,
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, Option<usize>),
) {
    let BtreeSearchShape {
        b,
        i,
        num_nodes,
        levels,
        q: full_over,
        ..
    } = shape;
    let k = b + 1;
    let mut q = 0usize;
    while q < n {
        let bw = WINDOW.min(n - q);
        let keys = fill_keys(q, bw, &key_of);
        let mut vs = [0usize; WINDOW];
        let mut los = [0usize; WINDOW];
        let mut res = [MISS; WINDOW];
        let mut span = i;
        for _ in 0..levels {
            let child = (span - b) / k;
            for s in 0..bw {
                let v = vs[s];
                debug_assert!(v < num_nodes);
                let base = v * b;
                // SAFETY: on each of the `levels` node levels, v <
                // num_nodes, so the node's b keys end at v*b + b ≤ i.
                let node_keys = unsafe { data.get_unchecked(base..base + b) };
                let key = keys[s];
                // c = number of node keys < key (whole-node branchless
                // scan; the scalar loop's early break lands on the same
                // c because node keys are sorted).
                let mut c = 0usize;
                for kk in node_keys {
                    c += usize::from(*key > *kk);
                }
                let hit = res[s] == MISS && c < b && node_keys[c] == *key;
                res[s] = if hit { base + c } else { res[s] };
                vs[s] = v * k + c + 1;
                los[s] += c * (child + 1);
                prefetch(data, vs[s] * b);
            }
            span = child;
        }
        for s in 0..bw {
            if res[s] == MISS && los[s] <= full_over {
                prefetch(data, i + los[s] * b);
            }
        }
        for s in 0..bw {
            let out = if res[s] != MISS {
                Some(res[s])
            } else {
                btree_probe(data, shape, los[s], keys[s])
            };
            sink(q + s, out);
        }
        q += bw;
    }
}

/// Pipelined B-tree rank (twin of [`crate::descent::btree_rank_descent`]).
fn btree_rank_batch<'k, T: Ord + 'k>(
    data: &[T],
    shape: BtreeSearchShape,
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, usize),
) {
    let BtreeSearchShape {
        b,
        i,
        num_nodes,
        levels,
        q: full_over,
        ..
    } = shape;
    let k = b + 1;
    let mut q = 0usize;
    while q < n {
        let bw = WINDOW.min(n - q);
        let keys = fill_keys(q, bw, &key_of);
        let mut vs = [0usize; WINDOW];
        let mut los = [0usize; WINDOW];
        let mut span = i;
        for _ in 0..levels {
            let child = (span - b) / k;
            for s in 0..bw {
                let v = vs[s];
                debug_assert!(v < num_nodes);
                let base = v * b;
                // SAFETY: as in `btree_search_batch`.
                let node_keys = unsafe { data.get_unchecked(base..base + b) };
                let key = keys[s];
                let mut c = 0usize;
                for kk in node_keys {
                    c += usize::from(*key > *kk);
                }
                vs[s] = v * k + c + 1;
                los[s] += c * (child + 1);
                prefetch(data, vs[s] * b);
            }
            span = child;
        }
        for g in los.iter().take(bw) {
            if *g <= full_over {
                prefetch(data, i + g * b);
            }
        }
        for s in 0..bw {
            sink(q + s, btree_rank_from_gap(data, shape, los[s], keys[s]));
        }
        q += bw;
    }
}

/// Pipelined partition-point rank on the sorted array (twin of
/// [`crate::descent::sorted_rank_descent`]).
fn sorted_rank_batch<'k, T: Ord + 'k>(
    data: &[T],
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, usize),
) {
    if data.is_empty() {
        for qi in 0..n {
            sink(qi, 0);
        }
        return;
    }
    // len at least halves per round, so ⌊log2 n⌋ + 1 rounds drain every
    // lane; drained lanes (len == 0) are skipped.
    let rounds = usize::BITS - data.len().leading_zeros();
    let mut q = 0usize;
    while q < n {
        let bw = WINDOW.min(n - q);
        let keys = fill_keys(q, bw, &key_of);
        let mut lows = [0usize; WINDOW];
        let mut lens = [data.len(); WINDOW];
        prefetch(data, data.len() / 2);
        for _ in 0..rounds {
            for s in 0..bw {
                let len = lens[s];
                if len == 0 {
                    continue;
                }
                let half = len / 2;
                let idx = lows[s] + half;
                debug_assert!(idx < data.len());
                // SAFETY: the partition-point loop keeps lo + len ≤
                // data.len() and probes lo + len/2 < lo + len.
                let node = unsafe { data.get_unchecked(idx) };
                let lt = *node < *keys[s];
                lows[s] = if lt { idx + 1 } else { lows[s] };
                lens[s] = if lt { len - half - 1 } else { half };
                let nl = lens[s];
                if nl > 0 {
                    prefetch(data, lows[s] + nl / 2);
                }
            }
        }
        for (s, low) in lows.iter().enumerate().take(bw) {
            sink(q + s, *low);
        }
        q += bw;
    }
}

/// Pipelined sorted-array search: the rank kernel plus a verify pass
/// (twin of [`crate::descent::sorted_descent`]).
fn sorted_search_batch<'k, T: Ord + 'k>(
    data: &[T],
    n: usize,
    key_of: impl Fn(usize) -> &'k T,
    mut sink: impl FnMut(usize, Option<usize>),
) {
    let mut q = 0usize;
    // Reuse the rank kernel per window by buffering one window of ranks.
    let mut ranks = [0usize; WINDOW];
    while q < n {
        let bw = WINDOW.min(n - q);
        sorted_rank_batch(data, bw, |s| key_of(q + s), |s, r| ranks[s] = r);
        for r in ranks.iter().take(bw) {
            prefetch(data, *r);
        }
        for (s, r) in ranks.iter().enumerate().take(bw) {
            let out = if *r < data.len() && data[*r] == *key_of(q + s) {
                Some(*r)
            } else {
                None
            };
            sink(q + s, out);
        }
        q += bw;
    }
}

impl<'a, T: Ord + Sync> Searcher<'a, T> {
    /// Run the pipelined **search** engine over `n` queries, delivering
    /// `(query index, layout position)` pairs to `sink` in query order.
    pub(crate) fn pipelined_search_into<'k>(
        &self,
        n: usize,
        key_of: impl Fn(usize) -> &'k T,
        sink: impl FnMut(usize, Option<usize>),
    ) where
        T: 'k,
    {
        match self.shape {
            ShapeData::Sorted => sorted_search_batch(self.data, n, key_of, sink),
            ShapeData::Bst { shape, .. } => bst_search_batch(self.data, shape, n, key_of, sink),
            ShapeData::Btree(shape) => btree_search_batch(self.data, shape, n, key_of, sink),
            ShapeData::Veb(shape) => veb_search_batch(self.data, shape, n, key_of, sink),
        }
    }

    /// Run the pipelined **rank** engine over `n` queries, delivering
    /// `(query index, rank)` pairs to `sink` in query order.
    pub(crate) fn pipelined_rank_into<'k>(
        &self,
        n: usize,
        key_of: impl Fn(usize) -> &'k T,
        sink: impl FnMut(usize, usize),
    ) where
        T: 'k,
    {
        match self.shape {
            ShapeData::Sorted => sorted_rank_batch(self.data, n, key_of, sink),
            ShapeData::Bst { shape, .. } => bst_rank_batch(self.data, shape, n, key_of, sink),
            ShapeData::Btree(shape) => btree_rank_batch(self.data, shape, n, key_of, sink),
            ShapeData::Veb(shape) => veb_rank_batch(self.data, shape, n, key_of, sink),
        }
    }

    /// Scalar batch search: one descent at a time, run to completion.
    ///
    /// The baseline the pipelined and parallel tiers are measured
    /// against (`query_batched` bench); also the differential oracle's
    /// definition of batch semantics.
    pub fn batch_search_seq(&self, keys: &[T]) -> Vec<Option<usize>> {
        keys.iter().map(|k| self.search(k)).collect()
    }

    /// Software-pipelined batch search on the calling thread: a window
    /// of descents in flight, each round advancing every descent one
    /// level and prefetching its next node.
    ///
    /// Returns exactly what [`Searcher::search`] returns per key, in
    /// key order.
    pub fn batch_search_pipelined(&self, keys: &[T]) -> Vec<Option<usize>> {
        let mut out = vec![None; keys.len()];
        self.pipelined_search_into(keys.len(), |i| &keys[i], |i, r| out[i] = r);
        out
    }

    /// Batch search: pipelined within rayon-parallel chunks sized
    /// adaptively to the batch length (small batches stay on the
    /// calling thread).
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..1000).map(|x| 2 * x).collect();
    /// permute_in_place(&mut v, Layout::Bst, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Bst);
    /// let found = s.batch_search(&[0, 2, 3, 1998]);
    /// assert_eq!(found.len(), 4);
    /// assert_eq!(found[0].map(|p| v[p]), Some(0));
    /// assert_eq!(found[2], None); // 3 is not stored
    /// assert_eq!(found, s.batch_search_seq(&[0, 2, 3, 1998]));
    /// ```
    pub fn batch_search(&self, keys: &[T]) -> Vec<Option<usize>> {
        let mut out = vec![None; keys.len()];
        par_chunked(keys, &mut out, |kc, oc| {
            self.pipelined_search_into(kc.len(), |i| &kc[i], |i, r| oc[i] = r)
        });
        out
    }

    /// Scalar batch rank (one [`Searcher::rank`] per key).
    pub fn batch_rank_seq(&self, keys: &[T]) -> Vec<usize> {
        keys.iter().map(|k| self.rank(k)).collect()
    }

    /// Software-pipelined batch rank on the calling thread.
    pub fn batch_rank_pipelined(&self, keys: &[T]) -> Vec<usize> {
        let mut out = vec![0usize; keys.len()];
        self.pipelined_rank_into(keys.len(), |i| &keys[i], |i, r| out[i] = r);
        out
    }

    /// Batch rank: pipelined within adaptively-sized parallel chunks.
    ///
    /// `out[i]` is the number of stored keys strictly smaller than
    /// `keys[i]` (identical to per-key [`Searcher::rank`]).
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..100).map(|x| 2 * x).collect();
    /// permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Veb);
    /// assert_eq!(s.batch_rank(&[0, 1, 10, 999]), vec![0, 1, 5, 100]);
    /// ```
    pub fn batch_rank(&self, keys: &[T]) -> Vec<usize> {
        let mut out = vec![0usize; keys.len()];
        par_chunked(keys, &mut out, |kc, oc| {
            self.pipelined_rank_into(kc.len(), |i| &kc[i], |i, r| oc[i] = r)
        });
        out
    }

    /// Batch lower bound: `out[i]` is the layout position of the first
    /// (in sorted order) stored key `≥ keys[i]`, identical to per-key
    /// [`Searcher::lower_bound`]. Runs on the rank engine plus the
    /// closed-form position maps.
    pub fn batch_lower_bound(&self, keys: &[T]) -> Vec<Option<usize>> {
        self.batch_rank(keys)
            .into_iter()
            .map(|r| self.position_of_rank(r))
            .collect()
    }

    /// Run a batch of queries sequentially, returning the number found
    /// (the paper's query benchmarks measure exactly this loop).
    pub fn batch_count_seq(&self, keys: &[T]) -> usize {
        keys.iter().filter(|k| self.contains(k)).count()
    }

    /// Count how many of `keys` are present: pipelined within
    /// adaptively-sized parallel chunks.
    ///
    /// Always equal to [`Searcher::batch_count_seq`] — including for
    /// batches smaller than any parallel grain, which run pipelined on
    /// the calling thread instead of silently falling back to scalar.
    pub fn batch_count(&self, keys: &[T]) -> usize {
        let mut found = vec![false; keys.len()];
        par_chunked(keys, &mut found, |kc, oc| {
            self.pipelined_search_into(kc.len(), |i| &kc[i], |i, r| oc[i] = r.is_some())
        });
        found.into_iter().filter(|f| *f).count()
    }
}
