//! Scalar per-layout descent kernels and the shape data they run on.
//!
//! Each search layout gets two loops: a **search** descent (early exit
//! on equality) and a **rank** descent (no early exit; lands in the
//! in-order gap left of the first key `≥` the probe). The batched
//! engine in [`crate::batch`] re-implements the same comparison
//! sequences level-synchronously over a window of in-flight queries;
//! any change here must be mirrored there (the differential suite
//! pins the two together bit-for-bit).

use ist_layout::{veb_pos, CompleteShape};

/// Shape data for BST/vEB searches over a complete binary tree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BinaryShape {
    /// Depth of the full (perfect) part in levels.
    pub(crate) d: u32,
    /// Keys in the full part: `2^d − 1`.
    pub(crate) i: usize,
    /// Overflow leaves stored sorted in the array suffix.
    pub(crate) l: usize,
}

impl BinaryShape {
    pub(crate) fn new(n: usize) -> Self {
        let s = CompleteShape::new(n);
        Self {
            d: s.full_levels(),
            i: s.full_count(),
            l: s.overflow(),
        }
    }
}

/// Shape data for B-tree searches.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BtreeSearchShape {
    /// Keys per node.
    pub(crate) b: usize,
    /// Keys in the full part.
    pub(crate) i: usize,
    /// Nodes in the full part.
    pub(crate) num_nodes: usize,
    /// Node levels in the full part (`num_nodes = ((b+1)^levels − 1)/b`).
    pub(crate) levels: u32,
    /// Full overflow leaf nodes.
    pub(crate) q: usize,
    /// Keys in the final partial overflow node.
    pub(crate) s: usize,
}

impl BtreeSearchShape {
    pub(crate) fn new(n: usize, b: usize) -> Self {
        let s = ist_layout::complete::BtreeCompleteShape::new(n, b);
        Self {
            b,
            i: s.full_count(),
            num_nodes: s.full_count() / b,
            levels: s.full_node_levels(),
            q: s.full_overflow_nodes(),
            s: s.partial_node_len(),
        }
    }
}

#[inline]
pub(crate) fn probe_overflow<T: Ord>(
    data: &[T],
    i: usize,
    l: usize,
    g: usize,
    key: &T,
) -> Option<usize> {
    if g < l && data[i + g] == *key {
        Some(i + g)
    } else {
        None
    }
}

#[inline(always)]
pub(crate) fn prefetch<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if index < data.len() {
            // SAFETY: the pointer is in bounds (checked) and prefetching
            // any address is side-effect free.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    data.as_ptr().add(index) as *const i8,
                );
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

/// Complete-binary-tree rank: `g` full elements are `< key`; add the
/// overflow leaves below gap `g` and the gap-`g` leaf if it too is
/// smaller.
#[inline]
pub(crate) fn binary_rank_from_gap<T: Ord>(
    data: &[T],
    i: usize,
    l: usize,
    g: usize,
    key: &T,
) -> usize {
    let mut rank = g + g.min(l);
    if g < l && data[i + g] < *key {
        rank += 1;
    }
    rank
}

#[inline(always)]
pub(crate) fn bst_descent<T: Ord, const PREFETCH: bool>(
    data: &[T],
    shape: BinaryShape,
    key: &T,
) -> Option<usize> {
    let BinaryShape { i, l, .. } = shape;
    let mut v = 0usize;
    let mut lo = 0usize; // full-rank of the subtree's leftmost gap
    let mut sz = i; // keys in the current subtree (2^λ − 1)
    while v < i {
        if PREFETCH {
            // Prefetch the grandchildren region: by the time the two
            // comparisons below resolve, the line is (ideally) resident.
            prefetch(data, 4 * v + 3);
        }
        let node = &data[v];
        if *key == *node {
            return Some(v);
        }
        let half = sz >> 1;
        if *key < *node {
            v = 2 * v + 1;
        } else {
            v = 2 * v + 2;
            lo += half + 1;
        }
        sz = half;
    }
    probe_overflow(data, i, l, lo, key)
}

#[inline(always)]
pub(crate) fn bst_rank_descent<T: Ord>(data: &[T], shape: BinaryShape, key: &T) -> usize {
    // Count full elements < key via the descent's gap index, then add
    // the overflow leaves that precede that gap.
    let BinaryShape { i, l, .. } = shape;
    let mut v = 0usize;
    let mut lo = 0usize;
    let mut sz = i;
    while v < i {
        let node = &data[v];
        let half = sz >> 1;
        if *key <= *node {
            v = 2 * v + 1;
        } else {
            v = 2 * v + 2;
            lo += half + 1;
        }
        sz = half;
    }
    binary_rank_from_gap(data, i, l, lo, key)
}

#[inline(always)]
pub(crate) fn btree_descent<T: Ord>(data: &[T], shape: BtreeSearchShape, key: &T) -> Option<usize> {
    let BtreeSearchShape {
        b, i, num_nodes, ..
    } = shape;
    let k = b + 1;
    let mut v = 0usize; // node index
    let mut lo = 0usize; // full-rank of the subtree's leftmost gap
    let mut span = i; // keys spanned by the subtree: k^λ − 1
    while v < num_nodes {
        let keys = &data[v * b..v * b + b];
        let child_span = (span - b) / k;
        // Number of node keys smaller than `key` (b is small: linear scan
        // stays in one cache line when B matches the line size).
        let mut c = 0usize;
        for kk in keys {
            match key.cmp(kk) {
                std::cmp::Ordering::Equal => return Some(v * b + c),
                std::cmp::Ordering::Greater => c += 1,
                std::cmp::Ordering::Less => break,
            }
        }
        v = v * k + c + 1;
        lo += c * (child_span + 1);
        span = child_span;
    }
    // Fell off at gap `lo`: overflow node j < q lives in gap j; the
    // partial node (s keys) in gap q.
    btree_probe(data, shape, lo, key)
}

/// Scan the overflow node hanging in gap `g` for `key`.
#[inline]
pub(crate) fn btree_probe<T: Ord>(
    data: &[T],
    shape: BtreeSearchShape,
    g: usize,
    key: &T,
) -> Option<usize> {
    let BtreeSearchShape { b, i, q, s, .. } = shape;
    let (start, len) = if g < q {
        (i + g * b, b)
    } else if g == q {
        (i + q * b, s)
    } else {
        return None;
    };
    data[start..start + len]
        .iter()
        .position(|x| *x == *key)
        .map(|off| start + off)
}

#[inline(always)]
pub(crate) fn btree_rank_descent<T: Ord>(data: &[T], shape: BtreeSearchShape, key: &T) -> usize {
    let BtreeSearchShape {
        b, i, num_nodes, ..
    } = shape;
    let k = b + 1;
    let mut v = 0usize;
    let mut lo = 0usize;
    let mut span = i;
    while v < num_nodes {
        let keys = &data[v * b..v * b + b];
        let child_span = (span - b) / k;
        let c = keys.iter().take_while(|kk| *kk < key).count();
        v = v * k + c + 1;
        lo += c * (child_span + 1);
        span = child_span;
    }
    btree_rank_from_gap(data, shape, lo, key)
}

/// B-tree rank once the descent fell off at gap `g`: `g` full elements
/// are `< key`, plus the overflow keys in gaps before `g`, plus the
/// within-gap-`g` prefix that is still `< key`.
#[inline]
pub(crate) fn btree_rank_from_gap<T: Ord>(
    data: &[T],
    shape: BtreeSearchShape,
    g: usize,
    key: &T,
) -> usize {
    let BtreeSearchShape { b, i, q, s, .. } = shape;
    let mut rank = g + (g.min(q)) * b + if g > q { s } else { 0 };
    let (start, len) = if g < q {
        (i + g * b, b)
    } else if g == q {
        (i + q * b, s)
    } else {
        (0, 0)
    };
    rank += data[start..start + len]
        .iter()
        .take_while(|x| *x < key)
        .count();
    rank
}

#[inline(always)]
pub(crate) fn veb_descent<T: Ord>(data: &[T], shape: BinaryShape, key: &T) -> Option<usize> {
    let BinaryShape { d, i, l } = shape;
    if i == 0 {
        return probe_overflow(data, i, l, 0, key);
    }
    // Descend by in-order position: root at p = 2^{d-1}; a node of height
    // h has children at p ± 2^{h-1}. The layout index of each visited
    // node is recomputed with veb_pos (O(log d) arithmetic per step).
    let mut p = 1u64 << (d - 1);
    let mut step = 1u64 << (d - 1);
    loop {
        let pos = veb_pos(d, (p - 1) as usize);
        let node = &data[pos];
        if *key == *node {
            return Some(pos);
        }
        step >>= 1;
        if step == 0 {
            // Fell off a leaf (full-rank p−1): gap p−1 left, p right.
            let g = if *key < *node { p - 1 } else { p } as usize;
            return probe_overflow(data, i, l, g, key);
        }
        if *key < *node {
            p -= step;
        } else {
            p += step;
        }
    }
}

#[inline(always)]
pub(crate) fn veb_rank_descent<T: Ord>(data: &[T], shape: BinaryShape, key: &T) -> usize {
    // Same gap computation as the BST rank, but descending by in-order
    // arithmetic with vEB position recomputation.
    let BinaryShape { d, i, l } = shape;
    let mut p = 1u64 << (d - 1);
    let mut step = 1u64 << (d - 1);
    let g = loop {
        let pos = veb_pos(d, (p - 1) as usize);
        let node = &data[pos];
        step >>= 1;
        if *key <= *node {
            if step == 0 {
                break (p - 1) as usize;
            }
            p -= step;
        } else {
            if step == 0 {
                break p as usize;
            }
            p += step;
        }
    };
    binary_rank_from_gap(data, i, l, g, key)
}

/// Deterministic partition-point loop on the un-permuted sorted array:
/// returns `lo` = number of elements `< key`, probing
/// `data[lo + len/2]` each round. The batched sorted kernels replay
/// this exact probe sequence.
#[inline(always)]
pub(crate) fn sorted_rank_descent<T: Ord>(data: &[T], key: &T) -> usize {
    let mut lo = 0usize;
    let mut len = data.len();
    while len > 0 {
        let half = len / 2;
        if data[lo + half] < *key {
            lo += half + 1;
            len -= half + 1;
        } else {
            len = half;
        }
    }
    lo
}

/// Search on the un-permuted sorted array as rank-then-verify: returns
/// the **leftmost** matching index, if any.
///
/// Same contract as [`slice::binary_search`] (some matching index), but
/// with a pinned probe sequence so the batched twin is bit-identical by
/// construction.
#[inline(always)]
pub(crate) fn sorted_descent<T: Ord>(data: &[T], key: &T) -> Option<usize> {
    let r = sorted_rank_descent(data, key);
    if r < data.len() && data[r] == *key {
        Some(r)
    } else {
        None
    }
}
