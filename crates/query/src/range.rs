//! Range queries over the implicit layouts.
//!
//! A range count needs no traversal of the range itself: with `rank(k)`
//! = "stored keys strictly smaller than `k`", the number of stored keys
//! in the half-open interval `[lo, hi)` is `rank(hi) − rank(lo)` — two
//! cache-friendly descents, independent of how many keys the range
//! contains. Batched range counts feed **both** endpoints of every pair
//! through one pipelined rank engine, so `q` range queries overlap the
//! latency of `2q` descents.

use crate::batch::{par_chunked, DEFAULT_WINDOW};
use crate::Searcher;

impl<'a, T: Ord + Sync + 'static> Searcher<'a, T> {
    /// Number of stored keys in the half-open interval `[lo, hi)`
    /// (duplicates counted with multiplicity), via two rank descents.
    ///
    /// Inverted bounds (`hi <= lo`) yield 0.
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..100).map(|x| 2 * x).collect(); // 0, 2, …, 198
    /// permute_in_place(&mut v, Layout::Btree { b: 4 }, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Btree { b: 4 });
    /// assert_eq!(s.range_count(&10, &20), 5); // 10, 12, 14, 16, 18
    /// assert_eq!(s.range_count(&11, &20), 4); // lo itself need not be stored
    /// assert_eq!(s.range_count(&20, &10), 0); // inverted
    /// ```
    pub fn range_count(&self, lo: &T, hi: &T) -> usize {
        self.rank(hi).saturating_sub(self.rank(lo))
    }

    /// Scalar batch range count (one [`Searcher::range_count`] per
    /// pair).
    pub fn batch_range_count_seq(&self, ranges: &[(T, T)]) -> Vec<usize> {
        ranges
            .iter()
            .map(|(lo, hi)| self.range_count(lo, hi))
            .collect()
    }

    /// Batch range count over `(lo, hi)` pairs: both endpoints of every
    /// pair are fed through the pipelined rank engine (parallel over
    /// adaptively-sized chunks), then differenced.
    ///
    /// `out[i]` is identical to `range_count(&ranges[i].0,
    /// &ranges[i].1)`.
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..100).map(|x| 2 * x).collect();
    /// permute_in_place(&mut v, Layout::Bst, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Bst);
    /// assert_eq!(s.batch_range_count(&[(0, 10), (5, 5), (190, 500)]), vec![5, 0, 5]);
    /// ```
    pub fn batch_range_count(&self, ranges: &[(T, T)]) -> Vec<usize> {
        let mut counts = vec![0usize; ranges.len()];
        par_chunked(ranges, &mut counts, |rc, oc| range_chunk(self, rc, oc));
        counts
    }
}

/// Pipeline the `2·len` rank descents of one chunk of ranges, then
/// difference each pair into `counts`.
fn range_chunk<T: Ord + Sync + 'static>(
    s: &Searcher<'_, T>,
    ranges: &[(T, T)],
    counts: &mut [usize],
) {
    let mut ranks = vec![0usize; 2 * ranges.len()];
    s.pipelined_rank_into::<DEFAULT_WINDOW, false>(
        2 * ranges.len(),
        |i| {
            let (lo, hi) = &ranges[i / 2];
            if i % 2 == 0 {
                lo
            } else {
                hi
            }
        },
        |i, r| ranks[i] = r,
    );
    for (i, c) in counts.iter_mut().enumerate() {
        *c = ranks[2 * i + 1].saturating_sub(ranks[2 * i]);
    }
}
