//! # ist-query
//!
//! Search queries over the implicit layouts produced by `ist-core`, plus
//! the plain binary-search baseline the paper compares against
//! (Figures 6.5–6.7, 6.9).
//!
//! All searchers operate on the `[perfect layout | sorted overflow]`
//! array format (see [`ist_layout::complete`]): they descend the perfect
//! tree with pure index arithmetic and, on falling off at in-order gap
//! `g`, probe the overflow suffix.
//!
//! ## One navigator per layout, one engine per strategy
//!
//! Every layout's descent arithmetic lives in exactly one place: its
//! [`nav::Navigator`] implementation ([`nav::BstNav`], [`nav::BtreeNav`],
//! [`nav::VebNav`], [`nav::SortedNav`]). Execution strategies are
//! layout-agnostic drivers over the trait:
//!
//! * the **scalar** engine (`nav` module) — one descent at a time, early
//!   exit on equality — behind [`search_bst`], [`search_btree`],
//!   [`search_veb`], and the point methods of [`Searcher`];
//! * the **software-pipelined** windowed engine (the `batch` module) — a
//!   window of descents advanced level-synchronously with navigator
//!   prefetches — behind the batch methods;
//! * the **GPU cost model** (`ist-gpu-sim`) steps the same navigators
//!   lane by lane and charges coalesced transactions.
//!
//! `tests/navigator_equivalence.rs` (repository root) asserts all three
//! visit bit-identical node sequences, via [`Searcher::trace_search`] /
//! [`Searcher::trace_search_pipelined`] and friends.
//!
//! ## Batched queries
//!
//! A lone descent serializes its cache misses — every level's address
//! depends on the previous comparison. Independent queries don't. The
//! batch engine (the `batch` module) keeps a window of descents in flight
//! per thread, advancing each one level per round and prefetching its
//! next node, so queries hide each other's memory latency; the
//! un-suffixed batch entry points additionally parallelize over chunks
//! sized adaptively to the batch (pipelining *within* each chunk). The
//! tiers per operation:
//!
//! | scalar loop | pipelined (1 thread) | parallel + pipelined |
//! |---|---|---|
//! | [`Searcher::batch_search_seq`] | [`Searcher::batch_search_pipelined`] | [`Searcher::batch_search`] |
//! | [`Searcher::batch_rank_seq`] | [`Searcher::batch_rank_pipelined`] | [`Searcher::batch_rank`] |
//! | [`Searcher::batch_successor_seq`] | — | [`Searcher::batch_successor`] |
//! | [`Searcher::batch_predecessor_seq`] | — | [`Searcher::batch_predecessor`] |
//! | [`Searcher::batch_count_seq`] | — | [`Searcher::batch_count`] |
//! | [`Searcher::batch_range_count_seq`] | — | [`Searcher::batch_range_count`] |
//!
//! Every tier returns bit-identical results for the same operation, and
//! the pipelined tier's window width is a const-generic engine
//! parameter ([`Searcher::batch_search_pipelined_with_window`]).
//!
//! ## Duplicate keys
//!
//! Stored keys need not be distinct. The contract, for every layout and
//! every execution tier:
//!
//! * [`Searcher::rank`]`(k)` — the number of stored keys **strictly
//!   smaller** than `k` (so for `m` copies of `k`, ranks of the copies
//!   do not include each other); [`Searcher::rank_upper`]`(k)` counts
//!   keys `≤ k`.
//! * [`Searcher::lower_bound`]`(k)` — the layout position holding the
//!   **first key `≥ k` in sorted order**, or `None` if every key is
//!   smaller. With duplicates this is the leftmost copy's slot.
//! * [`Searcher::successor`]`(k)` / [`Searcher::predecessor`]`(k)` —
//!   the first key strictly greater / last key strictly smaller, so
//!   duplicates of `k` itself are skipped entirely.
//! * [`Searcher::search`]`(k)` / [`Searcher::contains`] — **any** slot
//!   holding a key equal to `k` (which copy is found depends on the
//!   layout's probe order, but is deterministic per layout, and the
//!   batched tiers return exactly the per-key scalar answer).
//! * [`Searcher::range_count`]`(lo, hi)` — keys in `[lo, hi)` counted
//!   **with multiplicity**.
//!
//! `tests/query_differential.rs` (repository root) checks all of the
//! above differentially against a sorted-array oracle, duplicates
//! included.

use ist_core::Layout;
use ist_layout::{veb_pos, CompleteShape};

mod batch;
pub mod nav;
mod order;
mod range;
pub mod route;
mod wide;

pub use batch::DEFAULT_WINDOW;
pub use wide::SimdKey;

use nav::{BinaryShape, BstNav, BtreeNav, BtreeSearchShape, VebNav};

/// Instantiate the navigator matching a [`Searcher`]'s shape and run
/// `$body` with it — the single point where shape tags become concrete
/// navigator types (everything downstream is `Navigator`-generic).
macro_rules! dispatch_nav {
    ($searcher:expr, $nav:ident => $body:expr) => {{
        let s = $searcher;
        match s.shape {
            $crate::ShapeData::Sorted => {
                let $nav = $crate::nav::SortedNav::new(s.data);
                $body
            }
            $crate::ShapeData::Bst { shape, prefetch } => {
                let $nav = $crate::nav::BstNav::from_shape(s.data, shape, prefetch);
                $body
            }
            $crate::ShapeData::Btree(shape) => {
                let $nav = $crate::nav::BtreeNav::from_shape(s.data, shape);
                $body
            }
            $crate::ShapeData::BtreeWide8(shape) => {
                let $nav = $crate::nav::WideBtreeNav::<_, 8>::from_shape(s.data, shape);
                $body
            }
            $crate::ShapeData::BtreeWide16(shape) => {
                let $nav = $crate::nav::WideBtreeNav::<_, 16>::from_shape(s.data, shape);
                $body
            }
            $crate::ShapeData::Veb(shape) => {
                let $nav = $crate::nav::VebNav::from_shape(s.data, shape);
                $body
            }
        }
    }};
}
pub(crate) use dispatch_nav;

/// Binary search baseline on the sorted (un-permuted) array.
///
/// Returns the index of a matching element, if any.
///
/// # Examples
/// ```
/// use ist_query::search_sorted;
/// let v = vec![10, 20, 30];
/// assert_eq!(search_sorted(&v, &20), Some(1));
/// assert_eq!(search_sorted(&v, &25), None);
/// ```
pub fn search_sorted<T: Ord>(data: &[T], key: &T) -> Option<usize> {
    data.binary_search(key).ok()
}

/// Search the level-order BST layout.
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place, Algorithm, Layout};
/// use ist_query::search_bst;
/// let mut v: Vec<u64> = (0..100).map(|x| x * 2).collect();
/// permute_in_place(&mut v, Layout::Bst, Algorithm::Involution).unwrap();
/// for x in 0..100u64 {
///     let found = search_bst(&v, &(2 * x));
///     assert_eq!(found.map(|p| v[p]), Some(2 * x));
///     assert_eq!(search_bst(&v, &(2 * x + 1)), None);
/// }
/// ```
pub fn search_bst<T: Ord>(data: &[T], key: &T) -> Option<usize> {
    nav::search_with(&BstNav::new(data), key, |_| {})
}

/// Search the BST layout with explicit grandchild prefetching.
///
/// Semantically identical to [`search_bst`].
pub fn search_bst_prefetch<T: Ord>(data: &[T], key: &T) -> Option<usize> {
    nav::search_with(&BstNav::with_prefetch(data, true), key, |_| {})
}

/// Search the level-order B-tree layout with `b` keys per node.
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place, Algorithm, Layout};
/// use ist_query::search_btree;
/// let mut v: Vec<u64> = (0..500).map(|x| 3 * x).collect();
/// permute_in_place(&mut v, Layout::Btree { b: 8 }, Algorithm::CycleLeader).unwrap();
/// for x in 0..500u64 {
///     assert_eq!(search_btree(&v, 8, &(3 * x)).map(|p| v[p]), Some(3 * x));
///     assert_eq!(search_btree(&v, 8, &(3 * x + 1)), None);
/// }
/// ```
pub fn search_btree<T: Ord>(data: &[T], b: usize, key: &T) -> Option<usize> {
    nav::search_with(&BtreeNav::new(data, b), key, |_| {})
}

/// Search the van Emde Boas layout.
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place, Algorithm, Layout};
/// use ist_query::search_veb;
/// let mut v: Vec<u64> = (0..300).map(|x| 5 * x).collect();
/// permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
/// for x in 0..300u64 {
///     assert_eq!(search_veb(&v, &(5 * x)).map(|p| v[p]), Some(5 * x));
///     assert_eq!(search_veb(&v, &(5 * x + 2)), None);
/// }
/// ```
pub fn search_veb<T: Ord>(data: &[T], key: &T) -> Option<usize> {
    nav::search_with(&VebNav::new(data), key, |_| {})
}

/// Which searcher a [`Searcher`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Binary search on the un-permuted sorted array.
    Sorted,
    /// BST layout descent.
    Bst,
    /// BST layout descent with explicit prefetching.
    BstPrefetch,
    /// B-tree layout descent (keys per node inside).
    Btree(usize),
    /// vEB layout descent.
    Veb,
}

impl QueryKind {
    /// Stable lowercase name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Sorted => "binary_search",
            QueryKind::Bst => "bst",
            QueryKind::BstPrefetch => "bst_prefetch",
            QueryKind::Btree(_) => "btree",
            QueryKind::Veb => "veb",
        }
    }
}

/// A reusable searcher: precomputes the layout shape once and answers
/// point, batch, and range queries.
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place, Algorithm, Layout};
/// use ist_query::Searcher;
/// let mut v: Vec<u64> = (0..1000).collect();
/// permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
/// let s = Searcher::for_layout(&v, Layout::Veb);
/// assert!(s.contains(&123));
/// assert!(!s.contains(&5000));
/// assert_eq!(s.batch_count(&[1, 2, 3, 9999]), 3);
/// assert_eq!(s.range_count(&10, &20), 10);
/// ```
pub struct Searcher<'a, T> {
    pub(crate) data: &'a [T],
    pub(crate) shape: ShapeData,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum ShapeData {
    Sorted,
    Bst {
        shape: BinaryShape,
        prefetch: bool,
    },
    Btree(BtreeSearchShape),
    /// B-tree shape served by the const-width [`nav::WideBtreeNav`]
    /// kernel (`b == 8`); see [`Searcher::new`]'s width dispatch.
    BtreeWide8(BtreeSearchShape),
    /// As [`ShapeData::BtreeWide8`], with `b == 16`.
    BtreeWide16(BtreeSearchShape),
    Veb(BinaryShape),
}

impl<'a, T: Ord + Sync + 'static> Searcher<'a, T> {
    /// Searcher for data permuted with [`ist_core::permute_in_place`]
    /// into `layout` (BST uses the non-prefetching descent; see
    /// [`Searcher::new`] for full control).
    pub fn for_layout(data: &'a [T], layout: Layout) -> Self {
        let kind = match layout {
            Layout::Bst => QueryKind::Bst,
            Layout::Btree { b } => QueryKind::Btree(b),
            Layout::Veb => QueryKind::Veb,
        };
        Self::new(data, kind)
    }

    /// Searcher for an explicit [`QueryKind`].
    ///
    /// **Width dispatch**: a [`QueryKind::Btree`] whose `b` matches a
    /// compiled const-width kernel (8 or 16) on a [`SimdKey`] key type
    /// is served by the monomorphized [`nav::WideBtreeNav`] — unrolled,
    /// branchless, vectorized per-node compare-and-count — instead of
    /// the runtime-width [`nav::BtreeNav`]. Results, traces, and
    /// duplicate semantics are bit-identical (pinned by
    /// `tests/navigator_equivalence.rs`); only throughput changes.
    /// [`Searcher::new_runtime`] opts out.
    pub fn new(data: &'a [T], kind: QueryKind) -> Self {
        let mut s = Self::new_runtime(data, kind);
        if wide::is_simd_key::<T>() {
            s.shape = match s.shape {
                ShapeData::Btree(shape) if shape.b == 8 => ShapeData::BtreeWide8(shape),
                ShapeData::Btree(shape) if shape.b == 16 => ShapeData::BtreeWide16(shape),
                other => other,
            };
        }
        s
    }

    /// [`Searcher::new`] without the const-width upgrade: a B-tree kind
    /// always descends through the general runtime-width
    /// [`nav::BtreeNav`]. The escape hatch the node-width bench and the
    /// wide-vs-runtime equivalence suites are built on; answers are
    /// identical to [`Searcher::new`]'s for every query.
    pub fn new_runtime(data: &'a [T], kind: QueryKind) -> Self {
        let shape = if data.is_empty() {
            ShapeData::Sorted // degenerate; every search misses anyway
        } else {
            match kind {
                QueryKind::Sorted => ShapeData::Sorted,
                QueryKind::Bst => ShapeData::Bst {
                    shape: BinaryShape::new(data.len()),
                    prefetch: false,
                },
                QueryKind::BstPrefetch => ShapeData::Bst {
                    shape: BinaryShape::new(data.len()),
                    prefetch: true,
                },
                QueryKind::Btree(b) => ShapeData::Btree(BtreeSearchShape::new(data.len(), b)),
                QueryKind::Veb => ShapeData::Veb(BinaryShape::new(data.len())),
            }
        };
        Self { data, shape }
    }

    /// `true` iff queries descend through a const-width wide-node
    /// kernel (see [`Searcher::new`]'s width dispatch).
    pub fn is_wide(&self) -> bool {
        matches!(
            self.shape,
            ShapeData::BtreeWide8(_) | ShapeData::BtreeWide16(_)
        )
    }

    /// Find a layout index holding `key`, if present (any matching slot
    /// when keys are duplicated; see the [crate docs](crate#duplicate-keys)).
    ///
    /// The sorted baseline short-circuits to `partition_point` + one
    /// verify probe — the same answer the navigator's pinned probe
    /// sequence produces (the partition point is unique), in a tighter
    /// loop.
    #[inline]
    pub fn search(&self, key: &T) -> Option<usize> {
        if let ShapeData::Sorted = self.shape {
            let r = self.data.partition_point(|x| x < key);
            return if r < self.data.len() && self.data[r] == *key {
                Some(r)
            } else {
                None
            };
        }
        dispatch_nav!(self, nav => nav::search_with(&nav, key, |_| {}))
    }

    /// `true` iff `key` is present.
    #[inline]
    pub fn contains(&self, key: &T) -> bool {
        self.search(key).is_some()
    }

    /// The **rank** of `key`: how many stored keys are strictly smaller.
    ///
    /// Computed by the same cache-friendly descent as [`Searcher::search`]
    /// (partition-point probes on the un-permuted baseline), so ranks
    /// cost the same I/Os as lookups.
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..100).map(|x| 2 * x).collect();
    /// permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Veb);
    /// assert_eq!(s.rank(&0), 0);
    /// assert_eq!(s.rank(&1), 1);   // one key (0) below
    /// assert_eq!(s.rank(&10), 5);
    /// assert_eq!(s.rank(&999), 100);
    /// ```
    pub fn rank(&self, key: &T) -> usize {
        if let ShapeData::Sorted = self.shape {
            return self.data.partition_point(|x| x < key);
        }
        dispatch_nav!(self, nav => nav::rank_with::<T, _, false>(&nav, key, |_| {}))
    }

    /// The **upper rank** of `key`: how many stored keys are `≤ key`
    /// (so `rank_upper − rank` is the key's multiplicity). Same descent
    /// cost as [`Searcher::rank`], with ties resolved rightward.
    ///
    /// # Examples
    /// ```
    /// use ist_query::{QueryKind, Searcher};
    /// let v = vec![10u64, 20, 20, 30];
    /// let s = Searcher::new(&v, QueryKind::Sorted);
    /// assert_eq!(s.rank(&20), 1);
    /// assert_eq!(s.rank_upper(&20), 3);
    /// ```
    pub fn rank_upper(&self, key: &T) -> usize {
        if let ShapeData::Sorted = self.shape {
            return self.data.partition_point(|x| x <= key);
        }
        dispatch_nav!(self, nav => nav::rank_with::<T, _, true>(&nav, key, |_| {}))
    }

    /// Layout position of the element with sorted rank `r`, via the
    /// closed-form position maps (`None` past the end). Shared by
    /// `lower_bound`/`successor`/`predecessor` and their batched tiers
    /// so all resolve ranks to identical slots; also the way to walk a
    /// layout in **sorted order** without materializing a sorted copy
    /// (the log-structured merge in `ist-dynamic` streams runs this
    /// way).
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..7).collect();
    /// permute_in_place(&mut v, Layout::Bst, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Bst);
    /// let resorted: Vec<u64> = (0..7)
    ///     .map(|r| v[s.position_of_rank(r).unwrap()])
    ///     .collect();
    /// assert_eq!(resorted, (0..7).collect::<Vec<u64>>());
    /// assert_eq!(s.position_of_rank(7), None);
    /// ```
    pub fn position_of_rank(&self, r: usize) -> Option<usize> {
        let n = self.data.len();
        if r >= n {
            return None;
        }
        Some(match self.shape {
            ShapeData::Sorted => r,
            ShapeData::Bst { .. } => CompleteShape::new(n).pos(r, ist_layout::bst_pos),
            ShapeData::Veb(_) => CompleteShape::new(n).pos(r, veb_pos),
            ShapeData::Btree(shape)
            | ShapeData::BtreeWide8(shape)
            | ShapeData::BtreeWide16(shape) => {
                ist_layout::complete::BtreeCompleteShape::new(n, shape.b).pos(r)
            }
        })
    }

    /// Layout index of the smallest stored key `≥ key` (the
    /// `lower_bound`), or `None` if every key is smaller. With
    /// duplicates, the leftmost copy in sorted order (see the
    /// [crate docs](crate#duplicate-keys)).
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..100).map(|x| 2 * x).collect();
    /// permute_in_place(&mut v, Layout::Btree { b: 4 }, Algorithm::Involution).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Btree { b: 4 });
    /// assert_eq!(s.lower_bound(&51).map(|p| v[p]), Some(52));
    /// assert_eq!(s.lower_bound(&198).map(|p| v[p]), Some(198));
    /// assert_eq!(s.lower_bound(&199), None);
    /// ```
    pub fn lower_bound(&self, key: &T) -> Option<usize> {
        self.position_of_rank(self.rank(key))
    }

    /// The scalar node-address sequence of one **search** descent: the
    /// base array index of every node read, in order (diagnostics; the
    /// navigator-equivalence suite compares this against the pipelined
    /// engine and the GPU cost model lane by lane).
    pub fn trace_search(&self, key: &T) -> Vec<usize> {
        let mut t = Vec::new();
        dispatch_nav!(self, nav => {
            let _ = nav::search_with(&nav, key, |p| t.push(p));
        });
        t
    }

    /// The scalar node-address sequence of one **rank** descent
    /// (diagnostics; see [`Searcher::trace_search`]).
    pub fn trace_rank(&self, key: &T) -> Vec<usize> {
        let mut t = Vec::new();
        dispatch_nav!(self, nav => {
            let _ = nav::rank_with::<T, _, false>(&nav, key, |p| t.push(p));
        });
        t
    }

    /// Per-query node-address sequences of the pipelined **search**
    /// engine (diagnostics; see [`Searcher::trace_search`]). A scalar
    /// trace is always a prefix of its pipelined twin: the window keeps
    /// descending after an equality hit instead of breaking the round
    /// structure.
    pub fn trace_search_pipelined(&self, keys: &[T]) -> Vec<Vec<usize>> {
        let mut t = vec![Vec::new(); keys.len()];
        dispatch_nav!(self, nav => {
            batch::window_search_into::<T, _, DEFAULT_WINDOW>(
                &nav,
                keys.len(),
                |i| &keys[i],
                |_, _| {},
                |q, p| t[q].push(p),
            )
        });
        t
    }

    /// Per-query node-address sequences of the pipelined **rank**
    /// engine (diagnostics; rank descents never exit early, so these
    /// are bit-identical to the scalar [`Searcher::trace_rank`]).
    pub fn trace_rank_pipelined(&self, keys: &[T]) -> Vec<Vec<usize>> {
        let mut t = vec![Vec::new(); keys.len()];
        dispatch_nav!(self, nav => {
            batch::window_rank_into::<T, _, DEFAULT_WINDOW, false>(
                &nav,
                keys.len(),
                |i| &keys[i],
                |_, _| {},
                |q, p| t[q].push(p),
            )
        });
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ist_core::{permute_in_place, Algorithm};

    fn sorted_data(n: usize) -> Vec<u64> {
        (0..n as u64).map(|x| 2 * x + 10).collect()
    }

    fn check_layout(n: usize, layout: Layout, kind: QueryKind) {
        let mut data = sorted_data(n);
        if !matches!(kind, QueryKind::Sorted) {
            permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
        }
        let s = Searcher::new(&data, kind);
        for x in 0..n as u64 {
            let key = 2 * x + 10;
            let hit = s.search(&key);
            assert_eq!(hit.map(|p| data[p]), Some(key), "n={n} kind={kind:?} x={x}");
            assert!(!s.contains(&(key + 1)), "n={n} kind={kind:?} miss x={x}");
        }
        assert!(!s.contains(&0));
        // Batched tiers must agree bit-for-bit with the scalar loop.
        let keys: Vec<u64> = (0..2 * n as u64 + 21).collect();
        let scalar = s.batch_search_seq(&keys);
        assert_eq!(s.batch_search_pipelined(&keys), scalar, "n={n} {kind:?}");
        assert_eq!(s.batch_search(&keys), scalar, "n={n} {kind:?}");
        // Window width is a throughput knob, never a semantics knob.
        assert_eq!(
            s.batch_search_pipelined_with_window::<5>(&keys),
            scalar,
            "n={n} {kind:?} W=5"
        );
    }

    #[test]
    fn bst_all_sizes() {
        for n in [1usize, 2, 3, 7, 8, 20, 63, 100, 127, 128, 1000] {
            check_layout(n, Layout::Bst, QueryKind::Bst);
            check_layout(n, Layout::Bst, QueryKind::BstPrefetch);
        }
    }

    #[test]
    fn veb_all_sizes() {
        for n in [1usize, 2, 3, 7, 10, 31, 100, 511, 700, 4095, 5000] {
            check_layout(n, Layout::Veb, QueryKind::Veb);
        }
    }

    #[test]
    fn btree_all_sizes() {
        for b in [1usize, 2, 3, 8] {
            for n in [1usize, 2, 5, 8, 26, 27, 30, 80, 100, 1000] {
                check_layout(n, Layout::Btree { b }, QueryKind::Btree(b));
            }
        }
    }

    #[test]
    fn sorted_baseline() {
        check_layout(1000, Layout::Bst, QueryKind::Sorted);
    }

    #[test]
    fn batch_counts() {
        let n = 10_000usize;
        let mut data = sorted_data(n);
        permute_in_place(&mut data, Layout::Btree { b: 8 }, Algorithm::Involution).unwrap();
        let s = Searcher::new(&data, QueryKind::Btree(8));
        let keys: Vec<u64> = (0..n as u64).map(|x| x + 10).collect(); // half hit
        let expect = keys.iter().filter(|k| (**k - 10) % 2 == 0).count();
        assert_eq!(s.batch_count_seq(&keys), expect);
        assert_eq!(s.batch_count(&keys), expect);
    }

    /// Small batches (below any parallel grain) must produce counts
    /// identical to the scalar loop — the regression the old hardcoded
    /// `with_min_len(1 << 10)` dodged by never parallelizing them.
    #[test]
    fn batch_count_small_batches_match_seq() {
        let n = 3000usize;
        let mut data = sorted_data(n);
        permute_in_place(&mut data, Layout::Veb, Algorithm::CycleLeader).unwrap();
        let s = Searcher::new(&data, QueryKind::Veb);
        for batch in [0usize, 1, 2, 7, 15, 16, 17, 100, 511, 1023] {
            let keys: Vec<u64> = (0..batch as u64).map(|x| 3 * x + 9).collect();
            assert_eq!(
                s.batch_count(&keys),
                s.batch_count_seq(&keys),
                "batch={batch}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let data: Vec<u64> = vec![];
        let s = Searcher::new(&data, QueryKind::Veb);
        assert!(!s.contains(&5));
        assert_eq!(search_bst(&data, &5), None);
        assert_eq!(search_veb(&data, &5), None);
        assert_eq!(search_btree(&data, 4, &5), None);
        assert_eq!(s.batch_search(&[1, 2, 3]), vec![None, None, None]);
        assert_eq!(s.batch_rank(&[1, 2, 3]), vec![0, 0, 0]);
        assert_eq!(s.range_count(&1, &9), 0);
        assert_eq!(s.batch_search(&[]), vec![]);
        assert_eq!(s.rank_upper(&5), 0);
        assert_eq!(s.successor(&5), None);
        assert_eq!(s.predecessor(&5), None);
        assert!(s.trace_search(&5).is_empty());
    }

    #[test]
    fn rank_and_lower_bound_agree_with_sorted_reference() {
        for n in [1usize, 2, 7, 26, 100, 511, 1000] {
            let sorted: Vec<u64> = (0..n as u64).map(|x| 3 * x + 2).collect();
            let kinds: Vec<(QueryKind, Option<Layout>)> = vec![
                (QueryKind::Sorted, None),
                (QueryKind::Bst, Some(Layout::Bst)),
                (QueryKind::Btree(1), Some(Layout::Btree { b: 1 })),
                (QueryKind::Btree(4), Some(Layout::Btree { b: 4 })),
                (QueryKind::Veb, Some(Layout::Veb)),
            ];
            for (kind, layout) in kinds {
                let mut data = sorted.clone();
                if let Some(l) = layout {
                    permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
                }
                let s = Searcher::new(&data, kind);
                for probe in 0..(3 * n as u64 + 5) {
                    let expect_rank = sorted.partition_point(|x| *x < probe);
                    assert_eq!(s.rank(&probe), expect_rank, "n={n} {kind:?} probe={probe}");
                    let expect_upper = sorted.partition_point(|x| *x <= probe);
                    assert_eq!(
                        s.rank_upper(&probe),
                        expect_upper,
                        "n={n} {kind:?} probe={probe}"
                    );
                    let expect_succ = sorted.get(expect_rank).copied();
                    assert_eq!(
                        s.lower_bound(&probe).map(|p| data[p]),
                        expect_succ,
                        "n={n} {kind:?} probe={probe}"
                    );
                }
                let probes: Vec<u64> = (0..(3 * n as u64 + 5)).collect();
                assert_eq!(s.batch_rank(&probes), s.batch_rank_seq(&probes));
                assert_eq!(
                    s.batch_lower_bound(&probes),
                    probes.iter().map(|p| s.lower_bound(p)).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn found_index_is_layout_index() {
        // The returned index must point at the key within the permuted
        // array, not the sorted rank.
        let n = 255usize;
        let mut data = sorted_data(n);
        permute_in_place(&mut data, Layout::Veb, Algorithm::Involution).unwrap();
        let s = Searcher::new(&data, QueryKind::Veb);
        for x in (0..n as u64).step_by(17) {
            let key = 2 * x + 10;
            let p = s.search(&key).unwrap();
            assert_eq!(data[p], key);
        }
    }

    #[test]
    fn range_count_matches_oracle() {
        let n = 777usize;
        let sorted: Vec<u64> = (0..n as u64).map(|x| 2 * x).collect();
        let mut data = sorted.clone();
        permute_in_place(&mut data, Layout::Bst, Algorithm::CycleLeader).unwrap();
        let s = Searcher::new(&data, QueryKind::Bst);
        let mut ranges = Vec::new();
        for lo in (0..2 * n as u64).step_by(97) {
            for width in [0u64, 1, 2, 13, 400] {
                ranges.push((lo, lo + width));
                ranges.push((lo + width, lo)); // inverted
            }
        }
        for &(lo, hi) in &ranges {
            let expect = sorted
                .partition_point(|x| *x < hi)
                .saturating_sub(sorted.partition_point(|x| *x < lo));
            assert_eq!(s.range_count(&lo, &hi), expect, "[{lo}, {hi})");
        }
        assert_eq!(
            s.batch_range_count(&ranges),
            s.batch_range_count_seq(&ranges)
        );
    }

    /// Scalar traces are prefixes of pipelined traces (equal for rank).
    #[test]
    fn traces_are_consistent() {
        let n = 500usize;
        for (kind, layout) in [
            (QueryKind::Sorted, None),
            (QueryKind::Bst, Some(Layout::Bst)),
            (QueryKind::Btree(3), Some(Layout::Btree { b: 3 })),
            (QueryKind::Veb, Some(Layout::Veb)),
        ] {
            let mut data = sorted_data(n);
            if let Some(l) = layout {
                permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
            }
            let s = Searcher::new(&data, kind);
            let keys: Vec<u64> = (0..200u64).map(|x| 13 * x + 7).collect();
            let piped = s.trace_search_pipelined(&keys);
            let piped_rank = s.trace_rank_pipelined(&keys);
            for (i, key) in keys.iter().enumerate() {
                let scalar = s.trace_search(key);
                assert!(!scalar.is_empty(), "{kind:?}");
                assert_eq!(scalar[..], piped[i][..scalar.len()], "{kind:?} key={key}");
                assert_eq!(s.trace_rank(key), piped_rank[i], "{kind:?} key={key}");
            }
        }
    }
}
