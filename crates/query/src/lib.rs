//! # ist-query
//!
//! Search queries over the implicit layouts produced by `ist-core`, plus
//! the plain binary-search baseline the paper compares against
//! (Figures 6.5–6.7, 6.9).
//!
//! All searchers operate on the `[perfect layout | sorted overflow]`
//! array format (see [`ist_layout::complete`]): they descend the perfect
//! tree with pure index arithmetic and, on falling off at in-order gap
//! `g`, probe the overflow suffix.
//!
//! * [`search_sorted`] — classical binary search on the *un-permuted*
//!   array (the baseline; worst locality).
//! * [`search_bst`] / [`search_bst_prefetch`] — level-order descent
//!   (`v → 2v+1 / 2v+2`); the prefetch variant issues an explicit
//!   prefetch of the grandchildren region, the optimization of
//!   Khuong & Morin that the paper reproduces (~2× at large `N`).
//! * [`search_btree`] — `(B+1)`-ary descent, one node (≤ one cache line
//!   for `B` chosen to match it) per level: `Θ(log_B N)` I/Os.
//! * [`search_veb`] — descent by in-order arithmetic with vEB position
//!   re-computation per visited node (`O(log log N)` arithmetic per
//!   step) — the "more costly index computations" the paper cites for
//!   the vEB layout's constant-factor query overhead.
//!
//! [`Searcher`] bundles a layout tag with its precomputed shape for
//! repeated queries, and [`Searcher::batch_count`] runs query batches in
//! parallel (one thread per query slice — queries are independent, as on
//! the paper's GPU).

use ist_core::Layout;
use ist_layout::{complete::BtreeCompleteShape, veb_pos, CompleteShape};
use rayon::prelude::*;

/// Binary search baseline on the sorted (un-permuted) array.
///
/// Returns the index of a matching element, if any.
///
/// # Examples
/// ```
/// use ist_query::search_sorted;
/// let v = vec![10, 20, 30];
/// assert_eq!(search_sorted(&v, &20), Some(1));
/// assert_eq!(search_sorted(&v, &25), None);
/// ```
pub fn search_sorted<T: Ord>(data: &[T], key: &T) -> Option<usize> {
    data.binary_search(key).ok()
}

/// Shape data for BST/vEB searches over a complete binary tree.
#[derive(Debug, Clone, Copy)]
struct BinaryShape {
    d: u32,
    i: usize,
    l: usize,
}

impl BinaryShape {
    fn new(n: usize) -> Self {
        let s = CompleteShape::new(n);
        Self {
            d: s.full_levels(),
            i: s.full_count(),
            l: s.overflow(),
        }
    }
}

#[inline]
fn probe_overflow<T: Ord>(data: &[T], i: usize, l: usize, g: usize, key: &T) -> Option<usize> {
    if g < l && data[i + g] == *key {
        Some(i + g)
    } else {
        None
    }
}

#[inline(always)]
fn prefetch<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if index < data.len() {
            // SAFETY: the pointer is in bounds (checked) and prefetching
            // any address is side-effect free.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    data.as_ptr().add(index) as *const i8,
                );
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

#[inline(always)]
fn bst_descent<T: Ord, const PREFETCH: bool>(
    data: &[T],
    shape: BinaryShape,
    key: &T,
) -> Option<usize> {
    let BinaryShape { i, l, .. } = shape;
    let mut v = 0usize;
    let mut lo = 0usize; // full-rank of the subtree's leftmost gap
    let mut sz = i; // keys in the current subtree (2^λ − 1)
    while v < i {
        if PREFETCH {
            // Prefetch the grandchildren region: by the time the two
            // comparisons below resolve, the line is (ideally) resident.
            prefetch(data, 4 * v + 3);
        }
        let node = &data[v];
        if *key == *node {
            return Some(v);
        }
        let half = sz >> 1;
        if *key < *node {
            v = 2 * v + 1;
        } else {
            v = 2 * v + 2;
            lo += half + 1;
        }
        sz = half;
    }
    probe_overflow(data, i, l, lo, key)
}

/// Search the level-order BST layout.
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place, Algorithm, Layout};
/// use ist_query::search_bst;
/// let mut v: Vec<u64> = (0..100).map(|x| x * 2).collect();
/// permute_in_place(&mut v, Layout::Bst, Algorithm::Involution).unwrap();
/// for x in 0..100u64 {
///     let found = search_bst(&v, &(2 * x));
///     assert_eq!(found.map(|p| v[p]), Some(2 * x));
///     assert_eq!(search_bst(&v, &(2 * x + 1)), None);
/// }
/// ```
pub fn search_bst<T: Ord>(data: &[T], key: &T) -> Option<usize> {
    if data.is_empty() {
        return None;
    }
    bst_descent::<T, false>(data, BinaryShape::new(data.len()), key)
}

/// Search the BST layout with explicit grandchild prefetching.
///
/// Semantically identical to [`search_bst`].
pub fn search_bst_prefetch<T: Ord>(data: &[T], key: &T) -> Option<usize> {
    if data.is_empty() {
        return None;
    }
    bst_descent::<T, true>(data, BinaryShape::new(data.len()), key)
}

/// Shape data for B-tree searches.
#[derive(Debug, Clone, Copy)]
struct BtreeSearchShape {
    b: usize,
    i: usize,
    num_nodes: usize,
    q: usize,
    s: usize,
}

impl BtreeSearchShape {
    fn new(n: usize, b: usize) -> Self {
        let s = BtreeCompleteShape::new(n, b);
        Self {
            b,
            i: s.full_count(),
            num_nodes: s.full_count() / b,
            q: s.full_overflow_nodes(),
            s: s.partial_node_len(),
        }
    }
}

#[inline(always)]
fn btree_descent<T: Ord>(data: &[T], shape: BtreeSearchShape, key: &T) -> Option<usize> {
    let BtreeSearchShape {
        b,
        i,
        num_nodes,
        q,
        s,
    } = shape;
    let k = b + 1;
    let mut v = 0usize; // node index
    let mut lo = 0usize; // full-rank of the subtree's leftmost gap
    let mut span = i; // keys spanned by the subtree: k^λ − 1
    while v < num_nodes {
        let keys = &data[v * b..v * b + b];
        let child_span = (span - b) / k;
        // Number of node keys smaller than `key` (b is small: linear scan
        // stays in one cache line when B matches the line size).
        let mut c = 0usize;
        for kk in keys {
            match key.cmp(kk) {
                std::cmp::Ordering::Equal => return Some(v * b + c),
                std::cmp::Ordering::Greater => c += 1,
                std::cmp::Ordering::Less => break,
            }
        }
        v = v * k + c + 1;
        lo += c * (child_span + 1);
        span = child_span;
    }
    // Fell off at gap `lo`: overflow node j < q lives in gap j; the
    // partial node (s keys) in gap q.
    let (start, len) = if lo < q {
        (i + lo * b, b)
    } else if lo == q {
        (i + q * b, s)
    } else {
        return None;
    };
    data[start..start + len]
        .iter()
        .position(|x| *x == *key)
        .map(|off| start + off)
}

/// Search the level-order B-tree layout with `b` keys per node.
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place, Algorithm, Layout};
/// use ist_query::search_btree;
/// let mut v: Vec<u64> = (0..500).map(|x| 3 * x).collect();
/// permute_in_place(&mut v, Layout::Btree { b: 8 }, Algorithm::CycleLeader).unwrap();
/// for x in 0..500u64 {
///     assert_eq!(search_btree(&v, 8, &(3 * x)).map(|p| v[p]), Some(3 * x));
///     assert_eq!(search_btree(&v, 8, &(3 * x + 1)), None);
/// }
/// ```
pub fn search_btree<T: Ord>(data: &[T], b: usize, key: &T) -> Option<usize> {
    if data.is_empty() {
        return None;
    }
    btree_descent(data, BtreeSearchShape::new(data.len(), b), key)
}

#[inline(always)]
fn veb_descent<T: Ord>(data: &[T], shape: BinaryShape, key: &T) -> Option<usize> {
    let BinaryShape { d, i, l } = shape;
    if i == 0 {
        return probe_overflow(data, i, l, 0, key);
    }
    // Descend by in-order position: root at p = 2^{d-1}; a node of height
    // h has children at p ± 2^{h-1}. The layout index of each visited
    // node is recomputed with veb_pos (O(log d) arithmetic per step).
    let mut p = 1u64 << (d - 1);
    let mut step = 1u64 << (d - 1);
    loop {
        let pos = veb_pos(d, (p - 1) as usize);
        let node = &data[pos];
        if *key == *node {
            return Some(pos);
        }
        step >>= 1;
        if step == 0 {
            // Fell off a leaf (full-rank p−1): gap p−1 left, p right.
            let g = if *key < *node { p - 1 } else { p } as usize;
            return probe_overflow(data, i, l, g, key);
        }
        if *key < *node {
            p -= step;
        } else {
            p += step;
        }
    }
}

/// Search the van Emde Boas layout.
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place, Algorithm, Layout};
/// use ist_query::search_veb;
/// let mut v: Vec<u64> = (0..300).map(|x| 5 * x).collect();
/// permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
/// for x in 0..300u64 {
///     assert_eq!(search_veb(&v, &(5 * x)).map(|p| v[p]), Some(5 * x));
///     assert_eq!(search_veb(&v, &(5 * x + 2)), None);
/// }
/// ```
pub fn search_veb<T: Ord>(data: &[T], key: &T) -> Option<usize> {
    if data.is_empty() {
        return None;
    }
    veb_descent(data, BinaryShape::new(data.len()), key)
}

/// Complete-binary-tree rank: `g` full elements are `< key`; add the
/// overflow leaves below gap `g` and the gap-`g` leaf if it too is
/// smaller.
#[inline]
fn binary_rank_from_gap<T: Ord>(data: &[T], i: usize, l: usize, g: usize, key: &T) -> usize {
    let mut rank = g + g.min(l);
    if g < l && data[i + g] < *key {
        rank += 1;
    }
    rank
}

/// Which searcher a [`Searcher`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Binary search on the un-permuted sorted array.
    Sorted,
    /// BST layout descent.
    Bst,
    /// BST layout descent with explicit prefetching.
    BstPrefetch,
    /// B-tree layout descent (keys per node inside).
    Btree(usize),
    /// vEB layout descent.
    Veb,
}

impl QueryKind {
    /// Stable lowercase name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Sorted => "binary_search",
            QueryKind::Bst => "bst",
            QueryKind::BstPrefetch => "bst_prefetch",
            QueryKind::Btree(_) => "btree",
            QueryKind::Veb => "veb",
        }
    }
}

/// A reusable searcher: precomputes the layout shape once and answers
/// point queries.
///
/// # Examples
/// ```
/// use ist_core::{permute_in_place, Algorithm, Layout};
/// use ist_query::Searcher;
/// let mut v: Vec<u64> = (0..1000).collect();
/// permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
/// let s = Searcher::for_layout(&v, Layout::Veb);
/// assert!(s.contains(&123));
/// assert!(!s.contains(&5000));
/// assert_eq!(s.batch_count(&[1, 2, 3, 9999]), 3);
/// ```
pub struct Searcher<'a, T> {
    data: &'a [T],
    shape: ShapeData,
}

#[derive(Debug, Clone, Copy)]
enum ShapeData {
    Sorted,
    Bst { shape: BinaryShape, prefetch: bool },
    Btree(BtreeSearchShape),
    Veb(BinaryShape),
}

impl<'a, T: Ord + Sync> Searcher<'a, T> {
    /// Searcher for data permuted with [`ist_core::permute_in_place`]
    /// into `layout` (BST uses the non-prefetching descent; see
    /// [`Searcher::new`] for full control).
    pub fn for_layout(data: &'a [T], layout: Layout) -> Self {
        let kind = match layout {
            Layout::Bst => QueryKind::Bst,
            Layout::Btree { b } => QueryKind::Btree(b),
            Layout::Veb => QueryKind::Veb,
        };
        Self::new(data, kind)
    }

    /// Searcher for an explicit [`QueryKind`].
    pub fn new(data: &'a [T], kind: QueryKind) -> Self {
        let shape = if data.is_empty() {
            ShapeData::Sorted // degenerate; every search misses anyway
        } else {
            match kind {
                QueryKind::Sorted => ShapeData::Sorted,
                QueryKind::Bst => ShapeData::Bst {
                    shape: BinaryShape::new(data.len()),
                    prefetch: false,
                },
                QueryKind::BstPrefetch => ShapeData::Bst {
                    shape: BinaryShape::new(data.len()),
                    prefetch: true,
                },
                QueryKind::Btree(b) => ShapeData::Btree(BtreeSearchShape::new(data.len(), b)),
                QueryKind::Veb => ShapeData::Veb(BinaryShape::new(data.len())),
            }
        };
        Self { data, shape }
    }

    /// Find the layout index holding `key`, if present.
    #[inline]
    pub fn search(&self, key: &T) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        match self.shape {
            ShapeData::Sorted => search_sorted(self.data, key),
            ShapeData::Bst {
                shape,
                prefetch: false,
            } => bst_descent::<T, false>(self.data, shape, key),
            ShapeData::Bst {
                shape,
                prefetch: true,
            } => bst_descent::<T, true>(self.data, shape, key),
            ShapeData::Btree(shape) => btree_descent(self.data, shape, key),
            ShapeData::Veb(shape) => veb_descent(self.data, shape, key),
        }
    }

    /// `true` iff `key` is present.
    #[inline]
    pub fn contains(&self, key: &T) -> bool {
        self.search(key).is_some()
    }

    /// The **rank** of `key`: how many stored keys are strictly smaller.
    ///
    /// Computed by the same cache-friendly descent as [`Searcher::search`]
    /// (binary search on the un-permuted baseline), so ranks cost the
    /// same I/Os as lookups.
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..100).map(|x| 2 * x).collect();
    /// permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Veb);
    /// assert_eq!(s.rank(&0), 0);
    /// assert_eq!(s.rank(&1), 1);   // one key (0) below
    /// assert_eq!(s.rank(&10), 5);
    /// assert_eq!(s.rank(&999), 100);
    /// ```
    pub fn rank(&self, key: &T) -> usize {
        if self.data.is_empty() {
            return 0;
        }
        match self.shape {
            ShapeData::Sorted => self.data.partition_point(|x| x < key),
            ShapeData::Bst { shape, .. } => {
                // Count full elements < key via the descent's gap index,
                // then add the overflow leaves that precede that gap.
                let BinaryShape { i, l, .. } = shape;
                let mut v = 0usize;
                let mut lo = 0usize;
                let mut sz = i;
                while v < i {
                    let node = &self.data[v];
                    let half = sz >> 1;
                    if *key <= *node {
                        v = 2 * v + 1;
                    } else {
                        v = 2 * v + 2;
                        lo += half + 1;
                    }
                    sz = half;
                }
                binary_rank_from_gap(self.data, i, l, lo, key)
            }
            ShapeData::Veb(shape) => {
                // Same gap computation, but descending by in-order
                // arithmetic with vEB position recomputation.
                let BinaryShape { d, i, l } = shape;
                let mut p = 1u64 << (d - 1);
                let mut step = 1u64 << (d - 1);
                let g = loop {
                    let pos = veb_pos(d, (p - 1) as usize);
                    let node = &self.data[pos];
                    step >>= 1;
                    if *key <= *node {
                        if step == 0 {
                            break (p - 1) as usize;
                        }
                        p -= step;
                    } else {
                        if step == 0 {
                            break p as usize;
                        }
                        p += step;
                    }
                };
                binary_rank_from_gap(self.data, i, l, g, key)
            }
            ShapeData::Btree(shape) => {
                let BtreeSearchShape {
                    b,
                    i,
                    num_nodes,
                    q,
                    s,
                } = shape;
                let k = b + 1;
                let mut v = 0usize;
                let mut lo = 0usize;
                let mut span = i;
                while v < num_nodes {
                    let keys = &self.data[v * b..v * b + b];
                    let child_span = (span - b) / k;
                    let c = keys.iter().take_while(|kk| *kk < key).count();
                    v = v * k + c + 1;
                    lo += c * (child_span + 1);
                    span = child_span;
                }
                // g = full elements < key. The rank adds the overflow
                // keys in gaps before g, plus the within-gap-g prefix
                // that is still < key.
                let g = lo;
                let mut rank = g + (g.min(q)) * b + if g > q { s } else { 0 };
                let (start, len) = if g < q {
                    (i + g * b, b)
                } else if g == q {
                    (i + q * b, s)
                } else {
                    (0, 0)
                };
                rank += self.data[start..start + len]
                    .iter()
                    .take_while(|x| *x < key)
                    .count();
                rank
            }
        }
    }

    /// Layout index of the smallest stored key `≥ key` (the successor /
    /// `lower_bound`), or `None` if every key is smaller.
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = (0..100).map(|x| 2 * x).collect();
    /// permute_in_place(&mut v, Layout::Btree { b: 4 }, Algorithm::Involution).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Btree { b: 4 });
    /// assert_eq!(s.lower_bound(&51).map(|p| v[p]), Some(52));
    /// assert_eq!(s.lower_bound(&198).map(|p| v[p]), Some(198));
    /// assert_eq!(s.lower_bound(&199), None);
    /// ```
    pub fn lower_bound(&self, key: &T) -> Option<usize> {
        let r = self.rank(key);
        if r >= self.data.len() {
            return None;
        }
        // Map the sorted rank to a layout position via the closed-form
        // position maps.
        let n = self.data.len();
        let pos = match self.shape {
            ShapeData::Sorted => r,
            ShapeData::Bst { .. } => CompleteShape::new(n).pos(r, ist_layout::bst_pos),
            ShapeData::Veb(_) => CompleteShape::new(n).pos(r, veb_pos),
            ShapeData::Btree(shape) => BtreeCompleteShape::new(n, shape.b).pos(r),
        };
        Some(pos)
    }

    /// Run a batch of queries sequentially, returning the number found
    /// (the paper's query benchmarks measure exactly this loop).
    pub fn batch_count_seq(&self, keys: &[T]) -> usize {
        keys.iter().filter(|k| self.contains(k)).count()
    }

    /// Run a batch of queries in parallel (queries are independent),
    /// returning the number found.
    pub fn batch_count(&self, keys: &[T]) -> usize {
        keys.par_iter()
            .with_min_len(1 << 10)
            .filter(|k| self.contains(k))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ist_core::{permute_in_place, Algorithm};

    fn sorted_data(n: usize) -> Vec<u64> {
        (0..n as u64).map(|x| 2 * x + 10).collect()
    }

    fn check_layout(n: usize, layout: Layout, kind: QueryKind) {
        let mut data = sorted_data(n);
        if !matches!(kind, QueryKind::Sorted) {
            permute_in_place(&mut data, layout, Algorithm::CycleLeader).unwrap();
        }
        let s = Searcher::new(&data, kind);
        for x in 0..n as u64 {
            let key = 2 * x + 10;
            let hit = s.search(&key);
            assert_eq!(hit.map(|p| data[p]), Some(key), "n={n} kind={kind:?} x={x}");
            assert!(!s.contains(&(key + 1)), "n={n} kind={kind:?} miss x={x}");
        }
        assert!(!s.contains(&0));
    }

    #[test]
    fn bst_all_sizes() {
        for n in [1usize, 2, 3, 7, 8, 20, 63, 100, 127, 128, 1000] {
            check_layout(n, Layout::Bst, QueryKind::Bst);
            check_layout(n, Layout::Bst, QueryKind::BstPrefetch);
        }
    }

    #[test]
    fn veb_all_sizes() {
        for n in [1usize, 2, 3, 7, 10, 31, 100, 511, 700, 4095, 5000] {
            check_layout(n, Layout::Veb, QueryKind::Veb);
        }
    }

    #[test]
    fn btree_all_sizes() {
        for b in [1usize, 2, 3, 8] {
            for n in [1usize, 2, 5, 8, 26, 27, 30, 80, 100, 1000] {
                check_layout(n, Layout::Btree { b }, QueryKind::Btree(b));
            }
        }
    }

    #[test]
    fn sorted_baseline() {
        check_layout(1000, Layout::Bst, QueryKind::Sorted);
    }

    #[test]
    fn batch_counts() {
        let n = 10_000usize;
        let mut data = sorted_data(n);
        permute_in_place(&mut data, Layout::Btree { b: 8 }, Algorithm::Involution).unwrap();
        let s = Searcher::new(&data, QueryKind::Btree(8));
        let keys: Vec<u64> = (0..n as u64).map(|x| x + 10).collect(); // half hit
        let expect = keys.iter().filter(|k| (**k - 10) % 2 == 0).count();
        assert_eq!(s.batch_count_seq(&keys), expect);
        assert_eq!(s.batch_count(&keys), expect);
    }

    #[test]
    fn empty_input() {
        let data: Vec<u64> = vec![];
        let s = Searcher::new(&data, QueryKind::Veb);
        assert!(!s.contains(&5));
        assert_eq!(search_bst(&data, &5), None);
        assert_eq!(search_veb(&data, &5), None);
        assert_eq!(search_btree(&data, 4, &5), None);
    }

    #[test]
    fn rank_and_lower_bound_agree_with_sorted_reference() {
        for n in [1usize, 2, 7, 26, 100, 511, 1000] {
            let sorted: Vec<u64> = (0..n as u64).map(|x| 3 * x + 2).collect();
            let kinds: Vec<(QueryKind, Option<Layout>)> = vec![
                (QueryKind::Sorted, None),
                (QueryKind::Bst, Some(Layout::Bst)),
                (QueryKind::Btree(1), Some(Layout::Btree { b: 1 })),
                (QueryKind::Btree(4), Some(Layout::Btree { b: 4 })),
                (QueryKind::Veb, Some(Layout::Veb)),
            ];
            for (kind, layout) in kinds {
                let mut data = sorted.clone();
                if let Some(l) = layout {
                    permute_in_place(&mut data, l, Algorithm::CycleLeader).unwrap();
                }
                let s = Searcher::new(&data, kind);
                for probe in 0..(3 * n as u64 + 5) {
                    let expect_rank = sorted.partition_point(|x| *x < probe);
                    assert_eq!(s.rank(&probe), expect_rank, "n={n} {kind:?} probe={probe}");
                    let expect_succ = sorted.get(expect_rank).copied();
                    assert_eq!(
                        s.lower_bound(&probe).map(|p| data[p]),
                        expect_succ,
                        "n={n} {kind:?} probe={probe}"
                    );
                }
            }
        }
    }

    #[test]
    fn found_index_is_layout_index() {
        // The returned index must point at the key within the permuted
        // array, not the sorted rank.
        let n = 255usize;
        let mut data = sorted_data(n);
        permute_in_place(&mut data, Layout::Veb, Algorithm::Involution).unwrap();
        let s = Searcher::new(&data, QueryKind::Veb);
        for x in (0..n as u64).step_by(17) {
            let key = 2 * x + 10;
            let p = s.search(&key).unwrap();
            assert_eq!(data[p], key);
        }
    }
}
