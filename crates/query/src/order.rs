//! Order-statistic neighbors: successor and predecessor queries,
//! scalar and batched, built entirely on the rank engine.
//!
//! Both are rank queries in disguise, so they inherit every execution
//! tier (scalar descent, software-pipelined window, parallel chunks)
//! without any new per-layout code:
//!
//! * `successor(k)` — the first stored key **strictly greater** than
//!   `k` — is the element of sorted rank [`Searcher::rank_upper`]`(k)`
//!   (the count of keys `≤ k`), resolved to its layout slot by the
//!   closed-form position maps.
//! * `predecessor(k)` — the last stored key **strictly smaller** than
//!   `k` — is the element of sorted rank [`Searcher::rank`]`(k) − 1`.
//!
//! Either neighbor therefore costs exactly one descent plus `O(1)`
//! position arithmetic, and duplicates of `k` itself are skipped as a
//! unit (see the duplicate-key contract in the [crate docs]
//! (crate#duplicate-keys)). For the "first key `≥ k`" variant use
//! [`Searcher::lower_bound`].

use crate::batch::{par_chunked, DEFAULT_WINDOW};
use crate::Searcher;

impl<'a, T: Ord + Sync + 'static> Searcher<'a, T> {
    /// Layout position of the smallest stored key **strictly greater**
    /// than `key`, or `None` if no stored key exceeds it.
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = vec![10, 20, 20, 30];
    /// permute_in_place(&mut v, Layout::Bst, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Bst);
    /// assert_eq!(s.successor(&20).map(|p| v[p]), Some(30)); // skips both 20s
    /// assert_eq!(s.successor(&5).map(|p| v[p]), Some(10));
    /// assert_eq!(s.successor(&30), None);
    /// ```
    pub fn successor(&self, key: &T) -> Option<usize> {
        self.position_of_rank(self.rank_upper(key))
    }

    /// Layout position of the largest stored key **strictly smaller**
    /// than `key`, or `None` if no stored key is below it.
    ///
    /// # Examples
    /// ```
    /// use ist_core::{permute_in_place, Algorithm, Layout};
    /// use ist_query::Searcher;
    /// let mut v: Vec<u64> = vec![10, 20, 20, 30];
    /// permute_in_place(&mut v, Layout::Veb, Algorithm::CycleLeader).unwrap();
    /// let s = Searcher::for_layout(&v, Layout::Veb);
    /// assert_eq!(s.predecessor(&20).map(|p| v[p]), Some(10)); // skips both 20s
    /// assert_eq!(s.predecessor(&10), None);
    /// assert_eq!(s.predecessor(&99).map(|p| v[p]), Some(30));
    /// ```
    pub fn predecessor(&self, key: &T) -> Option<usize> {
        match self.rank(key) {
            0 => None,
            r => self.position_of_rank(r - 1),
        }
    }

    /// Scalar batch successor (one [`Searcher::successor`] per key).
    pub fn batch_successor_seq(&self, keys: &[T]) -> Vec<Option<usize>> {
        keys.iter().map(|k| self.successor(k)).collect()
    }

    /// Batch successor: upper-rank descents through the pipelined
    /// engine (parallel over adaptively-sized chunks), then the
    /// closed-form position maps. `out[i]` is identical to per-key
    /// [`Searcher::successor`].
    pub fn batch_successor(&self, keys: &[T]) -> Vec<Option<usize>> {
        let mut out = vec![None; keys.len()];
        par_chunked(keys, &mut out, |kc, oc| {
            self.pipelined_rank_into::<DEFAULT_WINDOW, true>(
                kc.len(),
                |i| &kc[i],
                |i, r| oc[i] = self.position_of_rank(r),
            )
        });
        out
    }

    /// Scalar batch predecessor (one [`Searcher::predecessor`] per key).
    pub fn batch_predecessor_seq(&self, keys: &[T]) -> Vec<Option<usize>> {
        keys.iter().map(|k| self.predecessor(k)).collect()
    }

    /// Batch predecessor: rank descents through the pipelined engine
    /// (parallel over adaptively-sized chunks). `out[i]` is identical
    /// to per-key [`Searcher::predecessor`].
    pub fn batch_predecessor(&self, keys: &[T]) -> Vec<Option<usize>> {
        let mut out = vec![None; keys.len()];
        par_chunked(keys, &mut out, |kc, oc| {
            self.pipelined_rank_into::<DEFAULT_WINDOW, false>(
                kc.len(),
                |i| &kc[i],
                |i, r| {
                    oc[i] = match r {
                        0 => None,
                        r => self.position_of_rank(r - 1),
                    }
                },
            )
        });
        out
    }
}
