//! Const-width B-tree descent kernels: [`WideBtreeNav`] and the sealed
//! [`SimdKey`] trait.
//!
//! The runtime [`BtreeNav`](crate::nav::BtreeNav) compare-counts each
//! node with a loop whose trip count (`shape.b`) is only known at run
//! time, so the compiler can neither unroll it nor vectorize it — every
//! level pays a loop-carried dependency on top of its cache miss. This
//! module monomorphizes the same descent for compile-time node widths
//! (`B ∈ {8, 16}` are wired into the [`Searcher`](crate::Searcher)
//! dispatch): the per-node rank is a fully unrolled, branchless sum of
//! `B` comparisons, and for [`SimdKey`] key types on `x86_64` it is a
//! compare → movemask → popcount sequence over 128/256-bit vectors
//! (SSE2 for `u32`; SSE4.2/AVX2 for `u64`/`i64` — compiled when the
//! corresponding `target_feature` is enabled, e.g. under
//! `RUSTFLAGS="-C target-cpu=native"`; the portable unrolled loop is
//! the fallback everywhere else, including non-x86 architectures).
//!
//! [`WideBtreeNav`] implements the full [`Navigator`] surface — search
//! and rank steps, `UPPER` tie-breaking, gap resolution, overflow
//! probes, prefetch hooks — with arithmetic **bit-identical** to the
//! runtime navigator at the same `b` (`tests/navigator_equivalence.rs`
//! and `tests/query_differential.rs` pin node traces and results
//! against each other), so every engine tier (scalar, software-
//! pipelined window, parallel chunks, range counts, trace replay)
//! inherits the wide kernel with no new driver code.
//!
//! # Quickstart
//!
//! Nothing needs to opt in: [`Searcher::new`](crate::Searcher::new)
//! with [`QueryKind::Btree(8)`](crate::QueryKind::Btree) (or 16) on a
//! [`SimdKey`] key type routes every entry point through the wide
//! kernel automatically. To drive the navigator directly:
//!
//! ```
//! use ist_core::{permute_in_place, Algorithm, Layout};
//! use ist_query::nav::{search_with, WideBtreeNav};
//!
//! let mut v: Vec<u64> = (0..1000).map(|x| 3 * x).collect();
//! permute_in_place(&mut v, Layout::Btree { b: 8 }, Algorithm::CycleLeader).unwrap();
//! let nav = WideBtreeNav::<u64, 8>::new(&v);
//! assert_eq!(search_with(&nav, &300, |_| {}).map(|p| v[p]), Some(300));
//! assert_eq!(search_with(&nav, &301, |_| {}), None);
//! ```

use crate::nav::{prefetch, BtreeSearchShape, Navigator, MISS};
use core::any::TypeId;

mod sealed {
    /// Seals [`super::SimdKey`]: the vector kernels transmute key slices
    /// to concrete machine types, so the set of implementors is a
    /// closed, audited list.
    pub trait Sealed {}
    impl Sealed for u64 {}
    impl Sealed for i64 {}
    impl Sealed for u32 {}
}

/// Key types with an explicit SIMD compare-and-count kernel.
///
/// **Contract**: an implementor must be a plain fixed-width integer
/// whose `Ord` is exactly the machine comparison the vector unit
/// performs (unsigned compares are lowered to signed ones by a
/// sign-bit flip). The trait is sealed — `u64`, `i64`, and `u32` are
/// the implementors — because the kernels reinterpret `&[T]` as the
/// concrete machine type after a `TypeId` equality check; a foreign
/// impl with a different layout or a divergent `Ord` would make that
/// unsound. Every other `Ord` type silently takes the portable
/// unrolled path and gets identical results.
pub trait SimdKey: sealed::Sealed + Copy + Ord + 'static {}

impl SimdKey for u64 {}
impl SimdKey for i64 {}
impl SimdKey for u32 {}

/// `true` iff `T` is one of the [`SimdKey`] implementors — the check
/// the [`Searcher`](crate::Searcher) width dispatch uses. The `TypeId`
/// comparisons const-fold per monomorphization, so this is free at run
/// time.
#[inline(always)]
pub(crate) fn is_simd_key<T: 'static>() -> bool {
    let t = TypeId::of::<T>();
    t == TypeId::of::<u64>() || t == TypeId::of::<i64>() || t == TypeId::of::<u32>()
}

// ---------------------------------------------------------------------
// Per-node compare-and-count kernels.
//
// Two boundaries, matching the two descent flavors:
//   count_lt(node, key) = #{ k ∈ node : k <  key }   (search, rank)
//   count_le(node, key) = #{ k ∈ node : k <= key }   (rank with UPPER)
// Node keys are sorted ascending, so either count is the partition
// point the runtime navigator's scalar loop computes.
// ---------------------------------------------------------------------

#[inline(always)]
fn count_lt_portable<T: Ord, const B: usize>(node: &[T], key: &T) -> usize {
    debug_assert_eq!(node.len(), B);
    let mut c = 0usize;
    // Trip count is the const `B`: LLVM fully unrolls this into B
    // branchless compare/add chains.
    for k in &node[..B] {
        c += usize::from(*k < *key);
    }
    c
}

#[inline(always)]
fn count_le_portable<T: Ord, const B: usize>(node: &[T], key: &T) -> usize {
    debug_assert_eq!(node.len(), B);
    let mut c = 0usize;
    for k in &node[..B] {
        c += usize::from(*k <= *key);
    }
    c
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! compare → movemask → popcount kernels. All loads are unaligned
    //! (`loadu`): `ist-dynamic`'s run storage is 64-byte aligned, but
    //! the navigator also serves arbitrary caller slices.
    #![allow(unsafe_op_in_unsafe_fn)]
    use core::arch::x86_64::*;

    /// #{ node[j] < key } over `B` `u64` keys (`B % 4 == 0`), unsigned
    /// order via a sign-bit flip.
    ///
    /// # Safety
    /// `node` must be valid for `B` reads.
    #[inline(always)]
    pub(super) unsafe fn count_lt_u64<const B: usize>(node: *const u64, key: u64) -> usize {
        const { assert!(B.is_multiple_of(4) && B > 0) }
        count_cmp64::<B>(node, key, false, SIGN64)
    }

    /// #{ node[j] <= key } = `B` − #{ node[j] > key }.
    ///
    /// # Safety
    /// `node` must be valid for `B` reads.
    #[inline(always)]
    pub(super) unsafe fn count_le_u64<const B: usize>(node: *const u64, key: u64) -> usize {
        const { assert!(B.is_multiple_of(4) && B > 0) }
        B - count_cmp64::<B>(node, key, true, SIGN64)
    }

    /// Signed-`i64` variants: same kernel with a zero bias — `pcmpgtq`
    /// is already a signed compare, so no sign-bit flip is needed.
    ///
    /// # Safety
    /// `node` must be valid for `B` reads.
    #[inline(always)]
    pub(super) unsafe fn count_lt_i64<const B: usize>(node: *const i64, key: i64) -> usize {
        const { assert!(B.is_multiple_of(4) && B > 0) }
        count_cmp64::<B>(node.cast::<u64>(), key as u64, false, 0)
    }

    /// # Safety
    /// `node` must be valid for `B` reads.
    #[inline(always)]
    pub(super) unsafe fn count_le_i64<const B: usize>(node: *const i64, key: i64) -> usize {
        const { assert!(B.is_multiple_of(4) && B > 0) }
        B - count_cmp64::<B>(node.cast::<u64>(), key as u64, true, 0)
    }

    const SIGN64: u64 = 1 << 63;
    const SIGN32: i32 = i32::MIN;

    /// Shared 64-bit kernel: counts `node[j] > key` (when `gt_node` is
    /// true) or `key > node[j]` (false) under the signed compare of
    /// `x ^ bias` — `bias = 1 << 63` turns that into unsigned order
    /// (for `u64`), `bias = 0` leaves it signed (for `i64`). Uses the
    /// widest compare the compile-time feature set provides; `gt_node`
    /// and `bias` are compile-time constants at every call site, so
    /// both fold away.
    ///
    /// # Safety
    /// `node` must be valid for `B` reads.
    #[inline(always)]
    unsafe fn count_cmp64<const B: usize>(
        node: *const u64,
        key: u64,
        gt_node: bool,
        bias: u64,
    ) -> usize {
        #[cfg(target_feature = "avx2")]
        {
            // 4 × u64 per 256-bit compare (pcmpgtq is signed; the bias
            // re-maps unsigned inputs onto signed order).
            let bias = _mm256_set1_epi64x(bias as i64);
            let kv = _mm256_xor_si256(_mm256_set1_epi64x(key as i64), bias);
            let mut c = 0usize;
            let mut j = 0;
            while j < B {
                let v = _mm256_loadu_si256(node.add(j).cast());
                let v = _mm256_xor_si256(v, bias);
                let m = if gt_node {
                    _mm256_cmpgt_epi64(v, kv)
                } else {
                    _mm256_cmpgt_epi64(kv, v)
                };
                c += (_mm256_movemask_pd(_mm256_castsi256_pd(m)) as u32).count_ones() as usize;
                j += 4;
            }
            c
        }
        #[cfg(all(target_feature = "sse4.2", not(target_feature = "avx2")))]
        {
            // 2 × u64 per 128-bit compare (pcmpgtq needs SSE4.2).
            let bias = _mm_set1_epi64x(bias as i64);
            let kv = _mm_xor_si128(_mm_set1_epi64x(key as i64), bias);
            let mut c = 0usize;
            let mut j = 0;
            while j < B {
                let v = _mm_loadu_si128(node.add(j).cast());
                let v = _mm_xor_si128(v, bias);
                let m = if gt_node {
                    _mm_cmpgt_epi64(v, kv)
                } else {
                    _mm_cmpgt_epi64(kv, v)
                };
                c += (_mm_movemask_pd(_mm_castsi128_pd(m)) as u32).count_ones() as usize;
                j += 2;
            }
            c
        }
        #[cfg(not(target_feature = "sse4.2"))]
        {
            // Baseline x86-64 has no 64-bit vector compare; unrolled
            // scalar chains, same semantics as the vector arms: signed
            // compare of `x ^ bias` on both sides.
            let s = core::slice::from_raw_parts(node, B);
            let k = (key ^ bias) as i64;
            let mut c = 0usize;
            for x in s {
                let v = (*x ^ bias) as i64;
                c += usize::from(if gt_node { v > k } else { v < k });
            }
            c
        }
    }

    /// #{ node[j] < key } over `B` `u32` keys (`B % 4 == 0`): SSE2
    /// (baseline x86-64) with the sign-bit flip for unsigned order.
    ///
    /// # Safety
    /// `node` must be valid for `B` reads.
    #[inline(always)]
    pub(super) unsafe fn count_lt_u32<const B: usize>(node: *const u32, key: u32) -> usize {
        const { assert!(B.is_multiple_of(4) && B > 0) }
        count_gt_key_u32::<B>(node, key, false)
    }

    /// # Safety
    /// `node` must be valid for `B` reads.
    #[inline(always)]
    pub(super) unsafe fn count_le_u32<const B: usize>(node: *const u32, key: u32) -> usize {
        const { assert!(B.is_multiple_of(4) && B > 0) }
        B - count_gt_key_u32::<B>(node, key, true)
    }

    /// # Safety
    /// `node` must be valid for `B` reads.
    #[inline(always)]
    unsafe fn count_gt_key_u32<const B: usize>(node: *const u32, key: u32, gt_node: bool) -> usize {
        let bias = _mm_set1_epi32(SIGN32);
        let kv = _mm_xor_si128(_mm_set1_epi32(key as i32), bias);
        let mut c = 0usize;
        let mut j = 0;
        while j < B {
            let v = _mm_loadu_si128(node.add(j).cast());
            let v = _mm_xor_si128(v, bias);
            let m = if gt_node {
                _mm_cmpgt_epi32(v, kv)
            } else {
                _mm_cmpgt_epi32(kv, v)
            };
            c += (_mm_movemask_ps(_mm_castsi128_ps(m)) as u32).count_ones() as usize;
            j += 4;
        }
        c
    }
}

/// #{ k ∈ node : k < key } for a `B`-key node. `SimdKey` types on
/// `x86_64` take the vector kernel; everything else takes the portable
/// unrolled loop. The `TypeId` checks const-fold, so each
/// monomorphization contains exactly one path.
#[inline(always)]
fn count_lt<T: Ord + 'static, const B: usize>(node: &[T], key: &T) -> usize {
    debug_assert_eq!(node.len(), B);
    #[cfg(target_arch = "x86_64")]
    {
        let t = TypeId::of::<T>();
        if t == TypeId::of::<u64>() {
            // SAFETY: TypeId equality proves `T` is `u64`, so the
            // pointer reinterpretations are identity casts; `node`
            // holds B elements (debug-asserted, and by the caller's
            // shape arithmetic).
            return unsafe {
                x86::count_lt_u64::<B>(node.as_ptr().cast(), *(key as *const T).cast::<u64>())
            };
        }
        if t == TypeId::of::<i64>() {
            // SAFETY: as above, with `T` proven to be `i64`.
            return unsafe {
                x86::count_lt_i64::<B>(node.as_ptr().cast(), *(key as *const T).cast::<i64>())
            };
        }
        if t == TypeId::of::<u32>() {
            // SAFETY: as above, with `T` proven to be `u32`.
            return unsafe {
                x86::count_lt_u32::<B>(node.as_ptr().cast(), *(key as *const T).cast::<u32>())
            };
        }
    }
    count_lt_portable::<T, B>(node, key)
}

/// #{ k ∈ node : k <= key } — the `UPPER` twin of [`count_lt`].
#[inline(always)]
fn count_le<T: Ord + 'static, const B: usize>(node: &[T], key: &T) -> usize {
    debug_assert_eq!(node.len(), B);
    #[cfg(target_arch = "x86_64")]
    {
        let t = TypeId::of::<T>();
        if t == TypeId::of::<u64>() {
            // SAFETY: as in `count_lt` — TypeId proves `T` is `u64`.
            return unsafe {
                x86::count_le_u64::<B>(node.as_ptr().cast(), *(key as *const T).cast::<u64>())
            };
        }
        if t == TypeId::of::<i64>() {
            // SAFETY: as in `count_lt` — TypeId proves `T` is `i64`.
            return unsafe {
                x86::count_le_i64::<B>(node.as_ptr().cast(), *(key as *const T).cast::<i64>())
            };
        }
        if t == TypeId::of::<u32>() {
            // SAFETY: as in `count_lt` — TypeId proves `T` is `u32`.
            return unsafe {
                x86::count_le_u32::<B>(node.as_ptr().cast(), *(key as *const T).cast::<u32>())
            };
        }
    }
    count_le_portable::<T, B>(node, key)
}

// ---------------------------------------------------------------------
// The navigator.
// ---------------------------------------------------------------------

/// Const-width B-tree navigator: [`crate::nav::BtreeNav`] monomorphized
/// for `B` keys per node, with the per-node compare-and-count unrolled
/// (and vectorized for [`SimdKey`] key types on `x86_64`).
///
/// Bit-identical to the runtime navigator at the same `b`: same node
/// sequence, same gap arithmetic, same duplicate/tie semantics (see the
/// module docs). `Searcher` routes `QueryKind::Btree(8)` and
/// `Btree(16)` here automatically for eligible key types;
/// [`Searcher::new_runtime`](crate::Searcher::new_runtime) is the
/// escape hatch that forces the general runtime path.
pub struct WideBtreeNav<'a, T, const B: usize> {
    data: &'a [T],
    shape: BtreeSearchShape,
}

impl<'a, T, const B: usize> Clone for WideBtreeNav<'a, T, B> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T, const B: usize> Copy for WideBtreeNav<'a, T, B> {}

impl<'a, T: Ord + 'static, const B: usize> WideBtreeNav<'a, T, B> {
    /// Navigator for `data` in B-tree layout with `B ≥ 1` keys per node
    /// (the compile-time twin of [`crate::nav::BtreeNav::new`]).
    pub fn new(data: &'a [T]) -> Self {
        const { assert!(B >= 1, "B-tree node width must be at least 1") }
        Self {
            data,
            shape: BtreeSearchShape::new(data.len(), B),
        }
    }

    #[inline]
    pub(crate) fn from_shape(data: &'a [T], shape: BtreeSearchShape) -> Self {
        const { assert!(B >= 1, "B-tree node width must be at least 1") }
        debug_assert_eq!(shape.b, B);
        debug_assert_eq!(shape, BtreeSearchShape::new(data.len(), B));
        Self { data, shape }
    }

    /// The node's `B` keys at node index `v`.
    #[inline(always)]
    fn node_keys(&self, v: usize) -> &[T] {
        debug_assert!(v < self.shape.num_nodes);
        let base = v * B;
        // SAFETY: on each of the `levels` node levels v < num_nodes, so
        // the node's B keys end at v*B + B ≤ i ≤ data.len(), and the
        // shape was derived from this very slice's length.
        unsafe { self.data.get_unchecked(base..base + B) }
    }

    /// Start index and length of the overflow node hanging in gap `g`
    /// (same arithmetic as the runtime navigator).
    #[inline]
    fn overflow_node(&self, g: usize) -> (usize, usize) {
        let BtreeSearchShape { i, q, s, .. } = self.shape;
        if g < q {
            (i + g * B, B)
        } else if g == q {
            (i + q * B, s)
        } else {
            (0, 0)
        }
    }
}

impl<'a, T: Ord + 'static, const B: usize> Navigator<T> for WideBtreeNav<'a, T, B> {
    type Cursor = usize;
    type Acc = usize;
    /// The per-level child subtree span `(B+1)^{levels−1−level} − 1`.
    type Round = usize;

    #[inline(always)]
    fn data(&self) -> &[T] {
        self.data
    }
    #[inline(always)]
    fn rounds(&self) -> u32 {
        self.shape.levels
    }
    #[inline(always)]
    fn start(&self) -> (usize, usize) {
        (0, 0)
    }
    #[inline(always)]
    fn first_round(&self) -> usize {
        self.shape.i.saturating_sub(B) / (B + 1)
    }
    #[inline(always)]
    fn next_round(&self, child: usize) -> usize {
        child.saturating_sub(B) / (B + 1)
    }
    #[inline(always)]
    fn node_base(&self, cur: &usize, _acc: &usize) -> usize {
        *cur * B
    }
    #[inline(always)]
    fn node_width(&self) -> usize {
        B
    }

    #[inline(always)]
    fn step_search(
        &self,
        cur: &mut usize,
        acc: &mut usize,
        res: &mut usize,
        key: &T,
        child: usize,
    ) {
        let v = *cur;
        let base = v * B;
        let keys = self.node_keys(v);
        let c = count_lt::<T, B>(keys, key);
        let hit = *res == MISS && c < B && keys[c] == *key;
        *res = if hit { base + c } else { *res };
        *cur = v * (B + 1) + c + 1;
        *acc += c * (child + 1);
    }

    #[inline(always)]
    fn step_search_last(&self, cur: &mut usize, acc: &mut usize, res: &mut usize, key: &T) {
        // The last node level's child subtrees are empty: child = 0.
        self.step_search(cur, acc, res, key, 0);
    }

    #[inline(always)]
    fn step_rank<const UPPER: bool>(
        &self,
        cur: &mut usize,
        acc: &mut usize,
        key: &T,
        child: usize,
    ) {
        let v = *cur;
        let keys = self.node_keys(v);
        let c = if UPPER {
            count_le::<T, B>(keys, key)
        } else {
            count_lt::<T, B>(keys, key)
        };
        *cur = v * (B + 1) + c + 1;
        *acc += c * (child + 1);
    }

    #[inline(always)]
    fn step_rank_last<const UPPER: bool>(&self, cur: &mut usize, acc: &mut usize, key: &T) {
        self.step_rank::<UPPER>(cur, acc, key, 0);
    }

    #[inline(always)]
    fn gap(&self, _cur: &usize, acc: &usize) -> usize {
        *acc
    }

    /// Scan the overflow node hanging in gap `gap` for `key`.
    #[inline]
    fn resolve_miss(&self, gap: usize, key: &T) -> Option<usize> {
        let (start, len) = self.overflow_node(gap);
        self.data[start..start + len]
            .iter()
            .position(|x| *x == *key)
            .map(|off| start + off)
    }

    /// B-tree rank from the fall-off gap (see
    /// [`crate::nav::BtreeNav::rank_of_gap`] — identical arithmetic).
    #[inline]
    fn rank_of_gap<const UPPER: bool>(&self, gap: usize, key: &T) -> usize {
        let BtreeSearchShape { q, s, .. } = self.shape;
        let mut rank = gap + gap.min(q) * B + if gap > q { s } else { 0 };
        let (start, len) = self.overflow_node(gap);
        rank += self.data[start..start + len]
            .iter()
            .take_while(|x| if UPPER { **x <= *key } else { **x < *key })
            .count();
        rank
    }

    #[inline(always)]
    fn prefetch_node(&self, cur: &usize, _acc: &usize) {
        let base = *cur * B;
        prefetch(self.data, base);
        // A node wider than one cache line (e.g. 16 × u64 = 128 bytes)
        // needs its tail line warmed too; the const condition folds
        // away when the node fits in one line.
        if B * core::mem::size_of::<T>() > 64 {
            prefetch(self.data, base + B - 1);
        }
    }
    #[inline(always)]
    fn prefetch_gap(&self, gap: usize) {
        if gap <= self.shape.q {
            prefetch(self.data, self.shape.i + gap * B);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The vector kernels must agree with the portable loop on every
    /// boundary: below all, above all, equal to each stored key, between
    /// neighbors, and around the sign-bit flip.
    #[test]
    fn simd_counts_match_portable() {
        fn check_u64<const B: usize>(node: &[u64]) {
            let mut probes: Vec<u64> = vec![0, 1, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1];
            for &k in node {
                probes.extend([k.saturating_sub(1), k, k.saturating_add(1)]);
            }
            for p in probes {
                assert_eq!(
                    count_lt::<u64, B>(node, &p),
                    count_lt_portable::<u64, B>(node, &p),
                    "lt B={B} p={p} node={node:?}"
                );
                assert_eq!(
                    count_le::<u64, B>(node, &p),
                    count_le_portable::<u64, B>(node, &p),
                    "le B={B} p={p} node={node:?}"
                );
            }
        }
        check_u64::<8>(&[3, 3, 7, 9, 100, 1 << 40, 1 << 63, u64::MAX]);
        check_u64::<8>(&[0; 8]);
        check_u64::<16>(&(0..16).map(|x| x * 5).collect::<Vec<_>>());

        let node_i: Vec<i64> = vec![i64::MIN, -55, -1, 0, 1, 2, 1 << 40, i64::MAX];
        for p in [i64::MIN, -56, -55, -2, -1, 0, 1, 3, i64::MAX - 1, i64::MAX] {
            assert_eq!(
                count_lt::<i64, 8>(&node_i, &p),
                count_lt_portable::<i64, 8>(&node_i, &p),
                "i64 lt p={p}"
            );
            assert_eq!(
                count_le::<i64, 8>(&node_i, &p),
                count_le_portable::<i64, 8>(&node_i, &p),
                "i64 le p={p}"
            );
        }

        let node_u: Vec<u32> = vec![0, 1, 9, 9, 1 << 20, 1 << 31, u32::MAX - 1, u32::MAX];
        for p in [0u32, 1, 2, 8, 9, 10, (1 << 31) - 1, 1 << 31, u32::MAX] {
            assert_eq!(
                count_lt::<u32, 8>(&node_u, &p),
                count_lt_portable::<u32, 8>(&node_u, &p),
                "u32 lt p={p}"
            );
            assert_eq!(
                count_le::<u32, 8>(&node_u, &p),
                count_le_portable::<u32, 8>(&node_u, &p),
                "u32 le p={p}"
            );
        }
    }

    /// Non-SimdKey `Ord` types descend through the portable path with
    /// the same semantics (the fallback leg of the dispatch).
    #[test]
    fn portable_fallback_type() {
        #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy, Debug)]
        struct K(u64);
        assert!(!is_simd_key::<K>());
        assert!(is_simd_key::<u64>());
        let node: Vec<K> = (0..8u64).map(|x| K(2 * x)).collect();
        assert_eq!(count_lt::<K, 8>(&node, &K(7)), 4);
        assert_eq!(count_le::<K, 8>(&node, &K(8)), 5);
    }
}
