//! # ist-gpu-sim
//!
//! A SIMT (GPU) execution and cost model — the substrate substitution for
//! the paper's GPU platform (an NVIDIA Tesla K40 programmed in CUDA),
//! which we do not have. See DESIGN.md for the substitution argument.
//!
//! The model charges the three costs that drive the paper's GPU findings
//! (Figures 6.8–6.9):
//!
//! 1. **Kernel launches** — fixed overhead per launch. Recursive
//!    algorithms (the vEB constructions, implemented with per-subtree
//!    launches as in the paper) pay this per recursion task, which is
//!    exactly why "the recursion associated with vEB construction makes
//!    it perform poorly on the GPU".
//! 2. **Memory transactions** — global memory moves in 128-byte segments
//!    (16 keys); a warp of 32 lanes accessing scattered addresses costs
//!    up to 32 transactions, while coalesced access costs 2–4. The
//!    cycle-leader B-tree algorithm's chunked moves coalesce perfectly,
//!    making it the fastest, as in the paper.
//! 3. **Compute** — per-lane ALU operations. The K40 has a **hardware
//!    bit-reversal instruction** (`T_REV₂ = O(1)`), so the BST involution
//!    algorithm is cheap on the GPU (unlike the CPU); the B-tree
//!    involutions pay `O(log N)` extended-Euclid arithmetic per element,
//!    which is why they "perform poorly".
//!
//! The [`Gpu`] device implements the `ist-machine` `Machine` trait, so
//! [`kernels::permute`] drives the **same** generic construction
//! algorithms as the production path (`ist_core::algorithms`) — not a
//! hand-maintained replica. The kernels really permute the simulated
//! global memory, and tests verify the result against `ist-core`'s
//! oracle — the cost accounting rides on genuine executions of the same
//! algorithms.

pub mod kernels;
mod machine;
pub mod query;

pub use kernels::GpuAlgorithm;
pub use query::{lane_node_trace, per_query_cost, GpuQueryKind};

/// Cost-model parameters (defaults approximate a K40-class device,
/// normalized so one 128-byte transaction costs 1 unit).
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Lanes per warp.
    pub warp: usize,
    /// Words (keys) per 128-byte memory transaction segment.
    pub line_words: usize,
    /// Cost units per kernel launch.
    pub launch_overhead: f64,
    /// Cost units per memory transaction.
    pub transaction_cost: f64,
    /// Cost units per abstract per-lane ALU operation.
    pub compute_cost: f64,
    /// Whether the device reverses bits in one instruction (the K40
    /// does: the paper's `T_REV₂ = O(1)` case).
    pub hardware_bit_reversal: bool,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            warp: 32,
            line_words: 16,
            // A K40 kernel launch is ~7.5 µs; one 128-byte transaction at
            // ~200 GB/s streaming bandwidth is ~0.6 ns. Normalizing the
            // transaction to 1 unit puts the launch at ~12k units.
            launch_overhead: 12_000.0,
            transaction_cost: 1.0,
            compute_cost: 0.02,
            hardware_bit_reversal: true,
        }
    }
}

/// Accumulated execution costs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GpuCost {
    /// Number of kernel launches.
    pub launches: u64,
    /// Number of 128-byte memory transactions.
    pub transactions: u64,
    /// Abstract ALU operations across all lanes.
    pub compute: f64,
}

impl GpuCost {
    /// Total model time in cost units under `cfg`.
    pub fn time(&self, cfg: &GpuConfig) -> f64 {
        self.launches as f64 * cfg.launch_overhead
            + self.transactions as f64 * cfg.transaction_cost
            + self.compute * cfg.compute_cost
    }
}

/// The simulated device: global memory plus cost counters.
pub struct Gpu {
    /// Global memory (the array being permuted / queried).
    pub data: Vec<u64>,
    cfg: GpuConfig,
    cost: GpuCost,
    /// Scratch for per-warp coalescing: segment ids seen this slot.
    seen: Vec<usize>,
}

impl Gpu {
    /// A device holding `data` in global memory.
    pub fn new(data: Vec<u64>, cfg: GpuConfig) -> Self {
        Self {
            data,
            cfg,
            cost: GpuCost::default(),
            seen: Vec::with_capacity(64),
        }
    }

    /// Device holding the sorted keys `0..n`.
    pub fn from_sorted(n: usize, cfg: GpuConfig) -> Self {
        Self::new((0..n as u64).collect(), cfg)
    }

    /// Costs accumulated so far.
    pub fn cost(&self) -> GpuCost {
        self.cost
    }

    /// Model time accumulated so far.
    pub fn time(&self) -> f64 {
        self.cost.time(&self.cfg)
    }

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Reset counters (keep memory contents).
    pub fn reset_cost(&mut self) {
        self.cost = GpuCost::default();
    }

    pub(crate) fn charge_launch(&mut self) {
        self.cost.launches += 1;
    }

    pub(crate) fn charge_compute(&mut self, ops: f64) {
        self.cost.compute += ops;
    }

    pub(crate) fn charge_transactions(&mut self, t: u64) {
        self.cost.transactions += t;
    }

    /// Charge one coalesced streaming pass over `words` words (read +
    /// write).
    pub(crate) fn charge_warp_stream(&mut self, segments: u64) {
        self.cost.transactions += 2 * segments;
    }

    /// Charge the transactions for one access slot of one warp: the
    /// number of distinct 128-byte segments among the lanes' addresses.
    pub(crate) fn charge_warp_access(&mut self, addrs: impl Iterator<Item = usize>) {
        self.seen.clear();
        for a in addrs {
            let seg = a / self.cfg.line_words;
            if !self.seen.contains(&seg) {
                self.seen.push(seg);
            }
        }
        self.cost.transactions += self.seen.len() as u64;
    }

    /// Execute one kernel of `threads` lanes where lane `t` performs the
    /// swap `pair_of(t)` (or nothing) and `compute` ALU ops. Swap
    /// addresses are coalesced per warp and per access slot (all lanes'
    /// first addresses together, then all second addresses).
    pub(crate) fn swap_kernel<F>(&mut self, threads: usize, compute: f64, pair_of: F)
    where
        F: Fn(usize) -> Option<(usize, usize)>,
    {
        self.charge_launch();
        self.charge_compute(compute * threads as f64);
        let warp = self.cfg.warp;
        let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(warp);
        let mut base = 0;
        while base < threads {
            let hi = (base + warp).min(threads);
            pairs.clear();
            pairs.extend((base..hi).filter_map(&pair_of));
            self.charge_warp_access(pairs.iter().map(|p| p.0));
            self.charge_warp_access(pairs.iter().map(|p| p.1));
            for &(i, j) in &pairs {
                self.data.swap(i, j);
            }
            base = hi;
        }
    }

    /// Execute one kernel that moves `len` keys from `[src, src+len)` to
    /// `[dst, dst+len)` by exchanging them (block swap): one lane per
    /// key, perfectly coalesced. (Primitive kept for external drivers.)
    #[allow(dead_code)]
    pub(crate) fn block_swap_kernel(&mut self, a: usize, b: usize, len: usize) {
        self.charge_launch();
        let lw = self.cfg.line_words as u64;
        // Coalesced: ceil(len/16) segments per side, read + write.
        self.cost.transactions += 4 * (len as u64).div_ceil(lw);
        if a < b {
            let (x, y) = self.data.split_at_mut(b);
            x[a..a + len].swap_with_slice(&mut y[..len]);
        } else {
            let (x, y) = self.data.split_at_mut(a);
            x[b..b + len].swap_with_slice(&mut y[..len]);
        }
    }

    /// Execute one kernel that rotates `[lo, hi)` right by `amount`
    /// (three coalesced reversal passes).
    pub(crate) fn rotate_kernel(&mut self, lo: usize, hi: usize, amount: usize) {
        let len = hi - lo;
        if len == 0 {
            return;
        }
        let amount = amount % len;
        if amount == 0 {
            return;
        }
        self.charge_launch();
        let lw = self.cfg.line_words as u64;
        // Three reversals, each streaming the region once (read+write).
        self.cost.transactions += 3 * 2 * (len as u64).div_ceil(lw);
        self.data[lo..hi].rotate_right(amount);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_vs_scattered_transactions() {
        let cfg = GpuConfig::default();
        let mut gpu = Gpu::from_sorted(1 << 12, cfg);
        // Coalesced: lanes i and i+2048 -> 2+2 segments per warp of 32.
        gpu.swap_kernel(1024, 0.0, |t| Some((t, t + 2048)));
        let coalesced = gpu.cost().transactions;
        gpu.reset_cost();
        // Scattered: pseudo-random partner for each lane.
        gpu.swap_kernel(1024, 0.0, |t| {
            let j = 2048 + (t * 2654435761) % 2048;
            Some((t, j))
        });
        let scattered = gpu.cost().transactions;
        assert!(
            scattered > 4 * coalesced,
            "scattered={scattered} coalesced={coalesced}"
        );
    }

    #[test]
    fn block_swap_moves_data_and_is_cheap() {
        let mut gpu = Gpu::from_sorted(64, GpuConfig::default());
        gpu.block_swap_kernel(0, 32, 32);
        assert_eq!(gpu.data[0], 32);
        assert_eq!(gpu.data[32], 0);
        assert_eq!(gpu.cost().transactions, 4 * 2);
        assert_eq!(gpu.cost().launches, 1);
    }

    #[test]
    fn rotate_kernel_is_correct() {
        let mut gpu = Gpu::from_sorted(100, GpuConfig::default());
        gpu.rotate_kernel(10, 90, 7);
        let mut expect: Vec<u64> = (10..90).collect();
        expect.rotate_right(7);
        assert_eq!(&gpu.data[10..90], &expect[..]);
    }

    #[test]
    fn time_combines_components() {
        let cfg = GpuConfig::default();
        let mut gpu = Gpu::from_sorted(64, cfg);
        gpu.charge_launch();
        gpu.charge_compute(100.0);
        let t = gpu.time();
        assert!((t - (cfg.launch_overhead + 100.0 * cfg.compute_cost)).abs() < 1e-9);
    }
}
