//! GPU query cost simulation (Figure 6.9).
//!
//! The paper assigns one thread per query and lets threads run
//! independently; memory throughput is the bottleneck. We simulate warps
//! of 32 queries in lockstep over the *real* permuted array: at every
//! descent step the active lanes' addresses are coalesced into 128-byte
//! segments and charged as transactions. A sample of queries is
//! simulated and the per-query cost extrapolated.
//!
//! The descent arithmetic itself is **not** re-implemented here: each
//! lane steps an `ist_query::nav::Navigator` — the same single source
//! of truth the CPU's scalar and pipelined engines run — and this
//! module only generates addresses from the navigator's node window and
//! prices them (mirroring how the construction-side `Gpu` machine
//! backend shares `ist_core::algorithms`). A lane retires on an
//! equality hit, on falling off the perfect part (the overflow probe is
//! omitted: one extra access at most), or on draining (sorted
//! baseline). The sorted baseline replays the CPU engine's
//! partition-point probe sequence, which never exits early on equality;
//! `tests/navigator_equivalence.rs` pins lane traces against the scalar
//! and pipelined CPU engines via [`lane_node_trace`].

use crate::{Gpu, GpuCost};
use ist_query::nav::{BstNav, BtreeNav, Navigator, SortedNav, VebNav, MISS};

/// Which search algorithm the query kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuQueryKind {
    /// Binary search on the un-permuted sorted array (baseline).
    BinarySearch,
    /// BST layout descent.
    Bst,
    /// B-tree layout descent (keys per node inside).
    Btree(usize),
    /// vEB layout descent.
    Veb,
}

impl GpuQueryKind {
    /// Stable name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            GpuQueryKind::BinarySearch => "binary_search",
            GpuQueryKind::Bst => "bst",
            GpuQueryKind::Btree(_) => "btree",
            GpuQueryKind::Veb => "veb",
        }
    }
}

/// Per-lane search state: the next address(es) to read, or done.
trait LaneSearch {
    /// Addresses this lane reads this step (empty = lane retired).
    fn addrs(&self, out: &mut Vec<usize>);
    /// Advance one descent step after reading.
    fn step(&mut self);
    fn done(&self) -> bool;
}

/// One warp lane driving a navigator descent: search semantics with
/// early exit on equality, overflow probe omitted.
struct Lane<N: Navigator<u64>> {
    nav: N,
    key: u64,
    cur: N::Cursor,
    acc: N::Acc,
    ctx: N::Round,
    res: usize,
    round: u32,
    done: bool,
}

impl<N: Navigator<u64>> Lane<N> {
    fn new(nav: N, key: u64) -> Self {
        let (cur, acc) = nav.start();
        let done = nav.rounds() == 0 || !nav.is_live(&cur, &acc);
        Self {
            ctx: nav.first_round(),
            cur,
            acc,
            nav,
            key,
            res: MISS,
            round: 0,
            done,
        }
    }
}

impl<N: Navigator<u64>> LaneSearch for Lane<N> {
    fn addrs(&self, out: &mut Vec<usize>) {
        if self.done {
            return;
        }
        // The node's key window: contribute every 16th word (distinct
        // 128-byte segments within a multi-key node; single-key nodes
        // contribute their one address).
        let base = self.nav.node_base(&self.cur, &self.acc);
        let mut a = base;
        while a < base + self.nav.node_width() {
            out.push(a);
            a += 16;
        }
    }

    fn step(&mut self) {
        if self.done {
            return;
        }
        let last = self.round + 1 >= self.nav.rounds();
        if last {
            self.nav
                .step_search_last(&mut self.cur, &mut self.acc, &mut self.res, &self.key);
        } else {
            self.nav.step_search(
                &mut self.cur,
                &mut self.acc,
                &mut self.res,
                &self.key,
                self.ctx,
            );
            self.ctx = self.nav.next_round(self.ctx);
        }
        self.round += 1;
        self.done = self.res != MISS || last || !self.nav.is_live(&self.cur, &self.acc);
    }

    fn done(&self) -> bool {
        self.done
    }
}

fn make_lane<'a>(kind: GpuQueryKind, key: u64, data: &'a [u64]) -> Box<dyn LaneSearch + 'a> {
    match kind {
        GpuQueryKind::BinarySearch => Box::new(Lane::new(SortedNav::new(data), key)),
        GpuQueryKind::Bst => Box::new(Lane::new(BstNav::new(data), key)),
        GpuQueryKind::Btree(b) => Box::new(Lane::new(BtreeNav::new(data, b), key)),
        GpuQueryKind::Veb => Box::new(Lane::new(VebNav::new(data), key)),
    }
}

/// Simulate `sample_keys` queries warp-by-warp over the device array and
/// return the **average model cost per query** (transactions + compute;
/// the per-kernel launch cost amortizes over millions of queries and is
/// charged once per batch by the caller).
pub fn per_query_cost(gpu: &Gpu, kind: GpuQueryKind, sample_keys: &[u64]) -> f64 {
    assert!(!sample_keys.is_empty());
    let data = &gpu.data;
    let cfg = *gpu.config();
    let mut cost = GpuCost::default();
    let mut addrs: Vec<usize> = Vec::with_capacity(cfg.warp * 4);
    let mut seen: Vec<usize> = Vec::with_capacity(cfg.warp * 4);
    for warp_keys in sample_keys.chunks(cfg.warp) {
        let mut lanes: Vec<Box<dyn LaneSearch + '_>> = warp_keys
            .iter()
            .map(|&key| make_lane(kind, key, data))
            .collect();
        loop {
            addrs.clear();
            for lane in &lanes {
                lane.addrs(&mut addrs);
            }
            if addrs.is_empty() {
                break;
            }
            seen.clear();
            for &a in &addrs {
                let seg = a / cfg.line_words;
                if !seen.contains(&seg) {
                    seen.push(seg);
                }
            }
            cost.transactions += seen.len() as u64;
            cost.compute += lanes.iter().filter(|l| !l.done()).count() as f64 * 4.0;
            for lane in &mut lanes {
                lane.step();
            }
        }
    }
    cost.time(&cfg) / sample_keys.len() as f64
}

/// The node-address sequence one query's lane touches (base address per
/// descent step), produced by the exact lane machinery
/// [`per_query_cost`] prices — the gpu-sim leg of the
/// navigator-equivalence suite.
pub fn lane_node_trace(data: &[u64], kind: GpuQueryKind, key: u64) -> Vec<usize> {
    let mut lane = make_lane(kind, key, data);
    let mut trace = Vec::new();
    let mut addrs = Vec::new();
    while !lane.done() {
        addrs.clear();
        lane.addrs(&mut addrs);
        if let Some(&base) = addrs.first() {
            trace.push(base);
        }
        lane.step();
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuConfig;
    use ist_core::{permute_in_place_seq, Algorithm, Layout};

    fn keys(n: usize, count: usize) -> Vec<u64> {
        // Deterministic pseudo-random keys in range.
        let mut x = 0x9e3779b97f4a7c15u64;
        (0..count)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % n as u64
            })
            .collect()
    }

    #[test]
    fn btree_queries_cost_less_than_binary_search() {
        // Figure 6.9's driver: the B-tree layout touches ~log_B N lines
        // per query; binary search ~log2 N.
        let n = (1 << 20) - 1;
        let b = 31usize; // (b+1)^4 = 2^20
        let q = keys(n, 4096);

        let sorted = Gpu::from_sorted(n, GpuConfig::default());
        let c_bin = per_query_cost(&sorted, GpuQueryKind::BinarySearch, &q);

        let mut data: Vec<u64> = (0..n as u64).collect();
        permute_in_place_seq(&mut data, Layout::Btree { b }, Algorithm::CycleLeader).unwrap();
        let gpu = Gpu::new(data, GpuConfig::default());
        let c_btree = per_query_cost(&gpu, GpuQueryKind::Btree(b), &q);

        assert!(
            c_btree * 2.0 < c_bin,
            "btree={c_btree:.2} binary={c_bin:.2}"
        );
    }

    #[test]
    fn bst_layout_beats_sorted_binary_search() {
        // The BST layout shares top levels across queries -> the hot top
        // of the tree coalesces within a warp.
        let n = (1 << 18) - 1;
        let q = keys(n, 4096);
        let sorted = Gpu::from_sorted(n, GpuConfig::default());
        let c_bin = per_query_cost(&sorted, GpuQueryKind::BinarySearch, &q);
        let mut data: Vec<u64> = (0..n as u64).collect();
        permute_in_place_seq(&mut data, Layout::Bst, Algorithm::Involution).unwrap();
        let gpu = Gpu::new(data, GpuConfig::default());
        let c_bst = per_query_cost(&gpu, GpuQueryKind::Bst, &q);
        assert!(c_bst < c_bin, "bst={c_bst:.2} binary={c_bin:.2}");
    }

    #[test]
    fn all_kinds_terminate_and_are_positive() {
        let n = 1000usize;
        let q = keys(n, 256);
        for (kind, layout) in [
            (GpuQueryKind::BinarySearch, None),
            (GpuQueryKind::Bst, Some(Layout::Bst)),
            (GpuQueryKind::Btree(8), Some(Layout::Btree { b: 8 })),
            (GpuQueryKind::Veb, Some(Layout::Veb)),
        ] {
            let mut data: Vec<u64> = (0..n as u64).collect();
            if let Some(l) = layout {
                permute_in_place_seq(&mut data, l, Algorithm::CycleLeader).unwrap();
            }
            let gpu = Gpu::new(data, GpuConfig::default());
            let c = per_query_cost(&gpu, kind, &q);
            assert!(c > 0.0, "{kind:?}");
        }
    }

    /// Hits must retire a lane at the level where the scalar engine
    /// would return, so traces end exactly at the hit node.
    #[test]
    fn lane_traces_end_at_hits() {
        let n = 255usize;
        let mut data: Vec<u64> = (0..n as u64).collect();
        permute_in_place_seq(&mut data, Layout::Bst, Algorithm::CycleLeader).unwrap();
        // The root of the BST layout sits at index 0 and holds the median.
        let root_key = data[0];
        let trace = lane_node_trace(&data, GpuQueryKind::Bst, root_key);
        assert_eq!(trace, vec![0]);
    }
}
