//! GPU query cost simulation (Figure 6.9).
//!
//! The paper assigns one thread per query and lets threads run
//! independently; memory throughput is the bottleneck. We simulate warps
//! of 32 queries in lockstep over the *real* permuted array: at every
//! descent step the active lanes' addresses are coalesced into 128-byte
//! segments and charged as transactions. A sample of queries is
//! simulated and the per-query cost extrapolated.

use crate::{Gpu, GpuCost};
use ist_bits::ilog2_floor;
use ist_layout::{complete::BtreeCompleteShape, veb_pos, CompleteShape};

/// Which search algorithm the query kernel runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuQueryKind {
    /// Binary search on the un-permuted sorted array (baseline).
    BinarySearch,
    /// BST layout descent.
    Bst,
    /// B-tree layout descent (keys per node inside).
    Btree(usize),
    /// vEB layout descent.
    Veb,
}

impl GpuQueryKind {
    /// Stable name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            GpuQueryKind::BinarySearch => "binary_search",
            GpuQueryKind::Bst => "bst",
            GpuQueryKind::Btree(_) => "btree",
            GpuQueryKind::Veb => "veb",
        }
    }
}

/// Per-lane search state: the next address(es) to read, or done.
trait LaneSearch {
    /// Addresses this lane reads this step (empty = lane retired).
    fn addrs(&self, out: &mut Vec<usize>);
    /// Advance one step after reading; `data` is global memory.
    fn step(&mut self, data: &[u64]);
    fn done(&self) -> bool;
}

struct BinaryLane {
    key: u64,
    lo: usize,
    hi: usize,
    done: bool,
}

impl LaneSearch for BinaryLane {
    fn addrs(&self, out: &mut Vec<usize>) {
        if !self.done {
            out.push(self.lo + (self.hi - self.lo) / 2);
        }
    }
    fn step(&mut self, data: &[u64]) {
        if self.done {
            return;
        }
        if self.lo >= self.hi {
            self.done = true;
            return;
        }
        let mid = self.lo + (self.hi - self.lo) / 2;
        match data[mid].cmp(&self.key) {
            std::cmp::Ordering::Equal => self.done = true,
            std::cmp::Ordering::Less => self.lo = mid + 1,
            std::cmp::Ordering::Greater => self.hi = mid,
        }
        if self.lo >= self.hi {
            self.done = true;
        }
    }
    fn done(&self) -> bool {
        self.done
    }
}

struct BstLane {
    key: u64,
    v: usize,
    i: usize,
    done: bool,
}

impl LaneSearch for BstLane {
    fn addrs(&self, out: &mut Vec<usize>) {
        if !self.done {
            out.push(self.v);
        }
    }
    fn step(&mut self, data: &[u64]) {
        if self.done {
            return;
        }
        if self.v >= self.i {
            self.done = true; // overflow probe omitted: one extra access at most
            return;
        }
        let node = data[self.v];
        if node == self.key {
            self.done = true;
        } else if self.key < node {
            self.v = 2 * self.v + 1;
        } else {
            self.v = 2 * self.v + 2;
        }
        if self.v >= self.i {
            self.done = true;
        }
    }
    fn done(&self) -> bool {
        self.done
    }
}

struct BtreeLane {
    key: u64,
    v: usize,
    b: usize,
    num_nodes: usize,
    done: bool,
}

impl LaneSearch for BtreeLane {
    fn addrs(&self, out: &mut Vec<usize>) {
        if !self.done {
            // The node's B keys: contribute every 16th word (distinct
            // segments within the node).
            let start = self.v * self.b;
            let mut a = start;
            while a < start + self.b {
                out.push(a);
                a += 16;
            }
        }
    }
    fn step(&mut self, data: &[u64]) {
        if self.done {
            return;
        }
        if self.v >= self.num_nodes {
            self.done = true;
            return;
        }
        let keys = &data[self.v * self.b..self.v * self.b + self.b];
        let mut c = 0usize;
        for k in keys {
            match self.key.cmp(k) {
                std::cmp::Ordering::Equal => {
                    self.done = true;
                    return;
                }
                std::cmp::Ordering::Greater => c += 1,
                std::cmp::Ordering::Less => break,
            }
        }
        self.v = self.v * (self.b + 1) + c + 1;
        if self.v >= self.num_nodes {
            self.done = true;
        }
    }
    fn done(&self) -> bool {
        self.done
    }
}

struct VebLane {
    key: u64,
    p: u64,
    step_size: u64,
    d: u32,
    done: bool,
}

impl LaneSearch for VebLane {
    fn addrs(&self, out: &mut Vec<usize>) {
        if !self.done {
            out.push(veb_pos(self.d, (self.p - 1) as usize));
        }
    }
    fn step(&mut self, data: &[u64]) {
        if self.done {
            return;
        }
        let pos = veb_pos(self.d, (self.p - 1) as usize);
        let node = data[pos];
        if node == self.key {
            self.done = true;
            return;
        }
        self.step_size >>= 1;
        if self.step_size == 0 {
            self.done = true;
            return;
        }
        if self.key < node {
            self.p -= self.step_size;
        } else {
            self.p += self.step_size;
        }
    }
    fn done(&self) -> bool {
        self.done
    }
}

/// Simulate `sample_keys` queries warp-by-warp over the device array and
/// return the **average model cost per query** (transactions + compute;
/// the per-kernel launch cost amortizes over millions of queries and is
/// charged once per batch by the caller).
pub fn per_query_cost(gpu: &Gpu, kind: GpuQueryKind, sample_keys: &[u64]) -> f64 {
    assert!(!sample_keys.is_empty());
    let data = &gpu.data;
    let n = data.len();
    let cfg = *gpu.config();
    let mut cost = GpuCost::default();
    let mut addrs: Vec<usize> = Vec::with_capacity(cfg.warp * 4);
    let mut seen: Vec<usize> = Vec::with_capacity(cfg.warp * 4);
    for warp_keys in sample_keys.chunks(cfg.warp) {
        let mut lanes: Vec<Box<dyn LaneSearch>> = warp_keys
            .iter()
            .map(|&key| make_lane(kind, key, n))
            .collect();
        loop {
            addrs.clear();
            for lane in &lanes {
                lane.addrs(&mut addrs);
            }
            if addrs.is_empty() {
                break;
            }
            seen.clear();
            for &a in &addrs {
                let seg = a / cfg.line_words;
                if !seen.contains(&seg) {
                    seen.push(seg);
                }
            }
            cost.transactions += seen.len() as u64;
            cost.compute += lanes.iter().filter(|l| !l.done()).count() as f64 * 4.0;
            for lane in &mut lanes {
                lane.step(data);
            }
        }
    }
    cost.time(&cfg) / sample_keys.len() as f64
}

fn make_lane(kind: GpuQueryKind, key: u64, n: usize) -> Box<dyn LaneSearch> {
    match kind {
        GpuQueryKind::BinarySearch => Box::new(BinaryLane {
            key,
            lo: 0,
            hi: n,
            done: n == 0,
        }),
        GpuQueryKind::Bst => {
            let shape = CompleteShape::new(n);
            Box::new(BstLane {
                key,
                v: 0,
                i: shape.full_count(),
                done: n == 0,
            })
        }
        GpuQueryKind::Btree(b) => {
            let shape = BtreeCompleteShape::new(n, b);
            Box::new(BtreeLane {
                key,
                v: 0,
                b,
                num_nodes: shape.full_count() / b,
                done: n == 0,
            })
        }
        GpuQueryKind::Veb => {
            let shape = CompleteShape::new(n);
            let d = if shape.full_count() > 0 {
                ilog2_floor(shape.full_count() as u64 + 1)
            } else {
                0
            };
            Box::new(VebLane {
                key,
                p: 1u64 << d.saturating_sub(1),
                step_size: 1u64 << d.saturating_sub(1),
                d: d.max(1),
                done: n == 0 || d == 0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuConfig;
    use ist_core::{permute_in_place_seq, Algorithm, Layout};

    fn keys(n: usize, count: usize) -> Vec<u64> {
        // Deterministic pseudo-random keys in range.
        let mut x = 0x9e3779b97f4a7c15u64;
        (0..count)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % n as u64
            })
            .collect()
    }

    #[test]
    fn btree_queries_cost_less_than_binary_search() {
        // Figure 6.9's driver: the B-tree layout touches ~log_B N lines
        // per query; binary search ~log2 N.
        let n = (1 << 20) - 1;
        let b = 31usize; // (b+1)^4 = 2^20
        let q = keys(n, 4096);

        let sorted = Gpu::from_sorted(n, GpuConfig::default());
        let c_bin = per_query_cost(&sorted, GpuQueryKind::BinarySearch, &q);

        let mut data: Vec<u64> = (0..n as u64).collect();
        permute_in_place_seq(&mut data, Layout::Btree { b }, Algorithm::CycleLeader).unwrap();
        let gpu = Gpu::new(data, GpuConfig::default());
        let c_btree = per_query_cost(&gpu, GpuQueryKind::Btree(b), &q);

        assert!(
            c_btree * 2.0 < c_bin,
            "btree={c_btree:.2} binary={c_bin:.2}"
        );
    }

    #[test]
    fn bst_layout_beats_sorted_binary_search() {
        // The BST layout shares top levels across queries -> the hot top
        // of the tree coalesces within a warp.
        let n = (1 << 18) - 1;
        let q = keys(n, 4096);
        let sorted = Gpu::from_sorted(n, GpuConfig::default());
        let c_bin = per_query_cost(&sorted, GpuQueryKind::BinarySearch, &q);
        let mut data: Vec<u64> = (0..n as u64).collect();
        permute_in_place_seq(&mut data, Layout::Bst, Algorithm::Involution).unwrap();
        let gpu = Gpu::new(data, GpuConfig::default());
        let c_bst = per_query_cost(&gpu, GpuQueryKind::Bst, &q);
        assert!(c_bst < c_bin, "bst={c_bst:.2} binary={c_bin:.2}");
    }

    #[test]
    fn all_kinds_terminate_and_are_positive() {
        let n = 1000usize;
        let q = keys(n, 256);
        for (kind, layout) in [
            (GpuQueryKind::BinarySearch, None),
            (GpuQueryKind::Bst, Some(Layout::Bst)),
            (GpuQueryKind::Btree(8), Some(Layout::Btree { b: 8 })),
            (GpuQueryKind::Veb, Some(Layout::Veb)),
        ] {
            let mut data: Vec<u64> = (0..n as u64).collect();
            if let Some(l) = layout {
                permute_in_place_seq(&mut data, l, Algorithm::CycleLeader).unwrap();
            }
            let gpu = Gpu::new(data, GpuConfig::default());
            let c = per_query_cost(&gpu, kind, &q);
            assert!(c > 0.0, "{kind:?}");
        }
    }
}
