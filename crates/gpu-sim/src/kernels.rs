//! GPU permutation kernels (Figure 6.8).
//!
//! Each algorithm is expressed in launch/transaction/compute terms:
//!
//! * Involution algorithms → a few full-array **scattered** swap kernels
//!   (`swap_kernel`), each uncoalesced (≈1 transaction per access) but
//!   with trivial launch counts. Digit-reversal compute is free when the
//!   device has hardware bit reversal (`T_REV₂ = O(1)`); the `J`
//!   involutions pay extended-Euclid arithmetic per lane.
//! * Cycle-leader B-tree/BST → per-recursion-depth **batched** rounds of
//!   chunk moves and rotations, perfectly coalesced streams.
//! * vEB algorithms → per-subtree kernels (the paper's recursive
//!   implementation): every recursion task above the block-local
//!   threshold costs a launch, which is what makes vEB construction slow
//!   on the GPU.
//!
//! Subtrees of at most [`BLOCK_LOCAL`] keys are processed by one launch
//! in "shared memory": one coalesced streaming pass plus local compute,
//! with the permutation delegated to the production `ist-core` code so
//! the memory image stays faithful.

use crate::Gpu;
use ist_bits::{ilog, ilog2_floor, rev_k};
use ist_layout::veb_split;
use ist_shuffle::j_involution;

/// Keys a single thread block handles in shared memory (one launch).
pub const BLOCK_LOCAL: usize = 1 << 12;

/// Algorithm selector for [`permute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuAlgorithm {
    /// Involution-based BST construction (2 scattered rounds).
    InvolutionBst,
    /// Involution-based B-tree construction.
    InvolutionBtree {
        /// Keys per node.
        b: usize,
    },
    /// Involution-based vEB construction (recursive).
    InvolutionVeb,
    /// Cycle-leader BST construction (B-tree with B = 1).
    CycleLeaderBst,
    /// Cycle-leader B-tree construction (chunked gathers).
    CycleLeaderBtree {
        /// Keys per node.
        b: usize,
    },
    /// Cycle-leader vEB construction (recursive gathers).
    CycleLeaderVeb,
}

impl GpuAlgorithm {
    /// Stable name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            GpuAlgorithm::InvolutionBst => "involution_bst",
            GpuAlgorithm::InvolutionBtree { .. } => "involution_btree",
            GpuAlgorithm::InvolutionVeb => "involution_veb",
            GpuAlgorithm::CycleLeaderBst => "cycle_leader_bst",
            GpuAlgorithm::CycleLeaderBtree { .. } => "cycle_leader_btree",
            GpuAlgorithm::CycleLeaderVeb => "cycle_leader_veb",
        }
    }
}

/// Run `algorithm` on the device array (must be a perfect size for the
/// target layout) and return the model time in cost units.
pub fn permute(gpu: &mut Gpu, algorithm: GpuAlgorithm) -> f64 {
    let before = gpu.time();
    match algorithm {
        GpuAlgorithm::InvolutionBst => involution_bst(gpu),
        GpuAlgorithm::InvolutionBtree { b } => involution_btree(gpu, b),
        GpuAlgorithm::InvolutionVeb => involution_veb(gpu),
        GpuAlgorithm::CycleLeaderBst => cycle_leader_btree(gpu, 1),
        GpuAlgorithm::CycleLeaderBtree { b } => cycle_leader_btree(gpu, b),
        GpuAlgorithm::CycleLeaderVeb => cycle_leader_veb(gpu),
    }
    gpu.time() - before
}

fn rev2_compute(gpu: &Gpu, d: u32) -> f64 {
    if gpu.config().hardware_bit_reversal {
        2.0
    } else {
        2.0 * d as f64
    }
}

fn involution_bst(gpu: &mut Gpu) {
    let n = gpu.data.len();
    if n <= 1 {
        return;
    }
    let d = ilog2_floor(n as u64 + 1);
    assert_eq!((1usize << d) - 1, n, "need n = 2^d - 1");
    let comp = rev2_compute(gpu, d);
    gpu.swap_kernel(n, comp, move |s| {
        let j = (rev_k(2, d, (s + 1) as u64) - 1) as usize;
        (s < j).then_some((s, j))
    });
    gpu.swap_kernel(n, comp, move |s| {
        let p = (s + 1) as u64;
        let j = (rev_k(2, ilog2_floor(p), p) - 1) as usize;
        (s < j).then_some((s, j))
    });
}

/// Compute charge for one `J` evaluation: an extended Euclid of word-size
/// operands, ≈ 1.5 ops per bit.
fn j_compute(n: usize) -> f64 {
    1.5 * (64 - (n as u64).leading_zeros()) as f64
}

fn involution_btree(gpu: &mut Gpu, b: usize) {
    let k = b + 1;
    let n = gpu.data.len();
    let m = ilog(k as u64, n as u64 + 1);
    assert_eq!(k.pow(m), n + 1, "need n = (B+1)^m - 1");
    let mut mm = m;
    while mm >= 2 {
        let n_cur = k.pow(mm) - 1;
        let kk = k as u64;
        let rev_comp = if k == 2 {
            rev2_compute(gpu, mm)
        } else {
            3.0 * mm as f64 // software digit loop
        };
        gpu.swap_kernel(n_cur, rev_comp, move |s| {
            let j = (rev_k(kk, mm, (s + 1) as u64) - 1) as usize;
            (s < j).then_some((s, j))
        });
        gpu.swap_kernel(n_cur, rev_comp, move |s| {
            let j = (rev_k(kk, mm - 1, (s + 1) as u64) - 1) as usize;
            (s < j).then_some((s, j))
        });
        let r = k.pow(mm - 1) - 1;
        let leaf = n_cur - r;
        if b >= 2 {
            let nm1 = (leaf - 1) as u64;
            let bb = b as u64;
            let jc = j_compute(leaf);
            gpu.swap_kernel(leaf, jc, move |s| {
                let j = j_involution(1, nm1, s as u64) as usize;
                (s < j).then_some((r + s, r + j))
            });
            gpu.swap_kernel(leaf, jc, move |s| {
                let j = j_involution(bb, nm1, s as u64) as usize;
                (s < j).then_some((r + s, r + j))
            });
        }
        mm -= 1;
    }
}

/// Process a whole small subtree in one block-local launch: a coalesced
/// streaming pass plus local compute; the permutation itself is done by
/// the production sequential code.
fn block_local(gpu: &mut Gpu, lo: usize, len: usize, apply: impl FnOnce(&mut [u64])) {
    gpu.charge_launch();
    let lw = gpu.config().line_words as u64;
    let cost_words = (len as u64).div_ceil(lw);
    // Read + write the region once; local work charged as compute.
    let n = len as f64;
    gpu.charge_compute(n * (n.log2().max(1.0)));
    // transactions: 2 streaming passes
    for _ in 0..2 {
        gpu.charge_warp_stream(cost_words);
    }
    apply(&mut gpu.data[lo..lo + len]);
}

fn involution_veb(gpu: &mut Gpu) {
    let n = gpu.data.len();
    if n == 0 {
        return;
    }
    let d = ilog2_floor(n as u64 + 1);
    assert_eq!((1usize << d) - 1, n, "need n = 2^d - 1");
    inv_veb_rec(gpu, 0, d);
}

fn inv_veb_rec(gpu: &mut Gpu, lo: usize, d: u32) {
    if d <= 1 {
        return;
    }
    let n_cur = (1usize << d) - 1;
    if n_cur <= BLOCK_LOCAL {
        return block_local(gpu, lo, n_cur, |region| {
            ist_core::involution::veb_seq(region, d)
        });
    }
    let (t, bb) = veb_split(d);
    let k = 1usize << bb;
    let r = (1usize << t) - 1;
    let l = k - 1;
    let kk = k as u64;
    // Separation rounds (scattered swaps over the region).
    if d % bb == 0 {
        let m = d / bb;
        let comp = 3.0 * m as f64;
        gpu.swap_kernel_offset(lo, n_cur, comp, move |s| {
            let j = (rev_k(kk, m, (s + 1) as u64) - 1) as usize;
            (s < j).then_some((s, j))
        });
        gpu.swap_kernel_offset(lo, n_cur, comp, move |s| {
            let j = (rev_k(kk, m - 1, (s + 1) as u64) - 1) as usize;
            (s < j).then_some((s, j))
        });
    } else {
        let nm1 = n_cur as u64;
        let jc = j_compute(n_cur);
        gpu.swap_kernel_offset(lo, n_cur, jc, move |s| {
            let j = (j_involution(kk, nm1, (s + 1) as u64) - 1) as usize;
            (s < j).then_some((s, j))
        });
        gpu.swap_kernel_offset(lo, n_cur, jc, move |s| {
            let j = (j_involution(1, nm1, (s + 1) as u64) - 1) as usize;
            (s < j).then_some((s, j))
        });
    }
    if l >= 2 {
        let leaf = n_cur - r;
        let nm1 = (leaf - 1) as u64;
        let ll = l as u64;
        let jc = j_compute(leaf);
        gpu.swap_kernel_offset(lo + r, leaf, jc, move |s| {
            let j = j_involution(1, nm1, s as u64) as usize;
            (s < j).then_some((s, j))
        });
        gpu.swap_kernel_offset(lo + r, leaf, jc, move |s| {
            let j = j_involution(ll, nm1, s as u64) as usize;
            (s < j).then_some((s, j))
        });
    }
    inv_veb_rec(gpu, lo, t);
    for q in 0..=r {
        inv_veb_rec(gpu, lo + r + q * l, bb);
    }
}

fn cycle_leader_veb(gpu: &mut Gpu) {
    let n = gpu.data.len();
    if n == 0 {
        return;
    }
    let d = ilog2_floor(n as u64 + 1);
    assert_eq!((1usize << d) - 1, n, "need n = 2^d - 1");
    cl_veb_rec(gpu, 0, d);
}

fn cl_veb_rec(gpu: &mut Gpu, lo: usize, d: u32) {
    if d <= 1 {
        return;
    }
    let n_cur = (1usize << d) - 1;
    if n_cur <= BLOCK_LOCAL {
        return block_local(gpu, lo, n_cur, |region| {
            ist_core::cycle_leader::veb_seq(region, d)
        });
    }
    let (t, bb) = veb_split(d);
    let r = (1usize << t) - 1;
    let l = (1usize << bb) - 1;
    if t == bb {
        gather_kernel(gpu, lo, r, l);
    } else {
        let half = (n_cur - 1) / 2;
        gather_kernel(gpu, lo, l, l);
        gather_kernel(gpu, lo + half + 1, l, l);
        gpu.rotate_kernel(lo + l, lo + l + half + 1, l + 1);
    }
    cl_veb_rec(gpu, lo, t);
    for q in 0..=r {
        cl_veb_rec(gpu, lo + r + q * l, bb);
    }
}

/// One equidistant gather as a GPU kernel pair: a cycle-walk kernel (one
/// thread per cycle, scattered accesses) and a block-rotation kernel
/// (coalesced streams).
fn gather_kernel(gpu: &mut Gpu, lo: usize, r: usize, l: usize) {
    if r == 0 {
        return;
    }
    // Stage 1: one launch; each thread walks its cycle sequentially.
    // Cycle c makes c swaps at stride ~(l+1): scattered -> ~2 transactions
    // per swap. Total swaps = r(r+1)/2.
    gpu.charge_launch();
    gpu.charge_compute((r * (r + 1) / 2) as f64 * 4.0);
    gpu.charge_transactions((r * (r + 1)) as u64);
    // Stage 2: one launch; every block rotated via three coalesced
    // reversal passes over the (r+1)·l tail.
    gpu.charge_launch();
    let words = ((r + 1) * l) as u64;
    gpu.charge_transactions(6 * words.div_ceil(gpu.config().line_words as u64));
    // Perform both stages with the production code path (no extra
    // charge; accounted above).
    let region = &mut gpu.data[lo..lo + ist_gather::gather_len(r, l)];
    for c in 1..=r {
        for m in (1..=c).rev() {
            region.swap(
                ist_gather::cycle_slot(m, c, l),
                ist_gather::cycle_slot(m - 1, c, l),
            );
        }
    }
    for (j0, block) in region[r..].chunks_exact_mut(l).enumerate() {
        let amount = (r - j0) % l;
        if amount != 0 {
            block.rotate_right(amount);
        }
    }
}

fn cycle_leader_btree(gpu: &mut Gpu, b: usize) {
    let k = b + 1;
    let n = gpu.data.len();
    let m = ilog(k as u64, n as u64 + 1);
    assert_eq!(k.pow(m), n + 1, "need n = (B+1)^m - 1");
    let mut mm = m;
    while mm >= 2 {
        extended_gather_kernel(gpu, 0, b, mm, true);
        mm -= 1;
    }
}

/// Extended gather with per-recursion-depth batched launches: all
/// partition tasks at one depth execute in the same kernel rounds
/// (`charge` is true only for the representative task), while data
/// movement and transactions are charged for all tasks.
fn extended_gather_kernel(gpu: &mut Gpu, lo: usize, b: usize, m: u32, charge: bool) {
    let k = b + 1;
    match m {
        0 | 1 => (),
        2 => {
            let n_cur = k * k - 1;
            if charge {
                // Batched across all partitions at this depth: one launch
                // per stage (threads walk cycles / rotate blocks).
                gpu.charge_launch();
                gpu.charge_launch();
            }
            gpu.charge_transactions((2 * n_cur as u64).div_ceil(gpu.config().line_words as u64) * 4);
            let region = &mut gpu.data[lo..lo + n_cur];
            ist_gather::equidistant_gather(region, b, b);
        }
        _ => {
            let c = k.pow(m - 2);
            let part_len = c * k;
            extended_gather_kernel(gpu, lo, b, m - 1, charge);
            for p in 1..k {
                let start = lo + part_len - 1 + (p - 1) * part_len;
                extended_gather_kernel(gpu, start + 1, b, m - 1, false);
            }
            // Chunked hoist: the stage-1 cycle rotation has a closed-form
            // destination per element, so it is a single coalesced
            // kernel; stage 2 (block rotations) is another. The region
            // starts at offset C−1 and spans C·(k²−1) keys.
            let region_len = c * (k * k - 1);
            if charge {
                gpu.charge_launch();
                gpu.charge_launch();
            }
            // Stage 1 moves ~b(b+1)/2 chunks of c words (each moved word
            // read once + written once, closed-form destination); stage 2
            // rewrites the (b+1)·b·c block words the same way. Coalesced.
            let lw = gpu.config().line_words as u64;
            let moved = (b * (b + 1) / 2 * c) as u64;
            gpu.charge_transactions(2 * moved.div_ceil(lw));
            gpu.charge_transactions(2 * (((b + 1) * b * c) as u64).div_ceil(lw));
            let region = &mut gpu.data[lo + c - 1..lo + c - 1 + region_len];
            ist_gather::equidistant_gather_chunks(region, b, b, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuConfig;
    use ist_core::{reference_permutation, Layout};

    fn run(n: usize, algo: GpuAlgorithm) -> (Vec<u64>, f64) {
        let mut gpu = Gpu::from_sorted(n, GpuConfig::default());
        let t = permute(&mut gpu, algo);
        (gpu.data, t)
    }

    #[test]
    fn gpu_kernels_produce_correct_layouts() {
        let n = (1 << 14) - 1;
        let bst = reference_permutation(&(0..n as u64).collect::<Vec<_>>(), Layout::Bst);
        let veb = reference_permutation(&(0..n as u64).collect::<Vec<_>>(), Layout::Veb);
        assert_eq!(run(n, GpuAlgorithm::InvolutionBst).0, bst);
        assert_eq!(run(n, GpuAlgorithm::CycleLeaderBst).0, bst);
        assert_eq!(run(n, GpuAlgorithm::InvolutionVeb).0, veb);
        assert_eq!(run(n, GpuAlgorithm::CycleLeaderVeb).0, veb);

        let b = 4usize;
        let n = 5usize.pow(6) - 1;
        let bt = reference_permutation(&(0..n as u64).collect::<Vec<_>>(), Layout::Btree { b });
        assert_eq!(run(n, GpuAlgorithm::InvolutionBtree { b }).0, bt);
        assert_eq!(run(n, GpuAlgorithm::CycleLeaderBtree { b }).0, bt);
    }

    #[test]
    fn figure_6_8_shape_orderings() {
        // At large N: B-tree cycle-leader fastest; BST involution
        // competitive; B-tree involution poor; vEB cycle-leader worst
        // (recursion launches).
        let n = (1 << 20) - 1;
        let t_cl_btree = {
            // Use B = 32 minus... need (B+1)^m - 1 = n: use b such that
            // (b+1)^m = 2^20: b = 31, m = 4.
            let mut gpu = Gpu::from_sorted((1usize << 20) - 1, GpuConfig::default());
            permute(&mut gpu, GpuAlgorithm::CycleLeaderBtree { b: 31 })
        };
        let t_inv_bst = run(n, GpuAlgorithm::InvolutionBst).1;
        let t_inv_btree = {
            let mut gpu = Gpu::from_sorted((1usize << 20) - 1, GpuConfig::default());
            permute(&mut gpu, GpuAlgorithm::InvolutionBtree { b: 31 })
        };
        let t_cl_veb = run(n, GpuAlgorithm::CycleLeaderVeb).1;
        assert!(
            t_cl_btree < t_inv_bst,
            "cl_btree={t_cl_btree} inv_bst={t_inv_bst}"
        );
        assert!(
            t_inv_bst < t_inv_btree,
            "inv_bst={t_inv_bst} inv_btree={t_inv_btree}"
        );
        assert!(
            t_cl_veb > t_cl_btree * 2.0,
            "cl_veb={t_cl_veb} cl_btree={t_cl_btree}"
        );
    }

    #[test]
    fn hardware_bit_reversal_matters() {
        let n = (1 << 16) - 1;
        let mut hw = Gpu::from_sorted(n, GpuConfig::default());
        let t_hw = permute(&mut hw, GpuAlgorithm::InvolutionBst);
        let mut sw_cfg = GpuConfig::default();
        sw_cfg.hardware_bit_reversal = false;
        let mut sw = Gpu::from_sorted(n, sw_cfg);
        let t_sw = permute(&mut sw, GpuAlgorithm::InvolutionBst);
        assert!(t_sw > t_hw, "software rev must cost more: {t_sw} vs {t_hw}");
        assert_eq!(hw.data, sw.data);
    }
}
