//! GPU permutation runs (Figure 6.8).
//!
//! [`permute`] drives the **single** generic implementation of each
//! construction algorithm (`ist_core::algorithms`) on the [`Gpu`] cost
//! backend — there is no separate GPU-side replica to keep in sync. How
//! each primitive is priced (launches, coalesced-vs-scattered
//! transactions, per-lane compute) lives in the [`Gpu`] `Machine`
//! implementation; the shapes the model reproduces:
//!
//! * Involution algorithms → a few full-array **scattered** swap kernels,
//!   each uncoalesced (≈1 transaction per access) but with trivial launch
//!   counts. Digit-reversal compute is free when the device has hardware
//!   bit reversal (`T_REV₂ = O(1)`); the `J` involutions pay
//!   extended-Euclid arithmetic per lane.
//! * Cycle-leader B-tree/BST → per-recursion-depth **batched** rounds of
//!   chunk moves and rotations, perfectly coalesced streams.
//! * vEB algorithms → per-subtree kernels (the paper's recursive
//!   implementation): every recursion task above the block-local
//!   threshold costs a launch, which is what makes vEB construction slow
//!   on the GPU.
//!
//! Subtrees of at most [`BLOCK_LOCAL`] keys are processed by one launch
//! in "shared memory": one coalesced streaming pass plus local compute,
//! with the permutation delegated to the same generic algorithm so the
//! memory image stays faithful.

use crate::Gpu;
use ist_core::{construct, Algorithm, Layout};

/// Keys a single thread block handles in shared memory (one launch).
pub const BLOCK_LOCAL: usize = 1 << 12;

/// Algorithm selector for [`permute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuAlgorithm {
    /// Involution-based BST construction (2 scattered rounds).
    InvolutionBst,
    /// Involution-based B-tree construction.
    InvolutionBtree {
        /// Keys per node.
        b: usize,
    },
    /// Involution-based vEB construction (recursive).
    InvolutionVeb,
    /// Cycle-leader BST construction (B-tree with B = 1).
    CycleLeaderBst,
    /// Cycle-leader B-tree construction (chunked gathers).
    CycleLeaderBtree {
        /// Keys per node.
        b: usize,
    },
    /// Cycle-leader vEB construction (recursive gathers).
    CycleLeaderVeb,
}

impl GpuAlgorithm {
    /// Stable name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            GpuAlgorithm::InvolutionBst => "involution_bst",
            GpuAlgorithm::InvolutionBtree { .. } => "involution_btree",
            GpuAlgorithm::InvolutionVeb => "involution_veb",
            GpuAlgorithm::CycleLeaderBst => "cycle_leader_bst",
            GpuAlgorithm::CycleLeaderBtree { .. } => "cycle_leader_btree",
            GpuAlgorithm::CycleLeaderVeb => "cycle_leader_veb",
        }
    }

    /// The (layout, algorithm) pair this selector drives.
    pub fn as_construction(self) -> (Layout, Algorithm) {
        match self {
            GpuAlgorithm::InvolutionBst => (Layout::Bst, Algorithm::Involution),
            GpuAlgorithm::InvolutionBtree { b } => (Layout::Btree { b }, Algorithm::Involution),
            GpuAlgorithm::InvolutionVeb => (Layout::Veb, Algorithm::Involution),
            GpuAlgorithm::CycleLeaderBst => (Layout::Bst, Algorithm::CycleLeader),
            GpuAlgorithm::CycleLeaderBtree { b } => (Layout::Btree { b }, Algorithm::CycleLeader),
            GpuAlgorithm::CycleLeaderVeb => (Layout::Veb, Algorithm::CycleLeader),
        }
    }
}

/// Run `algorithm` on the device array and return the model time in cost
/// units. Arbitrary (non-perfect) sizes are supported via the same
/// Chapter-5 stripping pass the production path runs.
pub fn permute(gpu: &mut Gpu, algorithm: GpuAlgorithm) -> f64 {
    let before = gpu.time();
    let (layout, algo) = algorithm.as_construction();
    construct(gpu, layout, algo).expect("valid construction parameters");
    gpu.time() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuConfig;
    use ist_core::{reference_permutation, Layout};

    fn run(n: usize, algo: GpuAlgorithm) -> (Vec<u64>, f64) {
        let mut gpu = Gpu::from_sorted(n, GpuConfig::default());
        let t = permute(&mut gpu, algo);
        (gpu.data, t)
    }

    #[test]
    fn gpu_kernels_produce_correct_layouts() {
        let n = (1 << 14) - 1;
        let bst = reference_permutation(&(0..n as u64).collect::<Vec<_>>(), Layout::Bst);
        let veb = reference_permutation(&(0..n as u64).collect::<Vec<_>>(), Layout::Veb);
        assert_eq!(run(n, GpuAlgorithm::InvolutionBst).0, bst);
        assert_eq!(run(n, GpuAlgorithm::CycleLeaderBst).0, bst);
        assert_eq!(run(n, GpuAlgorithm::InvolutionVeb).0, veb);
        assert_eq!(run(n, GpuAlgorithm::CycleLeaderVeb).0, veb);

        let b = 4usize;
        let n = 5usize.pow(6) - 1;
        let bt = reference_permutation(&(0..n as u64).collect::<Vec<_>>(), Layout::Btree { b });
        assert_eq!(run(n, GpuAlgorithm::InvolutionBtree { b }).0, bt);
        assert_eq!(run(n, GpuAlgorithm::CycleLeaderBtree { b }).0, bt);
    }

    #[test]
    fn nonperfect_sizes_work_on_the_gpu_model_too() {
        for n in [10usize, 1000, 12_345] {
            let sorted: Vec<u64> = (0..n as u64).collect();
            let veb = reference_permutation(&sorted, Layout::Veb);
            let (data, t) = run(n, GpuAlgorithm::CycleLeaderVeb);
            assert_eq!(data, veb, "n={n}");
            assert!(t > 0.0);
        }
    }

    #[test]
    fn figure_6_8_shape_orderings() {
        // At large N: B-tree cycle-leader fastest; BST involution
        // competitive; B-tree involution poor; vEB cycle-leader worst
        // (recursion launches).
        let n = (1 << 20) - 1;
        let t_cl_btree = {
            // Need (B+1)^m - 1 = n: use b such that (b+1)^m = 2^20:
            // b = 31, m = 4.
            let mut gpu = Gpu::from_sorted((1usize << 20) - 1, GpuConfig::default());
            permute(&mut gpu, GpuAlgorithm::CycleLeaderBtree { b: 31 })
        };
        let t_inv_bst = run(n, GpuAlgorithm::InvolutionBst).1;
        let t_inv_btree = {
            let mut gpu = Gpu::from_sorted((1usize << 20) - 1, GpuConfig::default());
            permute(&mut gpu, GpuAlgorithm::InvolutionBtree { b: 31 })
        };
        let t_cl_veb = run(n, GpuAlgorithm::CycleLeaderVeb).1;
        assert!(
            t_cl_btree < t_inv_bst,
            "cl_btree={t_cl_btree} inv_bst={t_inv_bst}"
        );
        assert!(
            t_inv_bst < t_inv_btree,
            "inv_bst={t_inv_bst} inv_btree={t_inv_btree}"
        );
        assert!(
            t_cl_veb > t_cl_btree * 2.0,
            "cl_veb={t_cl_veb} cl_btree={t_cl_btree}"
        );
    }

    #[test]
    fn hardware_bit_reversal_matters() {
        let n = (1 << 16) - 1;
        let mut hw = Gpu::from_sorted(n, GpuConfig::default());
        let t_hw = permute(&mut hw, GpuAlgorithm::InvolutionBst);
        let sw_cfg = GpuConfig {
            hardware_bit_reversal: false,
            ..Default::default()
        };
        let mut sw = Gpu::from_sorted(n, sw_cfg);
        let t_sw = permute(&mut sw, GpuAlgorithm::InvolutionBst);
        assert!(t_sw > t_hw, "software rev must cost more: {t_sw} vs {t_hw}");
        assert_eq!(hw.data, sw.data);
    }
}
