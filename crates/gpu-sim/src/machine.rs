//! [`Machine`] implementation for [`Gpu`]: the SIMT cost backend
//! (Figure 6.8's launch / transaction / compute model).
//!
//! * Involution rounds become full-array **swap kernels**: one launch,
//!   per-lane compute priced from the round's [`IndexArith`] (hardware
//!   bit reversal vs software digit loops vs extended-Euclid `J` maps),
//!   and per-warp coalescing of the scattered swap addresses.
//! * Stand-alone gathers (the vEB recursion) become a cycle-walk kernel
//!   (scattered) plus a block-rotation kernel (coalesced); batched
//!   gathers (the extended gather's per-depth rounds, §6.0.3) charge
//!   coalesced streams with fixed costs on the batch representative only.
//! * Subtrees of at most [`crate::kernels::BLOCK_LOCAL`] keys run as one
//!   **block-local** launch in "shared memory": a coalesced streaming
//!   pass plus local compute, with the permutation delegated to the same
//!   generic algorithm on a sequential `Ram` over the region.
//!
//! The construction control flow lives in `ist_core::algorithms`; the
//! kernels really permute the simulated global memory, so the cost
//! accounting rides on genuine executions of the same algorithms.

use crate::kernels::BLOCK_LOCAL;
use crate::Gpu;
use ist_gather::gather_len;
use ist_machine::{GatherMode, IndexArith, Machine, Region};

/// Per-lane ALU charge for one evaluation of the round's index map.
fn arith_cost(gpu: &Gpu, arith: IndexArith) -> f64 {
    let hw = gpu.config().hardware_bit_reversal;
    match arith {
        // Hardware bit reversal is O(1) (the paper's T_REV₂ = O(1) case);
        // software pays per bit.
        IndexArith::Rev2 { d } => {
            if hw {
                2.0
            } else {
                2.0 * d as f64
            }
        }
        IndexArith::RevK { k, m } => {
            if k == 2 {
                if hw {
                    2.0
                } else {
                    2.0 * m as f64
                }
            } else {
                3.0 * m as f64 // software digit loop
            }
        }
        // Extended Euclid of word-size operands, ≈ 1.5 ops per bit.
        IndexArith::Jmap { len } => 1.5 * (64 - (len as u64).leading_zeros()) as f64,
    }
}

impl Machine for Gpu {
    type Elem = u64;

    fn len(&self) -> usize {
        self.data.len()
    }

    fn involution_round<F>(&mut self, lo: usize, hi: usize, arith: IndexArith, f: F)
    where
        F: Fn(usize) -> usize + Sync,
    {
        let comp = arith_cost(self, arith);
        self.swap_kernel(hi - lo, comp, move |t| {
            let i = lo + t;
            let j = f(i);
            debug_assert!((lo..hi).contains(&j));
            (i < j).then_some((i, j))
        });
    }

    fn gather(&mut self, lo: usize, r: usize, l: usize, mode: GatherMode) {
        if r == 0 {
            return;
        }
        let lw = self.config().line_words as u64;
        match mode {
            GatherMode::Standalone => {
                // Stage 1: one launch; each thread walks its cycle
                // sequentially. Cycle c makes c swaps at stride ~(l+1):
                // scattered -> ~2 transactions per swap; total swaps =
                // r(r+1)/2.
                self.charge_launch();
                self.charge_compute((r * (r + 1) / 2) as f64 * 4.0);
                self.charge_transactions((r * (r + 1)) as u64);
                // Stage 2: one launch; every block rotated via three
                // coalesced reversal passes over the (r+1)·l tail.
                self.charge_launch();
                let words = ((r + 1) * l) as u64;
                self.charge_transactions(6 * words.div_ceil(lw));
            }
            GatherMode::Batched { representative } => {
                // Batched across all gathers at this recursion depth: one
                // launch per stage, charged once per batch; data movement
                // (4 coalesced passes) charged for every member.
                if representative {
                    self.charge_launch();
                    self.charge_launch();
                }
                let n_cur = gather_len(r, l) as u64;
                self.charge_transactions((2 * n_cur).div_ceil(lw) * 4);
            }
        }
        // Perform the permutation with the production code path (no extra
        // charge; accounted above).
        let region = &mut self.data[lo..lo + gather_len(r, l)];
        ist_gather::equidistant_gather(region, r, l);
    }

    fn gather_chunks(&mut self, lo: usize, r: usize, l: usize, chunk: usize, mode: GatherMode) {
        if r == 0 {
            return;
        }
        // The stage-1 cycle rotation has a closed-form destination per
        // chunk, so it is a single coalesced kernel; stage 2 (block
        // rotations) is another.
        let representative = !matches!(
            mode,
            GatherMode::Batched {
                representative: false
            }
        );
        if representative {
            self.charge_launch();
            self.charge_launch();
        }
        // Stage 1 moves ~r(r+1)/2 chunks of `chunk` words (each moved
        // word read once + written once); stage 2 rewrites the (r+1)·l
        // block chunks the same way. Coalesced.
        let lw = self.config().line_words as u64;
        let moved = (r * (r + 1) / 2 * chunk) as u64;
        self.charge_transactions(2 * moved.div_ceil(lw));
        self.charge_transactions(2 * (((r + 1) * l * chunk) as u64).div_ceil(lw));
        let region = &mut self.data[lo..lo + gather_len(r, l) * chunk];
        ist_gather::equidistant_gather_chunks(region, r, l, chunk);
    }

    fn rotate_right(&mut self, lo: usize, hi: usize, amount: usize) {
        self.rotate_kernel(lo, hi, amount);
    }

    /// Recursion tasks execute in order; each subtree above the
    /// block-local threshold pays for its own kernels, which is exactly
    /// why "the recursion associated with vEB construction makes it
    /// perform poorly on the GPU".
    fn run_tasks<K, F>(&mut self, tasks: Vec<Region<K>>, f: F)
    where
        K: Send + Sync,
        F: Fn(&mut Self, &Region<K>) + Sync,
    {
        for task in &tasks {
            f(self, task);
        }
    }

    fn local_threshold(&self) -> usize {
        BLOCK_LOCAL
    }

    /// Process a whole small subtree in one block-local launch: a
    /// coalesced streaming pass plus local compute; the permutation
    /// itself runs in "shared memory" (no further global transactions).
    fn local_task<F>(&mut self, lo: usize, len: usize, f: F)
    where
        F: FnOnce(&mut [u64]),
    {
        self.charge_launch();
        let lw = self.config().line_words as u64;
        let segments = (len as u64).div_ceil(lw);
        let n = len as f64;
        self.charge_compute(n * (n.log2().max(1.0)));
        // Transactions: 2 streaming passes (read + write the region once).
        for _ in 0..2 {
            self.charge_warp_stream(segments);
        }
        f(&mut self.data[lo..lo + len]);
    }
}
