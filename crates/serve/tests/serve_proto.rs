//! Protocol and server robustness suite.
//!
//! * **Codec round-trip fuzz** — randomized requests and replies
//!   survive encode → frame → decode bit-identically.
//! * **Malformed-frame fuzz** — truncated length prefixes, oversized
//!   frames, unknown opcodes, and operand junk each produce a **clean
//!   connection close**: no panic (the server stays up and serves a
//!   fresh connection), no partial write (whatever the server did send
//!   parses as complete frames).
//! * **Kill-one-connection-mid-batch** — a connection that dies with
//!   requests in flight (half a frame on the wire) does not perturb
//!   the replies of connections sharing its coalescer ticks.
//! * **Mode equivalence** — coalescing and direct servers answer an
//!   identical op sequence identically.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use ist_core::Layout;
use ist_serve::proto::{
    decode_reply, decode_request, encode_reply, encode_request, read_frame, Op, Reply, ReplyBody,
    Request, MAX_FRAME,
};
use ist_serve::{serve, Client, Mode, ServeMap, ServerConfig, ServerHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_map(n: u64, shards: usize) -> ServeMap {
    let keys: Vec<u64> = (0..n).map(|k| 2 * k).collect(); // even keys live
    let vals: Vec<Vec<u8>> = keys.iter().map(|k| k.to_le_bytes().to_vec()).collect();
    ServeMap::build(keys, vals, Layout::Veb, shards).expect("build")
}

fn start(mode: Mode) -> ServerHandle {
    serve(
        test_map(512, 4),
        ServerConfig {
            mode,
            ..ServerConfig::default()
        },
    )
    .expect("serve")
}

// ----- codec round-trip fuzz -----

fn random_op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..5u32) {
        0 => Op::Get {
            key: rng.gen_range(0..u64::MAX),
        },
        1 => Op::Rank {
            key: rng.gen_range(0..u64::MAX),
        },
        2 => Op::RangeCount {
            lo: rng.gen_range(0..u64::MAX),
            hi: rng.gen_range(0..u64::MAX),
        },
        3 => {
            let len = rng.gen_range(0..300usize);
            let value = (0..len)
                .map(|i| (rng.gen_range(0..u64::MAX) ^ i as u64) as u8)
                .collect();
            Op::Insert {
                key: rng.gen_range(0..u64::MAX),
                value,
            }
        }
        _ => Op::Remove {
            key: rng.gen_range(0..u64::MAX),
        },
    }
}

#[test]
fn codec_roundtrip_fuzz() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    let mut wire = Vec::new();
    let mut reqs = Vec::new();
    let mut reps = Vec::new();
    for i in 0..500u64 {
        let req = Request {
            req_id: rng.gen_range(0..u64::MAX),
            op: random_op(&mut rng),
        };
        encode_request(&req, &mut wire);
        reqs.push(req);
        let body = match i % 4 {
            0 => ReplyBody::Value(None),
            1 => {
                let len = rng.gen_range(0..300usize);
                ReplyBody::Value(Some((0..len).map(|j| j as u8).collect()))
            }
            2 => ReplyBody::Count(rng.gen_range(0..u64::MAX)),
            _ => ReplyBody::Ack,
        };
        let rep = Reply {
            req_id: rng.gen_range(0..u64::MAX),
            body,
        };
        encode_reply(&rep, &mut wire);
        reps.push(rep);
    }
    let mut cursor = &wire[..];
    let mut buf = Vec::new();
    for (req, rep) in reqs.iter().zip(&reps) {
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(&decode_request(&buf).unwrap(), req);
        assert!(read_frame(&mut cursor, &mut buf).unwrap());
        assert_eq!(&decode_reply(&buf).unwrap(), rep);
    }
    assert!(!read_frame(&mut cursor, &mut buf).unwrap());
}

#[test]
fn decode_never_panics_on_random_bytes() {
    let mut rng = StdRng::seed_from_u64(0xBAD1);
    for _ in 0..2000 {
        let len = rng.gen_range(0..64usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..u64::MAX) as u8).collect();
        let _ = decode_request(&bytes); // any Result is fine; panics are not
        let _ = decode_reply(&bytes);
    }
}

// ----- malformed input against a live server -----

/// Read until EOF (with a timeout so a wedged server fails the test
/// rather than hanging it) and assert everything received parses as
/// complete frames — the no-partial-write half of the close contract.
fn read_to_close_and_check_frames(sock: &TcpStream) -> usize {
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut all = Vec::new();
    let mut sock = sock;
    let mut chunk = [0u8; 4096];
    loop {
        match sock.read(&mut chunk) {
            Ok(0) => break, // clean close
            Ok(n) => all.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("expected clean close, got read error: {e}"),
        }
    }
    let mut cursor = &all[..];
    let mut buf = Vec::new();
    let mut frames = 0;
    loop {
        match read_frame(&mut cursor, &mut buf) {
            Ok(true) => {
                decode_reply(&buf).expect("server sent an undecodable frame");
                frames += 1;
            }
            Ok(false) => break,
            Err(e) => panic!("server sent a partial frame before closing: {e}"),
        }
    }
    frames
}

fn malformed_close_cases(mode: Mode) {
    let handle = start(mode);

    // Case 1: truncated length prefix, then abrupt close.
    let sock = TcpStream::connect(handle.addr()).unwrap();
    (&sock).write_all(&[7u8, 0]).unwrap();
    sock.shutdown(Shutdown::Write).unwrap();
    assert_eq!(read_to_close_and_check_frames(&sock), 0);

    // Case 2: oversized frame — a prefix promising more than MAX_FRAME.
    // The server must reject on the prefix alone and close.
    let sock = TcpStream::connect(handle.addr()).unwrap();
    (&sock)
        .write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
        .unwrap();
    assert_eq!(read_to_close_and_check_frames(&sock), 0);

    // Case 3: unknown opcode in an otherwise well-formed frame.
    let sock = TcpStream::connect(handle.addr()).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&17u32.to_le_bytes()); // 8 id + 1 op + 8 key
    frame.extend_from_slice(&1u64.to_le_bytes());
    frame.push(0xEE); // no such opcode
    frame.extend_from_slice(&2u64.to_le_bytes());
    (&sock).write_all(&frame).unwrap();
    assert_eq!(read_to_close_and_check_frames(&sock), 0);

    // Case 4: valid request, then operand junk. The valid request's
    // reply must arrive as a complete frame; then the close.
    let sock = TcpStream::connect(handle.addr()).unwrap();
    let mut wire = Vec::new();
    encode_request(
        &Request {
            req_id: 99,
            op: Op::Get { key: 4 },
        },
        &mut wire,
    );
    wire.extend_from_slice(&9u32.to_le_bytes()); // claims 9 payload bytes
    wire.extend_from_slice(&[0u8; 5]); // delivers 5, then close
    (&sock).write_all(&wire).unwrap();
    sock.shutdown(Shutdown::Write).unwrap();
    assert_eq!(read_to_close_and_check_frames(&sock), 1);

    // The server survived all of it: a fresh connection still works.
    let mut c = Client::connect(handle.addr()).unwrap();
    assert_eq!(c.get(4).unwrap(), Some(4u64.to_le_bytes().to_vec()));
    assert_eq!(c.rank(u64::MAX).unwrap(), 512);
    handle.stop();
}

#[test]
fn malformed_frames_close_cleanly_coalescing() {
    malformed_close_cases(Mode::Coalescing);
}

#[test]
fn malformed_frames_close_cleanly_direct() {
    malformed_close_cases(Mode::Direct);
}

// ----- kill one connection mid-batch -----

/// A connection that dies with half a frame on the wire, while other
/// connections have requests coalesced into the same ticks, must not
/// perturb those connections' replies.
#[test]
fn killed_connection_does_not_affect_others() {
    let handle = start(Mode::Coalescing);

    let mut survivor = Client::connect(handle.addr()).unwrap();
    // Interleave: victim pipelines a burst, then dies mid-frame.
    let victim = TcpStream::connect(handle.addr()).unwrap();
    let mut burst = Vec::new();
    for i in 0..100u64 {
        encode_request(
            &Request {
                req_id: i,
                op: Op::Get { key: 2 * i },
            },
            &mut burst,
        );
    }
    // End the burst with a torn frame: a prefix and half its payload.
    burst.extend_from_slice(&17u32.to_le_bytes());
    burst.extend_from_slice(&[0u8; 6]);
    (&victim).write_all(&burst).unwrap();
    victim.shutdown(Shutdown::Both).unwrap();
    drop(victim);

    // The survivor's requests — racing the victim's burst and its
    // death — must all answer exactly.
    for k in 0..200u64 {
        let expect = if k % 2 == 0 && k < 1024 {
            Some(k.to_le_bytes().to_vec())
        } else {
            None
        };
        assert_eq!(survivor.get(k).unwrap(), expect, "get({k}) after kill");
        assert_eq!(
            survivor.rank(k).unwrap(),
            k.div_ceil(2).min(512),
            "rank({k})"
        );
    }
    // Writes still apply too.
    survivor.insert(9999, b"alive".to_vec()).unwrap();
    assert_eq!(survivor.get(9999).unwrap(), Some(b"alive".to_vec()));
    handle.stop();
}

// ----- coalescing == direct equivalence -----

/// Drive both server modes through the same op sequence with a
/// strictly-blocking client (one request per tick, so tick-granular
/// group commit and per-request execution coincide) and require
/// identical answers throughout.
#[test]
fn coalesced_and_direct_modes_answer_identically() {
    let coalescing = start(Mode::Coalescing);
    let direct = start(Mode::Direct);
    let mut a = Client::connect(coalescing.addr()).unwrap();
    let mut b = Client::connect(direct.addr()).unwrap();

    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for i in 0..600 {
        let key = rng.gen_range(0..1500u64);
        match rng.gen_range(0..6u32) {
            0 => {
                a.insert(key, key.to_be_bytes().to_vec()).unwrap();
                b.insert(key, key.to_be_bytes().to_vec()).unwrap();
            }
            1 => {
                a.remove(key).unwrap();
                b.remove(key).unwrap();
            }
            2 | 3 => {
                assert_eq!(a.get(key).unwrap(), b.get(key).unwrap(), "get({key}) @ {i}");
            }
            4 => {
                assert_eq!(
                    a.rank(key).unwrap(),
                    b.rank(key).unwrap(),
                    "rank({key}) @ {i}"
                );
            }
            _ => {
                let hi = rng.gen_range(0..2000u64);
                assert_eq!(
                    a.range_count(key, hi).unwrap(),
                    b.range_count(key, hi).unwrap(),
                    "range_count({key},{hi}) @ {i}"
                );
            }
        }
    }
    coalescing.stop();
    direct.stop();
}

/// Pipelined writes then reads on one connection: replies come back in
/// request order, and a read queued behind a write in the same burst
/// observes it (read-your-writes at tick granularity).
#[test]
fn pipelined_burst_preserves_order_and_sees_writes() {
    let handle = start(Mode::Coalescing);
    let sock = TcpStream::connect(handle.addr()).unwrap();
    sock.set_nodelay(true).unwrap();

    let mut wire = Vec::new();
    for i in 0..50u64 {
        encode_request(
            &Request {
                req_id: i,
                op: Op::Insert {
                    key: 100_000 + i,
                    value: vec![i as u8; 8],
                },
            },
            &mut wire,
        );
    }
    for i in 0..50u64 {
        encode_request(
            &Request {
                req_id: 50 + i,
                op: Op::Get { key: 100_000 + i },
            },
            &mut wire,
        );
    }
    (&sock).write_all(&wire).unwrap();

    let mut reader = std::io::BufReader::new(&sock);
    let mut buf = Vec::new();
    for expect_id in 0..100u64 {
        assert!(read_frame(&mut reader, &mut buf).unwrap(), "early close");
        let rep = decode_reply(&buf).unwrap();
        assert_eq!(rep.req_id, expect_id, "replies out of request order");
        if expect_id < 50 {
            assert_eq!(rep.body, ReplyBody::Ack);
        } else {
            let i = expect_id - 50;
            assert_eq!(
                rep.body,
                ReplyBody::Value(Some(vec![i as u8; 8])),
                "read {i} did not observe its burst's write"
            );
        }
    }
    handle.stop();
}
