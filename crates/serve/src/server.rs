//! The TCP server: thread-per-connection IO around a central
//! **coalescer**.
//!
//! ## The coalescing pipeline ([`Mode::Coalescing`])
//!
//! ```text
//!  conn 0 reader ─┐                                      ┌─▶ conn 0 writer
//!  conn 1 reader ─┼─▶ coalescer ──ticks──▶ executor ─────┼─▶ conn 1 writer
//!  conn N reader ─┘   (owns the map,      (batched reads │      ...
//!                      applies write       on the tick's └─▶ conn N writer
//!                      deltas in bulk)     snapshot, replies
//!                                          per conn in order)
//! ```
//!
//! * Each connection gets a **reader** thread (decodes frames, feeds
//!   the coalescer one event per socket wakeup — every frame already
//!   whole in its buffer rides along) and a **writer** thread (drains
//!   that connection's reply channel, writing each batch of complete
//!   frames with one syscall). Per-request syscalls and channel sends
//!   are exactly what the coalesced path amortizes away.
//! * The **coalescer** owns the [`ShardedMap`]. Each iteration gathers
//!   every in-flight request into one **tick** (first request by
//!   blocking `recv`, the rest by draining `try_recv` up to
//!   [`ServerConfig::max_tick`], optionally holding the tick open for a
//!   [`ServerConfig::linger`] gather window so moderate load still
//!   forms large ticks). The tick's writes are folded
//!   **last-wins per key** into one delta and applied through the
//!   shard-parallel bulk paths ([`ShardedMap::batch_insert`] /
//!   [`ShardedMap::batch_remove`]); then a globally-consistent
//!   [`ShardedMap::snapshot`] is taken (reused from the previous tick
//!   when the tick carried no writes — snapshot reuse is an `Arc`
//!   bump) and shipped with the tick to the executor, freeing the
//!   coalescer to gather the next tick while reads execute.
//! * The **executor** runs the tick's reads as three batched calls on
//!   the snapshot — [`ShardedFrozen::batch_get`] /
//!   [`ShardedFrozen::batch_rank`] /
//!   [`ShardedFrozen::batch_range_count`] — each of which partitions
//!   per shard by reference and drives every shard's software-pipelined
//!   descent engine, then emits all replies **in arrival order**,
//!   appended into one buffer per connection per tick.
//!
//! ### Consistency contract
//!
//! Writes **group-commit at tick granularity**: every read in a tick
//! observes the tick's entire write delta (read-your-writes within the
//! tick, even for a read that arrived earlier in the same tick), and
//! the snapshot a tick executes against is a globally-consistent cut —
//! cross-shard cuts are **per tick**, not per request. `Insert` /
//! `Remove` replies are plain ACKs ("applied"), not per-key
//! replaced/removed booleans: the bulk delta paths report only
//! aggregate counts, and surfacing them per key would re-serialize the
//! batch.
//!
//! Per connection, replies are written in request order (the single
//! executor processes ticks in channel order and each tick's items in
//! arrival order; a connection's reader is one thread, so its arrival
//! order is its request order).
//!
//! ### Malformed input
//!
//! A reader that hits a malformed frame (truncated, oversized, unknown
//! opcode, bad operands) stops reading and signals disconnect; queued
//! replies for that connection are still written as **complete
//! frames**, then the connection closes. No panic, no partial write —
//! `tests/serve_proto.rs` holds the line.
//!
//! ## The naive baseline ([`Mode::Direct`])
//!
//! The canonical thread-per-connection server: every request locks a
//! global `Mutex<ShardedMap>`, runs one scalar operation, and writes
//! its reply with its own flush. It answers identically (the
//! `coalesced_and_direct_modes_answer_identically` test drives both)
//! but pays per-request lock traffic, context switches, and one
//! write syscall per reply — the bench's `BENCH_serve.json` quantifies
//! the gap.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use ist_shard::{ShardedFrozen, ShardedMap};

use crate::proto::{
    decode_request, encode_reply, read_frame, write_frames, Op, Reply, ReplyBody, Request,
};

/// Key type served over the wire.
pub type Key = u64;
/// Value type served over the wire (opaque byte strings).
pub type Value = Vec<u8>;
/// The map type behind the server.
pub type ServeMap = ShardedMap<Key, Value>;

/// IO threads are shallow (frame buffers live on the heap); small
/// stacks keep a thousand connections to a few hundred MB of reserve.
const IO_THREAD_STACK: usize = 128 * 1024;

/// How a server executes requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Gather all in-flight requests per tick, execute them as bulk
    /// deltas + batched snapshot reads (the fast path).
    Coalescing,
    /// One `Mutex`-guarded scalar operation per request, one flush per
    /// reply (the baseline).
    Direct,
}

/// Server tunables; `Default` is a coalescing server with an
/// 8192-request tick cap and no linger.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    pub mode: Mode,
    /// Upper bound on requests gathered into one tick. Bounds per-tick
    /// memory and reply latency under overload; a tick closes early
    /// whenever the queue runs dry.
    pub max_tick: usize,
    /// Group-commit gather window: after a tick's first event arrives,
    /// keep gathering until this much time has passed (or `max_tick` is
    /// hit) before closing the tick. Zero closes the tick as soon as
    /// the queue runs dry.
    ///
    /// This is the knob that makes coalescing pay off at *moderate*
    /// load: without it the pipeline is stable at tiny ticks — arrivals
    /// are spread out, each tick gathers only what raced in since the
    /// last one, and the fixed per-tick cost (batched-call setup,
    /// thread hand-offs, one write syscall per connection) is paid
    /// nearly per request. A sub-millisecond linger converts that
    /// regime into large ticks at the price of a bounded, known latency
    /// floor — the same trade as group commit in a write-ahead log.
    pub linger: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            mode: Mode::Coalescing,
            max_tick: 8192,
            linger: Duration::ZERO,
        }
    }
}

/// A running server: its bound address plus a stop switch. Dropping the
/// handle does **not** stop the server (threads are detached); call
/// [`ServerHandle::stop`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server accepts on (use with
    /// [`crate::Client::connect`]).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to exit. Existing connections drain
    /// naturally (their threads exit on client close); no new ones are
    /// accepted.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Serve `map` on an OS-assigned localhost port. See [`serve_on`].
pub fn serve(map: ServeMap, cfg: ServerConfig) -> io::Result<ServerHandle> {
    serve_on(TcpListener::bind(("127.0.0.1", 0))?, map, cfg)
}

/// Serve `map` on an already-bound listener. Returns immediately; all
/// serving happens on detached background threads.
pub fn serve_on(
    listener: TcpListener,
    map: ServeMap,
    cfg: ServerConfig,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    match cfg.mode {
        Mode::Coalescing => spawn_coalescing(listener, map, cfg, Arc::clone(&stop))?,
        Mode::Direct => spawn_direct(listener, map, Arc::clone(&stop))?,
    }
    Ok(ServerHandle { addr, stop })
}

fn spawn_named(
    name: &str,
    stack: Option<usize>,
    f: impl FnOnce() + Send + 'static,
) -> io::Result<()> {
    let mut b = thread::Builder::new().name(name.to_string());
    if let Some(s) = stack {
        b = b.stack_size(s);
    }
    b.spawn(f)?;
    Ok(())
}

// ----- coalescing mode -----

/// What connection readers feed the coalescer. `Register` is sent by
/// the accept loop **before** the connection's reader thread starts, so
/// on the MPSC channel it precedes every request from that connection;
/// `Disconnect` is the reader's last word. Control events ride the same
/// channel as requests precisely so this ordering holds.
enum Event {
    Register {
        conn: u64,
        tx: Sender<Vec<u8>>,
    },
    /// One reader wakeup's worth of requests — every complete frame
    /// that was already buffered gets decoded and shipped as a single
    /// channel send, so queue traffic scales with socket readiness, not
    /// request count.
    Requests {
        conn: u64,
        reqs: Vec<Request>,
    },
    Disconnect {
        conn: u64,
    },
}

/// One tick's worth of work, in arrival order, with write operands
/// already stripped into the (applied) delta — the executor only needs
/// to ACK them.
enum TickItem {
    Register {
        conn: u64,
        tx: Sender<Vec<u8>>,
    },
    Disconnect {
        conn: u64,
    },
    Get {
        conn: u64,
        req_id: u64,
        key: Key,
    },
    Rank {
        conn: u64,
        req_id: u64,
        key: Key,
    },
    RangeCount {
        conn: u64,
        req_id: u64,
        lo: Key,
        hi: Key,
    },
    WriteAck {
        conn: u64,
        req_id: u64,
    },
}

struct Tick {
    /// Globally-consistent cut taken after the tick's writes applied.
    snap: ShardedFrozen<Key, Value>,
    items: Vec<TickItem>,
}

fn spawn_coalescing(
    listener: TcpListener,
    map: ServeMap,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
) -> io::Result<()> {
    let (ev_tx, ev_rx) = mpsc::channel::<Event>();
    let (tick_tx, tick_rx) = mpsc::channel::<Tick>();
    spawn_named("ist-serve-coalescer", None, move || {
        coalescer_loop(map, ev_rx, tick_tx, cfg)
    })?;
    spawn_named("ist-serve-executor", None, move || executor_loop(tick_rx))?;
    spawn_named("ist-serve-accept", None, move || {
        let mut conn_id = 0u64;
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let _ = stream.set_nodelay(true);
            conn_id += 1;
            let conn = conn_id;
            let Ok(write_half) = stream.try_clone() else {
                continue;
            };
            let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
            // Register first: happens-before every request this conn's
            // reader will send (see `Event`).
            if ev_tx.send(Event::Register { conn, tx: reply_tx }).is_err() {
                break;
            }
            let _ = spawn_named("ist-serve-writer", Some(IO_THREAD_STACK), move || {
                writer_loop(write_half, reply_rx)
            });
            let tx = ev_tx.clone();
            let _ = spawn_named("ist-serve-reader", Some(IO_THREAD_STACK), move || {
                reader_loop(stream, conn, &tx)
            });
        }
    })
}

/// Decode frames off one connection into coalescer events. Each
/// blocking read is followed by an opportunistic sweep of the frames
/// already sitting whole in the `BufReader` buffer, so a pipelined
/// burst costs one channel send, not one per request. Any malformed
/// frame (or transport error) ends the read side; the final
/// `Disconnect` makes the executor drop the reply sender, which lets
/// the writer drain queued complete frames, flush, and close.
fn reader_loop(stream: TcpStream, conn: u64, tx: &Sender<Event>) {
    let mut r = BufReader::with_capacity(64 * 1024, stream);
    let mut buf = Vec::new();
    'conn: loop {
        // Blocking: the batch's first frame.
        let mut reqs = match read_frame(&mut r, &mut buf) {
            Ok(true) => match decode_request(&buf) {
                Ok(req) => vec![req],
                Err(_) => break, // malformed payload: close cleanly
            },
            Ok(false) => break, // client closed at a frame boundary
            Err(_) => break,    // truncated / oversized / transport error
        };
        // Non-blocking: drain every frame the buffer already holds
        // whole (checking the length prefix first guarantees
        // `read_frame` is satisfied from the buffer without a syscall).
        loop {
            let held = r.buffer();
            let Some((prefix, _)) = held.split_first_chunk::<4>() else {
                break;
            };
            let len = u32::from_le_bytes(*prefix) as usize;
            if len <= crate::proto::MAX_FRAME && held.len() < 4 + len {
                break; // partial frame: send what we have, then block
            }
            match read_frame(&mut r, &mut buf) {
                Ok(true) => match decode_request(&buf) {
                    Ok(req) => reqs.push(req),
                    Err(_) => {
                        let _ = tx.send(Event::Requests { conn, reqs });
                        break 'conn;
                    }
                },
                // Oversized prefix (or a spurious boundary): flush the
                // good requests, then close.
                Ok(false) | Err(_) => {
                    let _ = tx.send(Event::Requests { conn, reqs });
                    break 'conn;
                }
            }
        }
        if tx.send(Event::Requests { conn, reqs }).is_err() {
            break;
        }
    }
    let _ = tx.send(Event::Disconnect { conn });
}

/// Drain one connection's reply channel. Replies arrive as buffers of
/// complete frames (one per tick); queued buffers are concatenated and
/// written with a single syscall. Exits when the executor drops the
/// sender (disconnect) or the peer stops reading.
fn writer_loop(mut stream: TcpStream, rx: Receiver<Vec<u8>>) {
    while let Ok(mut blob) = rx.recv() {
        while let Ok(more) = rx.try_recv() {
            blob.extend_from_slice(&more);
        }
        if write_frames(&mut stream, &blob).is_err() {
            // Peer gone; drain and drop the rest so the executor's
            // sends don't error into a panic path.
            while rx.recv().is_ok() {}
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

/// The write side of the pipeline: owns the map, folds each tick's
/// writes last-wins into one bulk delta, applies it shard-parallel,
/// snapshots, and ships the tick to the executor.
fn coalescer_loop(
    mut map: ServeMap,
    rx: Receiver<Event>,
    tick_tx: Sender<Tick>,
    cfg: ServerConfig,
) {
    let ServerConfig {
        max_tick, linger, ..
    } = cfg;
    let stats_on = std::env::var_os("IST_SERVE_TICK_STATS").is_some();
    let (mut ticks, mut evs, mut gather_ns, mut apply_ns, mut snap_ns) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    // Reused across write-free ticks: cloning a ShardedFrozen is Arc
    // bumps, while taking a fresh snapshot copies each shard's buffer.
    let mut cached: Option<ShardedFrozen<Key, Value>> = None;
    loop {
        let first = match rx.recv() {
            Ok(e) => e,
            Err(_) => break, // accept loop and all readers gone
        };
        let t0 = Instant::now();
        // The tick opens on its first event and closes at max_tick
        // requests, at the linger deadline, or (with no linger) when
        // the queue runs dry. The linger is spent **asleep**, not in
        // a wake-per-event `recv_timeout` loop: on a busy box each
        // wakeup is a scheduler round trip stolen from the reader
        // threads that are trying to fill the tick.
        let deadline = (linger > Duration::ZERO).then(|| t0 + linger);
        let weight = |e: &Event| match e {
            Event::Requests { reqs, .. } => reqs.len(),
            _ => 1,
        };
        let mut events = Vec::with_capacity(64);
        let mut gathered = weight(&first);
        events.push(first);
        loop {
            while gathered < max_tick {
                match rx.try_recv() {
                    Ok(e) => {
                        gathered += weight(&e);
                        events.push(e);
                    }
                    Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                }
            }
            if gathered >= max_tick {
                break;
            }
            let Some(d) = deadline else { break };
            let now = Instant::now();
            if now >= d {
                break;
            }
            thread::sleep(d - now);
            // One more drain pass after the sleep, then the deadline
            // check above closes the tick.
        }

        let mut items = Vec::with_capacity(gathered);
        // Last write to a key within the tick wins — `Some` pending
        // insert, `None` pending remove — so insert-then-remove and
        // remove-then-insert interleavings resolve before the bulk
        // apply, and the two bulk calls see disjoint key sets.
        let mut delta: HashMap<Key, Option<Value>> = HashMap::new();
        for ev in events {
            match ev {
                Event::Register { conn, tx } => items.push(TickItem::Register { conn, tx }),
                Event::Disconnect { conn } => items.push(TickItem::Disconnect { conn }),
                Event::Requests { conn, reqs } => {
                    for Request { req_id, op } in reqs {
                        match op {
                            Op::Get { key } => items.push(TickItem::Get { conn, req_id, key }),
                            Op::Rank { key } => items.push(TickItem::Rank { conn, req_id, key }),
                            Op::RangeCount { lo, hi } => items.push(TickItem::RangeCount {
                                conn,
                                req_id,
                                lo,
                                hi,
                            }),
                            Op::Insert { key, value } => {
                                delta.insert(key, Some(value));
                                items.push(TickItem::WriteAck { conn, req_id });
                            }
                            Op::Remove { key } => {
                                delta.insert(key, None);
                                items.push(TickItem::WriteAck { conn, req_id });
                            }
                        }
                    }
                }
            }
        }

        let t1 = Instant::now();
        if !delta.is_empty() {
            let mut inserts = Vec::new();
            let mut removes = Vec::new();
            for (k, v) in delta {
                match v {
                    Some(val) => inserts.push((k, val)),
                    None => removes.push(k),
                }
            }
            if !inserts.is_empty() {
                map.batch_insert(inserts);
            }
            if !removes.is_empty() {
                map.batch_remove(&removes);
            }
            cached = None;
        }
        let t2 = Instant::now();
        let snap = cached.get_or_insert_with(|| map.snapshot()).clone();
        if stats_on {
            let t3 = Instant::now();
            ticks += 1;
            evs += items.len() as u64;
            gather_ns += (t1 - t0).as_nanos() as u64;
            apply_ns += (t2 - t1).as_nanos() as u64;
            snap_ns += (t3 - t2).as_nanos() as u64;
            if ticks % 500 == 0 {
                eprintln!(
                    "[tick-stats] ticks={ticks} events={evs} avg_tick={:.1} gather_ms={} apply_ms={} snap_ms={}",
                    evs as f64 / ticks as f64,
                    gather_ns / 1_000_000,
                    apply_ns / 1_000_000,
                    snap_ns / 1_000_000
                );
            }
        }
        if tick_tx.send(Tick { snap, items }).is_err() {
            break;
        }
    }
    map.quiesce();
}

/// The read side: three batched snapshot calls per tick, then replies
/// emitted in arrival order, one buffer per connection per tick.
fn executor_loop(rx: Receiver<Tick>) {
    let mut conns: HashMap<u64, Sender<Vec<u8>>> = HashMap::new();
    while let Ok(Tick { snap, items }) = rx.recv() {
        let mut get_keys: Vec<Key> = Vec::new();
        let mut rank_keys: Vec<Key> = Vec::new();
        let mut ranges: Vec<(Key, Key)> = Vec::new();
        for item in &items {
            match item {
                TickItem::Get { key, .. } => get_keys.push(*key),
                TickItem::Rank { key, .. } => rank_keys.push(*key),
                TickItem::RangeCount { lo, hi, .. } => ranges.push((*lo, *hi)),
                _ => {}
            }
        }
        // Empty classes skip their engine call outright: a write-heavy
        // tick shouldn't pay three partition set-ups to answer nothing.
        let got = if get_keys.is_empty() {
            Vec::new()
        } else {
            snap.batch_get(&get_keys)
        };
        let ranks = if rank_keys.is_empty() {
            Vec::new()
        } else {
            snap.batch_rank(&rank_keys)
        };
        let counts = if ranges.is_empty() {
            Vec::new()
        } else {
            snap.batch_range_count(&ranges)
        };

        let (mut gi, mut ri, mut ci) = (0usize, 0usize, 0usize);
        let mut blobs: HashMap<u64, Vec<u8>> = HashMap::new();
        let reply = |blobs: &mut HashMap<u64, Vec<u8>>, conn: u64, req_id: u64, body| {
            encode_reply(&Reply { req_id, body }, blobs.entry(conn).or_default());
        };
        for item in &items {
            match item {
                TickItem::Register { conn, tx } => {
                    conns.insert(*conn, tx.clone());
                }
                TickItem::Disconnect { conn } => {
                    // Flush this tick's earlier replies to the conn
                    // before dropping its sender (the drop is what lets
                    // the writer finish and close the socket).
                    if let Some(blob) = blobs.remove(conn) {
                        if let Some(tx) = conns.get(conn) {
                            let _ = tx.send(blob);
                        }
                    }
                    conns.remove(conn);
                }
                TickItem::Get { conn, req_id, .. } => {
                    // LINT-ALLOW(serve-no-panic): `got` holds one result
                    // per Get item in this very `items` list (built a few
                    // lines up), so `gi` stays in bounds by construction.
                    let body = ReplyBody::Value(got[gi].cloned());
                    gi += 1;
                    reply(&mut blobs, *conn, *req_id, body);
                }
                TickItem::Rank { conn, req_id, .. } => {
                    // LINT-ALLOW(serve-no-panic): one result per Rank
                    // item, same argument as `got` above.
                    let body = ReplyBody::Count(ranks[ri] as u64);
                    ri += 1;
                    reply(&mut blobs, *conn, *req_id, body);
                }
                TickItem::RangeCount { conn, req_id, .. } => {
                    // LINT-ALLOW(serve-no-panic): one result per
                    // RangeCount item, same argument as `got` above.
                    let body = ReplyBody::Count(counts[ci] as u64);
                    ci += 1;
                    reply(&mut blobs, *conn, *req_id, body);
                }
                TickItem::WriteAck { conn, req_id } => {
                    reply(&mut blobs, *conn, *req_id, ReplyBody::Ack);
                }
            }
        }
        for (conn, blob) in blobs {
            if let Some(tx) = conns.get(&conn) {
                let _ = tx.send(blob);
            }
        }
    }
}

// ----- direct (naive) mode -----

fn spawn_direct(listener: TcpListener, map: ServeMap, stop: Arc<AtomicBool>) -> io::Result<()> {
    let map = Arc::new(Mutex::new(map));
    spawn_named("ist-serve-accept", None, move || {
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let _ = stream.set_nodelay(true);
            let map = Arc::clone(&map);
            let _ = spawn_named("ist-serve-direct", Some(IO_THREAD_STACK), move || {
                direct_conn_loop(stream, &map)
            });
        }
    })
}

/// One request at a time: lock, scalar op, encode, write, flush. This
/// is the baseline the coalescer is measured against — every cost here
/// is per request.
fn direct_conn_loop(stream: TcpStream, map: &Mutex<ServeMap>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut r = BufReader::with_capacity(64 * 1024, read_half);
    let mut w = stream;
    let mut buf = Vec::new();
    let mut out = Vec::new();
    while let Ok(true) = read_frame(&mut r, &mut buf) {
        let Ok(req) = decode_request(&buf) else {
            break; // malformed: close cleanly, mirroring coalescing mode
        };
        let body = {
            let mut m = map.lock().unwrap_or_else(|e| e.into_inner());
            match req.op {
                Op::Get { key } => ReplyBody::Value(m.get(&key).cloned()),
                Op::Rank { key } => ReplyBody::Count(m.rank(&key) as u64),
                Op::RangeCount { lo, hi } => ReplyBody::Count(m.range_count(&lo, &hi) as u64),
                Op::Insert { key, value } => {
                    m.insert(key, value);
                    ReplyBody::Ack
                }
                Op::Remove { key } => {
                    m.remove(&key);
                    ReplyBody::Ack
                }
            }
        };
        out.clear();
        encode_reply(
            &Reply {
                req_id: req.req_id,
                body,
            },
            &mut out,
        );
        if write_frames(&mut w, &out).is_err() {
            break;
        }
    }
    let _ = w.shutdown(Shutdown::Write);
}
