//! Open-loop, coordinated-omission-corrected load generator.
//!
//! Requests are scheduled on a fixed timeline (`arrival_i = start +
//! i/rate`) that does **not** slow down when the server backs up, and
//! every recorded latency is *completion minus scheduled arrival* — so
//! when the server stalls, each request that was due during the stall
//! is charged the queueing delay a real caller would have suffered. A
//! closed-loop harness (send, wait, send) would silently omit exactly
//! those samples, which is the coordinated-omission mistake this
//! module exists to avoid.
//!
//! Mechanically: connections are divided among a few worker threads,
//! each driving its sockets **non-blocking** — due requests are
//! appended to per-connection output buffers (in `burst`-sized runs per
//! connection so socket syscalls amortize on both sides), pending bytes
//! are written as the sockets accept them, and replies are parsed out
//! of per-connection input buffers and matched to their scheduled
//! arrival by `req_id`. In-flight depth is unbounded, as open loop
//! demands: backlog shows up in the latency tail, not in a throttled
//! arrival rate.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::proto::{encode_request, Op, Request};

/// Workload shape and intensity. `rate` is the **aggregate** scheduled
/// arrival rate across all connections; it is an offered load, not a
/// measured one — throughput below `rate` means the server saturated.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub conns: usize,
    /// Worker threads the connections are divided among.
    pub workers: usize,
    /// Total requests to schedule (split evenly across workers).
    pub total_ops: usize,
    /// Aggregate scheduled arrivals per second (open loop).
    pub rate: f64,
    /// Percent of requests that mutate (80% insert / 20% remove);
    /// reads split 60% get / 25% rank / 15% range_count.
    pub write_pct: u32,
    /// Keys drawn uniformly from `0..key_space`.
    pub key_space: u64,
    /// Payload bytes per inserted value.
    pub value_len: usize,
    /// Consecutive requests assigned to one connection before moving to
    /// the next (amortizes per-socket syscalls at high rates).
    pub burst: usize,
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            conns: 64,
            workers: 4,
            total_ops: 50_000,
            rate: 50_000.0,
            write_pct: 10,
            key_space: 1 << 20,
            value_len: 16,
            burst: 16,
            seed: 0x5EED,
        }
    }
}

/// Latency distribution in nanoseconds (from **scheduled arrival** to
/// reply receipt).
#[derive(Debug, Clone, Copy)]
pub struct Percentiles {
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
    pub max: u64,
}

/// Sorted-index percentiles over raw latency samples.
///
/// # Panics
/// Panics on an empty sample set.
pub fn percentiles(mut lat_ns: Vec<u64>) -> Percentiles {
    assert!(!lat_ns.is_empty(), "no latency samples");
    lat_ns.sort_unstable();
    // LINT-ALLOW(serve-no-panic): the index is `(len-1) * q/q_den` with
    // q <= q_den, so it never exceeds len-1; emptiness asserted above.
    let at = |q_num: usize, q_den: usize| lat_ns[(lat_ns.len() - 1) * q_num / q_den];
    Percentiles {
        p50: at(1, 2),
        p99: at(99, 100),
        p999: at(999, 1000),
        max: at(1, 1),
    }
}

/// What a load run measured.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Replies received (equals scheduled ops on a clean run).
    pub completed: usize,
    /// First scheduled arrival to last reply.
    pub wall: Duration,
    /// `completed / wall` — at saturation this is the server's
    /// capacity, below it, the offered rate.
    pub throughput: f64,
    /// Coordinated-omission-corrected latency distribution.
    pub latency: Percentiles,
}

/// Run the configured load against `addr` and block until every
/// scheduled request has been answered.
///
/// All of each worker's connections are established **before** the
/// clock starts (a cross-worker barrier separates connect from load),
/// so connection setup never pollutes the latency samples.
pub fn run(addr: SocketAddr, cfg: &LoadgenConfig) -> io::Result<LoadReport> {
    assert!(cfg.workers >= 1 && cfg.conns >= cfg.workers && cfg.total_ops >= 1);
    assert!(cfg.rate > 0.0 && cfg.burst >= 1);
    let barrier = Barrier::new(cfg.workers + 1);
    let mut results: Vec<io::Result<Vec<u64>>> = Vec::new();
    let mut wall = Duration::ZERO;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for w in 0..cfg.workers {
            let barrier = &barrier;
            // Spread remainders so every op and conn is owned.
            let n_ops = cfg.total_ops / cfg.workers + usize::from(w < cfg.total_ops % cfg.workers);
            let n_conns = cfg.conns / cfg.workers + usize::from(w < cfg.conns % cfg.workers);
            handles.push(s.spawn(move || worker(addr, cfg, w as u64, n_ops, n_conns, barrier)));
        }
        barrier.wait(); // all workers connected: the clock starts now
        let start = Instant::now();
        results = handles
            .into_iter()
            // LINT-ALLOW(serve-no-panic): loadgen harness — a panicked
            // worker thread must abort the measurement run loudly.
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        wall = start.elapsed();
    });
    let mut lat = Vec::with_capacity(cfg.total_ops);
    for r in results {
        lat.extend(r?);
    }
    let completed = lat.len();
    Ok(LoadReport {
        completed,
        wall,
        throughput: completed as f64 / wall.as_secs_f64().max(1e-9),
        latency: percentiles(lat),
    })
}

struct Conn {
    sock: TcpStream,
    /// Encoded-but-unsent request bytes; `out_pos` marks how much the
    /// socket has accepted.
    out: Vec<u8>,
    out_pos: usize,
    /// Received-but-unparsed reply bytes; `in_pos` marks the parse
    /// frontier.
    inbuf: Vec<u8>,
    in_pos: usize,
    /// Requests sent (or queued) but not yet answered. A connection
    /// with nothing pending and nothing in flight is skipped entirely —
    /// sweeping a thousand idle sockets with speculative `read` calls
    /// would burn the CPU the server is being measured on.
    inflight: usize,
}

fn worker(
    addr: SocketAddr,
    cfg: &LoadgenConfig,
    worker_idx: u64,
    n_ops: usize,
    n_conns: usize,
    barrier: &Barrier,
) -> io::Result<Vec<u64>> {
    let mut conns = Vec::with_capacity(n_conns);
    for _ in 0..n_conns {
        let sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        sock.set_nonblocking(true)?;
        conns.push(Conn {
            sock,
            out: Vec::new(),
            out_pos: 0,
            inbuf: Vec::new(),
            in_pos: 0,
            inflight: 0,
        });
    }
    barrier.wait();
    let start = Instant::now();

    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (worker_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    let rate_w = cfg.rate * (n_ops as f64 / cfg.total_ops as f64);
    let gap_ns = 1e9 / rate_w;
    let sched_ns = |i: usize| (i as f64 * gap_ns) as u64;

    let mut scheds: Vec<u64> = Vec::with_capacity(n_ops); // scheduled arrival per req_id
    let mut lat: Vec<u64> = Vec::with_capacity(n_ops);
    let mut issued = 0usize;
    let mut scratch = vec![0u8; 64 * 1024];

    while lat.len() < n_ops {
        let now_ns = start.elapsed().as_nanos() as u64;
        let mut progress = false;

        // Enqueue every request whose scheduled arrival has passed —
        // regardless of how many are still in flight (open loop).
        while issued < n_ops && sched_ns(issued) <= now_ns {
            let c = (issued / cfg.burst) % n_conns;
            let op = gen_op(&mut rng, cfg);
            // LINT-ALLOW(serve-no-panic): `c` is `% n_conns`, in bounds
            // by construction (`conns.len() == n_conns`).
            let conn = &mut conns[c];
            encode_request(
                &Request {
                    req_id: issued as u64,
                    op,
                },
                &mut conn.out,
            );
            conn.inflight += 1;
            scheds.push(sched_ns(issued));
            issued += 1;
            progress = true;
        }

        for conn in &mut conns {
            if conn.out_pos == conn.out.len() && conn.inflight == 0 {
                continue; // nothing to send, nothing to wait for
            }
            // Push pending bytes as far as the socket accepts.
            while conn.out_pos < conn.out.len() {
                // LINT-ALLOW(serve-no-panic): `out_pos < out.len()` is
                // the loop guard, so the range is in bounds.
                match conn.sock.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            ErrorKind::WriteZero,
                            "server stopped accepting bytes",
                        ))
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            if conn.out_pos == conn.out.len() && !conn.out.is_empty() {
                conn.out.clear();
                conn.out_pos = 0;
            }

            // Pull whatever replies have arrived.
            loop {
                match conn.sock.read(&mut scratch) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "server closed a connection mid-run",
                        ))
                    }
                    Ok(n) => {
                        // LINT-ALLOW(serve-no-panic): `Read` guarantees
                        // `n <= scratch.len()`.
                        conn.inbuf.extend_from_slice(&scratch[..n]);
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }

            // Parse complete frames; only the req_id matters here.
            let recv_ns = start.elapsed().as_nanos() as u64;
            loop {
                // LINT-ALLOW(serve-no-panic): `in_pos` only advances by
                // whole parsed frames, so it never passes `inbuf.len()`.
                let avail = &conn.inbuf[conn.in_pos..];
                let Some((prefix, rest)) = avail.split_first_chunk::<4>() else {
                    break;
                };
                let len = u32::from_le_bytes(*prefix) as usize;
                if avail.len() < 4 + len {
                    break;
                }
                let Some((id8, _)) = rest.split_first_chunk::<8>() else {
                    return Err(io::Error::new(ErrorKind::InvalidData, "runt reply frame"));
                };
                if len < 9 {
                    return Err(io::Error::new(ErrorKind::InvalidData, "runt reply frame"));
                }
                let req_id = u64::from_le_bytes(*id8) as usize;
                let sched = *scheds.get(req_id).ok_or_else(|| {
                    io::Error::new(ErrorKind::InvalidData, "reply to an unscheduled req_id")
                })?;
                lat.push(recv_ns.saturating_sub(sched));
                conn.inflight -= 1;
                conn.in_pos += 4 + len;
            }
            // Compact the parse buffer once the dead prefix dominates.
            if conn.in_pos == conn.inbuf.len() {
                conn.inbuf.clear();
                conn.in_pos = 0;
            } else if conn.in_pos > 256 * 1024 {
                conn.inbuf.drain(..conn.in_pos);
                conn.in_pos = 0;
            }
        }

        if !progress {
            // Nothing due, nothing readable: sleep briefly instead of
            // burning the core the server needs.
            std::thread::sleep(Duration::from_micros(20));
        }
    }
    Ok(lat)
}

fn gen_op(rng: &mut StdRng, cfg: &LoadgenConfig) -> Op {
    let roll: u32 = rng.gen_range(0..100u32);
    let key = rng.gen_range(0..cfg.key_space.max(1));
    if roll < cfg.write_pct {
        if roll % 5 == 4 {
            Op::Remove { key }
        } else {
            Op::Insert {
                key,
                value: vec![0xAB; cfg.value_len],
            }
        }
    } else {
        match roll % 20 {
            0..=11 => Op::Get { key },
            12..=16 => Op::Rank { key },
            _ => Op::RangeCount {
                lo: key,
                hi: key.saturating_add(cfg.key_space / 64 + 1),
            },
        }
    }
}
