//! Standalone load generator: `loadgen --addr HOST:PORT [--conns 64]
//! [--workers 4] [--ops 50000] [--rate 50000] [--write-pct 10]
//! [--key-space 1048576] [--value-len 16] [--burst 16] [--seed 24301]`.
//!
//! Runs the open-loop, coordinated-omission-corrected workload from
//! `ist_serve::loadgen` and prints one JSON report line.

use ist_serve::LoadgenConfig;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--conns N] [--workers N] [--ops N] \
         [--rate OPS_PER_SEC] [--write-pct N] [--key-space N] [--value-len N] \
         [--burst N] [--seed N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut addr: Option<String> = None;
    let mut cfg = LoadgenConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        macro_rules! parse {
            () => {
                val().parse().unwrap_or_else(|_| usage())
            };
        }
        match flag.as_str() {
            "--addr" => addr = Some(val()),
            "--conns" => cfg.conns = parse!(),
            "--workers" => cfg.workers = parse!(),
            "--ops" => cfg.total_ops = parse!(),
            "--rate" => cfg.rate = parse!(),
            "--write-pct" => cfg.write_pct = parse!(),
            "--key-space" => cfg.key_space = parse!(),
            "--value-len" => cfg.value_len = parse!(),
            "--burst" => cfg.burst = parse!(),
            "--seed" => cfg.seed = parse!(),
            _ => usage(),
        }
    }
    let addr = addr
        .unwrap_or_else(|| usage())
        .parse()
        .unwrap_or_else(|_| usage());

    // LINT-ALLOW(serve-no-panic): measurement CLI — a failed run should
    // abort with the error rather than print misleading numbers.
    let report = ist_serve::loadgen::run(addr, &cfg).expect("load run failed");
    let p = report.latency;
    println!(
        "{{\"completed\":{},\"wall_ms\":{},\"throughput_ops_s\":{:.0},\
         \"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
        report.completed,
        report.wall.as_millis(),
        report.throughput,
        p.p50,
        p.p99,
        p.p999,
        p.max
    );
}
