//! Standalone server: `serve [--addr 127.0.0.1:0] [--mode
//! coalescing|direct] [--shards 4] [--preload 0] [--max-tick 8192]
//! [--linger-us 0]`.
//!
//! Preloads `--preload` sequential keys (little-endian value = key),
//! prints the bound address on stdout (`listening on <addr>`), and
//! serves until killed.

use std::net::TcpListener;

use ist_core::Layout;
use ist_serve::{serve_on, Mode, ServeMap, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--mode coalescing|direct] \
         [--shards N] [--preload N] [--max-tick N] [--linger-us N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut mode = Mode::Coalescing;
    let mut shards = 4usize;
    let mut preload = 0usize;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = val(),
            "--mode" => {
                mode = match val().as_str() {
                    "coalescing" => Mode::Coalescing,
                    "direct" => Mode::Direct,
                    _ => usage(),
                }
            }
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--preload" => preload = val().parse().unwrap_or_else(|_| usage()),
            "--max-tick" => cfg.max_tick = val().parse().unwrap_or_else(|_| usage()),
            "--linger-us" => {
                cfg.linger =
                    std::time::Duration::from_micros(val().parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
    }
    cfg.mode = mode;

    let keys: Vec<u64> = (0..preload as u64).collect();
    let vals: Vec<Vec<u8>> = keys.iter().map(|k| k.to_le_bytes().to_vec()).collect();
    let map =
        ServeMap::build(keys, vals, Layout::Veb, shards.max(1)).expect("valid build configuration");

    let listener = TcpListener::bind(&addr).expect("bind");
    let handle = serve_on(listener, map, cfg).expect("serve");
    println!(
        "listening on {} ({mode:?}, {shards} shards, {preload} keys)",
        handle.addr()
    );
    loop {
        std::thread::park();
    }
}
