//! Standalone server: `serve [--addr 127.0.0.1:0] [--mode
//! coalescing|direct] [--shards 4] [--preload 0] [--max-tick 8192]
//! [--linger-us 0] [--data-dir DIR] [--fsync always|never|every=N]`.
//!
//! Without `--data-dir` the map is memory-only. With it, the server is
//! durable: an existing store directory (one whose `SHARDS` root file
//! is present) is **reopened** — manifest, run files, WAL-tail replay —
//! and `--preload`/`--shards` are ignored in favor of the recovered
//! state; a fresh directory gets the preloaded map persisted into it.
//! `--fsync` sets the WAL acknowledgement policy (`always` is the
//! default and the only setting under which every acknowledged write
//! survives an OS crash; see the README's durability contract).
//!
//! Preloads `--preload` sequential keys (little-endian value = key),
//! prints the bound address on stdout (`listening on <addr>`), and
//! serves until killed.

use std::net::TcpListener;
use std::path::{Path, PathBuf};

use ist_core::Layout;
use ist_serve::{serve_on, Mode, ServeMap, ServerConfig};
use ist_store::{FsyncPolicy, StoreConfig, SHARDS_NAME};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--mode coalescing|direct] \
         [--shards N] [--preload N] [--max-tick N] [--linger-us N] \
         [--data-dir DIR] [--fsync always|never|every=N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut mode = Mode::Coalescing;
    let mut shards = 4usize;
    let mut preload = 0usize;
    let mut data_dir: Option<PathBuf> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => addr = val(),
            "--mode" => {
                mode = match val().as_str() {
                    "coalescing" => Mode::Coalescing,
                    "direct" => Mode::Direct,
                    _ => usage(),
                }
            }
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--preload" => preload = val().parse().unwrap_or_else(|_| usage()),
            "--max-tick" => cfg.max_tick = val().parse().unwrap_or_else(|_| usage()),
            "--linger-us" => {
                cfg.linger =
                    std::time::Duration::from_micros(val().parse().unwrap_or_else(|_| usage()))
            }
            "--data-dir" => data_dir = Some(PathBuf::from(val())),
            "--fsync" => fsync = FsyncPolicy::parse(&val()).unwrap_or_else(|| usage()),
            _ => usage(),
        }
    }
    cfg.mode = mode;

    let map = match &data_dir {
        Some(dir) if dir.join(SHARDS_NAME).exists() => {
            let map = ServeMap::open_with(dir, StoreConfig::new().fsync(fsync))
                .unwrap_or_else(|e| fatal(dir, "open", &e));
            println!(
                "recovered {} keys across {} shards from {}",
                map.len(),
                map.shard_count(),
                dir.display()
            );
            map
        }
        _ => {
            let keys: Vec<u64> = (0..preload as u64).collect();
            let vals: Vec<Vec<u8>> = keys.iter().map(|k| k.to_le_bytes().to_vec()).collect();
            let mut map = ServeMap::build(keys, vals, Layout::Veb, shards.max(1))
                // LINT-ALLOW(serve-no-panic): CLI startup path —
                // aborting on a bad configuration is correct.
                .expect("valid build configuration");
            if let Some(dir) = &data_dir {
                map.persist_to(dir, StoreConfig::new().fsync(fsync))
                    .unwrap_or_else(|e| fatal(dir, "persist to", &e));
                println!("persisting to {}", dir.display());
            }
            map
        }
    };

    // LINT-ALLOW(serve-no-panic): startup path — failing to bind or to
    // start serving must abort the process before it takes traffic.
    let listener = TcpListener::bind(&addr).expect("bind");
    // LINT-ALLOW(serve-no-panic): same startup argument as `bind`.
    let handle = serve_on(listener, map, cfg).expect("serve");
    println!(
        "listening on {} ({mode:?}, {shards} shards, {preload} keys)",
        handle.addr()
    );
    loop {
        std::thread::park();
    }
}

fn fatal(dir: &Path, action: &str, err: &dyn std::fmt::Display) -> ! {
    eprintln!("serve: cannot {action} {}: {err}", dir.display());
    std::process::exit(1)
}
