//! # ist-serve
//!
//! A coalescing TCP front-end over [`ist_shard::ShardedMap`]: the
//! serving layer that turns the batched query engine's throughput into
//! network throughput.
//!
//! The insight the server is built around: the engine's software-
//! pipelined batch descents are **3×+ faster per key** than scalar
//! descents, but a network server handling one request at a time can
//! never hand the engine a batch. So the server inverts the usual
//! shape — IO threads do nothing but frame decoding, and a central
//! **coalescer** gathers every request in flight across all
//! connections into one *tick*, executes the tick's reads as three
//! batched calls (get / rank / range_count) against a
//! globally-consistent snapshot, folds its writes into one bulk delta,
//! and scatters replies back per connection in request order. Under
//! concurrency the batch forms by itself: the deeper the queue, the
//! bigger the tick, the better the per-request cost — the opposite of
//! the per-request-lock server whose overheads are fixed.
//!
//! See `crate::server` for the pipeline and its consistency contract,
//! `crate::proto` for the wire format, and `crate::loadgen` for the
//! open-loop, coordinated-omission-corrected harness behind the
//! committed `BENCH_serve.json` numbers.
//!
//! ## Quickstart
//!
//! ```
//! use ist_core::Layout;
//! use ist_serve::{serve, Client, ServeMap, ServerConfig};
//!
//! // Build and serve a 4-shard map on an OS-assigned localhost port.
//! let keys: Vec<u64> = (0..1000).collect();
//! let vals: Vec<Vec<u8>> = keys.iter().map(|k| k.to_le_bytes().to_vec()).collect();
//! let map = ServeMap::build(keys, vals, Layout::Veb, 4).unwrap();
//! let handle = serve(map, ServerConfig::default()).unwrap();
//!
//! // Any number of clients may connect and pipeline requests.
//! let mut c = Client::connect(handle.addr()).unwrap();
//! assert_eq!(c.get(42).unwrap(), Some(42u64.to_le_bytes().to_vec()));
//! assert_eq!(c.rank(500).unwrap(), 500);
//! c.insert(5000, b"new".to_vec()).unwrap();
//! assert_eq!(c.range_count(0, 10_000).unwrap(), 1001);
//! handle.stop();
//! ```
//!
//! The `serve` and `loadgen` binaries wrap the same entry points for
//! standalone use: `serve --mode coalescing --preload 1000000` and
//! `loadgen --addr 127.0.0.1:4321 --conns 1024`.

#![forbid(unsafe_code)]

pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use client::Client;
pub use loadgen::{percentiles, LoadReport, LoadgenConfig, Percentiles};
pub use server::{serve, serve_on, Key, Mode, ServeMap, ServerConfig, ServerHandle, Value};
