//! A minimal blocking client: one request in flight, replies matched by
//! `req_id`. The loadgen (`crate::loadgen`) is the pipelined,
//! many-connection counterpart; this type is for tests, tooling, and
//! quickstarts.

use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{
    decode_reply, encode_request, read_frame, write_frames, Op, ReplyBody, Request,
};

/// A blocking request/reply connection to an `ist-serve` server.
///
/// # Examples
/// ```
/// use ist_serve::{serve, Client, ServeMap, ServerConfig};
/// use ist_core::Layout;
///
/// let keys: Vec<u64> = (0..100).collect();
/// let vals: Vec<Vec<u8>> = keys.iter().map(|k| k.to_le_bytes().to_vec()).collect();
/// let map = ServeMap::build(keys, vals, Layout::Veb, 2).unwrap();
/// let handle = serve(map, ServerConfig::default()).unwrap();
///
/// let mut c = Client::connect(handle.addr()).unwrap();
/// assert_eq!(c.get(7).unwrap(), Some(7u64.to_le_bytes().to_vec()));
/// c.insert(200, b"x".to_vec()).unwrap();
/// assert_eq!(c.rank(201).unwrap(), 101); // 0..100 plus the new key
/// assert_eq!(c.range_count(10, 20).unwrap(), 10);
/// c.remove(200).unwrap();
/// assert_eq!(c.get(200).unwrap(), None);
/// handle.stop();
/// ```
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    frame: Vec<u8>,
    out: Vec<u8>,
    next_id: u64,
}

impl Client {
    /// Connect (with `TCP_NODELAY`, since the protocol is small
    /// latency-sensitive frames).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::with_capacity(64 * 1024, stream),
            writer,
            frame: Vec::new(),
            out: Vec::new(),
            next_id: 0,
        })
    }

    fn call(&mut self, op: Op) -> io::Result<ReplyBody> {
        let req_id = self.next_id;
        self.next_id += 1;
        self.out.clear();
        encode_request(&Request { req_id, op }, &mut self.out);
        write_frames(&mut self.writer, &self.out)?;
        loop {
            if !read_frame(&mut self.reader, &mut self.frame)? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let rep = decode_reply(&self.frame).map_err(io::Error::from)?;
            if rep.req_id == req_id {
                return Ok(rep.body);
            }
            // A reply to some earlier request this client abandoned;
            // skip (cannot happen with this strictly-blocking client,
            // but matching by id is the protocol's contract).
        }
    }

    fn unexpected(got: &ReplyBody) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("reply body mismatches request: {got:?}"),
        )
    }

    /// Live value under `key`, if any.
    pub fn get(&mut self, key: u64) -> io::Result<Option<Vec<u8>>> {
        match self.call(Op::Get { key })? {
            ReplyBody::Value(v) => Ok(v),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Number of live keys strictly below `key`.
    pub fn rank(&mut self, key: u64) -> io::Result<u64> {
        match self.call(Op::Rank { key })? {
            ReplyBody::Count(c) => Ok(c),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Number of live keys in `[lo, hi)` (reversed bounds count 0).
    pub fn range_count(&mut self, lo: u64, hi: u64) -> io::Result<u64> {
        match self.call(Op::RangeCount { lo, hi })? {
            ReplyBody::Count(c) => Ok(c),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Insert or overwrite `key`. Acknowledged once applied (possibly
    /// as part of a coalesced bulk delta — group commit).
    pub fn insert(&mut self, key: u64, value: Vec<u8>) -> io::Result<()> {
        match self.call(Op::Insert { key, value })? {
            ReplyBody::Ack => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Delete `key`. Acknowledged once applied.
    pub fn remove(&mut self, key: u64) -> io::Result<()> {
        match self.call(Op::Remove { key })? {
            ReplyBody::Ack => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }
}
