//! The wire protocol: little-endian, length-prefixed binary frames.
//!
//! ```text
//!            ┌──────────────┬─────────────────────────────────────────┐
//! frame      │ len: u32 LE  │ payload (len bytes, len ≤ MAX_FRAME)    │
//!            └──────────────┴─────────────────────────────────────────┘
//!
//! request    ┌──────────────┬──────────┬──────────────────────────────┐
//! payload    │ req_id: u64  │ op: u8   │ operands                     │
//!            └──────────────┴──────────┴──────────────────────────────┘
//!              GET(0)         key: u64
//!              RANK(1)        key: u64
//!              RANGE_COUNT(2) lo: u64, hi: u64
//!              INSERT(3)      key: u64, value: rest of frame
//!              REMOVE(4)      key: u64
//!
//! reply      ┌──────────────┬──────────┬──────────────────────────────┐
//! payload    │ req_id: u64  │ tag: u8  │ operands                     │
//!            └──────────────┴──────────┴──────────────────────────────┘
//!              VALUE_NONE(0)  —
//!              VALUE_SOME(1)  value: rest of frame
//!              COUNT(2)       count: u64
//!              ACK(3)         —
//! ```
//!
//! Every request carries a caller-chosen `req_id` echoed verbatim in
//! its reply, so clients may pipeline arbitrarily many requests per
//! connection; the server answers each connection's requests **in
//! request order** (see `ist_serve::server`), but matching by id is the
//! portable contract.
//!
//! ## Malformed input is a connection-level error
//!
//! Decoding never panics and never guesses: a truncated length prefix,
//! a length above [`MAX_FRAME`], an unknown opcode, or missing/trailing
//! operand bytes each yield a [`ProtoError`], and the server's response
//! to any of them is to stop reading and **close the connection
//! cleanly** — already-queued replies are still written as complete
//! frames, then the socket shuts down; a partial frame is never
//! emitted. `tests/serve_proto.rs` fuzzes exactly this contract.

use std::io::{self, Read, Write};

/// Hard upper bound on a frame's payload length. A length prefix above
/// this is rejected **before** any allocation or body read — a 4-byte
/// prefix claiming 4 GiB costs the server nothing but the close.
pub const MAX_FRAME: usize = 1 << 20;

const OP_GET: u8 = 0;
const OP_RANK: u8 = 1;
const OP_RANGE_COUNT: u8 = 2;
const OP_INSERT: u8 = 3;
const OP_REMOVE: u8 = 4;

const TAG_VALUE_NONE: u8 = 0;
const TAG_VALUE_SOME: u8 = 1;
const TAG_COUNT: u8 = 2;
const TAG_ACK: u8 = 3;

/// One operation against the served map (`u64` keys, opaque byte-string
/// values).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Live value under `key`, if any.
    Get { key: u64 },
    /// Number of live keys strictly below `key`.
    Rank { key: u64 },
    /// Number of live keys in `[lo, hi)` (reversed bounds count 0).
    RangeCount { lo: u64, hi: u64 },
    /// Insert or overwrite; acknowledged, not counted (group commit).
    Insert { key: u64, value: Vec<u8> },
    /// Delete; acknowledged, not counted (group commit).
    Remove { key: u64 },
}

impl Op {
    /// `true` for the mutating operations (routed to the bulk delta
    /// path by the coalescing server).
    pub fn is_write(&self) -> bool {
        matches!(self, Op::Insert { .. } | Op::Remove { .. })
    }
}

/// A request frame: a caller-chosen id plus the operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Echoed verbatim in the reply; uniqueness per connection is the
    /// caller's business (the server never inspects it).
    pub req_id: u64,
    pub op: Op,
}

/// The answer side of a reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    /// Answer to [`Op::Get`].
    Value(Option<Vec<u8>>),
    /// Answer to [`Op::Rank`] / [`Op::RangeCount`].
    Count(u64),
    /// Answer to [`Op::Insert`] / [`Op::Remove`]: the write is applied
    /// (possibly as part of a coalesced bulk delta — group-commit
    /// semantics; per-key replaced/removed booleans are not reported).
    Ack,
}

/// A reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    pub req_id: u64,
    pub body: ReplyBody,
}

/// Why a payload (or frame header) was rejected. All variants are
/// connection-fatal: the peer is speaking something other than this
/// protocol, so the only safe move is a clean close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload ended before the operands it promised.
    Truncated,
    /// A length prefix above [`MAX_FRAME`].
    Oversized(usize),
    /// An opcode / reply tag this protocol version does not define.
    UnknownOpcode(u8),
    /// Operand bytes left over after a fixed-size operation.
    TrailingBytes,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame payload truncated"),
            ProtoError::Oversized(n) => write!(f, "frame length {n} exceeds MAX_FRAME"),
            ProtoError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after operands"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(e: ProtoError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

// ----- encoding -----

fn begin_frame(out: &mut Vec<u8>) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]); // patched by end_frame
    at
}

fn end_frame(out: &mut [u8], at: usize) {
    let len = out.len() - at - 4;
    debug_assert!(len <= MAX_FRAME, "encoder produced an oversized frame");
    // LINT-ALLOW(serve-no-panic): `begin_frame` reserved exactly these
    // four bytes at `at`, so the range is in bounds by construction.
    out[at..at + 4].copy_from_slice(&(len as u32).to_le_bytes());
}

/// Append `req` to `out` as a complete frame (length prefix included).
/// Appending lets callers batch many frames into one buffer and write
/// them with a single syscall — the server's per-tick reply path and
/// the loadgen's burst path both lean on this.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    out.extend_from_slice(&req.req_id.to_le_bytes());
    match &req.op {
        Op::Get { key } => {
            out.push(OP_GET);
            out.extend_from_slice(&key.to_le_bytes());
        }
        Op::Rank { key } => {
            out.push(OP_RANK);
            out.extend_from_slice(&key.to_le_bytes());
        }
        Op::RangeCount { lo, hi } => {
            out.push(OP_RANGE_COUNT);
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        Op::Insert { key, value } => {
            out.push(OP_INSERT);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(value);
        }
        Op::Remove { key } => {
            out.push(OP_REMOVE);
            out.extend_from_slice(&key.to_le_bytes());
        }
    }
    end_frame(out, at);
}

/// Append `rep` to `out` as a complete frame (length prefix included).
pub fn encode_reply(rep: &Reply, out: &mut Vec<u8>) {
    let at = begin_frame(out);
    out.extend_from_slice(&rep.req_id.to_le_bytes());
    match &rep.body {
        ReplyBody::Value(None) => out.push(TAG_VALUE_NONE),
        ReplyBody::Value(Some(v)) => {
            out.push(TAG_VALUE_SOME);
            out.extend_from_slice(v);
        }
        ReplyBody::Count(c) => {
            out.push(TAG_COUNT);
            out.extend_from_slice(&c.to_le_bytes());
        }
        ReplyBody::Ack => out.push(TAG_ACK),
    }
    end_frame(out, at);
}

// ----- decoding -----

struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, ProtoError> {
        let (&b, rest) = self.0.split_first().ok_or(ProtoError::Truncated)?;
        self.0 = rest;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let (head, rest) = self
            .0
            .split_first_chunk::<8>()
            .ok_or(ProtoError::Truncated)?;
        self.0 = rest;
        Ok(u64::from_le_bytes(*head))
    }

    fn rest(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.0).to_vec()
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

/// Decode a request payload (the bytes **after** the length prefix).
/// Total function: every byte string yields `Ok` or a [`ProtoError`],
/// never a panic.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor(payload);
    let req_id = c.u64()?;
    let opcode = c.u8()?;
    let op = match opcode {
        OP_GET => Op::Get { key: c.u64()? },
        OP_RANK => Op::Rank { key: c.u64()? },
        OP_RANGE_COUNT => Op::RangeCount {
            lo: c.u64()?,
            hi: c.u64()?,
        },
        OP_INSERT => Op::Insert {
            key: c.u64()?,
            value: c.rest(),
        },
        OP_REMOVE => Op::Remove { key: c.u64()? },
        other => return Err(ProtoError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(Request { req_id, op })
}

/// Decode a reply payload (the bytes **after** the length prefix).
pub fn decode_reply(payload: &[u8]) -> Result<Reply, ProtoError> {
    let mut c = Cursor(payload);
    let req_id = c.u64()?;
    let tag = c.u8()?;
    let body = match tag {
        TAG_VALUE_NONE => ReplyBody::Value(None),
        TAG_VALUE_SOME => ReplyBody::Value(Some(c.rest())),
        TAG_COUNT => ReplyBody::Count(c.u64()?),
        TAG_ACK => ReplyBody::Ack,
        other => return Err(ProtoError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(Reply { req_id, body })
}

// ----- stream framing -----

/// Read one frame's payload from `r` into `buf` (replacing its
/// contents).
///
/// * `Ok(true)` — a complete payload is in `buf`.
/// * `Ok(false)` — the stream ended **cleanly** at a frame boundary
///   (EOF before any prefix byte).
/// * `Err` — EOF mid-prefix or mid-payload
///   ([`io::ErrorKind::UnexpectedEof`]), a length prefix above
///   [`MAX_FRAME`] ([`io::ErrorKind::InvalidData`] — rejected before
///   reading or allocating the body), or a transport error.
pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut prefix = [0u8; 4];
    // Hand-rolled read_exact for the prefix so EOF-at-boundary (clean
    // close) is distinguishable from EOF-mid-prefix (truncated frame).
    let mut got = 0;
    while got < 4 {
        // LINT-ALLOW(serve-no-panic): `got < 4` is the loop guard, so
        // the range into the 4-byte prefix array is always in bounds.
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    ProtoError::Truncated,
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::Oversized(len).into());
    }
    buf.clear();
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

/// Write `bytes` (one or more complete frames, as produced by the
/// `encode_*` functions) and flush. Frames are only ever handed to the
/// transport whole — this is what "never a partial write" means at the
/// protocol level: a failure before the call leaves the stream at a
/// frame boundary.
pub fn write_frames<W: Write>(w: &mut W, bytes: &[u8]) -> io::Result<()> {
    w.write_all(bytes)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_ops() {
        let reqs = [
            Request {
                req_id: 0,
                op: Op::Get { key: u64::MAX },
            },
            Request {
                req_id: 7,
                op: Op::Rank { key: 42 },
            },
            Request {
                req_id: u64::MAX,
                op: Op::RangeCount { lo: 3, hi: 9 },
            },
            Request {
                req_id: 1,
                op: Op::Insert {
                    key: 5,
                    value: vec![0xde, 0xad, 0xbe, 0xef],
                },
            },
            Request {
                req_id: 2,
                op: Op::Insert {
                    key: 5,
                    value: vec![], // empty value is a valid value
                },
            },
            Request {
                req_id: 3,
                op: Op::Remove { key: 11 },
            },
        ];
        let mut wire = Vec::new();
        for r in &reqs {
            encode_request(r, &mut wire);
        }
        // Decode back through the stream framing.
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        for r in &reqs {
            assert!(read_frame(&mut cursor, &mut buf).unwrap());
            assert_eq!(&decode_request(&buf).unwrap(), r);
        }
        assert!(!read_frame(&mut cursor, &mut buf).unwrap()); // clean EOF
    }

    #[test]
    fn reply_roundtrip_all_bodies() {
        let reps = [
            Reply {
                req_id: 9,
                body: ReplyBody::Value(None),
            },
            Reply {
                req_id: 10,
                body: ReplyBody::Value(Some(vec![1, 2, 3])),
            },
            Reply {
                req_id: 11,
                body: ReplyBody::Value(Some(vec![])),
            },
            Reply {
                req_id: 12,
                body: ReplyBody::Count(u64::MAX),
            },
            Reply {
                req_id: 13,
                body: ReplyBody::Ack,
            },
        ];
        let mut wire = Vec::new();
        for r in &reps {
            encode_reply(r, &mut wire);
        }
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        for r in &reps {
            assert!(read_frame(&mut cursor, &mut buf).unwrap());
            assert_eq!(&decode_reply(&buf).unwrap(), r);
        }
        assert!(!read_frame(&mut cursor, &mut buf).unwrap());
    }

    #[test]
    fn oversized_prefix_rejected_before_body() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        // No body at all: the reject must come from the prefix alone.
        let mut cursor = &wire[..];
        let err = read_frame(&mut cursor, &mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_prefix_is_unexpected_eof() {
        let wire = [5u8, 0]; // 2 of 4 prefix bytes
        let err = read_frame(&mut &wire[..], &mut Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn decode_rejects_junk_without_panicking() {
        assert_eq!(decode_request(&[]), Err(ProtoError::Truncated));
        assert_eq!(decode_request(&[0; 8]), Err(ProtoError::Truncated)); // id, no opcode
        let mut good = Vec::new();
        encode_request(
            &Request {
                req_id: 1,
                op: Op::Get { key: 2 },
            },
            &mut good,
        );
        let payload = &good[4..];
        assert!(decode_request(payload).is_ok());
        assert_eq!(
            decode_request(&payload[..payload.len() - 1]),
            Err(ProtoError::Truncated)
        );
        let mut trailing = payload.to_vec();
        trailing.push(0);
        assert_eq!(decode_request(&trailing), Err(ProtoError::TrailingBytes));
        let mut bad_op = payload.to_vec();
        bad_op[8] = 250;
        assert_eq!(decode_request(&bad_op), Err(ProtoError::UnknownOpcode(250)));
    }
}
