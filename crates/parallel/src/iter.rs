//! Minimal parallel-iterator facade over index ranges and slices.
//!
//! Only the combinators the workspace actually uses are provided; each
//! executes by splitting its index space into at most
//! [`crate::effective_threads`] contiguous chunks of at least the
//! `with_min_len` grain and running the chunks on budget-limited scoped
//! threads (sequentially when no budget is available). Closures must be
//! `Sync` exactly as with rayon, and slice-chunk tasks receive disjoint
//! sub-slices, so the soundness contracts match upstream.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::{current_pool_ctx, effective_threads, try_acquire_thread, with_pool_ctx};

/// Split `[0, n)` into chunks of at least `min_len` and run `body` on each,
/// in parallel when helper threads are available.
fn par_ranges<F>(n: usize, min_len: usize, body: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let grain = min_len.max(1);
    let workers = effective_threads().min(n.div_ceil(grain)).max(1);
    if workers == 1 {
        body(0..n);
        return;
    }
    std::thread::scope(|s| {
        let body = &body;
        let mut start = 0usize;
        for w in 0..workers {
            let end = n * (w + 1) / workers;
            if end <= start {
                continue;
            }
            let range = start..end;
            start = end;
            // The final chunk (and any chunk the budget refuses) runs on
            // the calling thread. Helpers inherit the pool context.
            if w + 1 < workers {
                if let Some(token) = try_acquire_thread() {
                    let ctx = current_pool_ctx();
                    s.spawn(move || {
                        let _token = token;
                        with_pool_ctx(ctx, move || body(range));
                    });
                    continue;
                }
            }
            body(range);
        }
    });
}

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        RangeParIter {
            range: self,
            min_len: 1,
        }
    }
}

impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
    type Iter = RangeParIter;
    fn into_par_iter(self) -> RangeParIter {
        let (start, end) = (*self.start(), *self.end());
        RangeParIter {
            // Saturating: an exhausted inclusive range maps to an empty one.
            range: start..end.saturating_add(1).max(start),
            min_len: 1,
        }
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeParIter {
    range: Range<usize>,
    min_len: usize,
}

impl RangeParIter {
    /// Set the minimum number of indices handled per task.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len;
        self
    }

    /// Run `f` for every index.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let lo = self.range.start;
        let n = self.range.end.saturating_sub(lo);
        par_ranges(n, self.min_len, |r| {
            for i in r {
                f(lo + i);
            }
        });
    }
}

/// Borrowing conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator type.
    type Iter;
    /// Parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        SliceParIter {
            slice: self,
            min_len: 1,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceParIter<'a, T>;
    fn par_iter(&'a self) -> SliceParIter<'a, T> {
        self.as_slice().par_iter()
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
    min_len: usize,
}

impl<'a, T: Sync> SliceParIter<'a, T> {
    /// Set the minimum number of items handled per task.
    pub fn with_min_len(mut self, min_len: usize) -> Self {
        self.min_len = min_len;
        self
    }

    /// Run `f` for every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&T) + Sync,
    {
        let slice = self.slice;
        par_ranges(slice.len(), self.min_len, |r| {
            for item in &slice[r] {
                f(item);
            }
        });
    }

    /// Keep only items satisfying `pred` (terminal ops below).
    pub fn filter<P>(self, pred: P) -> FilterSliceParIter<'a, T, P>
    where
        P: Fn(&&T) -> bool + Sync,
    {
        FilterSliceParIter { iter: self, pred }
    }
}

/// A filtered [`SliceParIter`].
pub struct FilterSliceParIter<'a, T, P> {
    iter: SliceParIter<'a, T>,
    pred: P,
}

impl<'a, T: Sync, P> FilterSliceParIter<'a, T, P>
where
    P: Fn(&&T) -> bool + Sync,
{
    /// Count the surviving items.
    pub fn count(self) -> usize {
        let slice = self.iter.slice;
        let pred = &self.pred;
        let total = AtomicUsize::new(0);
        par_ranges(slice.len(), self.iter.min_len, |r| {
            let local = slice[r].iter().filter(|item| pred(item)).count();
            // Relaxed: a pure tally — `par_ranges`' join provides the
            // happens-before edge for the final `into_inner` read.
            total.fetch_add(local, Ordering::Relaxed);
        });
        total.into_inner()
    }
}

/// Parallel mutable chunk iteration over slices (`par_chunks_exact_mut`,
/// `par_chunks_mut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable chunks of exactly `chunk_size`
    /// elements (the remainder is not visited, as with
    /// `chunks_exact_mut`).
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ChunksExactMutParIter<'_, T>;

    /// Parallel iterator over mutable chunks of at most `chunk_size`
    /// elements; the final chunk is shorter when the length is not a
    /// multiple (as with `chunks_mut`).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_exact_mut(&mut self, chunk_size: usize) -> ChunksExactMutParIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksExactMutParIter {
            slice: self,
            chunk_size,
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMutParIter<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMutParIter {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over disjoint `&mut [T]` chunks.
pub struct ChunksExactMutParIter<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

/// Raw pointer wrapper for sending a chunk base address across threads;
/// chunk tasks receive provably disjoint sub-slices.
struct SendPtr<T>(*mut T);
// SAFETY: each chunk task reborrows a sub-slice at a distinct offset,
// so no two threads touch the same element; `T: Send` because the
// elements are mutated from the receiving thread.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: same argument — tasks never share an element, they partition
// the slice by disjoint chunk offsets.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<'a, T: Send> ChunksExactMutParIter<'a, T> {
    fn run<F>(self, f: F)
    where
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk = self.chunk_size;
        let chunks = self.slice.len() / chunk;
        let base = SendPtr(self.slice.as_mut_ptr());
        let base = &base;
        par_ranges(chunks, 1, move |r| {
            for c in r {
                // SAFETY: chunk `c` covers `[c*chunk, (c+1)*chunk)`, in
                // bounds by construction; distinct `c` are disjoint and
                // each is visited by exactly one task.
                let sub = unsafe { std::slice::from_raw_parts_mut(base.0.add(c * chunk), chunk) };
                f(c, sub);
            }
        });
    }

    /// Run `f` on every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.run(|_, sub| f(sub));
    }

    /// Pair every chunk with its index.
    pub fn enumerate(self) -> EnumChunksExactMutParIter<'a, T> {
        EnumChunksExactMutParIter { inner: self }
    }
}

/// Enumerated variant of [`ChunksExactMutParIter`].
pub struct EnumChunksExactMutParIter<'a, T> {
    inner: ChunksExactMutParIter<'a, T>,
}

impl<'a, T: Send> EnumChunksExactMutParIter<'a, T> {
    /// Run `f` on every `(index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        self.inner.run(|c, sub| f((c, sub)));
    }
}

/// Parallel iterator over disjoint `&mut [T]` chunks with a shorter
/// final chunk (the `chunks_mut` analogue).
pub struct ChunksMutParIter<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ChunksMutParIter<'a, T> {
    fn run<F>(self, f: F)
    where
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk = self.chunk_size;
        let n = self.slice.len();
        let chunks = n.div_ceil(chunk);
        let base = SendPtr(self.slice.as_mut_ptr());
        let base = &base;
        par_ranges(chunks, 1, move |r| {
            for c in r {
                let start = c * chunk;
                let len = chunk.min(n - start);
                // SAFETY: chunk `c` covers `[start, start+len)`, in
                // bounds by construction; distinct `c` are disjoint and
                // each is visited by exactly one task.
                let sub = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), len) };
                f(c, sub);
            }
        });
    }

    /// Run `f` on every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.run(|_, sub| f(sub));
    }

    /// Pair every chunk with its index.
    pub fn enumerate(self) -> EnumChunksMutParIter<'a, T> {
        EnumChunksMutParIter { inner: self }
    }
}

/// Enumerated variant of [`ChunksMutParIter`].
pub struct EnumChunksMutParIter<'a, T> {
    inner: ChunksMutParIter<'a, T>,
}

impl<'a, T: Send> EnumChunksMutParIter<'a, T> {
    /// Run `f` on every `(index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        self.inner.run(|c, sub| f((c, sub)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_for_each_visits_every_index() {
        let n = 10_000usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        (0..n).into_par_iter().with_min_len(64).for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn filter_count_matches_sequential() {
        let v: Vec<u64> = (0..100_000).collect();
        let par = v
            .par_iter()
            .with_min_len(1024)
            .filter(|x| **x % 3 == 0)
            .count();
        let seq = v.iter().filter(|x| **x % 3 == 0).count();
        assert_eq!(par, seq);
    }

    #[test]
    fn chunks_mut_covers_remainder() {
        let mut v = vec![0u32; 1003]; // remainder chunk of 3
        v.par_chunks_mut(100).enumerate().for_each(|(i, chunk)| {
            let expect = if i < 10 { 100 } else { 3 };
            assert_eq!(chunk.len(), expect);
            for c in chunk.iter_mut() {
                *c = i as u32 + 1;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i / 100) as u32 + 1, "i={i}");
        }
    }

    #[test]
    fn chunks_exact_mut_disjoint_and_exact() {
        let mut v = vec![0u32; 1003]; // remainder 3 untouched
        v.par_chunks_exact_mut(100)
            .enumerate()
            .for_each(|(i, chunk)| {
                for c in chunk.iter_mut() {
                    *c = i as u32 + 1;
                }
            });
        for (i, &x) in v.iter().enumerate() {
            let expect = if i < 1000 { (i / 100) as u32 + 1 } else { 0 };
            assert_eq!(x, expect, "i={i}");
        }
    }
}
