//! Thread-pool facade matching the `rayon::ThreadPoolBuilder` API.
//!
//! The shim has no persistent worker pool; `install` publishes a pool
//! context (logical thread count + shared helper allowance) that
//! [`current_num_threads`], the iterator splitting, and every
//! `join`/`scope` spawn decision honor — helper threads inherit it, so
//! work running under `install(p)` uses at most `p − 1` helpers and
//! `install(1)` is strictly sequential. That is what the workspace uses
//! pools for (pinning `P` in benchmarks).

use crate::{PoolCtx, POOL_CTX};

/// Builder for a [`ThreadPool`]. Mirrors `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type for [`ThreadPoolBuilder::build`] (infallible here, but the
/// signature matches rayon's).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Fresh builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request a pool of exactly `n` threads.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self
            .num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Ok(ThreadPool {
            num_threads: n.max(1),
        })
    }
}

/// A logical thread pool: a thread-count context for closures run under
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count as the ambient
    /// parallelism: splitting targets `num_threads` pieces and at most
    /// `num_threads − 1` helper threads are live at once (helpers
    /// inherit the context).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        // A fresh context (and allowance) per install call.
        let ctx = PoolCtx::new(self.num_threads);
        let prev = POOL_CTX.with(|c| c.replace(Some(ctx)));
        // Restore on scope exit even if `op` panics.
        struct Restore(Option<PoolCtx>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                POOL_CTX.with(|c| c.replace(prev));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// The ambient thread count: the installed pool's size inside
/// [`ThreadPool::install`], the hardware parallelism otherwise.
pub fn current_num_threads() -> usize {
    crate::effective_threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 7);
        // Restored afterwards.
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn nested_installs_restore() {
        let a = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let b = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        a.install(|| {
            assert_eq!(current_num_threads(), 2);
            b.install(|| assert_eq!(current_num_threads(), 5));
            assert_eq!(current_num_threads(), 2);
        });
    }

    #[test]
    fn helpers_inherit_the_installed_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            let (a, b) = crate::join(current_num_threads, current_num_threads);
            assert_eq!(a, 3);
            assert_eq!(b, 3);
        });
    }
}
