//! A rayon-compatible parallelism shim on scoped OS threads.
//!
//! This workspace builds in a fully offline environment, so the real
//! `rayon` crate cannot be fetched. The algorithms only need a narrow
//! slice of its API, reimplemented here with identical semantics:
//!
//! * [`join`] — run two closures, potentially concurrently;
//! * [`scope`] — structured task spawning ([`Scope::spawn`]);
//! * [`prelude`] — `into_par_iter()` over index ranges,
//!   `par_iter()` / `par_chunks_mut()` / `par_chunks_exact_mut()` over slices, with
//!   `with_min_len`, `for_each`, `enumerate`, `filter(..).count()`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] and
//!   [`current_num_threads`].
//!
//! Concurrency is provided by `std::thread::scope` behind two limits:
//!
//! 1. a **global spawn budget** of `available_parallelism() − 1` live
//!    helper threads (overridable via the `IST_PARALLEL` environment
//!    variable: `IST_PARALLEL=1` forces strictly serial execution,
//!    larger values oversubscribe single-core hosts with real OS
//!    threads), which keeps deeply nested `join`/`scope` recursion —
//!    the shape of every construction algorithm here — from exploding
//!    the thread count; and
//! 2. the **installed pool allowance**: inside
//!    [`ThreadPool::install`]`(p)` at most `p − 1` helpers are live at
//!    once, the pool context is inherited by helper threads, and `p = 1`
//!    runs strictly sequentially — so "speedup vs P" measurements mean
//!    what they say on multi-core hosts.
//!
//! When no helper is available everything runs sequentially on the
//! caller (always, on a single-core host). Results are bit-identical
//! either way; the algorithms only rely on *disjointness* of their
//! parallel tasks, never on scheduling order.

use std::cell::RefCell;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Arc;

mod iter;
mod pool;

pub use iter::*;
pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

/// Everything needed for `use rayon::prelude::*` call sites.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

/// Global budget of helper threads that may be live at once.
static SPAWN_BUDGET: AtomicIsize = AtomicIsize::new(-1);

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Logical thread count the global budget is derived from: the
/// `IST_PARALLEL` environment variable when set to a positive integer,
/// `available_parallelism()` otherwise. `IST_PARALLEL=1` forces every
/// `join`/`scope`/par-iter in the process onto the calling thread (the
/// degenerate-serial CI job); values above the core count oversubscribe
/// with real OS threads, which is how single-core hosts still exercise
/// the concurrent code paths.
fn configured_threads() -> usize {
    match std::env::var("IST_PARALLEL") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => hardware_threads(),
        },
        Err(_) => hardware_threads(),
    }
}

/// The ambient thread-pool context: a logical thread count plus a shared
/// allowance of helper threads for everything running under one
/// [`ThreadPool::install`]. Inherited by helper threads.
#[derive(Clone)]
pub(crate) struct PoolCtx {
    pub(crate) threads: usize,
    allowance: Arc<AtomicIsize>,
}

impl PoolCtx {
    pub(crate) fn new(threads: usize) -> Self {
        Self {
            threads,
            allowance: Arc::new(AtomicIsize::new(threads as isize - 1)),
        }
    }
}

thread_local! {
    /// Pool context installed by [`ThreadPool::install`] (None outside).
    pub(crate) static POOL_CTX: RefCell<Option<PoolCtx>> = const { RefCell::new(None) };
}

pub(crate) fn current_pool_ctx() -> Option<PoolCtx> {
    POOL_CTX.with(|c| c.borrow().clone())
}

/// Run `f` with `ctx` installed as this thread's pool context (used by
/// helper threads to inherit their spawner's pool).
pub(crate) fn with_pool_ctx<R>(ctx: Option<PoolCtx>, f: impl FnOnce() -> R) -> R {
    let prev = POOL_CTX.with(|c| c.replace(ctx));
    struct Restore(Option<PoolCtx>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            POOL_CTX.with(|c| c.replace(prev));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// RAII token for one reserved helper thread; returns the reservation to
/// the global budget (and the pool allowance, if any) on drop.
pub(crate) struct ThreadToken {
    pool: Option<Arc<AtomicIsize>>,
}

impl Drop for ThreadToken {
    fn drop(&mut self) {
        // Relaxed: the budget counters are pure reservation counts —
        // no data is published through them, so no ordering is needed,
        // only atomicity of the increment.
        SPAWN_BUDGET.fetch_add(1, Ordering::Relaxed);
        if let Some(pool) = &self.pool {
            // Relaxed: same argument as the budget increment above.
            pool.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn try_decrement(counter: &AtomicIsize) -> bool {
    loop {
        // Relaxed: reservation counters guard nothing but themselves
        // (no data is published through them); the CAS only needs the
        // read-modify-write to be atomic.
        let cur = counter.load(Ordering::Relaxed);
        if cur <= 0 {
            return false;
        }
        if counter
            // Relaxed: only atomicity of the decrement is needed — see
            // the load above.
            .compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            return true;
        }
    }
}

/// Try to reserve one helper thread, honoring both the global budget and
/// the installed pool's allowance.
pub(crate) fn try_acquire_thread() -> Option<ThreadToken> {
    // Relaxed: initialize the global budget lazily on first use;
    // racing writers store the same value, so which store wins and in
    // what order it becomes visible is immaterial.
    if SPAWN_BUDGET.load(Ordering::Relaxed) == -1 {
        let budget = configured_threads().saturating_sub(1) as isize;
        // Relaxed: racing initializers compute identical values.
        let _ = SPAWN_BUDGET.compare_exchange(-1, budget, Ordering::Relaxed, Ordering::Relaxed);
    }
    let pool = match current_pool_ctx() {
        Some(ctx) => {
            if !try_decrement(&ctx.allowance) {
                return None;
            }
            Some(ctx.allowance)
        }
        None => None,
    };
    if try_decrement(&SPAWN_BUDGET) {
        Some(ThreadToken { pool })
    } else {
        if let Some(pool) = pool {
            // Relaxed: give the pool allowance back (no global budget
            // available); a bare counter increment publishes no data.
            pool.fetch_add(1, Ordering::Relaxed);
        }
        None
    }
}

/// Run `oper_a` and `oper_b`, potentially in parallel, and return both
/// results. Semantically identical to `rayon::join`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some(token) = try_acquire_thread() {
        let ctx = current_pool_ctx();
        std::thread::scope(|s| {
            let handle = s.spawn(move || {
                let _token = token;
                with_pool_ctx(ctx, oper_b)
            });
            let ra = oper_a();
            let rb = match handle.join() {
                Ok(rb) => rb,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (ra, rb)
        })
    } else {
        (oper_a(), oper_b())
    }
}

/// A structured-concurrency scope; tasks spawned on it are joined before
/// [`scope`] returns. Mirrors `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn `body` into the scope. Runs on a helper thread when the
    /// global budget and pool allowance permit, inline otherwise (rayon
    /// makes the same no-guarantee about which thread runs a spawned
    /// task).
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        if let Some(token) = try_acquire_thread() {
            let inner = self.inner;
            let ctx = current_pool_ctx();
            inner.spawn(move || {
                let _token = token;
                let scope = Scope { inner };
                with_pool_ctx(ctx, move || body(&scope));
            });
        } else {
            body(self);
        }
    }
}

/// Create a scope for structured task spawning. Mirrors `rayon::scope`;
/// panics from spawned tasks propagate when the scope closes.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R + Send,
    R: Send,
{
    std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    })
}

/// Effective parallelism for splitting decisions on this thread.
pub(crate) fn effective_threads() -> usize {
    current_pool_ctx()
        .map(|ctx| ctx.threads)
        .unwrap_or_else(configured_threads)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 64 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 10_000), 10_000 * 9_999 / 2);
    }

    #[test]
    fn scope_joins_all_tasks() {
        let mut data = vec![0u32; 8];
        let chunks: Vec<&mut [u32]> = data.chunks_mut(2).collect();
        scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for c in chunk.iter_mut() {
                        *c = i as u32 + 1;
                    }
                });
            }
        });
        assert_eq!(data, vec![1, 1, 2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn installed_single_thread_pool_is_strictly_sequential() {
        // Inside install(1) no helper thread may ever run a task: both
        // join arms and every scope spawn stay on the calling thread.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            let main_id = std::thread::current().id();
            let (a, b) = join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            );
            assert_eq!(a, main_id);
            assert_eq!(b, main_id);
            scope(|s| {
                for _ in 0..16 {
                    s.spawn(move |_| {
                        assert_eq!(std::thread::current().id(), main_id);
                    });
                }
            });
            // Nested joins inherit the pool context through helpers too.
            let (inner, _) = join(
                || {
                    let (x, y) = join(
                        || std::thread::current().id(),
                        || std::thread::current().id(),
                    );
                    (x, y)
                },
                || (),
            );
            assert_eq!(inner.0, main_id);
            assert_eq!(inner.1, main_id);
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn join_propagates_panics() {
        join(|| (), || panic!("boom"));
    }
}
