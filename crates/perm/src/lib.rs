//! # ist-perm
//!
//! Permutation framework for the implicit search tree layout algorithms.
//!
//! The paper's two algorithm families both reduce to applying permutations
//! whose structure is known analytically:
//!
//! * **Involutions** (Yang et al.): a permutation `π` that is its own
//!   inverse decomposes into disjoint transpositions, so it can be applied
//!   *in place* and *in parallel* as one round of independent swaps.
//!   Every permutation is a product of two involutions; when the two factors
//!   are known (as they are for digit reversals and the `J` maps), the whole
//!   permutation is two parallel swap rounds. See [`involution`].
//! * **Cycle-leader**: when the disjoint cycles of `π` are enumerable, each
//!   cycle is rotated independently. See [`cycles`].
//!
//! The crate also provides the sequential in-place algorithm of
//! Fich–Munro–Poblete for permuting *sorted* data given `π` and `π⁻¹`
//! ([`fich`]), used as a baseline, and out-of-place reference application
//! plus permutation validation ([`apply`]) used by the test oracles.
//!
//! Because the layout permutations are **data-oblivious** (position
//! depends only on `n` and the layout, never on element values), any
//! payload array co-indexed with a key array can ride the same
//! permutation without ever being compared — the [`oblivious`] module
//! spells out the argument and provides the in-place co-permutation
//! entry points ([`permute_by_gather`], [`co_permute_by_gather`]) that
//! `StaticMap<K, V>` is built on.

pub mod apply;
pub mod cycles;
pub mod fich;
pub mod involution;
pub mod oblivious;
pub mod shared;

pub use apply::{apply_out_of_place, invert_permutation, is_permutation};
pub use cycles::{cycle_decomposition, rotate_cycle};
pub use fich::permute_sorted_in_place;
pub use involution::{apply_involution, apply_involution_par, apply_involution_range};
pub use oblivious::{co_permute_by_gather, permute_by_gather};
pub use shared::SharedSlice;
