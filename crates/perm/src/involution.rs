//! Applying involutions in place, sequentially and in parallel.
//!
//! An involution `f` on `[0, n)` satisfies `f(f(i)) = i`, so it decomposes
//! into fixed points and disjoint transpositions `{i, f(i)}`. Applying it
//! to an array means performing those swaps — each unordered pair exactly
//! once. We process pair `{i, f(i)}` at its smaller endpoint, which makes
//! the swap set trivially disjoint and hence safe to execute in parallel
//! (this is the CREW PRAM `O(1)`-depth, `O(N)`-work primitive the paper's
//! involution algorithms are built on).

use crate::shared::SharedSlice;
use rayon::prelude::*;

/// Minimum number of indices per rayon task; below this the overhead of
/// spawning dominates the swaps themselves.
const PAR_GRAIN: usize = 1 << 13;

/// Apply involution `f` over index range `[0, data.len())`, sequentially.
///
/// `f` must satisfy `f(f(i)) = i` and `f(i) < data.len()` for all `i`;
/// violations are caught by debug assertions (self-inverse is checked per
/// index) and will otherwise scramble data rather than cause UB.
///
/// # Examples
/// ```
/// use ist_perm::apply_involution;
/// let mut v = vec![0, 1, 2, 3, 4, 5, 6, 7];
/// let n = v.len();
/// apply_involution(&mut v, |i| n - 1 - i); // reversal is an involution
/// assert_eq!(v, vec![7, 6, 5, 4, 3, 2, 1, 0]);
/// ```
pub fn apply_involution<T, F>(data: &mut [T], f: F)
where
    F: Fn(usize) -> usize,
{
    apply_involution_range(data, 0, data.len(), f)
}

/// Apply involution `f` restricted to indices in `[lo, hi)`.
///
/// `f` must map `[lo, hi)` into itself. Pairs are swapped at their smaller
/// endpoint.
pub fn apply_involution_range<T, F>(data: &mut [T], lo: usize, hi: usize, f: F)
where
    F: Fn(usize) -> usize,
{
    assert!(hi <= data.len() && lo <= hi);
    for i in lo..hi {
        let j = f(i);
        debug_assert!(
            (lo..hi).contains(&j) || i == j,
            "involution escapes range: f({i}) = {j} not in [{lo}, {hi})"
        );
        debug_assert_eq!(f(j), i, "not an involution at {i}");
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Apply involution `f` over all of `data` in parallel.
///
/// Semantically identical to [`apply_involution`]; the index range is
/// partitioned into chunks processed by rayon work-stealing tasks. Each
/// unordered pair `{i, f(i)}` is swapped exactly once, by the task owning
/// the smaller endpoint — pairs are disjoint, so concurrent tasks never
/// touch the same element.
///
/// `f` must be an involution on `[0, data.len())` (checked by debug
/// assertions).
///
/// # Examples
/// ```
/// use ist_perm::apply_involution_par;
/// let n = 1 << 16;
/// let mut v: Vec<u32> = (0..n).collect();
/// apply_involution_par(&mut v, |i| (i as u32 ^ 1) as usize); // swap even/odd pairs
/// assert!(v.chunks(2).all(|c| c[0] == c[1] + 1));
/// ```
pub fn apply_involution_par<T, F>(data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize) -> usize + Sync,
{
    let n = data.len();
    if n < PAR_GRAIN * 2 {
        return apply_involution(data, f);
    }
    let shared = SharedSlice::new(data);
    (0..n)
        .into_par_iter()
        .with_min_len(PAR_GRAIN)
        .for_each(|i| {
            let j = f(i);
            debug_assert!(j < n, "involution out of bounds: f({i}) = {j}");
            debug_assert_eq!(f(j), i, "not an involution at {i}");
            if i < j {
                // SAFETY: pair {i, j} with i < j is processed only by the
                // iteration at index i; distinct iterations own distinct
                // pairs because f is an involution, so no two concurrent
                // tasks access the same element. Bounds checked above.
                unsafe { shared.swap(i, j) };
            }
        });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reversal(n: usize) -> impl Fn(usize) -> usize {
        move |i| n - 1 - i
    }

    #[test]
    fn seq_and_par_agree() {
        for n in [0usize, 1, 2, 3, 100, 1 << 15, (1 << 15) + 7] {
            let mut a: Vec<u64> = (0..n as u64).collect();
            let mut b = a.clone();
            apply_involution(&mut a, reversal(n));
            apply_involution_par(&mut b, reversal(n));
            assert_eq!(a, b, "n={n}");
        }
    }

    #[test]
    fn involution_twice_is_identity() {
        let n = 4097usize;
        let orig: Vec<u64> = (0..n as u64).collect();
        let mut v = orig.clone();
        // XOR-with-mask style involution with fixed points at the tail.
        let f = move |i: usize| if i ^ 5 < n { i ^ 5 } else { i };
        apply_involution(&mut v, f);
        apply_involution(&mut v, f);
        assert_eq!(v, orig);
    }

    #[test]
    fn range_restricted() {
        let mut v: Vec<u32> = (0..10).collect();
        // Reverse only the middle [2, 8).
        apply_involution_range(&mut v, 2, 8, |i| 2 + 7 - i);
        assert_eq!(v, vec![0, 1, 7, 6, 5, 4, 3, 2, 8, 9]);
    }

    #[test]
    fn identity_involution_is_noop() {
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        apply_involution(&mut v, |i| i);
        assert_eq!(v, orig);
    }
}
