//! A shared mutable slice view for provably disjoint parallel writes.
//!
//! The involution and cycle-leader algorithms perform *structured* in-place
//! parallel mutation: every memory location is written by exactly one task,
//! but the partition of locations among tasks is index-arithmetic (scattered
//! swaps), not contiguous splits, so `split_at_mut` cannot express it.
//! [`SharedSlice`] is the minimal unsafe escape hatch: a `Send + Sync`
//! wrapper around a raw pointer with unchecked element access. All uses in
//! this workspace document their disjointness argument at the call site.

use std::marker::PhantomData;

/// A raw view over `&mut [T]` that can be captured by value in parallel
/// closures.
///
/// # Safety contract
///
/// Constructing a `SharedSlice` is safe; *using* it is not. Callers of
/// [`SharedSlice::swap`] / [`SharedSlice::write`] / [`SharedSlice::read`]
/// must guarantee:
///
/// 1. every index is in bounds, and
/// 2. no two concurrent tasks access the same index when at least one
///    access is a write (the usual data-race freedom requirement).
///
/// The lifetime parameter ties the view to the original borrow so the
/// underlying buffer cannot move or be freed while views exist.
#[derive(Clone, Copy)]
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: `SharedSlice` hands out raw access only through `unsafe` methods
// whose contract (disjointness of concurrent accesses) makes cross-thread
// use sound. `T: Send` is required because elements are moved between
// threads by swaps; `Sync` is not required of `T` because no `&T` is ever
// shared across threads — reads produce copies (hence `T: Copy` bounds on
// the accessors that read).
unsafe impl<'a, T: Send> Send for SharedSlice<'a, T> {}
// SAFETY: same argument as Send above — all shared access goes through
// the unsafe accessors and their disjointness contract.
unsafe impl<'a, T: Send> Sync for SharedSlice<'a, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Swap elements `i` and `j`.
    ///
    /// # Safety
    /// `i` and `j` must be in bounds and no concurrent task may access
    /// either index.
    #[inline]
    pub unsafe fn swap(&self, i: usize, j: usize) {
        debug_assert!(i < self.len && j < self.len);
        if i != j {
            // SAFETY: caller guarantees `i`/`j` in bounds (so the adds
            // stay inside the allocation) and exclusive access to both
            // slots; `i != j` rules out overlapping arguments.
            unsafe { std::ptr::swap(self.ptr.add(i), self.ptr.add(j)) };
        }
    }

    /// Read element `i` (requires `T: Copy`).
    ///
    /// # Safety
    /// `i` must be in bounds and no concurrent task may write index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        // SAFETY: caller guarantees `i` in bounds and no concurrent
        // writer, so the slot holds a valid `T` we may copy out.
        unsafe { *self.ptr.add(i) }
    }

    /// Write `v` to element `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and no concurrent task may access index `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        // SAFETY: caller guarantees `i` in bounds and exclusive access
        // to the slot for the duration of this store.
        unsafe { *self.ptr.add(i) = v };
    }

    /// Swap the disjoint ranges `[i, i+len)` and `[j, j+len)`.
    ///
    /// # Safety
    /// Both ranges must be in bounds, must not overlap each other, and no
    /// concurrent task may access any index in either range.
    #[inline]
    pub unsafe fn swap_range(&self, i: usize, j: usize, len: usize) {
        debug_assert!(i + len <= self.len && j + len <= self.len);
        debug_assert!(i + len <= j || j + len <= i, "ranges overlap");
        // SAFETY: caller guarantees both ranges in bounds, disjoint
        // from each other (the `swap_nonoverlapping` contract), and
        // untouched by concurrent tasks.
        unsafe { std::ptr::swap_nonoverlapping(self.ptr.add(i), self.ptr.add(j), len) };
    }

    /// Reborrow a contiguous sub-range as a mutable slice.
    ///
    /// # Safety
    /// The range must be in bounds and no concurrent task may access any
    /// index in it for the lifetime of the returned slice.
    #[inline]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &'a mut [T] {
        debug_assert!(start + len <= self.len);
        // SAFETY: caller guarantees the range in bounds and exclusively
        // ours for `'a`, so materializing it as `&'a mut [T]` aliases
        // nothing.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut v = vec![1u32, 2, 3, 4];
        let s = SharedSlice::new(&mut v);
        // SAFETY: single-threaded, all indices < 4, ranges disjoint.
        unsafe {
            s.swap(0, 3);
            assert_eq!(s.read(0), 4);
            s.write(1, 99);
            let sub = s.slice_mut(2, 2);
            sub[0] = 7;
        }
        assert_eq!(v, vec![4, 99, 7, 1]);
    }

    #[test]
    fn parallel_disjoint_swaps() {
        // Each rayon task touches a disjoint pair -> sound.
        use rayon::prelude::*;
        let n = 1 << 12;
        let mut v: Vec<u64> = (0..n).collect();
        let s = SharedSlice::new(&mut v);
        // SAFETY: task `i` touches exactly the pair (i, n-1-i), and
        // i < n/2 keeps the pairs disjoint across tasks and in bounds.
        (0..n as usize / 2).into_par_iter().for_each(|i| unsafe {
            s.swap(i, n as usize - 1 - i);
        });
        assert!(v.iter().rev().copied().eq(0..n));
    }
}
