//! Oblivious co-permutation: apply one index permutation to parallel
//! payload arrays, in place, without ever comparing the payloads.
//!
//! # Why co-permuting values needs no key comparisons
//!
//! The implicit search tree layouts are **data-oblivious**: the layout
//! position of the element with sorted rank `j` is a pure function of
//! `(n, layout)` — `bst_pos`, `btree_pos`, `veb_pos` and their
//! complete-tree extensions in `ist-layout` — and never of the key
//! *values*. The construction algorithms in `ist-core` realize exactly
//! that permutation through index arithmetic alone (involution swap
//! rounds, equidistant gathers, rotations); nothing in them calls
//! `Ord` — which is why [`ist_core::permute_in_place`] is bounded by
//! `T: Send`, not `T: Ord`.
//!
//! Consequently a key array and any payload array co-indexed with it
//! can be carried through the *same* permutation independently: permute
//! the keys, permute the values with the identical index map, and slot
//! `v` still holds the payload of the key in slot `v`. The values are
//! never compared, never inspected, and need no `Ord` (or even
//! `PartialEq`) — `StaticMap<K, V>` in the facade crate is built on
//! precisely this: sort keys + co-permute values by the sort's index
//! permutation (this module), then run the oblivious layout permutation
//! over each array separately.
//!
//! The entry points here cover the step the analytic machinery does
//! not: applying an **explicitly tabulated** permutation (e.g. a sort's
//! argsort) in place, following cycles with `n` visited bytes of scratch —
//! the in-place counterpart of [`crate::apply_out_of_place`].
//!
//! [`ist_core::permute_in_place`]: https://docs.rs/ist-core

/// Apply a gather-form permutation to `data` in place:
/// afterwards `data[j]` holds the element previously at `idx[j]`.
///
/// Follows the permutation's cycles with one visited byte of scratch
/// per element (`O(n)` time and space); `idx` is left untouched, so it can be
/// re-applied to further parallel arrays — though
/// [`co_permute_by_gather`] moves two arrays in a single cycle walk.
///
/// # Panics
/// Panics if `idx` is not a permutation of `0..data.len()`.
///
/// # Examples
/// ```
/// use ist_perm::permute_by_gather;
/// let mut v = vec!['a', 'b', 'c', 'd'];
/// // Sorted-by-some-argsort order: take 2, 0, 3, 1.
/// permute_by_gather(&mut v, &[2, 0, 3, 1]);
/// assert_eq!(v, vec!['c', 'a', 'd', 'b']);
/// ```
pub fn permute_by_gather<T>(data: &mut [T], idx: &[usize]) {
    walk_cycles(idx, data.len(), |prev, cur| data.swap(prev, cur));
}

/// Apply one gather-form permutation to **two** parallel arrays in a
/// single cycle walk: afterwards `a[j]`/`b[j]` hold the elements
/// previously at `a[idx[j]]`/`b[idx[j]]`.
///
/// This is the workhorse of `StaticMap::build`: `idx` is the keys'
/// argsort, `a` the keys, `b` the payloads — the payloads follow the
/// keys positionally and are never compared (see the
/// [module docs](self)).
///
/// # Panics
/// Panics if the lengths differ or `idx` is not a permutation of
/// `0..a.len()`.
///
/// # Examples
/// ```
/// use ist_perm::co_permute_by_gather;
/// let mut keys = vec![30u64, 10, 20];
/// let mut vals = vec!["thirty", "ten", "twenty"];
/// co_permute_by_gather(&mut keys, &mut vals, &[1, 2, 0]); // argsort of keys
/// assert_eq!(keys, vec![10, 20, 30]);
/// assert_eq!(vals, vec!["ten", "twenty", "thirty"]);
/// ```
pub fn co_permute_by_gather<A, B>(a: &mut [A], b: &mut [B], idx: &[usize]) {
    assert_eq!(a.len(), b.len(), "parallel arrays must have equal lengths");
    walk_cycles(idx, a.len(), |prev, cur| {
        a.swap(prev, cur);
        b.swap(prev, cur);
    });
}

/// Walk the disjoint cycles of gather-map `idx` over `0..n`, invoking
/// `swap(prev, cur)` along each cycle so that the caller's arrays end
/// up gathered (`out[j] = in[idx[j]]`). Validates `idx` as it goes.
fn walk_cycles(idx: &[usize], n: usize, mut swap: impl FnMut(usize, usize)) {
    assert_eq!(idx.len(), n, "index map must cover the whole array");
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut prev = start;
        let mut cur = idx[start];
        while cur != start {
            assert!(
                cur < n && !visited[cur],
                "idx is not a permutation (at {cur})"
            );
            visited[cur] = true;
            swap(prev, cur);
            prev = cur;
            cur = idx[cur];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply_out_of_place;
    use crate::invert_permutation;

    #[test]
    fn gather_matches_out_of_place_reference() {
        // gather by idx == out-of-place apply of idx's inverse
        // (out[j] = in[idx[j]]  <=>  out[inv(i)] = in[i]).
        let n = 97usize;
        let idx: Vec<usize> = (0..n).map(|i| (i * 31 + 5) % n).collect();
        let data: Vec<usize> = (0..n).map(|i| i * 10).collect();
        let inv = invert_permutation(n, |i| idx[i]);
        let expect = apply_out_of_place(&data, |i| inv[i]);
        let mut got = data.clone();
        permute_by_gather(&mut got, &idx);
        assert_eq!(got, expect);
    }

    #[test]
    fn co_permute_keeps_pairs_aligned() {
        let n = 64usize;
        let idx: Vec<usize> = (0..n).map(|i| (i * 27 + 3) % n).collect();
        let mut keys: Vec<usize> = (0..n).collect();
        let mut vals: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        co_permute_by_gather(&mut keys, &mut vals, &idx);
        for (k, v) in keys.iter().zip(&vals) {
            assert_eq!(*v, format!("v{k}"));
        }
        assert_eq!(keys, idx); // gathering the identity array yields idx
    }

    #[test]
    fn identity_and_empty() {
        let mut v: Vec<u8> = vec![9, 8, 7];
        permute_by_gather(&mut v, &[0, 1, 2]);
        assert_eq!(v, vec![9, 8, 7]);
        let mut e: Vec<u8> = vec![];
        permute_by_gather(&mut e, &[]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_duplicates() {
        let mut v = vec![1, 2, 3];
        permute_by_gather(&mut v, &[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "whole array")]
    fn rejects_short_maps() {
        let mut v = vec![1, 2, 3];
        permute_by_gather(&mut v, &[0, 1]);
    }
}
