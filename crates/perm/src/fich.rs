//! Fich–Munro–Poblete sequential in-place permutation of sorted data.
//!
//! For data initially in **sorted** order, Fich et al. observe that the
//! "have I already been moved?" test needed by cycle-following can be
//! answered without mark bits: follow a cycle only from its *minimum*
//! element, and detect the minimum by walking the cycle with the inverse
//! permutation. This yields `O(N · (τ_π + τ_π⁻¹))` time and `O(1)` extra
//! space, sequentially.
//!
//! The implicit-layout paper uses this as the classical sequential
//! baseline that its parallel algorithms are compared against; it is not
//! parallelizable as-is (the cycle walks are inherently sequential), which
//! is the gap the paper fills.

/// Permute `data` in place so that `data[pi(i)] = old data[i]`, using
/// cycle-leader with minimum-detection via the inverse permutation.
///
/// `pi` and `pi_inv` must be mutually inverse permutations of
/// `[0, data.len())`. Works for arbitrary (not only sorted) data — the
/// "sorted" in the title refers to the classical use where the inverse
/// test exploits sortedness; here the caller supplies `pi_inv` explicitly,
/// which is available in closed form for all layout permutations.
///
/// # Examples
/// ```
/// use ist_perm::permute_sorted_in_place;
/// let n = 8;
/// let mut v: Vec<u32> = (0..n as u32).collect();
/// let pi = move |i: usize| (i + 3) % n;
/// let pi_inv = move |i: usize| (i + n - 3) % n;
/// permute_sorted_in_place(&mut v, pi, pi_inv);
/// for i in 0..n {
///     assert_eq!(v[(i + 3) % n], i as u32);
/// }
/// ```
pub fn permute_sorted_in_place<T, F, G>(data: &mut [T], pi: F, pi_inv: G)
where
    F: Fn(usize) -> usize,
    G: Fn(usize) -> usize,
{
    let n = data.len();
    for leader in 0..n {
        // Walk the cycle of `leader` backwards (via pi_inv). If we meet an
        // index smaller than `leader`, this cycle was already processed
        // from that smaller leader; skip. Walking backwards visits the
        // same cycle, so minimality is decided correctly.
        debug_assert_eq!(pi(pi_inv(leader)), leader, "pi/pi_inv not inverse");
        let mut probe = pi_inv(leader);
        let mut is_leader = true;
        while probe != leader {
            if probe < leader {
                is_leader = false;
                break;
            }
            probe = pi_inv(probe);
        }
        if !is_leader {
            continue;
        }
        // Rotate the cycle: value at `leader` must end at pi(leader), etc.
        // Keep swapping data[leader] with data[target]: after each swap the
        // element now in `leader` is the one whose target we compute next.
        let mut target = pi(leader);
        while target != leader {
            data.swap(leader, target);
            target = pi(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::{apply_out_of_place, invert_permutation};

    #[test]
    fn matches_out_of_place_reference() {
        for n in [0usize, 1, 2, 3, 10, 97, 256] {
            let pi_table = invert_permutation(n, |i| (i * 7 + 5) % n.max(1));
            // pi_table is some permutation; build its inverse too.
            let pi = |i: usize| pi_table[i];
            let inv_table = invert_permutation(n, pi);
            let pi_inv = |i: usize| inv_table[i];
            let data: Vec<usize> = (0..n).collect();
            let expect = apply_out_of_place(&data, pi);
            let mut got = data.clone();
            permute_sorted_in_place(&mut got, pi, pi_inv);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn identity_is_noop() {
        let mut v = vec![5, 4, 3];
        permute_sorted_in_place(&mut v, |i| i, |i| i);
        assert_eq!(v, vec![5, 4, 3]);
    }

    #[test]
    fn single_big_cycle() {
        let n = 1000usize;
        let mut v: Vec<usize> = (0..n).collect();
        permute_sorted_in_place(&mut v, |i| (i + 1) % n, |i| (i + n - 1) % n);
        for i in 0..n {
            assert_eq!(v[(i + 1) % n], i);
        }
    }

    #[test]
    fn random_permutations_roundtrip() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for n in [17usize, 64, 255] {
            let mut table: Vec<usize> = (0..n).collect();
            table.shuffle(&mut rng);
            let inv = invert_permutation(n, |i| table[i]);
            let data: Vec<usize> = (0..n).collect();
            let expect = apply_out_of_place(&data, |i| table[i]);
            let mut got = data;
            permute_sorted_in_place(&mut got, |i| table[i], |i| inv[i]);
            assert_eq!(got, expect);
        }
    }
}
