//! Cycle decomposition and cycle rotation.
//!
//! A permutation `π` decomposes into disjoint cycles. When the cycles can
//! be enumerated analytically — as for the equidistant gather, where cycle
//! `c` is an explicit anti-diagonal of a conceptual matrix — each cycle can
//! be processed independently (the *cycle-leader* technique). This module
//! provides:
//!
//! * [`cycle_decomposition`]: explicit decomposition of a permutation given
//!   as a function, used by tests and the reference oracle (uses `O(N)`
//!   scratch; the production algorithms never call it),
//! * [`rotate_cycle`]: move each element one step along an explicit list of
//!   slots, the primitive executed per cycle by the gather algorithms.

/// Decompose the permutation `pi` (given as a forward map `i -> pi(i)` on
/// `[0, n)`) into its disjoint cycles. Fixed points are omitted.
///
/// Cycles are reported starting from their smallest element, in increasing
/// order of that element. Costs `O(n)` time and space — intended for tests
/// and analysis, not for the in-place construction paths.
///
/// # Examples
/// ```
/// use ist_perm::cycle_decomposition;
/// // pi = (0 1 2)(3 4), 5 fixed
/// let map = [1, 2, 0, 4, 3, 5];
/// let cycles = cycle_decomposition(6, |i| map[i]);
/// assert_eq!(cycles, vec![vec![0, 1, 2], vec![3, 4]]);
/// ```
pub fn cycle_decomposition<F>(n: usize, pi: F) -> Vec<Vec<usize>>
where
    F: Fn(usize) -> usize,
{
    let mut seen = vec![false; n];
    let mut cycles = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut cur = pi(start);
        seen[start] = true;
        if cur == start {
            continue; // fixed point
        }
        let mut cycle = vec![start];
        while cur != start {
            assert!(cur < n, "permutation out of bounds: {cur}");
            assert!(!seen[cur], "not a permutation: {cur} visited twice");
            seen[cur] = true;
            cycle.push(cur);
            cur = pi(cur);
        }
        cycles.push(cycle);
    }
    cycles
}

/// Rotate values one step *forward* along the slot list: the value at
/// `slots[m]` moves to `slots[m + 1]` (wrapping), i.e. after the call
/// `data[slots[m + 1 mod L]] = old data[slots[m]]`.
///
/// This is the unit action of a cycle-leader pass: executing it for every
/// cycle of `π` applies `π` when `slots` lists each cycle in `π`-order
/// (`slots[m+1] = π(slots[m])`).
///
/// # Panics
/// Debug-asserts that slots are in bounds; duplicate slots produce
/// garbage (but no UB).
///
/// # Examples
/// ```
/// use ist_perm::rotate_cycle;
/// let mut v = vec![10, 20, 30, 40];
/// rotate_cycle(&mut v, &[0, 2, 3]);
/// // value at 0 -> slot 2, at 2 -> slot 3, at 3 -> slot 0
/// assert_eq!(v, vec![40, 20, 10, 30]);
/// ```
pub fn rotate_cycle<T>(data: &mut [T], slots: &[usize]) {
    let l = slots.len();
    if l < 2 {
        return;
    }
    // Walk backwards swapping into the "hole": after the loop, the element
    // initially at slots[m] sits at slots[m+1] for all m (mod l).
    for m in (1..l).rev() {
        debug_assert!(slots[m] < data.len() && slots[m - 1] < data.len());
        data.swap(slots[m], slots[m - 1]);
    }
}

/// Rotate values one step forward along a cycle described *implicitly* by a
/// successor function, starting from `leader`, without materializing the
/// slot list. `succ(s)` must eventually return to `leader`.
///
/// Equivalent to [`rotate_cycle`] with `slots = [leader, succ(leader),
/// succ²(leader), …]`, using `O(1)` extra space — this is what the in-place
/// algorithms actually execute.
///
/// # Examples
/// ```
/// use ist_perm::cycles::rotate_cycle_implicit;
/// let mut v = vec![10, 20, 30, 40];
/// // cycle 0 -> 2 -> 3 -> 0
/// let succ = |s: usize| match s { 0 => 2, 2 => 3, 3 => 0, _ => unreachable!() };
/// rotate_cycle_implicit(&mut v, 0, succ);
/// assert_eq!(v, vec![40, 20, 10, 30]);
/// ```
pub fn rotate_cycle_implicit<T, F>(data: &mut [T], leader: usize, succ: F)
where
    F: Fn(usize) -> usize,
{
    let mut cur = succ(leader);
    let mut steps = 0usize;
    while cur != leader {
        data.swap(leader, cur);
        cur = succ(cur);
        steps += 1;
        debug_assert!(steps <= data.len(), "successor function does not cycle");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_covers_all_elements() {
        let n = 257usize;
        let pi = |i: usize| (i * 3 + 1) % n; // affine bijection mod prime
        let cycles = cycle_decomposition(n, pi);
        let total: usize = cycles.iter().map(Vec::len).sum();
        let fixed = (0..n).filter(|&i| pi(i) == i).count();
        assert_eq!(total + fixed, n);
        for c in &cycles {
            assert!(c.len() >= 2);
            // successor property
            for w in c.windows(2) {
                assert_eq!(pi(w[0]), w[1]);
            }
            assert_eq!(pi(*c.last().unwrap()), c[0]);
            assert_eq!(*c.iter().min().unwrap(), c[0]);
        }
    }

    #[test]
    fn rotating_all_cycles_applies_permutation() {
        let n = 100usize;
        let pi = |i: usize| (i * 7 + 3) % n;
        let mut data: Vec<usize> = (0..n).collect();
        for cycle in cycle_decomposition(n, pi) {
            rotate_cycle(&mut data, &cycle);
        }
        // data[pi(i)] should now hold the value originally at i.
        for i in 0..n {
            assert_eq!(data[pi(i)], i);
        }
    }

    #[test]
    fn implicit_matches_explicit() {
        let n = 60usize;
        let pi = |i: usize| (i * 13 + 7) % n;
        let mut a: Vec<usize> = (0..n).collect();
        let mut b = a.clone();
        for cycle in cycle_decomposition(n, pi) {
            rotate_cycle(&mut a, &cycle);
            rotate_cycle_implicit(&mut b, cycle[0], pi);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn short_cycles() {
        let mut v = vec![1, 2];
        rotate_cycle(&mut v, &[0]);
        assert_eq!(v, vec![1, 2]);
        rotate_cycle(&mut v, &[0, 1]);
        assert_eq!(v, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        cycle_decomposition(3, |_| 1);
    }
}
