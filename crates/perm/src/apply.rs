//! Out-of-place reference application and permutation validation.
//!
//! These are the oracles the in-place algorithms are tested against: the
//! paper's observation that any permutation is trivially `O(N/P)` *with*
//! a second buffer (`A[i] → B[π(i)]`) is exactly [`apply_out_of_place`].

/// Apply `pi` out of place: returns `out` with `out[pi(i)] = data[i]`.
///
/// `pi` must be a permutation of `[0, data.len())`; duplicate targets
/// panic.
///
/// # Examples
/// ```
/// use ist_perm::apply_out_of_place;
/// let data = vec!['a', 'b', 'c'];
/// let out = apply_out_of_place(&data, |i| (i + 1) % 3);
/// assert_eq!(out, vec!['c', 'a', 'b']);
/// ```
pub fn apply_out_of_place<T: Clone, F>(data: &[T], pi: F) -> Vec<T>
where
    F: Fn(usize) -> usize,
{
    let n = data.len();
    let mut out: Vec<Option<T>> = vec![None; n];
    for (i, v) in data.iter().enumerate() {
        let j = pi(i);
        assert!(j < n, "pi({i}) = {j} out of bounds");
        assert!(out[j].is_none(), "pi not injective at target {j}");
        out[j] = Some(v.clone());
    }
    out.into_iter()
        .map(|o| o.expect("pi not surjective"))
        .collect()
}

/// Check whether `f` restricted to `[0, n)` is a permutation.
///
/// # Examples
/// ```
/// use ist_perm::is_permutation;
/// assert!(is_permutation(4, |i| (i + 2) % 4));
/// assert!(!is_permutation(4, |i| i / 2));
/// ```
pub fn is_permutation<F>(n: usize, f: F) -> bool
where
    F: Fn(usize) -> usize,
{
    let mut seen = vec![false; n];
    for i in 0..n {
        let j = f(i);
        if j >= n || seen[j] {
            return false;
        }
        seen[j] = true;
    }
    true
}

/// Materialize the inverse of permutation `f` on `[0, n)` as a table.
///
/// # Examples
/// ```
/// use ist_perm::invert_permutation;
/// let inv = invert_permutation(4, |i| (i + 1) % 4);
/// assert_eq!(inv, vec![3, 0, 1, 2]);
/// ```
pub fn invert_permutation<F>(n: usize, f: F) -> Vec<usize>
where
    F: Fn(usize) -> usize,
{
    let mut inv = vec![usize::MAX; n];
    for i in 0..n {
        let j = f(i);
        assert!(j < n && inv[j] == usize::MAX, "not a permutation");
        inv[j] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_then_inverse_is_identity() {
        let n = 64usize;
        let pi = |i: usize| (i * 5 + 3) % n;
        let data: Vec<usize> = (0..n).collect();
        let permuted = apply_out_of_place(&data, pi);
        let inv = invert_permutation(n, pi);
        let back = apply_out_of_place(&permuted, |i| inv[i]);
        assert_eq!(back, data);
    }

    #[test]
    fn validation_catches_bad_maps() {
        assert!(!is_permutation(3, |_| 5));
        assert!(is_permutation(0, |i| i));
        assert!(is_permutation(1, |i| i));
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn apply_rejects_collisions() {
        apply_out_of_place(&[1, 2], |_| 0);
    }
}
