//! The lint catalog: each lint is a named invariant of this repository,
//! checked token-level against [`crate::lexer::Lexed`] files.
//!
//! | lint | invariant |
//! |------|-----------|
//! | `unsafe-needs-safety-comment` | every `unsafe` (block, fn, impl) carries a `// SAFETY:` comment |
//! | `no-spawn-outside-parallel` | `thread::spawn` only in `ist-parallel` / `ist-loom` (the threading substrates) |
//! | `no-layout-arith-outside-nav` | BST child-index arithmetic (`2 * v + 1/2`) confined to `ist_query::nav`/`wide` and `ist-layout` |
//! | `relaxed-ordering-needs-justification` | every `Ordering::Relaxed` carries an adjacent comment |
//! | `serve-no-panic` | no `unwrap`/`expect`/`panic!`-family/indexing in `crates/serve` non-test code |
//! | `bad-lint-allow` | every `LINT-ALLOW` names a known lint and gives a reason |
//!
//! Suppression syntax, on the offending line or the comment block
//! directly above it:
//!
//! ```text
//! // LINT-ALLOW(serve-no-panic): init-time config parse; a bad flag should abort
//! ```
//!
//! Doc comments and string literals are invisible to every lint (the
//! lexer strips them), so code *examples* never trip source invariants.

use crate::lexer::{lex, Lexed, Tok, Token};

/// Every lint name the engine knows, in catalog order.
pub const LINT_NAMES: &[&str] = &[
    "unsafe-needs-safety-comment",
    "no-spawn-outside-parallel",
    "no-layout-arith-outside-nav",
    "relaxed-ordering-needs-justification",
    "serve-no-panic",
    "bad-lint-allow",
];

/// One finding: a named lint firing at a file:line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub lint: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// What kind of target a file belongs to; some lints only police
/// production (`Src`) code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    Src,
    Test,
    Example,
    Bench,
}

/// Classify a workspace-relative path by its directory conventions.
pub fn classify(path: &str) -> FileClass {
    let has = |seg: &str| path.split('/').any(|p| p == seg);
    if has("tests") {
        FileClass::Test
    } else if has("examples") {
        FileClass::Example
    } else if has("benches") {
        FileClass::Bench
    } else {
        FileClass::Src
    }
}

/// Run every lint over one file. `path` is workspace-relative with
/// `/` separators; diagnostics suppressed by a well-formed
/// `LINT-ALLOW` are dropped here.
pub fn check_file(path: &str, class: FileClass, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mut out = Vec::new();
    lint_unsafe_safety(path, &lexed, &mut out);
    lint_spawn(path, class, &lexed, &mut out);
    lint_layout_arith(path, class, &lexed, &mut out);
    lint_relaxed(path, class, &lexed, &mut out);
    lint_serve_no_panic(path, class, &lexed, &mut out);
    lint_bad_allow(path, &lexed, &mut out);
    // Apply suppressions last so a single allow covers every lint
    // instance on its line.
    out.retain(|d| d.lint == "bad-lint-allow" || !is_suppressed(&lexed, d));
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out.dedup();
    out
}

/// Parse `LINT-ALLOW(<name>): <reason>` out of one comment string.
/// Returns `(name, reason)` with both trimmed; `None` if the marker is
/// absent entirely.
fn parse_allow(text: &str) -> Option<(&str, &str)> {
    let at = text.find("LINT-ALLOW(")?;
    let rest = &text[at + "LINT-ALLOW(".len()..];
    let close = rest.find(')')?;
    let name = rest[..close].trim();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').unwrap_or("").trim();
    Some((name, reason))
}

fn is_suppressed(lexed: &Lexed, d: &Diagnostic) -> bool {
    lexed.comment_context(d.line).iter().any(|c| {
        parse_allow(c).is_some_and(|(name, reason)| {
            name == d.lint && !reason.is_empty() && LINT_NAMES.contains(&name)
        })
    })
}

/// `unsafe-needs-safety-comment`: fires on any `unsafe` token (block,
/// `unsafe fn`, `unsafe impl`, `unsafe trait`) whose line has no
/// adjacent `// SAFETY:` comment. Applies everywhere, including tests:
/// undocumented unsafety in a test is still undocumented unsafety.
/// An `unsafe fn` / `unsafe trait` **declaration** is alternatively
/// satisfied by a `# Safety` section in its doc comment — that is
/// where the caller-facing contract belongs (clippy's
/// `missing_safety_doc` convention); blocks and impls have no doc
/// audience and always need the inline comment.
fn lint_unsafe_safety(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let mut last_line = 0;
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != Tok::Ident("unsafe".to_string()) || t.line == last_line {
            continue;
        }
        last_line = t.line;
        let mut ok = lexed
            .comment_context(t.line)
            .iter()
            .any(|c| c.contains("SAFETY:"));
        let is_decl = lexed
            .tokens
            .get(i + 1)
            .is_some_and(|t| matches!(&t.kind, Tok::Ident(k) if k == "fn" || k == "trait"));
        if !ok && is_decl {
            ok = lexed
                .doc_context(t.line)
                .iter()
                .any(|c| c.contains("# Safety"));
        }
        if !ok {
            out.push(Diagnostic {
                lint: "unsafe-needs-safety-comment",
                file: path.to_string(),
                line: t.line,
                message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            });
        }
    }
}

/// `no-spawn-outside-parallel`: raw `thread::spawn` belongs to the
/// threading substrates (`crates/parallel`, `crates/loom-shim`) and
/// the `ist_dynamic::sync` routing point; every other site must route
/// through the rayon shim or that `sync` module so forced-serial and
/// model-checked builds control all threads.
fn lint_spawn(path: &str, class: FileClass, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if class != FileClass::Src
        || path.starts_with("crates/parallel/")
        || path.starts_with("crates/loom-shim/")
        || path == "crates/dynamic/src/sync.rs"
    {
        return;
    }
    for w in lexed.tokens.windows(4) {
        if w[0].in_test {
            continue;
        }
        if w[0].kind == Tok::Ident("thread".to_string())
            && w[1].kind == Tok::Punct(':')
            && w[2].kind == Tok::Punct(':')
            && w[3].kind == Tok::Ident("spawn".to_string())
        {
            out.push(Diagnostic {
                lint: "no-spawn-outside-parallel",
                file: path.to_string(),
                line: w[0].line,
                message: "raw `thread::spawn` outside the threading substrate crates".to_string(),
            });
        }
    }
}

/// `no-layout-arith-outside-nav`: the BST child-index idiom
/// `2 * v + 1` / `2 * v + 2` (outside square-bracket indexing, where
/// it is rank-pair unpacking, not a descent) is confined to the
/// `Navigator` implementations and the layout definitions themselves.
fn lint_layout_arith(path: &str, class: FileClass, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if class != FileClass::Src
        || path == "crates/query/src/nav.rs"
        || path == "crates/query/src/wide.rs"
        || path.starts_with("crates/tree-layout/")
    {
        return;
    }
    for w in lexed.tokens.windows(5) {
        if w[0].in_test || w[0].bracket_depth > 0 {
            continue;
        }
        let is_child = w[0].kind == Tok::Int(2)
            && w[1].kind == Tok::Punct('*')
            && matches!(w[2].kind, Tok::Ident(_))
            && w[3].kind == Tok::Punct('+')
            && matches!(w[4].kind, Tok::Int(1) | Tok::Int(2));
        if is_child {
            out.push(Diagnostic {
                lint: "no-layout-arith-outside-nav",
                file: path.to_string(),
                line: w[0].line,
                message: "child-index arithmetic (`2 * v + 1/2`) outside `ist_query::nav`/`wide`"
                    .to_string(),
            });
        }
    }
}

/// `relaxed-ordering-needs-justification`: `Ordering::Relaxed` trades
/// away happens-before edges; every use must say why that is sound, in
/// an adjacent comment.
fn lint_relaxed(path: &str, class: FileClass, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if class != FileClass::Src {
        return;
    }
    let mut last_line = 0;
    for w in lexed.tokens.windows(4) {
        if w[0].in_test || w[0].line == last_line {
            continue;
        }
        if w[0].kind == Tok::Ident("Ordering".to_string())
            && w[1].kind == Tok::Punct(':')
            && w[2].kind == Tok::Punct(':')
            && w[3].kind == Tok::Ident("Relaxed".to_string())
        {
            last_line = w[0].line;
            if lexed.comment_context(w[0].line).is_empty() {
                out.push(Diagnostic {
                    lint: "relaxed-ordering-needs-justification",
                    file: path.to_string(),
                    line: w[0].line,
                    message: "`Ordering::Relaxed` without an adjacent justifying comment"
                        .to_string(),
                });
            }
        }
    }
}

/// Keywords that can legally precede `[` without it being an index
/// expression (slice patterns, `for x in [..]`, …).
const NONINDEX_BEFORE_BRACKET: &[&str] = &[
    "let", "mut", "ref", "in", "return", "if", "else", "match", "loop", "while", "for", "move",
    "as", "dyn", "impl", "where", "break", "continue", "box", "static", "const",
];

/// `serve-no-panic`: the serving crate's non-test code must not carry
/// panic paths — a bad request or a logic slip should close one
/// connection or surface an error frame, never take the process down.
/// Fires on `.unwrap()`, `.expect(`, the `panic!` macro family, and
/// direct indexing (`x[i]`).
fn lint_serve_no_panic(path: &str, class: FileClass, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    if class != FileClass::Src || !path.starts_with("crates/serve/src") {
        return;
    }
    let toks = &lexed.tokens;
    let mut push = |t: &Token, what: &str| {
        out.push(Diagnostic {
            lint: "serve-no-panic",
            file: path.to_string(),
            line: t.line,
            message: format!("panic path in serving code: {what}"),
        });
    };
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        match &toks[i].kind {
            Tok::Ident(s) if (s == "unwrap" || s == "expect") => {
                let dotted = i >= 1 && toks[i - 1].kind == Tok::Punct('.');
                let called = toks.get(i + 1).is_some_and(|t| t.kind == Tok::Punct('('));
                if dotted && called {
                    push(&toks[i], &format!("`.{s}(..)`"));
                }
            }
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(i + 1).is_some_and(|t| t.kind == Tok::Punct('!')) =>
            {
                push(&toks[i], &format!("`{s}!`"));
            }
            Tok::Punct('[') => {
                let indexes = match i.checked_sub(1).map(|j| &toks[j].kind) {
                    Some(Tok::Ident(prev)) => !NONINDEX_BEFORE_BRACKET.contains(&prev.as_str()),
                    Some(Tok::Punct(')')) | Some(Tok::Punct(']')) => true,
                    _ => false,
                };
                if indexes {
                    push(&toks[i], "direct indexing (`x[i]` panics out of bounds)");
                }
            }
            _ => {}
        }
    }
}

/// `bad-lint-allow`: a `LINT-ALLOW` that names an unknown lint or
/// gives no reason is itself a finding — suppressions must stay
/// auditable.
fn lint_bad_allow(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    for c in &lexed.comments {
        let Some((name, reason)) = parse_allow(&c.text) else {
            continue;
        };
        if !LINT_NAMES.contains(&name) {
            out.push(Diagnostic {
                lint: "bad-lint-allow",
                file: path.to_string(),
                line: c.line,
                message: format!("LINT-ALLOW names unknown lint `{name}`"),
            });
        } else if reason.is_empty() {
            out.push(Diagnostic {
                lint: "bad-lint-allow",
                file: path.to_string(),
                line: c.line,
                message: format!("LINT-ALLOW({name}) without a reason"),
            });
        }
    }
}
