//! A hand-rolled token-level lexer for Rust source — just enough
//! structure for the lints in [`crate::lints`], with **no** `syn`
//! dependency (the workspace builds fully offline).
//!
//! The lexer understands what a naive `grep` does not:
//!
//! * **Comments** (line, doc, and nested block comments) are stripped
//!   from the token stream but retained per line, so lints can demand
//!   "a `// SAFETY:` comment above this line" and suppressions
//!   (`// LINT-ALLOW(..): ..`) can be resolved.
//! * **Strings** (plain, raw `r#".."#`, byte, and char literals) are
//!   consumed whole — a `"thread::spawn"` inside a string or doc
//!   example never becomes a token.
//! * **Nesting**: every token carries its square-bracket depth (so
//!   `ranks[2 * i + 1]` is distinguishable from descent arithmetic),
//!   and `#[cfg(test)]`-gated items are delimited by brace matching so
//!   lints can skip test-only regions.

/// One lexed token kind. Only the shapes the lints match are
/// distinguished; everything else is [`Tok::Other`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` is two `Punct(':')`).
    Punct(char),
    /// An integer literal small enough to matter to a lint.
    Int(u64),
    /// Any other literal (floats, huge ints).
    Other,
}

/// A token plus the positional facts lints key on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
    /// Square-bracket nesting depth at this token (inside `a[...]`
    /// the depth is ≥ 1).
    pub bracket_depth: u32,
    /// `true` if this token sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// One comment's worth of text on one line (block comments spanning
/// lines produce one entry per line).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based source line.
    pub line: u32,
    pub text: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// All comments, in order; at most a handful per line.
    pub comments: Vec<Comment>,
    /// Doc comments (`///`, `//!`, `/**`, `/*!`), kept apart from
    /// [`Lexed::comments`]: prose about SAFETY or LINT-ALLOW syntax
    /// must not count as the real annotation, but a `# Safety` doc
    /// section may legitimately document an `unsafe fn` contract.
    pub doc_comments: Vec<Comment>,
    /// Lines that hold at least one non-comment token.
    code_lines: Vec<bool>,
    /// Lines whose tokens all belong to attributes (`#[...]`) — the
    /// comment-adjacency walk skips these so `// SAFETY:` may sit
    /// above `#[inline]`.
    attr_only_lines: Vec<bool>,
}

impl Lexed {
    fn has_code(&self, line: u32) -> bool {
        self.code_lines.get(line as usize).copied().unwrap_or(false)
    }

    fn attr_only(&self, line: u32) -> bool {
        self.attr_only_lines
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }

    /// All comment text "attached" to `line`: a trailing comment on the
    /// line itself plus the contiguous comment block immediately above
    /// it (attribute-only lines in between are skipped, blank lines
    /// terminate the walk).
    pub fn comment_context(&self, line: u32) -> Vec<&str> {
        Self::context(
            &self.comments,
            line,
            |l| self.attr_only(l),
            |l| self.has_code(l),
        )
    }

    /// Like [`Lexed::comment_context`], but over doc comments — used to
    /// accept a `/// # Safety` section as documentation of an
    /// `unsafe fn` declaration.
    pub fn doc_context(&self, line: u32) -> Vec<&str> {
        Self::context(
            &self.doc_comments,
            line,
            |l| self.attr_only(l),
            |l| self.has_code(l),
        )
    }

    fn context(
        comments: &[Comment],
        line: u32,
        attr_only: impl Fn(u32) -> bool,
        has_code: impl Fn(u32) -> bool,
    ) -> Vec<&str> {
        let mut out: Vec<&str> = comments
            .iter()
            .filter(|c| c.line == line)
            .map(|c| c.text.as_str())
            .collect();
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if attr_only(l) {
                l -= 1;
                continue;
            }
            let mut found = false;
            if !has_code(l) {
                for c in comments.iter().filter(|c| c.line == l) {
                    out.push(c.text.as_str());
                    found = true;
                }
            }
            if !found {
                break;
            }
            l -= 1;
        }
        out
    }
}

/// Lex `src`. Never fails: unterminated constructs consume to EOF,
/// which is the forgiving behavior a lint wants.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let n = b.len();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let mut bracket_depth: u32 = 0;
    let mut lexed = Lexed::default();
    let total_lines = src.lines().count() + 2;
    lexed.code_lines = vec![false; total_lines];
    lexed.attr_only_lines = vec![false; total_lines];
    // Temporarily collect (token, is_attr) so attr-only lines can be
    // computed once attribute spans are known.
    let mut toks: Vec<Token> = Vec::new();

    macro_rules! push_tok {
        ($kind:expr, $ln:expr) => {
            toks.push(Token {
                kind: $kind,
                line: $ln,
                bracket_depth,
                in_test: false,
            })
        };
    }

    while i < n {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == b'/' => {
                // Line comment. Doc comments (`///`, `//!`) are
                // documentation, not code annotations: they go to the
                // separate `doc_comments` list so prose about SAFETY or
                // LINT-ALLOW syntax never counts as the real thing.
                let start = i;
                let doc = i + 2 < n && (b[i + 2] == b'/' || b[i + 2] == b'!');
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                let list = if doc {
                    &mut lexed.doc_comments
                } else {
                    &mut lexed.comments
                };
                list.push(Comment {
                    line,
                    text: src[start..i].to_string(),
                });
            }
            '/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment, nested per Rust rules; one Comment
                // entry per spanned line. Doc blocks (`/**`, `/*!`)
                // go to `doc_comments`, like line doc comments.
                let doc = i + 2 < n && (b[i + 2] == b'*' || b[i + 2] == b'!');
                let mut depth = 1;
                i += 2;
                let mut seg_start = i;
                while i < n && depth > 0 {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == b'\n' {
                        let list = if doc {
                            &mut lexed.doc_comments
                        } else {
                            &mut lexed.comments
                        };
                        list.push(Comment {
                            line,
                            text: src[seg_start..i].to_string(),
                        });
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else {
                        i += 1;
                    }
                }
                let list = if doc {
                    &mut lexed.doc_comments
                } else {
                    &mut lexed.comments
                };
                list.push(Comment {
                    line,
                    text: src[seg_start..i.saturating_sub(2).max(seg_start)].to_string(),
                });
            }
            '"' => i = skip_string(b, i, &mut line),
            '\'' => {
                // Char literal vs lifetime. A char literal closes with
                // a `'` after one (possibly escaped) character.
                if i + 2 < n && b[i + 1] == b'\\' {
                    // Escaped char literal: skip to closing quote.
                    i += 2;
                    while i < n && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                    i += 3; // 'x'
                } else {
                    // Lifetime: one `Tok::Other` for quote + ident, so
                    // `&'a [u8]` can't read as ident-then-indexing.
                    i += 1;
                    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    push_tok!(Tok::Other, line);
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.') {
                    // Stop a `..` range from being eaten by a number.
                    if b[i] == b'.' && i + 1 < n && b[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                let text: String = src[start..i].chars().filter(|&c| c != '_').collect();
                let digits: &str = text
                    .split(|c: char| !c.is_ascii_digit())
                    .next()
                    .unwrap_or("");
                match digits.parse::<u64>() {
                    Ok(v) if text.starts_with(digits) && !text.contains('.') => {
                        push_tok!(Tok::Int(v), line)
                    }
                    _ => push_tok!(Tok::Other, line),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let ident = &src[start..i];
                // Raw/byte string prefixes: `r"`, `r#"`, `b"`, `br#"` …
                let is_str_prefix = matches!(ident, "r" | "b" | "br" | "rb" | "c" | "cr")
                    && i < n
                    && (b[i] == b'"' || b[i] == b'#');
                if is_str_prefix && (b[i] == b'"' || is_raw_start(b, i)) {
                    if ident.contains('r') || ident.contains('c') {
                        i = skip_raw_string(b, i, &mut line);
                    } else {
                        i = skip_string(b, i, &mut line);
                    }
                } else {
                    push_tok!(Tok::Ident(ident.to_string()), line);
                }
            }
            '[' => {
                push_tok!(Tok::Punct('['), line);
                bracket_depth += 1;
                i += 1;
            }
            ']' => {
                bracket_depth = bracket_depth.saturating_sub(1);
                push_tok!(Tok::Punct(']'), line);
                i += 1;
            }
            c if c.is_ascii() => {
                push_tok!(Tok::Punct(c), line);
                i += 1;
            }
            _ => {
                // Non-ASCII outside a string or comment (e.g. a µ in a
                // const name context): opaque, advance one whole char.
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                push_tok!(Tok::Other, line);
                i += ch_len;
            }
        }
    }

    mark_regions(&mut toks, &mut lexed);
    lexed.tokens = toks;
    for t in &lexed.tokens {
        if let Some(slot) = lexed.code_lines.get_mut(t.line as usize) {
            *slot = true;
        }
    }
    lexed
}

/// `#` at a raw-string hash run: `r##"` etc.
fn is_raw_start(b: &[u8], mut i: usize) -> bool {
    while i < b.len() && b[i] == b'#' {
        i += 1;
    }
    i < b.len() && b[i] == b'"'
}

/// Skip a plain (or byte) string starting at the opening `"` (or at a
/// prefix position where the next char is `"`). Returns the index past
/// the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() && b[i] != b'"' {
        i += 1; // step over the prefix (`b`)
    }
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // A line-continuation escape (`\` before a newline)
                // still ends a source line — keep the count right.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skip a raw string starting at the hash run / opening quote. Returns
/// the index past the closing `"##…`.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while j < b.len() && b[j] == b'#' && h < hashes {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Mark `in_test` for tokens inside `#[cfg(test)]`-gated items (a
/// `cfg` attribute whose argument list mentions the bare ident `test`,
/// e.g. `#[cfg(test)]` or `#[cfg(any(test, ist_loom))]`), and record
/// attribute-only lines. A `#![cfg(test)]` inner attribute marks the
/// whole file.
fn mark_regions(toks: &mut [Token], lexed: &mut Lexed) {
    let mut attr_token_idx: Vec<bool> = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < toks.len() && toks[j].kind == Tok::Punct('!');
        if inner {
            j += 1;
        }
        if j >= toks.len() || toks[j].kind != Tok::Punct('[') {
            i += 1;
            continue;
        }
        // Scan the attribute body to its matching `]`.
        let open_depth = toks[j].bracket_depth;
        let start = j;
        let mut k = j + 1;
        let mut is_cfg_test = false;
        let mut saw_cfg = false;
        while k < toks.len() {
            if toks[k].kind == Tok::Punct(']') && toks[k].bracket_depth == open_depth {
                break;
            }
            if let Tok::Ident(s) = &toks[k].kind {
                if k == start + 1 && s == "cfg" {
                    saw_cfg = true;
                }
                // `test` under a `not(..)` (e.g. `#[cfg(not(test))]`)
                // gates *production* code — not a test region.
                let negated = k >= 2
                    && toks[k - 1].kind == Tok::Punct('(')
                    && toks[k - 2].kind == Tok::Ident("not".to_string());
                if saw_cfg && s == "test" && !negated {
                    is_cfg_test = true;
                }
            }
            k += 1;
        }
        for covered in attr_token_idx[i..=k.min(toks.len() - 1)].iter_mut() {
            *covered = true;
        }
        if is_cfg_test {
            if inner {
                for t in toks.iter_mut() {
                    t.in_test = true;
                }
            } else {
                // Gate the item that follows (skipping further
                // attributes): up to the matching `}` of its first
                // brace, or the `;` that ends a braceless item.
                let mut m = k + 1;
                while m + 1 < toks.len()
                    && toks[m].kind == Tok::Punct('#')
                    && toks[m + 1].kind == Tok::Punct('[')
                {
                    // Skip the chained attribute.
                    let d = toks[m + 1].bracket_depth;
                    let mut e = m + 2;
                    while e < toks.len()
                        && !(toks[e].kind == Tok::Punct(']') && toks[e].bracket_depth == d)
                    {
                        e += 1;
                    }
                    for covered in attr_token_idx[m..=e.min(toks.len() - 1)].iter_mut() {
                        *covered = true;
                    }
                    m = e + 1;
                }
                let item_start = m;
                let mut brace: i64 = 0;
                let mut entered = false;
                while m < toks.len() {
                    match toks[m].kind {
                        Tok::Punct('{') => {
                            brace += 1;
                            entered = true;
                        }
                        Tok::Punct('}') => {
                            brace -= 1;
                            if entered && brace == 0 {
                                break;
                            }
                        }
                        Tok::Punct(';') if !entered => break,
                        _ => {}
                    }
                    m += 1;
                }
                let end = m.saturating_add(1).min(toks.len());
                for t in toks.iter_mut().take(end).skip(item_start) {
                    t.in_test = true;
                }
            }
        }
        i = k + 1;
    }
    // Attribute-only lines: every token on the line is attribute.
    let mut line_has_nonattr = std::collections::HashMap::new();
    for (idx, t) in toks.iter().enumerate() {
        let e = line_has_nonattr.entry(t.line).or_insert(false);
        if !attr_token_idx[idx] {
            *e = true;
        }
    }
    for (&line, &has_nonattr) in &line_has_nonattr {
        if !has_nonattr {
            if let Some(slot) = lexed.attr_only_lines.get_mut(line as usize) {
                *slot = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<String> {
        l.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r###"
// unsafe in a line comment
/* unsafe in a /* nested */ block */
let a = "unsafe in a string";
let b = r#"unsafe in a raw "quoted" string"#;
let c = 'u';
let lt: &'static str = b"unsafe bytes";
fn real() { }
"###;
        let l = lex(src);
        let ids = idents(&l);
        assert!(!ids.contains(&"unsafe".to_string()), "{ids:?}");
        assert!(ids.contains(&"real".to_string()));
        // The comments themselves were retained.
        assert!(l.comments.iter().any(|c| c.text.contains("line comment")));
        assert!(l.comments.iter().any(|c| c.text.contains("nested")));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a \" unsafe \\"; fn after() {}"#;
        let l = lex(src);
        assert!(idents(&l).contains(&"after".to_string()));
        assert!(!idents(&l).contains(&"unsafe".to_string()));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a u8) -> char { '\\'' }";
        let l = lex(src);
        assert!(idents(&l).contains(&"f".to_string()));
        // The lifetime ident survives; that is fine for every lint.
    }

    #[test]
    fn bracket_depth_tracks_indexing() {
        let src = "let x = ranks[2 * i + 1]; let y = 2 * i + 1;";
        let l = lex(src);
        let twos: Vec<&Token> = l.tokens.iter().filter(|t| t.kind == Tok::Int(2)).collect();
        assert_eq!(twos.len(), 2);
        assert_eq!(twos[0].bracket_depth, 1);
        assert_eq!(twos[1].bracket_depth, 0);
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "
fn prod() { body(); }
#[cfg(test)]
mod tests {
    fn in_test() { x(); }
}
fn prod2() { }
";
        let l = lex(src);
        let find = |name: &str| {
            l.tokens
                .iter()
                .find(|t| t.kind == Tok::Ident(name.to_string()))
                .unwrap()
        };
        assert!(!find("prod").in_test);
        assert!(find("in_test").in_test);
        assert!(!find("prod2").in_test);
    }

    #[test]
    fn cfg_any_test_counts_as_test() {
        let src = "#[cfg(any(test, feature_x))]\nfn gated() {}\nfn open() {}";
        let l = lex(src);
        let find = |name: &str| {
            l.tokens
                .iter()
                .find(|t| t.kind == Tok::Ident(name.to_string()))
                .unwrap()
        };
        assert!(find("gated").in_test);
        assert!(!find("open").in_test);
    }

    #[test]
    fn non_cfg_attribute_with_test_ident_is_not_a_region() {
        let src = "#[doc = \"x\"]\nfn a() { let test = 1; }\nfn b() {}";
        let l = lex(src);
        assert!(l.tokens.iter().all(|t| !t.in_test));
    }

    #[test]
    fn comment_context_walks_over_attributes() {
        let src = "// SAFETY: fine\n#[inline]\nunsafe fn g() {}\n";
        let l = lex(src);
        let unsafe_line = l
            .tokens
            .iter()
            .find(|t| t.kind == Tok::Ident("unsafe".into()))
            .unwrap()
            .line;
        let ctx = l.comment_context(unsafe_line);
        assert!(ctx.iter().any(|c| c.contains("SAFETY:")), "{ctx:?}");
    }

    #[test]
    fn blank_line_breaks_comment_context() {
        let src = "// SAFETY: far away\n\nunsafe fn g() {}\n";
        let l = lex(src);
        let unsafe_line = l
            .tokens
            .iter()
            .find(|t| t.kind == Tok::Ident("unsafe".into()))
            .unwrap()
            .line;
        assert!(l.comment_context(unsafe_line).is_empty());
    }

    #[test]
    fn trailing_comment_is_in_context() {
        let src = "x.store(true, Ordering::Relaxed); // advisory counter\n";
        let l = lex(src);
        let ctx = l.comment_context(1);
        assert!(ctx.iter().any(|c| c.contains("advisory")));
    }

    #[test]
    fn doc_comments_are_stripped_but_not_collected() {
        let src = "\
/// SAFETY: prose about the convention, not a real annotation
//! LINT-ALLOW(serve-no-panic): docs only
/** block doc SAFETY: */
// real comment SAFETY: kept
fn f() {}
";
        let l = lex(src);
        assert_eq!(l.comments.len(), 1, "{:?}", l.comments);
        assert!(l.comments[0].text.contains("kept"));
        assert_eq!(l.doc_comments.len(), 3, "{:?}", l.doc_comments);
    }

    #[test]
    fn string_line_continuation_keeps_line_numbers() {
        let src = "let s = \"a \\\n  b \\\n  c\";\nunsafe {}\n";
        let l = lex(src);
        let t = l
            .tokens
            .iter()
            .find(|t| t.kind == Tok::Ident("unsafe".to_string()))
            .unwrap();
        assert_eq!(t.line, 4, "escaped newlines inside strings count");
    }

    #[test]
    fn lifetime_before_bracket_is_not_an_ident() {
        let src = "struct C<'a>(&'a [u8]);\n";
        let l = lex(src);
        let open = l
            .tokens
            .iter()
            .position(|t| t.kind == Tok::Punct('['))
            .unwrap();
        assert!(
            !matches!(l.tokens[open - 1].kind, Tok::Ident(_)),
            "`'a` must not lex as a bare ident: {:?}",
            l.tokens[open - 1].kind
        );
    }

    #[test]
    fn doc_context_reaches_over_attributes() {
        let src = "\
/// # Safety
/// caller keeps `i` in bounds.
#[inline]
pub unsafe fn read(i: usize) {}
";
        let l = lex(src);
        let ctx = l.doc_context(4);
        assert!(ctx.iter().any(|c| c.contains("# Safety")), "{ctx:?}");
        assert!(l.comment_context(4).is_empty());
    }
}
