//! CLI front-end for the workspace lint engine.
//!
//! ```text
//! ist-lint [--root DIR] [--baseline FILE] [--json] [--out FILE]
//!          [--deny-all] [--write-baseline] [--list]
//! ```
//!
//! Exit status: 0 when no new findings (or `--write-baseline`), 1 when
//! `--deny-all` and new findings exist, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use ist_lint::{apply_baseline, check_workspace, render_human, render_json, Baseline, LINT_NAMES};

struct Opts {
    root: PathBuf,
    baseline: PathBuf,
    json: bool,
    out: Option<PathBuf>,
    deny_all: bool,
    write_baseline: bool,
    list: bool,
}

fn usage() -> &'static str {
    "usage: ist-lint [--root DIR] [--baseline FILE] [--json] [--out FILE]\n\
     \x20               [--deny-all] [--write-baseline] [--list]\n\
     \x20 --root DIR         workspace root to scan (default: .)\n\
     \x20 --baseline FILE    baseline path (default: <root>/lint-baseline.txt)\n\
     \x20 --json             emit JSON diagnostics instead of human text\n\
     \x20 --out FILE         also write the report to FILE\n\
     \x20 --deny-all         exit 1 if any non-baselined finding exists\n\
     \x20 --write-baseline   snapshot current findings into the baseline file\n\
     \x20 --list             print the lint catalog and exit"
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        baseline: PathBuf::new(),
        json: false,
        out: None,
        deny_all: false,
        write_baseline: false,
        list: false,
    };
    let mut baseline_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => opts.root = args.next().ok_or("--root needs a value")?.into(),
            "--baseline" => {
                opts.baseline = args.next().ok_or("--baseline needs a value")?.into();
                baseline_set = true;
            }
            "--json" => opts.json = true,
            "--out" => opts.out = Some(args.next().ok_or("--out needs a value")?.into()),
            "--deny-all" => opts.deny_all = true,
            "--write-baseline" => opts.write_baseline = true,
            "--list" => opts.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if !baseline_set {
        opts.baseline = opts.root.join("lint-baseline.txt");
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("ist-lint: {e}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for name in LINT_NAMES {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    let diags = match check_workspace(&opts.root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ist-lint: scan failed under {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        if let Err(e) = std::fs::write(&opts.baseline, Baseline::render(&diags)) {
            eprintln!("ist-lint: cannot write {}: {e}", opts.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "ist-lint: wrote {} finding(s) to {}",
            diags.len(),
            opts.baseline.display()
        );
        return ExitCode::SUCCESS;
    }

    let base = Baseline::load(&opts.baseline);
    let (new, baselined) = apply_baseline(diags, &base);
    let report = if opts.json {
        render_json(&new, &baselined)
    } else {
        render_human(&new, &baselined)
    };
    print!("{report}");
    if let Some(out) = &opts.out {
        if let Err(e) = std::fs::write(out, &report) {
            eprintln!("ist-lint: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    if opts.deny_all && !new.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
