//! # ist-lint — workspace lint engine
//!
//! A token-level Rust source scanner that enforces this repository's
//! meta-invariants as named lints, in the same offline-shim spirit as
//! `ist-parallel`/`ist-rand`: clippy-style tooling rebuilt in-tree, no
//! registry access needed. No `syn` — a hand-rolled lexer
//! ([`lexer`]) strips comments and strings, tracks bracket depth, and
//! marks `#[cfg(test)]` regions, and the lints ([`lints`]) pattern-match
//! the token stream.
//!
//! ## Quickstart
//!
//! ```text
//! cargo run -p ist-lint                      # human-readable findings
//! cargo run -p ist-lint -- --deny-all       # exit 1 on any finding (CI mode)
//! cargo run -p ist-lint -- --json           # machine-readable diagnostics
//! cargo run -p ist-lint -- --list           # print the lint catalog
//! cargo run -p ist-lint -- --write-baseline # snapshot current findings
//! ```
//!
//! Findings recorded in `lint-baseline.txt` (one `lint\tfile\tline` per
//! row) are reported as `baselined` and don't fail `--deny-all`; the
//! committed baseline is empty and should stay that way. To suppress a
//! finding at source, put this on the offending line or in the comment
//! block directly above it:
//!
//! ```text
//! // LINT-ALLOW(serve-no-panic): init-time config parse; abort is correct
//! ```
//!
//! An allow that names an unknown lint or omits the reason is itself a
//! finding (`bad-lint-allow`).

#![forbid(unsafe_code)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod lexer;
pub mod lints;

pub use lints::{check_file, classify, Diagnostic, FileClass, LINT_NAMES};

/// Directories never descended into during the workspace walk.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Recursively collect every `.rs` file under `root`, returning
/// workspace-relative `/`-separated paths in sorted (deterministic)
/// order.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let dir = root.join(&rel);
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let sub = if rel.as_os_str().is_empty() {
                PathBuf::from(name.as_ref())
            } else {
                rel.join(name.as_ref())
            };
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(sub);
                }
            } else if ty.is_file() && name.ends_with(".rs") {
                out.push(sub.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint the whole workspace under `root`. Unreadable files are skipped
/// (the walk itself surfaces I/O errors).
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut all = Vec::new();
    for rel in collect_rs_files(root)? {
        let Ok(src) = fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        all.extend(check_file(&rel, classify(&rel), &src));
    }
    Ok(all)
}

/// A parsed baseline: the set of findings accepted as pre-existing.
/// Format: one `lint\tfile\tline` per row; `#` comments and blank
/// lines ignored.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<(String, String, u32)>,
}

impl Baseline {
    pub fn parse(text: &str) -> Baseline {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split('\t');
            if let (Some(lint), Some(file), Some(ln)) = (it.next(), it.next(), it.next()) {
                if let Ok(n) = ln.trim().parse::<u32>() {
                    entries.push((lint.to_string(), file.to_string(), n));
                }
            }
        }
        Baseline { entries }
    }

    pub fn load(path: &Path) -> Baseline {
        match fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(_) => Baseline::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn contains(&self, d: &Diagnostic) -> bool {
        self.entries
            .iter()
            .any(|(l, f, n)| l == d.lint && f == &d.file && *n == d.line)
    }

    /// Render diagnostics in baseline file format.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut s = String::from(
            "# ist-lint baseline: findings accepted as pre-existing (lint\\tfile\\tline).\n\
             # Keep empty — new debt should be fixed or LINT-ALLOWed at source.\n",
        );
        for d in diags {
            s.push_str(&format!("{}\t{}\t{}\n", d.lint, d.file, d.line));
        }
        s
    }
}

/// Split findings into (new, baselined) against a baseline.
pub fn apply_baseline(
    diags: Vec<Diagnostic>,
    base: &Baseline,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    diags.into_iter().partition(|d| !base.contains(d))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON document (hand-rolled: no serde in-tree).
pub fn render_json(new: &[Diagnostic], baselined: &[Diagnostic]) -> String {
    let row = |d: &Diagnostic, baselined: bool| {
        format!(
            "  {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"baselined\": {}, \"message\": \"{}\"}}",
            json_escape(d.lint),
            json_escape(&d.file),
            d.line,
            baselined,
            json_escape(&d.message),
        )
    };
    let rows: Vec<String> = new
        .iter()
        .map(|d| row(d, false))
        .chain(baselined.iter().map(|d| row(d, true)))
        .collect();
    format!(
        "{{\n\"new\": {}, \"baselined\": {}, \"diagnostics\": [\n{}\n]\n}}\n",
        new.len(),
        baselined.len(),
        rows.join(",\n")
    )
}

/// Render findings for humans: `file:line: [lint] message` rows plus a
/// summary line.
pub fn render_human(new: &[Diagnostic], baselined: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in new {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            d.file, d.line, d.lint, d.message
        ));
    }
    for d in baselined {
        s.push_str(&format!(
            "{}:{}: [{}] {} (baselined)\n",
            d.file, d.line, d.lint, d.message
        ));
    }
    s.push_str(&format!(
        "ist-lint: {} new finding(s), {} baselined\n",
        new.len(),
        baselined.len()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip() {
        let diags = vec![Diagnostic {
            lint: "serve-no-panic",
            file: "crates/serve/src/x.rs".to_string(),
            line: 7,
            message: "m".to_string(),
        }];
        let base = Baseline::parse(&Baseline::render(&diags));
        assert_eq!(base.len(), 1);
        assert!(base.contains(&diags[0]));
        let (new, old) = apply_baseline(diags, &base);
        assert!(new.is_empty());
        assert_eq!(old.len(), 1);
    }

    #[test]
    fn baseline_ignores_comments_and_garbage() {
        let base = Baseline::parse("# header\n\nnot-a-row\nl\tf\tnotanumber\n");
        assert!(base.is_empty());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_render_shape() {
        let d = Diagnostic {
            lint: "serve-no-panic",
            file: "f.rs".to_string(),
            line: 3,
            message: "msg".to_string(),
        };
        let j = render_json(std::slice::from_ref(&d), &[]);
        assert!(j.contains("\"new\": 1"));
        assert!(j.contains("\"line\": 3"));
        assert!(j.contains("\"baselined\": false"));
    }
}
