//! Per-lint fixture tests: each lint proven to fire on a minimal
//! violation and stay silent on the compliant twin.

use ist_lint::{check_file, Diagnostic, FileClass};

fn lints_at(diags: &[Diagnostic], lint: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.lint == lint)
        .map(|d| d.line)
        .collect()
}

fn src(path: &str, code: &str) -> Vec<Diagnostic> {
    check_file(path, FileClass::Src, code)
}

#[test]
fn unsafe_fires_without_safety_comment() {
    let code = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let d = src("crates/query/src/x.rs", code);
    assert_eq!(lints_at(&d, "unsafe-needs-safety-comment"), vec![2]);
}

#[test]
fn unsafe_quiet_with_safety_comment_above() {
    let code = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
    let d = src("crates/query/src/x.rs", code);
    assert!(lints_at(&d, "unsafe-needs-safety-comment").is_empty());
}

#[test]
fn unsafe_quiet_with_trailing_safety_comment() {
    let code = "unsafe fn g() {} // SAFETY: no preconditions\n";
    let d = src("crates/query/src/x.rs", code);
    assert!(lints_at(&d, "unsafe-needs-safety-comment").is_empty());
}

#[test]
fn unsafe_fn_decl_satisfied_by_safety_doc_section() {
    let code = "\
/// Reads a raw pointer.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn f(p: *const u8) -> u8 {
    // SAFETY: caller contract above.
    unsafe { *p }
}
";
    let d = src("crates/query/src/x.rs", code);
    assert!(lints_at(&d, "unsafe-needs-safety-comment").is_empty());
}

#[test]
fn unsafe_impl_not_satisfied_by_safety_doc_section() {
    // Only fn/trait declarations may lean on `# Safety` docs; an
    // `unsafe impl` still needs the inline comment.
    let code = "/// # Safety\n/// always fine.\nunsafe impl Send for X {}\n";
    let d = src("crates/query/src/x.rs", code);
    assert_eq!(lints_at(&d, "unsafe-needs-safety-comment"), vec![3]);
}

#[test]
fn slice_type_after_lifetime_is_not_indexing() {
    let code = "pub struct Cursor<'a>(&'a [u8]);\n";
    let d = src("crates/serve/src/x.rs", code);
    assert!(lints_at(&d, "serve-no-panic").is_empty());
}

#[test]
fn unsafe_in_doc_comment_ignored() {
    let code = "/// ```\n/// unsafe { core::hint::unreachable_unchecked() }\n/// ```\nfn f() {}\n";
    let d = src("crates/query/src/x.rs", code);
    assert!(lints_at(&d, "unsafe-needs-safety-comment").is_empty());
}

#[test]
fn spawn_fires_outside_parallel() {
    let code = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
    let d = src("crates/dynamic/src/x.rs", code);
    assert_eq!(lints_at(&d, "no-spawn-outside-parallel"), vec![2]);
}

#[test]
fn spawn_allowed_in_substrate_crates() {
    let code = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
    for path in [
        "crates/parallel/src/lib.rs",
        "crates/loom-shim/src/lib.rs",
        "crates/dynamic/src/sync.rs",
    ] {
        let d = src(path, code);
        assert!(
            lints_at(&d, "no-spawn-outside-parallel").is_empty(),
            "{path}"
        );
    }
}

#[test]
fn spawn_allowed_in_cfg_test_region() {
    let code =
        "#[cfg(test)]\nmod tests {\n    fn f() {\n        std::thread::spawn(|| {});\n    }\n}\n";
    let d = src("crates/dynamic/src/x.rs", code);
    assert!(lints_at(&d, "no-spawn-outside-parallel").is_empty());
}

#[test]
fn layout_arith_fires_outside_nav() {
    let code = "fn child(v: usize) -> usize {\n    2 * v + 1\n}\n";
    let d = src("crates/shard/src/lib.rs", code);
    assert_eq!(lints_at(&d, "no-layout-arith-outside-nav"), vec![2]);
}

#[test]
fn layout_arith_allowed_in_nav_and_layouts() {
    let code = "fn child(v: usize) -> usize {\n    2 * v + 2\n}\n";
    for path in [
        "crates/query/src/nav.rs",
        "crates/query/src/wide.rs",
        "crates/tree-layout/src/bst.rs",
    ] {
        let d = src(path, code);
        assert!(
            lints_at(&d, "no-layout-arith-outside-nav").is_empty(),
            "{path}"
        );
    }
}

#[test]
fn layout_arith_ignores_bracketed_rank_unpacking() {
    // `ranks[2 * i + 1]` is rank-pair unpacking, not tree descent.
    let code = "fn f(ranks: &[u32], i: usize) -> u32 {\n    ranks[2 * i + 1]\n}\n";
    let d = src("crates/shard/src/lib.rs", code);
    assert!(lints_at(&d, "no-layout-arith-outside-nav").is_empty());
}

#[test]
fn relaxed_fires_without_comment() {
    let code = "use std::sync::atomic::{AtomicBool, Ordering};\nfn f(b: &AtomicBool) {\n    b.store(true, Ordering::Relaxed);\n}\n";
    let d = src("crates/dynamic/src/x.rs", code);
    assert_eq!(
        lints_at(&d, "relaxed-ordering-needs-justification"),
        vec![3]
    );
}

#[test]
fn relaxed_quiet_with_comment() {
    let code = "fn f(b: &std::sync::atomic::AtomicBool) {\n    // Relaxed: advisory flag, re-checked under the lock.\n    b.store(true, std::sync::atomic::Ordering::Relaxed);\n}\n";
    let d = src("crates/dynamic/src/x.rs", code);
    assert!(lints_at(&d, "relaxed-ordering-needs-justification").is_empty());
}

#[test]
fn serve_unwrap_fires() {
    let code = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
    let d = src("crates/serve/src/server.rs", code);
    assert_eq!(lints_at(&d, "serve-no-panic"), vec![2]);
}

#[test]
fn serve_expect_and_panic_fire() {
    let code = "fn f(x: Option<u8>) -> u8 {\n    let v = x.expect(\"x\");\n    if v > 9 { panic!(\"big\") }\n    v\n}\n";
    let d = src("crates/serve/src/server.rs", code);
    assert_eq!(lints_at(&d, "serve-no-panic"), vec![2, 3]);
}

#[test]
fn serve_indexing_fires() {
    let code = "fn f(xs: &[u8]) -> u8 {\n    xs[0]\n}\n";
    let d = src("crates/serve/src/server.rs", code);
    assert_eq!(lints_at(&d, "serve-no-panic"), vec![2]);
}

#[test]
fn serve_quiet_outside_serve_and_in_tests() {
    let code = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
    assert!(lints_at(&src("crates/query/src/lib.rs", code), "serve-no-panic").is_empty());
    let test_code = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
    assert!(lints_at(
        &src("crates/serve/src/server.rs", test_code),
        "serve-no-panic"
    )
    .is_empty());
}

#[test]
fn serve_slice_pattern_and_array_literal_not_indexing() {
    let code = "fn f(xs: &[u8]) -> u8 {\n    let [a, b] = [1u8, 2];\n    if let [x, ..] = xs { *x } else { a + b }\n}\n";
    let d = src("crates/serve/src/server.rs", code);
    assert!(lints_at(&d, "serve-no-panic").is_empty());
}

#[test]
fn lint_allow_suppresses_on_same_line() {
    let code = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // LINT-ALLOW(serve-no-panic): fixture — invariant upheld by caller\n}\n";
    let d = src("crates/serve/src/server.rs", code);
    assert!(lints_at(&d, "serve-no-panic").is_empty());
    assert!(lints_at(&d, "bad-lint-allow").is_empty());
}

#[test]
fn lint_allow_suppresses_from_block_above() {
    let code = "fn f(x: Option<u8>) -> u8 {\n    // LINT-ALLOW(serve-no-panic): fixture — value proven present above\n    x.unwrap()\n}\n";
    let d = src("crates/serve/src/server.rs", code);
    assert!(lints_at(&d, "serve-no-panic").is_empty());
}

#[test]
fn lint_allow_does_not_cover_other_lints() {
    let code = "fn f(p: *const u8) -> u8 {\n    // LINT-ALLOW(serve-no-panic): wrong lint named\n    unsafe { *p }\n}\n";
    let d = src("crates/query/src/x.rs", code);
    assert_eq!(lints_at(&d, "unsafe-needs-safety-comment"), vec![3]);
}

#[test]
fn bad_allow_unknown_lint_and_missing_reason() {
    let code = "// LINT-ALLOW(no-such-lint): whatever\nfn f() {}\n// LINT-ALLOW(serve-no-panic)\nfn g() {}\n";
    let d = src("crates/serve/src/server.rs", code);
    assert_eq!(lints_at(&d, "bad-lint-allow"), vec![1, 3]);
}

#[test]
fn reasonless_allow_does_not_suppress() {
    let code = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // LINT-ALLOW(serve-no-panic)\n}\n";
    let d = src("crates/serve/src/server.rs", code);
    assert_eq!(lints_at(&d, "serve-no-panic"), vec![2]);
    assert_eq!(lints_at(&d, "bad-lint-allow"), vec![2]);
}

#[test]
fn non_src_classes_skip_src_only_lints() {
    let code =
        "fn f() {\n    std::thread::spawn(|| {});\n    let c = 2 * 3 + 1;\n    let _ = c;\n}\n";
    for class in [FileClass::Test, FileClass::Example, FileClass::Bench] {
        let d = check_file("crates/dynamic/tests/x.rs", class, code);
        assert!(lints_at(&d, "no-spawn-outside-parallel").is_empty());
    }
}

#[test]
fn classify_by_path_segments() {
    use ist_lint::classify;
    assert_eq!(classify("crates/serve/src/server.rs"), FileClass::Src);
    assert_eq!(classify("crates/dynamic/tests/x.rs"), FileClass::Test);
    assert_eq!(classify("crates/bench/benches/b.rs"), FileClass::Bench);
    assert_eq!(classify("examples/e.rs"), FileClass::Example);
}
