//! # ist-bits
//!
//! Integer primitives underlying the implicit search tree layout algorithms:
//!
//! * base-`k` digit arithmetic and **digit reversal** (`rev_k`), the building
//!   block of the involution-based permutation algorithms (Fich et al.;
//!   Yang et al.),
//! * modular arithmetic (extended Euclid, modular inverse) used by the
//!   `J`-involutions of the k-way perfect shuffle,
//! * perfect-tree size/height helpers shared by every layout.
//!
//! The paper parameterizes the cost of digit reversal as `T_REV_k(N)`:
//! some architectures (e.g. the NVIDIA K40 evaluated on the GPU side) expose
//! a hardware bit-reversal instruction making `T_REV_2 = O(1)`, while a
//! software implementation costs `O(log_k N)`. This crate exposes both a
//! hardware-backed path for `k = 2` ([`rev2`], which compiles to
//! `u64::reverse_bits` plus a shift) and a portable software path for
//! arbitrary `k` ([`rev_k`]), mirroring that distinction.

#![forbid(unsafe_code)]

pub mod digits;
pub mod modular;
pub mod tree;

pub use digits::{from_digits, num_digits, rev2, rev2_software, rev_k, to_digits};
pub use modular::{extended_gcd, gcd, mod_inverse, mod_mul};
pub use tree::{
    complete_bst_height, ilog, ilog2_floor, is_perfect_bst_size, is_perfect_btree_size,
    perfect_bst_size, perfect_btree_height, perfect_btree_size,
};
