//! Modular arithmetic: gcd, extended Euclid, and modular inverse.
//!
//! The `J_r` involutions of Yang et al. (used for the k-way perfect shuffle
//! on any `N` divisible by `k`, and hence for the B-tree leaf interleaving)
//! are defined as
//!
//! ```text
//! J_r(i) = g · ( r · (i/g)⁻¹  mod (N−1)/g ),   g = gcd(i, N−1)
//! ```
//!
//! which requires computing modular inverses. The extended Euclidean
//! algorithm here costs `O(log N)` — exactly the term that makes the
//! involution-based B-tree construction `O(N log N)` work in the paper
//! (Proposition 2).

/// Greatest common divisor (binary-free Euclid; `gcd(0, b) = b`).
///
/// # Examples
/// ```
/// use ist_bits::gcd;
/// assert_eq!(gcd(12, 18), 6);
/// assert_eq!(gcd(0, 7), 7);
/// assert_eq!(gcd(7, 0), 7);
/// assert_eq!(gcd(13, 27), 1);
/// ```
#[inline]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Extended Euclidean algorithm.
///
/// Returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)` (over signed
/// integers).
///
/// # Examples
/// ```
/// use ist_bits::extended_gcd;
/// let (g, x, y) = extended_gcd(240, 46);
/// assert_eq!(g, 2);
/// assert_eq!(240 * x + 46 * y, 2);
/// ```
pub fn extended_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        return (a, 1, 0);
    }
    let (mut old_r, mut r) = (a, b);
    let (mut old_s, mut s) = (1i128, 0i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
        (old_t, t) = (t, old_t - q * t);
    }
    (old_r, old_s, old_t)
}

/// Modular inverse of `a` modulo `m`, if it exists (`gcd(a, m) = 1`).
///
/// # Examples
/// ```
/// use ist_bits::mod_inverse;
/// assert_eq!(mod_inverse(3, 7), Some(5)); // 3·5 = 15 ≡ 1 (mod 7)
/// assert_eq!(mod_inverse(2, 4), None);    // not coprime
/// assert_eq!(mod_inverse(1, 1), Some(0)); // degenerate modulus
/// ```
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    if m == 0 {
        return None;
    }
    if m == 1 {
        return Some(0);
    }
    let (g, x, _) = extended_gcd((a % m) as i128, m as i128);
    if g != 1 {
        return None;
    }
    Some((x.rem_euclid(m as i128)) as u64)
}

/// `(a * b) mod m` without overflow for any `u64` operands.
///
/// # Examples
/// ```
/// use ist_bits::mod_mul;
/// assert_eq!(mod_mul(u64::MAX, u64::MAX, 1_000_000_007), {
///     ((u64::MAX as u128 * u64::MAX as u128) % 1_000_000_007u128) as u64
/// });
/// ```
#[inline]
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((a as u128 * b as u128) % m as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(48, 36), 12);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(17, 17), 17);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn extended_gcd_identity_holds() {
        for a in 0..60i128 {
            for b in 0..60i128 {
                let (g, x, y) = extended_gcd(a, b);
                assert_eq!(a * x + b * y, g, "a={a} b={b}");
                if a > 0 || b > 0 {
                    assert_eq!(g as u64, gcd(a as u64, b as u64));
                }
            }
        }
    }

    #[test]
    fn mod_inverse_is_inverse() {
        for m in 2..120u64 {
            for a in 1..m {
                match mod_inverse(a, m) {
                    Some(inv) => {
                        assert_eq!(gcd(a, m), 1);
                        assert_eq!(mod_mul(a, inv, m), 1, "a={a} m={m}");
                        assert!(inv < m);
                    }
                    None => assert_ne!(gcd(a, m), 1, "a={a} m={m}"),
                }
            }
        }
    }

    #[test]
    fn mod_inverse_large() {
        let m = (1u64 << 61) - 1; // Mersenne prime
        for a in [2u64, 3, 12345, 1 << 40] {
            let inv = mod_inverse(a, m).unwrap();
            assert_eq!(mod_mul(a, inv, m), 1);
        }
    }

    #[test]
    fn mod_mul_no_overflow() {
        assert_eq!(mod_mul(u64::MAX, 2, u64::MAX), 0);
        assert_eq!(mod_mul(u64::MAX - 1, u64::MAX - 1, u64::MAX), 1);
    }
}
