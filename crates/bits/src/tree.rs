//! Perfect/complete tree geometry helpers.
//!
//! Conventions used across the workspace:
//!
//! * A **perfect BST** on `d` *levels* has `N = 2^d − 1` vertices.
//! * A **perfect B-tree** with branching `k = B + 1` and `h + 1` node levels
//!   holds `N = (B+1)^{h+1} − 1` elements (each node holds `B` keys).
//! * A **complete** tree fills every level except possibly the last, which
//!   is filled left to right (always the case for sorted input).

/// Floor of `log2(n)`; panics on `n = 0`.
///
/// # Examples
/// ```
/// use ist_bits::ilog2_floor;
/// assert_eq!(ilog2_floor(1), 0);
/// assert_eq!(ilog2_floor(15), 3);
/// assert_eq!(ilog2_floor(16), 4);
/// ```
#[inline]
pub fn ilog2_floor(n: u64) -> u32 {
    assert!(n > 0, "log of zero");
    63 - n.leading_zeros()
}

/// Floor of `log_k(n)`; panics on `n = 0` or `k < 2`.
///
/// # Examples
/// ```
/// use ist_bits::ilog;
/// assert_eq!(ilog(3, 1), 0);
/// assert_eq!(ilog(3, 26), 2);
/// assert_eq!(ilog(3, 27), 3);
/// ```
#[inline]
pub fn ilog(k: u64, n: u64) -> u32 {
    assert!(k >= 2, "base must be at least 2");
    assert!(n > 0, "log of zero");
    let mut p = 1u64;
    let mut e = 0u32;
    // Loop rather than float math: exact for all u64.
    while let Some(next) = p.checked_mul(k) {
        if next > n {
            break;
        }
        p = next;
        e += 1;
    }
    e
}

/// Size of a perfect BST with `levels` levels: `2^levels − 1`.
///
/// # Examples
/// ```
/// use ist_bits::perfect_bst_size;
/// assert_eq!(perfect_bst_size(0), 0);
/// assert_eq!(perfect_bst_size(4), 15);
/// ```
#[inline]
pub fn perfect_bst_size(levels: u32) -> u64 {
    assert!(levels < 64);
    (1u64 << levels) - 1
}

/// `true` iff `n = 2^d − 1` for some `d ≥ 1`.
///
/// # Examples
/// ```
/// use ist_bits::is_perfect_bst_size;
/// assert!(is_perfect_bst_size(1));
/// assert!(is_perfect_bst_size(15));
/// assert!(!is_perfect_bst_size(16));
/// assert!(!is_perfect_bst_size(0));
/// ```
#[inline]
pub fn is_perfect_bst_size(n: u64) -> bool {
    n > 0 && (n & (n + 1)) == 0
}

/// Number of elements in a perfect B-tree with branching factor `k = B + 1`
/// and `node_levels` levels of nodes: `k^node_levels − 1`.
///
/// # Examples
/// ```
/// use ist_bits::perfect_btree_size;
/// // B = 2 (3-way), 3 node levels: 26 elements (Figure 1.2 of the paper).
/// assert_eq!(perfect_btree_size(3, 3), 26);
/// ```
#[inline]
pub fn perfect_btree_size(k: u64, node_levels: u32) -> u64 {
    assert!(k >= 2);
    k.checked_pow(node_levels).expect("btree size overflows") - 1
}

/// `true` iff `n = k^m − 1` for some `m ≥ 1`.
///
/// # Examples
/// ```
/// use ist_bits::is_perfect_btree_size;
/// assert!(is_perfect_btree_size(3, 26));
/// assert!(is_perfect_btree_size(3, 2));
/// assert!(!is_perfect_btree_size(3, 27));
/// ```
#[inline]
pub fn is_perfect_btree_size(k: u64, n: u64) -> bool {
    if n == 0 {
        return false;
    }
    let m = ilog(k, n + 1);
    k.pow(m) == n + 1
}

/// Node levels of the perfect B-tree part of a complete B-tree holding `n`
/// elements with branching `k = B + 1`: the largest `m` with `k^m − 1 ≤ n`.
///
/// # Examples
/// ```
/// use ist_bits::perfect_btree_height;
/// assert_eq!(perfect_btree_height(3, 26), 3);
/// assert_eq!(perfect_btree_height(3, 27), 3);
/// assert_eq!(perfect_btree_height(3, 80), 4); // 3^4 - 1 = 80
/// ```
#[inline]
pub fn perfect_btree_height(k: u64, n: u64) -> u32 {
    assert!(n > 0);
    ilog(k, n + 1)
}

/// Number of levels of the complete BST on `n` vertices
/// (`⌊log2 n⌋ + 1`).
///
/// # Examples
/// ```
/// use ist_bits::complete_bst_height;
/// assert_eq!(complete_bst_height(1), 1);
/// assert_eq!(complete_bst_height(15), 4);
/// assert_eq!(complete_bst_height(16), 5);
/// ```
#[inline]
pub fn complete_bst_height(n: u64) -> u32 {
    ilog2_floor(n) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilog_agrees_with_ilog2() {
        for n in 1..100_000u64 {
            assert_eq!(ilog(2, n), ilog2_floor(n));
        }
    }

    #[test]
    fn perfect_sizes_roundtrip() {
        for d in 1..20u32 {
            let n = perfect_bst_size(d);
            assert!(is_perfect_bst_size(n));
            assert!(!is_perfect_bst_size(n + 1));
            assert_eq!(complete_bst_height(n), d);
        }
        for k in [2u64, 3, 9, 33] {
            for m in 1..6u32 {
                let n = perfect_btree_size(k, m);
                assert!(is_perfect_btree_size(k, n));
                assert_eq!(perfect_btree_height(k, n), m);
            }
        }
    }

    #[test]
    fn ilog_exact_boundaries() {
        for k in [2u64, 3, 5, 10] {
            for e in 1..8u32 {
                let p = k.pow(e);
                assert_eq!(ilog(k, p), e);
                assert_eq!(ilog(k, p - 1), e - 1);
                assert_eq!(ilog(k, p + 1), e);
            }
        }
    }

    #[test]
    fn btree_height_of_complete_sizes() {
        // All sizes between two perfect sizes share the lower height.
        let k = 4u64;
        for m in 1..5u32 {
            let lo = perfect_btree_size(k, m);
            let hi = perfect_btree_size(k, m + 1);
            for n in [lo, lo + 1, (lo + hi) / 2, hi - 1] {
                assert_eq!(perfect_btree_height(k, n), m, "n={n}");
            }
        }
    }
}
