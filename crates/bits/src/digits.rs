//! Base-`k` digit arithmetic and digit reversal.
//!
//! The central operation is [`rev_k`]`(k, b, i)`: reverse the `b` least
//! significant base-`k` digits of `i`, leaving any higher-order digits
//! untouched. For `k = 2` this is the classic bit-reversal used by the
//! Fich–Munro–Poblete BST permutation; for general `k` it implements the
//! `Ξ₁` involutions of Yang et al. for the k-way perfect shuffle on
//! `N = k^d` elements.
//!
//! `rev_k(k, b, ·)` restricted to integers whose higher digits are fixed is
//! an involution: applying it twice yields the identity. That property is
//! what makes the involution-based construction algorithms parallel and
//! in-place (each application is a set of disjoint swaps).

/// Number of base-`k` digits needed to represent `i` (`0` needs one digit).
///
/// # Panics
/// Panics if `k < 2`.
///
/// # Examples
/// ```
/// use ist_bits::num_digits;
/// assert_eq!(num_digits(2, 0), 1);
/// assert_eq!(num_digits(2, 0b1011), 4);
/// assert_eq!(num_digits(10, 999), 3);
/// assert_eq!(num_digits(10, 1000), 4);
/// ```
#[inline]
pub fn num_digits(k: u64, i: u64) -> u32 {
    assert!(k >= 2, "base must be at least 2");
    if i == 0 {
        return 1;
    }
    if k == 2 {
        return 64 - i.leading_zeros();
    }
    let mut d = 0;
    let mut v = i;
    while v > 0 {
        v /= k;
        d += 1;
    }
    d
}

/// Reverse the `b` least significant **bits** of `i`, leaving higher bits
/// unchanged. Uses the hardware `reverse_bits` path (constant time), the
/// analogue of the GPU bit-reversal primitive discussed in the paper.
///
/// # Panics
/// Panics (debug) if `b > 64`.
///
/// # Examples
/// ```
/// use ist_bits::rev2;
/// assert_eq!(rev2(4, 0b0011), 0b1100);
/// assert_eq!(rev2(3, 0b110), 0b011);
/// // Higher bits are preserved:
/// assert_eq!(rev2(2, 0b10110), 0b10101);
/// assert_eq!(rev2(0, 42), 42);
/// ```
#[inline]
pub fn rev2(b: u32, i: u64) -> u64 {
    debug_assert!(b <= 64);
    if b == 0 {
        return i;
    }
    let mask = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
    let low = i & mask;
    let rev = low.reverse_bits() >> (64 - b);
    (i & !mask) | rev
}

/// Software bit reversal of the `b` low bits of `i`, one bit per iteration.
///
/// Semantically identical to [`rev2`]; exists so the `T_REV₂` cost model of
/// the paper (hardware `O(1)` vs software `O(log N)`) can be measured
/// empirically (see the ablation benches).
#[inline]
pub fn rev2_software(b: u32, i: u64) -> u64 {
    debug_assert!(b <= 64);
    if b == 0 {
        return i;
    }
    let mask = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
    let mut low = i & mask;
    let mut rev = 0u64;
    for _ in 0..b {
        rev = (rev << 1) | (low & 1);
        low >>= 1;
    }
    (i & !mask) | rev
}

/// Reverse the `b` least significant base-`k` digits of `i`, leaving any
/// higher-order digits unchanged.
///
/// For `k = 2` this delegates to the hardware path [`rev2`].
///
/// # Panics
/// Panics if `k < 2`.
///
/// # Examples
/// ```
/// use ist_bits::rev_k;
/// // 123 in base 10, reverse low 3 digits -> 321
/// assert_eq!(rev_k(10, 3, 123), 321);
/// // Higher digits preserved: 5123 -> 5321
/// assert_eq!(rev_k(10, 3, 5123), 5321);
/// // Leading zeros within the window count: 120 -> 021 = 21
/// assert_eq!(rev_k(10, 3, 120), 21);
/// assert_eq!(rev_k(2, 4, 0b0011), 0b1100);
/// ```
#[inline]
pub fn rev_k(k: u64, b: u32, i: u64) -> u64 {
    assert!(k >= 2, "base must be at least 2");
    if k == 2 {
        return rev2(b, i);
    }
    if b == 0 {
        return i;
    }
    let window = k.checked_pow(b).expect("k^b overflows u64");
    let high = i / window;
    let mut low = i % window;
    let mut rev = 0u64;
    for _ in 0..b {
        rev = rev * k + low % k;
        low /= k;
    }
    high * window + rev
}

/// Decompose `i` into exactly `b` base-`k` digits, least significant first.
///
/// Digits beyond the magnitude of `i` are zero. Panics if `i` does not fit
/// in `b` digits.
///
/// # Examples
/// ```
/// use ist_bits::to_digits;
/// assert_eq!(to_digits(10, 4, 123), vec![3, 2, 1, 0]);
/// ```
pub fn to_digits(k: u64, b: u32, i: u64) -> Vec<u64> {
    assert!(k >= 2, "base must be at least 2");
    let mut v = i;
    let mut out = Vec::with_capacity(b as usize);
    for _ in 0..b {
        out.push(v % k);
        v /= k;
    }
    assert_eq!(v, 0, "{i} does not fit in {b} base-{k} digits");
    out
}

/// Recompose an integer from base-`k` digits, least significant first.
///
/// Inverse of [`to_digits`].
///
/// # Examples
/// ```
/// use ist_bits::{from_digits, to_digits};
/// assert_eq!(from_digits(10, &to_digits(10, 5, 40321)), 40321);
/// ```
pub fn from_digits(k: u64, digits: &[u64]) -> u64 {
    assert!(k >= 2, "base must be at least 2");
    digits.iter().rev().fold(0u64, |acc, &d| {
        debug_assert!(d < k);
        acc * k + d
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rev2_matches_software() {
        for b in 0..=16u32 {
            for i in 0..(1u64 << 12) {
                assert_eq!(rev2(b, i), rev2_software(b, i), "b={b} i={i}");
            }
        }
    }

    #[test]
    fn rev2_is_involution() {
        for b in 0..=20u32 {
            for i in [0u64, 1, 2, 3, 255, 1023, 4095, 99999, u32::MAX as u64] {
                assert_eq!(rev2(b, rev2(b, i)), i);
            }
        }
    }

    #[test]
    fn rev2_full_width() {
        assert_eq!(rev2(64, 1), 1u64 << 63);
        assert_eq!(rev2(64, u64::MAX), u64::MAX);
    }

    #[test]
    fn rev_k_is_involution() {
        for k in [2u64, 3, 4, 5, 9, 10, 17] {
            for b in 0..=6u32 {
                let window = k.pow(b);
                for i in 0..window.min(5000) {
                    assert_eq!(rev_k(k, b, rev_k(k, b, i)), i, "k={k} b={b} i={i}");
                }
            }
        }
    }

    #[test]
    fn rev_k_preserves_high_digits() {
        assert_eq!(rev_k(10, 2, 98_76), 98_67);
        assert_eq!(rev_k(3, 2, 27 + 5), 27 + rev_k(3, 2, 5));
    }

    #[test]
    fn rev_k_base2_delegates() {
        for b in 0..=10u32 {
            for i in 0..1024u64 {
                assert_eq!(rev_k(2, b, i), rev2(b, i));
            }
        }
    }

    #[test]
    fn digit_roundtrip() {
        for k in [2u64, 3, 7, 10] {
            for i in 0..2000u64 {
                let b = num_digits(k, i) + 2;
                assert_eq!(from_digits(k, &to_digits(k, b, i)), i);
            }
        }
    }

    #[test]
    fn num_digits_edges() {
        assert_eq!(num_digits(2, u64::MAX), 64);
        assert_eq!(num_digits(3, 1), 1);
        assert_eq!(num_digits(3, 2), 1);
        assert_eq!(num_digits(3, 3), 2);
    }

    #[test]
    fn rev_k_against_digit_reference() {
        // Cross-check rev_k against an explicit digit-vector reversal.
        for k in [3u64, 5, 10] {
            for b in 1..=4u32 {
                for i in 0..k.pow(b).min(3000) {
                    let mut d = to_digits(k, b, i);
                    d.reverse();
                    assert_eq!(rev_k(k, b, i), from_digits(k, &d), "k={k} b={b} i={i}");
                }
            }
        }
    }
}
