//! Sync-primitive routing point for the publication/compaction state
//! machine.
//!
//! Everything `dynamic.rs` needs from `std::sync`/`std::thread` is
//! imported **only** through this module, so one `--cfg ist_loom`
//! swaps the whole lock-free surface onto `ist-loom`'s model-checked
//! shims (see `crates/loom-shim`) without touching the algorithm. The
//! two builds are otherwise identical: the shim types mirror the std
//! signatures (`lock()` still returns a `LockResult`, `spawn` still
//! returns a joinable handle that reports panics), so the production
//! path is bit-for-bit the code the model checker explores.
//!
//! `ist-lint`'s `no-spawn-outside-parallel` recognizes this file as a
//! threading-substrate routing point; everywhere else in the crate,
//! `thread::spawn` is a lint error.

#[cfg(not(ist_loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(ist_loom))]
pub(crate) use std::sync::{Arc, Mutex, MutexGuard};
#[cfg(not(ist_loom))]
pub(crate) use std::thread::{spawn, yield_now, JoinHandle};

#[cfg(ist_loom)]
pub(crate) use ist_loom::sync::{Arc, AtomicBool, AtomicUsize, Mutex, MutexGuard, Ordering};
#[cfg(ist_loom)]
pub(crate) use ist_loom::thread::{spawn, yield_now, JoinHandle};
