//! [`AlignedVec`]: cache-line-aligned run storage, and the scatter that
//! builds a layout directly inside it.
//!
//! The layouts' promise — "one node = one memory transfer" — is
//! arithmetic fiction unless node base addresses actually coincide with
//! cache-line boundaries: a `Vec<u64>` is only 8-byte aligned, so an
//! 8-key B-tree node straddles two lines in 7 of 8 placements. This
//! module gives the serving facades a buffer type whose allocation is
//! **64-byte aligned** (the x86/aarch64 line size), with an opt-in
//! 2 MiB alignment + `madvise(MADV_HUGEPAGE)` for TLB relief on linux
//! (`IST_HUGEPAGES=1`).
//!
//! Construction never copies twice: `AlignedVec::scatter_from_vec`
//! applies the (data-oblivious) layout permutation *during* the move
//! from the caller's `Vec` into the aligned destination — one parallel
//! pass, `dst[pos(r)] = src[r]` — instead of permuting in place and
//! then relocating. [`AlignedVec::from_vec`] is the zero-copy adoption
//! path for un-permuted ([`QueryKind::Sorted`](ist_query::QueryKind))
//! runs, which stay in the caller's allocation (and therefore carry
//! only the allocator's natural alignment — the 64-byte guarantee
//! applies to the tree-layout kinds, which always scatter).

use core::mem::{align_of, size_of};
use core::ptr::NonNull;
use ist_core::{Error, Layout};
use ist_layout::{bst_pos, complete::BtreeCompleteShape, veb_pos, CompleteShape};

/// Cache-line alignment every raw-backed allocation gets at minimum.
pub const CACHE_LINE: usize = 64;

/// Huge-page alignment used when `IST_HUGEPAGES=1` and the payload is
/// large enough to contain at least one huge page.
const HUGE_PAGE: usize = 2 * 1024 * 1024;

/// `MADV_HUGEPAGE` from `<sys/mman.h>` (linux).
#[cfg(target_os = "linux")]
const MADV_HUGEPAGE: i32 = 14;

// SAFETY: the declared signature matches POSIX `madvise`; the symbol
// is in every linux libc (declared directly because the workspace
// builds offline, without the `libc` crate).
#[cfg(target_os = "linux")]
unsafe extern "C" {
    /// Declared directly (the workspace builds offline, without the
    /// `libc` crate); the symbol is in every linux libc.
    fn madvise(addr: *mut core::ffi::c_void, length: usize, advice: i32) -> i32;
}

/// `true` iff the process opted into 2 MiB-aligned run allocations
/// (checked once; the knob is a startup decision, not a per-build one).
fn huge_pages_enabled() -> bool {
    use std::sync::OnceLock;
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("IST_HUGEPAGES").is_ok_and(|v| v == "1"))
}

/// How an [`AlignedVec`]'s buffer was obtained — governs deallocation.
enum Backing {
    /// `std::alloc` allocation of `cap` elements at `align` bytes.
    Raw { align: usize },
    /// Adopted from a `Vec` with the given capacity (zero-copy both
    /// ways); freed by reconstructing the `Vec`.
    Vec { cap: usize },
}

/// A contiguous owned buffer of `T` whose raw allocations are at least
/// [`CACHE_LINE`]-aligned.
///
/// Behaves like a fixed-length `Vec<T>` (derefs to a slice); it has no
/// growth API because run storage is immutable after construction.
pub struct AlignedVec<T> {
    ptr: NonNull<T>,
    len: usize,
    backing: Backing,
}

// SAFETY: AlignedVec owns its elements exactly like Vec<T> does; the
// raw pointer is not shared.
unsafe impl<T: Send> Send for AlignedVec<T> {}
// SAFETY: shared access only hands out `&T` (Deref), so `Sync` lifts
// directly from `T: Sync`, as for Vec<T>.
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T> AlignedVec<T> {
    /// The alignment the buffer is guaranteed to have: [`CACHE_LINE`]
    /// or more for scatter-built (raw) buffers, the type's natural
    /// alignment for zero-copy [`AlignedVec::from_vec`] adoptions.
    pub fn alignment(&self) -> usize {
        match self.backing {
            Backing::Raw { align } => align,
            Backing::Vec { .. } => align_of::<T>(),
        }
    }

    /// Zero-copy adoption of a `Vec`'s buffer (used for un-permuted
    /// sorted runs, where no element needs to move). Carries the `Vec`
    /// allocator's natural alignment only.
    pub fn from_vec(v: Vec<T>) -> Self {
        let mut v = core::mem::ManuallyDrop::new(v);
        let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
        Self {
            // SAFETY: Vec's pointer is non-null (dangling for cap 0,
            // still non-null).
            ptr: unsafe { NonNull::new_unchecked(ptr) },
            len,
            backing: Backing::Vec { cap },
        }
    }

    /// The buffer's contents, as a `Vec`. Zero-copy when the buffer was
    /// adopted from a `Vec`; raw-backed buffers are copied into a fresh
    /// `Vec` allocation (this is the de-construction path —
    /// `into_inner` / `into_parts` — not a serving path).
    pub fn into_vec(self) -> Vec<T> {
        let this = core::mem::ManuallyDrop::new(self);
        match this.backing {
            // SAFETY: round-trip of the adopted Vec's raw parts.
            Backing::Vec { cap } => unsafe {
                Vec::from_raw_parts(this.ptr.as_ptr(), this.len, cap)
            },
            // SAFETY: the buffer holds `len` initialized elements;
            // reading them out transfers ownership, after which only
            // the raw allocation is freed (not the elements).
            Backing::Raw { align } => unsafe {
                let mut out = Vec::with_capacity(this.len);
                core::ptr::copy_nonoverlapping(this.ptr.as_ptr(), out.as_mut_ptr(), this.len);
                out.set_len(this.len);
                dealloc_raw::<T>(this.ptr, this.len, align);
                out
            },
        }
    }

    /// An uninitialized raw-backed buffer for `n` elements, 64-byte
    /// aligned (2 MiB + `MADV_HUGEPAGE` when opted in and big enough).
    /// Returned with `len == 0`; the caller initializes all `n` slots
    /// and then calls `assume_len(n)`.
    fn with_uninit(n: usize) -> Self {
        debug_assert!(size_of::<T>() != 0, "ZSTs take the from_vec path");
        let bytes = n * size_of::<T>();
        let mut align = CACHE_LINE.max(align_of::<T>());
        if huge_pages_enabled() && bytes >= HUGE_PAGE {
            align = HUGE_PAGE;
        }
        let layout = core::alloc::Layout::from_size_align(bytes, align).expect("run too large");
        // SAFETY: size > 0 (n > 0 checked by callers, T is not a ZST).
        let raw = unsafe { std::alloc::alloc(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            std::alloc::handle_alloc_error(layout)
        };
        #[cfg(target_os = "linux")]
        if align == HUGE_PAGE {
            // SAFETY: `raw` points at a live allocation of `bytes`
            // bytes. The call is advisory: ask the kernel to back the
            // range with transparent huge pages. Failure is harmless
            // (the buffer still works at 4 KiB granularity), so the
            // result is deliberately ignored.
            unsafe {
                let _ = madvise(raw.cast(), bytes, MADV_HUGEPAGE);
            }
        }
        Self {
            ptr,
            len: 0,
            backing: Backing::Raw { align },
        }
    }

    /// Declare the first `n` slots initialized.
    ///
    /// # Safety
    /// All `n` elements must have been written.
    unsafe fn assume_len(&mut self, n: usize) {
        self.len = n;
    }

    /// Allocate an aligned raw-backed buffer for `n` elements and let
    /// `fill` initialize it through its raw **byte** view — the
    /// zero-copy load path for fixed-width keys: the persistence layer
    /// streams a run file's key section straight into the aligned
    /// allocation, no staging `Vec` in between.
    ///
    /// If `fill` errors, the allocation is freed and the error is
    /// returned.
    ///
    /// # Safety
    /// `T` must be plain old data: every bit pattern of
    /// `size_of::<T>()` bytes must be a valid `T` (the integer key
    /// types), and `T` must not have a destructor that could observe a
    /// partially-filled buffer. `fill` must either fully initialize the
    /// byte view or return `Err`.
    pub(crate) unsafe fn from_pod_bytes_with<E>(
        n: usize,
        fill: impl FnOnce(&mut [u8]) -> Result<(), E>,
    ) -> Result<Self, E> {
        debug_assert!(size_of::<T>() != 0, "ZSTs take the from_vec path");
        if n == 0 {
            return Ok(Self::from_vec(Vec::new()));
        }
        let mut buf = Self::with_uninit(n);
        // SAFETY: `with_uninit(n)` allocated `n * size_of::<T>()`
        // writable bytes at `ptr`.
        let bytes = unsafe {
            core::slice::from_raw_parts_mut(buf.ptr.as_ptr().cast::<u8>(), n * size_of::<T>())
        };
        match fill(bytes) {
            Ok(()) => {
                // SAFETY: `fill` initialized every byte, and by the
                // caller's POD contract those bytes are `n` valid `T`s.
                unsafe { buf.assume_len(n) };
                Ok(buf)
            }
            Err(e) => {
                // `buf.len` is still 0, but the allocation holds `n`
                // elements — its Drop would dealloc with the wrong
                // layout. Free manually with the true capacity.
                let ptr = buf.ptr;
                let Backing::Raw { align } = buf.backing else {
                    unreachable!("with_uninit always raw-backs")
                };
                core::mem::forget(buf);
                // SAFETY: same layout as the allocation; no elements
                // are dropped (POD contract).
                unsafe { dealloc_raw::<T>(ptr, n, align) };
                Err(e)
            }
        }
    }
}

impl<T: Send> AlignedVec<T> {
    /// Move `src` into a fresh aligned buffer, applying the permutation
    /// `dst[pos.pos(r)] = src[r]` during the move — the single-pass
    /// build behind [`crate::StaticIndex::build_presorted`] /
    /// [`crate::StaticMap::build_presorted`]. Parallelized over element
    /// ranges (the layout maps are pure index arithmetic, so disjoint
    /// source ranges write disjoint destination slots).
    pub(crate) fn scatter_from_vec(mut src: Vec<T>, pos: &LayoutPos) -> Self {
        let n = src.len();
        if n == 0 || size_of::<T>() == 0 {
            // Nothing moves (or nothing has an address): adopt as-is —
            // any permutation of an empty/ZST run is itself.
            return Self::from_vec(src);
        }
        debug_assert_eq!(n, pos.len());
        let mut dst = Self::with_uninit(n);
        let src_ptr = SendPtr(src.as_mut_ptr());
        let dst_ptr = SendPtr(dst.ptr.as_ptr());
        // SAFETY: zero is always a valid length. Ownership of the
        // elements transfers to `dst` now; if a write below panicked
        // (it cannot — the maps are pure arithmetic and the moves are
        // bitwise), both vectors would report length 0 and the
        // elements would leak rather than double-drop.
        unsafe { src.set_len(0) };
        // Sequential below this grain: thread spawn + shape math beat
        // the memory traffic on small runs.
        const GRAIN: usize = 1 << 14;
        let scatter_range = |lo: usize, hi: usize| {
            let (s, d) = (src_ptr, dst_ptr);
            for r in lo..hi {
                // SAFETY: r < n on the source side; pos() is a bijection
                // of 0..n, so every destination index is in bounds and
                // written exactly once.
                unsafe { d.0.add(pos.pos(r)).write(s.0.add(r).read()) }
            }
        };
        if n <= 2 * GRAIN {
            scatter_range(0, n);
        } else {
            rayon::scope(|sc| {
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + GRAIN).min(n);
                    let f = &scatter_range;
                    sc.spawn(move |_| f(lo, hi));
                    lo = hi;
                }
            });
        }
        // SAFETY: every slot 0..n written exactly once above.
        unsafe { dst.assume_len(n) };
        dst
    }
}

/// A raw pointer that crosses `rayon::scope` task boundaries; safety
/// rests on the scatter ranges being disjoint. (`Clone`/`Copy` are
/// manual: the derive would demand `T: Copy`, but a pointer is Copy
/// regardless of its pointee.)
struct SendPtr<T>(*mut T);
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: the pointer is only dereferenced inside the scatter tasks,
// which write provably disjoint index ranges; `T: Send` because
// elements move across the task boundary.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: same argument — no `&T` is ever shared, tasks copy through
// disjoint raw offsets.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Free a raw-backed allocation of `cap` elements at `align` without
/// touching the elements.
///
/// # Safety
/// `ptr` must be a live `std::alloc::alloc` allocation made with
/// exactly this element count and alignment, and its elements must
/// already be moved out or trivially droppable.
unsafe fn dealloc_raw<T>(ptr: NonNull<T>, cap: usize, align: usize) {
    let layout = core::alloc::Layout::from_size_align(cap * size_of::<T>(), align)
        .expect("layout was valid at alloc time");
    // SAFETY: same layout as the allocation (with_uninit never over-
    // allocates: cap elements, same align).
    unsafe { std::alloc::dealloc(ptr.as_ptr().cast(), layout) }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        match self.backing {
            // SAFETY: round-trip of the adopted Vec.
            Backing::Vec { cap } => unsafe {
                drop(Vec::from_raw_parts(self.ptr.as_ptr(), self.len, cap));
            },
            // SAFETY: the first `len` slots are initialized, and
            // raw-backed buffers are allocated with cap == len (the
            // scatter fills every slot before assume_len).
            Backing::Raw { align } => unsafe {
                core::ptr::drop_in_place(core::ptr::slice_from_raw_parts_mut(
                    self.ptr.as_ptr(),
                    self.len,
                ));
                dealloc_raw::<T>(self.ptr, self.len, align);
            },
        }
    }
}

impl<T> core::ops::Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: len initialized elements at ptr.
        unsafe { core::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl<T> core::ops::DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: len initialized elements at ptr, uniquely owned.
        unsafe { core::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(&**self, f)
    }
}

/// The sorted-rank → layout-position map of one tree layout, shared by
/// the key and value scatters of a [`crate::StaticMap`] build so the
/// shape arithmetic is computed once.
pub(crate) enum LayoutPos {
    Bst(CompleteShape),
    Veb(CompleteShape),
    Btree(BtreeCompleteShape),
}

impl LayoutPos {
    /// Position map for `n ≥ 1` elements in `layout`.
    pub(crate) fn new(layout: Layout, n: usize) -> Result<Self, Error> {
        debug_assert!(n >= 1);
        match layout {
            Layout::Bst => Ok(Self::Bst(CompleteShape::new(n))),
            Layout::Veb => Ok(Self::Veb(CompleteShape::new(n))),
            Layout::Btree { b: 0 } => Err(Error::ZeroNodeCapacity),
            Layout::Btree { b } => Ok(Self::Btree(BtreeCompleteShape::new(n, b))),
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Bst(s) | Self::Veb(s) => s.len(),
            Self::Btree(s) => s.len(),
        }
    }

    /// Layout position of sorted rank `r` — the same maps
    /// [`Searcher::position_of_rank`](ist_query::Searcher::position_of_rank)
    /// inverts, so `scatter(sorted)[pos(r)] == sorted[r]`.
    #[inline]
    fn pos(&self, r: usize) -> usize {
        match self {
            Self::Bst(s) => s.pos(r, bst_pos),
            Self::Veb(s) => s.pos(r, veb_pos),
            Self::Btree(s) => s.pos(r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ist_core::{permute_in_place, Algorithm};

    /// The scatter must land every element exactly where the in-place
    /// construction algorithms put it — same maps, different mechanics.
    #[test]
    fn scatter_matches_in_place_construction() {
        let layouts = [
            Layout::Bst,
            Layout::Veb,
            Layout::Btree { b: 1 },
            Layout::Btree { b: 3 },
            Layout::Btree { b: 8 },
            Layout::Btree { b: 16 },
        ];
        for n in [1usize, 2, 7, 8, 63, 64, 100, 1023, 4097, (1 << 16) + 11] {
            let sorted: Vec<u64> = (0..n as u64).collect();
            for layout in layouts {
                let mut expect = sorted.clone();
                permute_in_place(&mut expect, layout, Algorithm::CycleLeader).unwrap();
                let pos = LayoutPos::new(layout, n).unwrap();
                let got = AlignedVec::scatter_from_vec(sorted.clone(), &pos);
                assert_eq!(&*got, &expect[..], "n={n} layout={layout:?}");
                assert!(got.alignment() >= CACHE_LINE);
                assert_eq!(got.as_ptr() as usize % CACHE_LINE, 0);
            }
        }
    }

    #[test]
    fn zero_width_and_empty_runs() {
        assert!(matches!(
            LayoutPos::new(Layout::Btree { b: 0 }, 5),
            Err(Error::ZeroNodeCapacity)
        ));
        let pos = LayoutPos::new(Layout::Bst, 1).unwrap();
        let v = AlignedVec::scatter_from_vec(vec![7u64], &pos);
        assert_eq!(&*v, &[7]);
        // ZST elements scatter to themselves.
        let z = AlignedVec::scatter_from_vec(
            vec![(), (), ()],
            &LayoutPos::new(Layout::Bst, 3).unwrap(),
        );
        assert_eq!(z.len(), 3);
    }

    #[test]
    fn vec_round_trip_is_zero_copy() {
        let v: Vec<u64> = (0..100).collect();
        let p = v.as_ptr();
        let a = AlignedVec::from_vec(v);
        assert_eq!(a.as_ptr(), p, "adoption must not move the buffer");
        let back = a.into_vec();
        assert_eq!(back.as_ptr(), p, "extraction must not move the buffer");
        assert_eq!(back.len(), 100);
    }

    /// Drop must run element destructors exactly once in both backings.
    #[test]
    fn drops_elements_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(#[allow(dead_code)] u64);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let pos = LayoutPos::new(Layout::Veb, 50).unwrap();
        let scattered = AlignedVec::scatter_from_vec((0..50).map(D).collect(), &pos);
        let adopted = AlignedVec::from_vec((0..30).map(D).collect());
        assert_eq!(DROPS.load(Ordering::Relaxed), 0);
        drop(scattered);
        assert_eq!(DROPS.load(Ordering::Relaxed), 50);
        let v = adopted.into_vec();
        drop(v);
        assert_eq!(DROPS.load(Ordering::Relaxed), 80);
    }
}
