//! [`StaticMap`]: key→value serving on top of the implicit layouts.
//!
//! A [`crate::StaticIndex`] answers "is this key stored, and where?";
//! a serving system needs "what is stored *under* this key?". The
//! layouts make that almost free: because the layout permutation is
//! **data-oblivious** (position depends only on `n` and the layout —
//! see `ist_perm::oblivious`), the payload array can be carried through
//! the exact same index maps as the keys without ever being compared.
//! Construction therefore:
//!
//! 1. argsorts the keys (the only comparisons anywhere),
//! 2. applies the sort's index permutation to keys **and** values in
//!    one in-place cycle walk ([`ist_perm::co_permute_by_gather`]),
//! 3. scatters each array through the same oblivious layout map into
//!    cache-line-aligned run storage ([`crate::AlignedVec`] — one pass
//!    per array, the permutation applied during the move; note the
//!    `V: Send` bound is all the value side needs: no `Ord`, no `Eq`,
//!    nothing).
//!
//! After that, `keys()[p]` and `values()[p]` are parallel for every
//! layout position `p`, so every query the key side answers (point,
//! batch, range, successor/predecessor — all tiers, including the
//! software-pipelined batched engine) resolves to a payload with one
//! array read.

use crate::alloc::{AlignedVec, LayoutPos};
use crate::index::StaticIndex;
use ist_core::{Algorithm, Error, Layout};
use ist_perm::co_permute_by_gather;
use ist_query::{QueryKind, Searcher};

/// An immutable key→value map stored as two parallel implicit-layout
/// arrays: keys in the layout, payloads co-permuted obliviously.
///
/// Duplicate keys are allowed; lookups resolve to *some* matching
/// slot's value (deterministic per layout — see the duplicate-key
/// contract in [`ist_query`](ist_query#duplicate-keys)).
///
/// # Examples
/// ```
/// use implicit_search_trees::{Layout, StaticMap};
///
/// // Unsorted keys with arbitrary (non-Ord) payloads.
/// let map = StaticMap::build(
///     vec![30u64, 10, 20],
///     vec!["thirty", "ten", "twenty"],
///     Layout::Veb,
/// )
/// .unwrap();
/// assert_eq!(map.get(&20), Some(&"twenty"));
/// assert_eq!(map.get(&25), None);
/// assert_eq!(map.lower_bound(&25), Some((&30, &"thirty")));
/// assert_eq!(map.batch_get(&[10, 15, 30]), vec![Some(&"ten"), None, Some(&"thirty")]);
/// assert_eq!(map.range_count(&10, &30), 2);
/// ```
pub struct StaticMap<K, V> {
    index: StaticIndex<K>,
    values: AlignedVec<V>,
}

impl<K: Ord + Send + Sync + 'static, V: Send> StaticMap<K, V> {
    /// Sort `keys`, co-permute `values` alongside them, and permute
    /// both into `layout` in place (BST uses the grandchild-prefetching
    /// descent, like [`StaticIndex::build`]).
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths.
    pub fn build(keys: Vec<K>, values: Vec<V>, layout: Layout) -> Result<Self, Error> {
        Self::build_for_kind(
            keys,
            values,
            crate::index::default_kind_for_layout(layout),
            Algorithm::CycleLeader,
        )
    }

    /// Full-control constructor: explicit [`QueryKind`] (with
    /// [`QueryKind::Sorted`] the arrays stay in sorted order — the
    /// binary-search baseline) and construction [`Algorithm`].
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths.
    pub fn build_for_kind(
        mut keys: Vec<K>,
        mut values: Vec<V>,
        kind: QueryKind,
        algorithm: Algorithm,
    ) -> Result<Self, Error> {
        assert_eq!(
            keys.len(),
            values.len(),
            "StaticMap::build: {} keys but {} values",
            keys.len(),
            values.len()
        );
        // Argsort (stable under duplicates via the index tiebreak): the
        // only place anything is ever compared.
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_unstable_by(|&x, &y| keys[x].cmp(&keys[y]).then(x.cmp(&y)));
        co_permute_by_gather(&mut keys, &mut values, &order);
        drop(order);
        Self::build_presorted(keys, values, kind, algorithm)
    }

    /// Build from `(keys, values)` pairs that are **already sorted** by
    /// key and already aligned slot-for-slot, skipping the argsort and
    /// the co-permutation entirely: the merge-then-build fast path.
    ///
    /// [`crate::DynamicMap`]'s tier merges produce exactly this shape —
    /// a k-way merge of sorted runs is sorted, and its values were
    /// carried along during the merge — so the rebuild reduces to two
    /// oblivious layout scatters (keys, then values through the same
    /// position map; see [`ist_perm::oblivious`]) that move each array
    /// **directly** into its aligned destination buffer: exactly one
    /// allocation per array on the rebuild hot path, no intermediate
    /// copy (a regression test pins the allocation count).
    ///
    /// Sortedness of `keys` is the caller's contract; debug builds
    /// assert it.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths.
    ///
    /// # Examples
    /// ```
    /// use implicit_search_trees::{Algorithm, Layout, QueryKind, StaticMap};
    /// // Already merged: sorted keys, values aligned.
    /// let map = StaticMap::build_presorted(
    ///     vec![10u64, 20, 30],
    ///     vec!["ten", "twenty", "thirty"],
    ///     QueryKind::Veb,
    ///     Algorithm::CycleLeader,
    /// )
    /// .unwrap();
    /// assert_eq!(map.get(&20), Some(&"twenty"));
    /// ```
    pub fn build_presorted(
        keys: Vec<K>,
        values: Vec<V>,
        kind: QueryKind,
        algorithm: Algorithm,
    ) -> Result<Self, Error> {
        assert_eq!(
            keys.len(),
            values.len(),
            "StaticMap::build_presorted: {} keys but {} values",
            keys.len(),
            values.len()
        );
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "StaticMap::build_presorted: keys are not sorted"
        );
        let _ = algorithm; // see StaticIndex::build_presorted's doc note
        let (keys, values) = match crate::index::layout_of_kind(kind) {
            Some(layout) if !keys.is_empty() => {
                // One shape computation serves both scatters: the maps
                // are data-oblivious, so the value side reuses the key
                // side's arithmetic untouched.
                let pos = LayoutPos::new(layout, keys.len())?;
                (
                    AlignedVec::scatter_from_vec(keys, &pos),
                    AlignedVec::scatter_from_vec(values, &pos),
                )
            }
            _ => (AlignedVec::from_vec(keys), AlignedVec::from_vec(values)),
        };
        Ok(Self {
            index: StaticIndex::from_layout_order(keys, kind),
            values,
        })
    }

    /// Reassemble a map from arrays already in **layout order** — the
    /// run-file load path: a persisted run stores its keys and values
    /// exactly as the in-memory `AlignedVec`s hold them, so a load is
    /// adoption plus this constructor, with no permutation work.
    /// Layout-order correctness is the caller's (the run file format's)
    /// contract.
    pub(crate) fn from_layout_parts(
        keys: AlignedVec<K>,
        values: AlignedVec<V>,
        kind: QueryKind,
    ) -> Self {
        debug_assert_eq!(keys.len(), values.len());
        Self {
            index: StaticIndex::from_layout_order(keys, kind),
            values,
        }
    }

    /// Number of stored entries (duplicate keys counted).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` iff no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The layout the entries are stored in (`None` for the un-permuted
    /// [`QueryKind::Sorted`] baseline).
    pub fn layout(&self) -> Option<Layout> {
        self.index.layout()
    }

    /// The descent this map answers queries with.
    pub fn kind(&self) -> QueryKind {
        self.index.kind()
    }

    /// The stored keys in **layout order** (parallel to
    /// [`StaticMap::values`]).
    pub fn keys(&self) -> &[K] {
        self.index.as_slice()
    }

    /// Zero-copy view of the payloads in **layout order**: for every
    /// layout position `p` (as returned by the key side's `search` /
    /// `batch_search`), `values()[p]` is the payload stored under
    /// `keys()[p]`.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// The key side as a [`StaticIndex`], for the full key-only query
    /// API (ranks, batch counts, pipelined tiers, …).
    pub fn index(&self) -> &StaticIndex<K> {
        &self.index
    }

    /// A borrowing [`Searcher`] over the keys (for amortizing shape
    /// setup across many calls).
    pub fn searcher(&self) -> Searcher<'_, K> {
        self.index.searcher()
    }

    /// Consume the map, returning `(keys, values)` in layout order
    /// (copies out of the aligned buffers for tree layouts; zero-copy
    /// for [`QueryKind::Sorted`]).
    pub fn into_parts(self) -> (Vec<K>, Vec<V>) {
        (self.index.into_inner(), self.values.into_vec())
    }

    /// `true` iff `key` is stored.
    pub fn contains_key(&self, key: &K) -> bool {
        self.index.contains(key)
    }

    /// The payload stored under `key`, if any (some matching slot's
    /// value when `key` is duplicated).
    pub fn get(&self, key: &K) -> Option<&V> {
        Some(&self.values[self.index.search(key)?])
    }

    /// The stored key and its payload, if any.
    pub fn get_key_value(&self, key: &K) -> Option<(&K, &V)> {
        self.entry_at(self.index.search(key)?)
    }

    /// Number of stored keys strictly smaller than `key`.
    pub fn rank(&self, key: &K) -> usize {
        self.index.rank(key)
    }

    /// The smallest stored entry with key `≥ key`, if any.
    pub fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        self.entry_at(self.searcher().lower_bound(key)?)
    }

    /// The smallest stored entry with key **strictly greater** than
    /// `key`, if any.
    pub fn successor(&self, key: &K) -> Option<(&K, &V)> {
        self.entry_at(self.searcher().successor(key)?)
    }

    /// The largest stored entry with key **strictly smaller** than
    /// `key`, if any.
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        self.entry_at(self.searcher().predecessor(key)?)
    }

    /// Number of stored keys in the half-open interval `[lo, hi)`
    /// (duplicates counted), via two rank descents.
    ///
    /// Reversed bounds (`lo > hi`) describe an empty interval and yield
    /// 0 — never a panic (see [`StaticIndex::range_count`]).
    pub fn range_count(&self, lo: &K, hi: &K) -> usize {
        self.index.range_count(lo, hi)
    }

    /// Payloads for a batch of lookups, on the software-pipelined
    /// multi-descent engine (parallel over adaptive chunks):
    /// `out[i]` is exactly what [`StaticMap::get`]`(&keys[i])` returns.
    pub fn batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.index
            .batch_search(keys)
            .into_iter()
            .map(|pos| pos.map(|p| &self.values[p]))
            .collect()
    }

    /// Per-pair [`StaticMap::range_count`] for a batch of `(lo, hi)`
    /// ranges; both descents of every pair go through one pipeline.
    pub fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        self.index.batch_range_count(ranges)
    }

    fn entry_at(&self, pos: usize) -> Option<(&K, &V)> {
        Some((self.index.get(pos)?, &self.values[pos]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Payload type with no Ord/Eq — the obliviousness claim in types.
    struct Payload {
        tag: f64, // f64: not even Eq
    }

    #[test]
    fn values_follow_keys_through_every_layout() {
        let keys: Vec<u64> = vec![50, 10, 40, 20, 30, 20];
        let values: Vec<Payload> = keys.iter().map(|&k| Payload { tag: k as f64 }).collect();
        for kind in [
            QueryKind::Sorted,
            QueryKind::Bst,
            QueryKind::BstPrefetch,
            QueryKind::Btree(2),
            QueryKind::Veb,
        ] {
            let map = StaticMap::build_for_kind(
                keys.clone(),
                keys.iter().map(|&k| Payload { tag: k as f64 }).collect(),
                kind,
                Algorithm::Involution,
            )
            .unwrap();
            // Parallel views stay aligned slot by slot.
            for (k, v) in map.keys().iter().zip(map.values()) {
                assert_eq!(*k as f64, v.tag, "{kind:?}");
            }
            for k in &keys {
                assert_eq!(map.get(k).unwrap().tag, *k as f64, "{kind:?}");
            }
            assert!(map.get(&99).is_none());
        }
        drop(values);
    }

    #[test]
    fn empty_and_mismatched() {
        let map = StaticMap::<u64, String>::build(vec![], vec![], Layout::Bst).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.get(&1), None);
        assert_eq!(map.batch_get(&[1, 2]), vec![None, None]);
        assert_eq!(map.successor(&0), None);
        let r =
            std::panic::catch_unwind(|| StaticMap::build(vec![1u64], vec!["a", "b"], Layout::Bst));
        assert!(r.is_err(), "length mismatch must panic");
    }
}
