//! # ist-dynamic
//!
//! The serving facades over the implicit search tree layouts:
//!
//! * [`StaticIndex`] — an immutable sorted-key index, permuted in place
//!   into a cache-optimal layout, with the full point/batch/range query
//!   API.
//! * [`StaticMap`] — the key→value variant: payloads co-permuted
//!   obliviously alongside the keys (`V` never compared).
//! * [`DynamicMap`] — the write-capable structure this crate exists
//!   for: a logarithmic-method (LSM-style) dynamization that keeps
//!   every resident run in a static layout and turns the paper's fast
//!   parallel in-place **rebuild** into the mutation primitive.
//!
//! All three are re-exported from the root `implicit-search-trees`
//! facade crate; this crate exists so the dynamization can layer on the
//! static facades without a dependency cycle.
//!
//! ## Dynamization in one paragraph
//!
//! A [`DynamicMap`] absorbs writes in a small sorted buffer; when the
//! buffer fills it is **sealed** into an immutable L0 run (one
//! argsort-free in-place layout build, [`StaticMap::build_presorted`] —
//! the only construction work on the writer's path) and the k-way merge
//! of sealed runs + tiers is **compacted** on a background worker
//! thread ([`dynamic::CompactionMode`]), installed atomically when it
//! finishes; reads consult sealed-but-uncompacted runs in the meantime,
//! so answers stay exact while merges are mid-flight. Deletes are
//! tombstones annihilated at merge time; per-version integer *weights*
//! make summed ranks exact even when keys are overwritten or
//! re-inserted across runs (see the [`dynamic`](self) module docs).
//! Reads fan out newest-run-first and reuse the software-pipelined
//! batched engine per run; snapshots ([`DynamicMap::snapshot`] →
//! [`Frozen`], or a cloneable [`Reader`] handle published at
//! seal/compaction granularity) decouple concurrent readers from
//! merges entirely.

pub mod alloc;
pub mod dynamic;
mod index;
mod map;
pub(crate) mod persist;
pub(crate) mod sync;

pub use alloc::AlignedVec;
pub use dynamic::{
    CompactionMode, CompactionPolicy, CompactionStyle, DynamicMap, Frozen, Reader,
    DEFAULT_BUFFER_CAP, MAX_SEALED_RUNS,
};
pub use index::{default_kind_for_layout, StaticIndex};
pub use map::StaticMap;
