//! [`StaticIndex`]: the one-stop facade for "I have keys, serve
//! queries fast".
//!
//! Owns its key array: construction sorts the keys and scatters them
//! into a fresh **cache-line-aligned** buffer ([`crate::AlignedVec`]) in
//! the chosen layout — the permutation is applied *during* the move, in
//! one parallel pass, so node base addresses coincide with cache lines
//! without any extra copy. Then every point, batch, and range query
//! from `ist-query` is available as a method. Batch queries run on the
//! software-pipelined multi-descent engine and parallelize over
//! adaptively-sized chunks.

use crate::alloc::{AlignedVec, LayoutPos};
use ist_core::{Algorithm, Error, Layout};
use ist_query::{QueryKind, Searcher};

/// An immutable sorted-key index stored as an implicit search tree
/// layout.
///
/// # Examples
/// ```
/// use implicit_search_trees::{Layout, StaticIndex};
///
/// // Unsorted, duplicated keys: build() sorts then permutes in place.
/// let index = StaticIndex::build(vec![30u64, 10, 20, 20, 50], Layout::Veb).unwrap();
/// assert_eq!(index.len(), 5);
/// assert!(index.contains(&20));
/// assert_eq!(index.rank(&20), 1);              // one key (10) strictly below
/// assert_eq!(index.lower_bound(&25), Some(&30));
/// assert_eq!(index.range_count(&10, &30), 3);  // 10, 20, 20
/// assert_eq!(index.batch_count(&[10, 11, 50]), 2);
/// ```
pub struct StaticIndex<K> {
    data: AlignedVec<K>,
    kind: QueryKind,
}

impl<K: Ord + Send + Sync + 'static> StaticIndex<K> {
    /// Sort `keys` and scatter them into `layout` inside aligned run
    /// storage, using the best default query descent for that layout
    /// (grandchild prefetching for the BST; the const-width SIMD kernel
    /// for B-tree widths 8/16 on eligible key types — see
    /// [`default_kind_for_layout`]).
    ///
    /// Duplicates are kept (see [`ist_query`'s duplicate-key
    /// contract](ist_query#duplicate-keys)).
    pub fn build(keys: Vec<K>, layout: Layout) -> Result<Self, Error> {
        Self::build_for_kind(
            keys,
            default_kind_for_layout(layout),
            Algorithm::CycleLeader,
        )
    }

    /// Full-control constructor: explicit [`QueryKind`] (which implies
    /// the layout — [`QueryKind::Sorted`] skips permutation entirely,
    /// giving the plain binary-search baseline) and construction
    /// [`Algorithm`].
    pub fn build_for_kind(
        mut keys: Vec<K>,
        kind: QueryKind,
        algorithm: Algorithm,
    ) -> Result<Self, Error> {
        keys.sort_unstable();
        Self::build_presorted(keys, kind, algorithm)
    }

    /// Build from keys that are **already sorted** ascending, skipping
    /// the sort: the merge-then-build fast path. A k-way merge of
    /// sorted runs (as in [`crate::DynamicMap`]'s tier merges) produces
    /// sorted output, so re-sorting would waste the dominant `O(n log n)`
    /// term — this constructor goes straight to the parallel layout
    /// scatter into aligned run storage.
    ///
    /// For tree layouts the permutation is applied **during** the move
    /// into the 64-byte-aligned destination (`dst[pos(r)] = keys[r]`,
    /// one pass — see [`crate::AlignedVec`]); `algorithm` selects the
    /// in-place construction algorithm for callers permuting their own
    /// buffers via [`ist_core::permute_in_place`], and is retained here
    /// for API stability. [`QueryKind::Sorted`] adopts the caller's
    /// allocation zero-copy.
    ///
    /// Sortedness is the caller's contract; debug builds assert it.
    ///
    /// # Examples
    /// ```
    /// use implicit_search_trees::{Algorithm, Layout, QueryKind, StaticIndex};
    /// let merged: Vec<u64> = (0..100).map(|x| 2 * x).collect(); // already sorted
    /// let idx = StaticIndex::build_presorted(merged, QueryKind::Veb, Algorithm::CycleLeader)
    ///     .unwrap();
    /// assert!(idx.contains(&42));
    /// assert_eq!(idx.rank(&51), 26);
    /// ```
    pub fn build_presorted(
        keys: Vec<K>,
        kind: QueryKind,
        algorithm: Algorithm,
    ) -> Result<Self, Error> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "StaticIndex::build_presorted: keys are not sorted"
        );
        let _ = algorithm; // see the doc note: kept for API stability
        let data = match layout_of_kind(kind) {
            Some(layout) if !keys.is_empty() => {
                let pos = LayoutPos::new(layout, keys.len())?;
                AlignedVec::scatter_from_vec(keys, &pos)
            }
            _ => AlignedVec::from_vec(keys),
        };
        Ok(Self { data, kind })
    }

    /// Wrap keys that are **already** sorted-and-permuted into `kind`'s
    /// layout (`StaticMap` builds its key side this way after
    /// co-permuting the payloads through the same index maps).
    pub(crate) fn from_layout_order(data: AlignedVec<K>, kind: QueryKind) -> Self {
        Self { data, kind }
    }

    /// Number of stored keys (duplicates counted).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` iff no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The layout the keys are stored in (`None` for the un-permuted
    /// [`QueryKind::Sorted`] baseline).
    pub fn layout(&self) -> Option<Layout> {
        layout_of_kind(self.kind)
    }

    /// The descent this index answers queries with.
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// The stored keys in **layout order** (not sorted order, unless
    /// the kind is [`QueryKind::Sorted`]).
    pub fn as_slice(&self) -> &[K] {
        &self.data
    }

    /// The key at layout position `pos` (as returned by
    /// [`StaticIndex::search`] / [`StaticIndex::batch_search`]).
    pub fn get(&self, pos: usize) -> Option<&K> {
        self.data.get(pos)
    }

    /// The guaranteed alignment of the key buffer: ≥ 64 bytes for tree
    /// layouts (see [`crate::AlignedVec`]), the key type's natural
    /// alignment for the un-permuted [`QueryKind::Sorted`] baseline.
    pub fn buffer_alignment(&self) -> usize {
        self.data.alignment()
    }

    /// Consume the index, returning the keys in layout order (copies
    /// out of the aligned buffer for tree layouts; zero-copy for
    /// [`QueryKind::Sorted`]).
    pub fn into_inner(self) -> Vec<K> {
        self.data.into_vec()
    }

    /// A borrowing [`Searcher`] over the stored keys, for the full
    /// query API (and for amortizing shape setup across many calls).
    pub fn searcher(&self) -> Searcher<'_, K> {
        Searcher::new(&self.data, self.kind)
    }

    /// `true` iff `key` is stored.
    pub fn contains(&self, key: &K) -> bool {
        self.searcher().contains(key)
    }

    /// Layout position of a stored key equal to `key`, if any.
    pub fn search(&self, key: &K) -> Option<usize> {
        self.searcher().search(key)
    }

    /// Number of stored keys strictly smaller than `key`.
    pub fn rank(&self, key: &K) -> usize {
        self.searcher().rank(key)
    }

    /// The smallest stored key `≥ key` (successor), if any.
    pub fn lower_bound(&self, key: &K) -> Option<&K> {
        let pos = self.searcher().lower_bound(key)?;
        Some(&self.data[pos])
    }

    /// Number of stored keys strictly smaller than or equal to `key`
    /// (so `rank_upper − rank` is the key's multiplicity).
    pub fn rank_upper(&self, key: &K) -> usize {
        self.searcher().rank_upper(key)
    }

    /// Number of stored keys in the half-open interval `[lo, hi)`, via
    /// two rank descents.
    ///
    /// **Reversed bounds are defined, not a bug**: when `lo > hi` (or
    /// `lo == hi`) the interval is empty and the count is `0` — never a
    /// panic, in debug or release, on any layout. The same contract
    /// holds for [`StaticIndex::batch_range_count`],
    /// `StaticMap::range_count`, and `DynamicMap::range_count`.
    pub fn range_count(&self, lo: &K, hi: &K) -> usize {
        self.searcher().range_count(lo, hi)
    }

    /// Count how many of `keys` are stored — pipelined multi-descent,
    /// parallel over adaptive chunks.
    pub fn batch_count(&self, keys: &[K]) -> usize {
        self.searcher().batch_count(keys)
    }

    /// Layout positions for a batch of lookups (pipelined + parallel);
    /// `out[i]` is exactly what [`StaticIndex::search`]`(&keys[i])`
    /// returns.
    pub fn batch_search(&self, keys: &[K]) -> Vec<Option<usize>> {
        self.searcher().batch_search(keys)
    }

    /// Ranks for a batch of keys (pipelined + parallel).
    pub fn batch_rank(&self, keys: &[K]) -> Vec<usize> {
        self.searcher().batch_rank(keys)
    }

    /// [`StaticIndex::batch_search`] over **borrowed** keys — the entry
    /// point for routing layers that partition batches by reference
    /// instead of cloning keys into per-shard staging buffers. No key is
    /// copied: the engine reads each one through a position closure.
    pub fn batch_search_ref(&self, keys: &[&K]) -> Vec<Option<usize>> {
        self.searcher().batch_search_ref(keys)
    }

    /// [`StaticIndex::batch_rank`] over **borrowed** keys.
    pub fn batch_rank_ref(&self, keys: &[&K]) -> Vec<usize> {
        self.searcher().batch_rank_ref(keys)
    }

    /// Per-pair [`StaticIndex::range_count`] for a batch of `(lo, hi)`
    /// ranges; both descents of every pair go through one pipeline.
    /// Reversed pairs (`lo > hi`) yield 0, like the scalar call.
    pub fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        self.searcher().batch_range_count(ranges)
    }
}

/// The construction layout behind a [`QueryKind`] (`None` for the
/// un-permuted sorted baseline). Shared by both facades so the mapping
/// lives once.
pub(crate) fn layout_of_kind(kind: QueryKind) -> Option<Layout> {
    match kind {
        QueryKind::Sorted => None,
        QueryKind::Bst | QueryKind::BstPrefetch => Some(Layout::Bst),
        QueryKind::Btree(b) => Some(Layout::Btree { b }),
        QueryKind::Veb => Some(Layout::Veb),
    }
}

/// The best default descent for a layout (grandchild prefetching for
/// the BST); the `build` constructors of the facades use this, and
/// callers that pre-partition data for the kind-explicit constructors
/// (e.g. a sharded bulk load) can apply the same mapping.
///
/// `Layout::Btree { b: 8 | 16 }` maps to `QueryKind::Btree(b)` like any
/// other width — the kind names the *shape*, which is physical — but
/// [`Searcher`] construction upgrades that kind to the monomorphized
/// wide-node SIMD kernel whenever the key type is
/// [`SimdKey`](ist_query::SimdKey)-eligible
/// ([`Searcher::is_wide`](ist_query::Searcher::is_wide) reports the
/// route), so the default build path lands on the wide kernel with no
/// opt-in here.
pub fn default_kind_for_layout(layout: Layout) -> QueryKind {
    match layout {
        Layout::Bst => QueryKind::BstPrefetch,
        Layout::Btree { b } => QueryKind::Btree(b),
        Layout::Veb => QueryKind::Veb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_unsorted_with_duplicates() {
        let keys = vec![5u64, 3, 9, 3, 3, 7, 1];
        for kind in [
            QueryKind::Sorted,
            QueryKind::Bst,
            QueryKind::BstPrefetch,
            QueryKind::Btree(2),
            QueryKind::Veb,
        ] {
            let idx =
                StaticIndex::build_for_kind(keys.clone(), kind, Algorithm::Involution).unwrap();
            assert_eq!(idx.len(), 7);
            assert_eq!(idx.rank(&3), 1, "{kind:?}");
            assert_eq!(idx.rank(&4), 4, "{kind:?}");
            assert_eq!(idx.lower_bound(&4), Some(&5), "{kind:?}");
            assert_eq!(idx.range_count(&3, &8), 5, "{kind:?}");
            assert!(idx.contains(&9) && !idx.contains(&2), "{kind:?}");
        }
    }

    #[test]
    fn empty_index() {
        let idx = StaticIndex::<u64>::build(vec![], Layout::Bst).unwrap();
        assert!(idx.is_empty());
        assert!(!idx.contains(&1));
        assert_eq!(idx.batch_count(&[1, 2]), 0);
        assert_eq!(idx.lower_bound(&0), None);
    }
}
