//! [`DynamicMap`]: a write-capable key→value map built as
//! log-structured tiers of static layouts.
//!
//! The paper's contribution — fast parallel **in-place rebuild** of an
//! implicit search-tree layout — makes rebuilding cheap enough to be
//! the mutation primitive. This module applies the classic logarithmic
//! method (LSM-style) on top of it:
//!
//! ```text
//!        writes
//!          │
//!          ▼
//!   ┌─────────────┐   sorted write buffer (≤ cap entries, newest data)
//!   │   buffer    │
//!   └─────────────┘
//!          │ overflow: SEAL — freeze the sorted buffer into an L0 run
//!          ▼          (a move + weight prefix sum; synchronous, ~free)
//!   L0     ▒ ▒ ▒         sealed runs awaiting compaction (newest last)
//!          │ COMPACT — k-way merge + rebuild on a background worker;
//!          ▼           installed atomically on completion
//!   tier 0 ▓             (≈ cap entries)        newest tier run
//!   tier 1 ▓▓            (≈ 2·cap)                  │
//!   tier 2 (empty)                                  │ age
//!   tier 3 ▓▓▓▓▓▓▓▓      (≈ 8·cap)              oldest run
//! ```
//!
//! Every occupied tier (and every sealed L0 slot) holds one immutable
//! **run**: a [`StaticMap`] whose keys sit in a cache-optimal layout,
//! built by the parallel in-place construction. The overflow path is
//! split in two so the expensive half never sits on the writer's
//! critical path:
//!
//! * **Seal** (synchronous, near-free): the sorted buffer is frozen
//!   into an L0 run via [`StaticMap::build_presorted`] with
//!   [`QueryKind::Sorted`] — sealed runs keep sorted order (≤ `cap`
//!   entries sit in a couple of cache lines; binary search is already
//!   optimal there, and the run only lives until the next compaction),
//!   so sealing is a buffer move plus a weight prefix sum, with no
//!   layout permutation on the write path.
//! * **Compact** (deamortized): all sealed runs plus the runs of every
//!   tier up to the first empty one are k-way merged (already-sorted
//!   sources) and rebuilt into that tier. Under
//!   [`CompactionMode::Background`] (the default) this runs on a
//!   background worker thread over `Arc`-shared immutable runs; the
//!   writer installs the finished run atomically at the start of a
//!   later mutation (or in [`DynamicMap::quiesce`]). Until then, reads
//!   and snapshots consult the sealed-but-uncompacted runs — newest
//!   first, before any tier — so answers stay exact while the merge is
//!   mid-flight. [`CompactionMode::Inline`] runs the same machinery on
//!   the caller for deterministic tier shapes (tests, replay).
//!
//! At most [`MAX_SEALED_RUNS`] sealed runs accumulate; past that the
//! writer blocks on the in-flight merge (backpressure bounds read
//! fan-out and memory, and is the only time a write waits for a merge).
//! Amortized, an element is merged `O(log(n/cap))` times over its
//! lifetime, exactly as in the synchronous schedule.
//!
//! ## Deletes, overwrites, and exact ranks: per-version weights
//!
//! Runs are immutable, so a delete is a **tombstone** (a version whose
//! payload slot is empty) that shadows older versions of its key; a
//! merge annihilates tombstones when (and only when) no older tier
//! remains below the merge target. Overwrites and re-inserts leave
//! multiple versions of one key resident at once, which would make the
//! natural "sum the per-run ranks" answer overcount. Every version
//! therefore carries an integer **weight**, assigned at write time so
//! that the invariant
//!
//! > for every key, the weights of all resident versions sum to **1 if
//! > the key is live and 0 if it is not**
//!
//! always holds: a fresh insert weighs `+1`, an overwrite of a live key
//! weighs `0`, a tombstone weighs minus the summed weight of the older
//! versions it shadows, and merges add the weights of the versions they
//! collapse. Each run stores its weights as a rank-indexed prefix-sum
//! array, so the run's contribution to a global rank is
//! `prefix[run.rank(key)]` — one descent — and
//!
//! `rank(k) = Σ_runs prefix[rank_r(k)] + Σ_{buffer, key < k} weight`
//!
//! is **exactly** the number of live keys strictly below `k`, no matter
//! how keys were overwritten, deleted, or re-inserted across runs.
//! `range_count` is a rank difference (reversed bounds yield 0), and
//! `len` is the total weight.
//!
//! ## Queries
//!
//! Point lookups probe the buffer, then runs newest-first, and stop at
//! the first version found (live → the value, tombstone → absent).
//! [`DynamicMap::batch_get`] does the same run-by-run but drives every
//! run with the software-pipelined batched engine
//! (`StaticIndex::batch_search`), so batched read throughput survives
//! dynamization. Order queries (`lower_bound` / `successor` /
//! `predecessor`) combine per-run candidates and skip dead versions.
//!
//! ## Snapshots: readers never block on a merge
//!
//! [`DynamicMap::snapshot`] returns a [`Frozen`] view — `Arc`s of the
//! current runs plus a copy of the (small) buffer — with the same read
//! API, reflecting **exactly** the state at the call. The map also
//! maintains a published snapshot cell for cloneable [`Reader`] handles
//! ([`DynamicMap::reader`]). Publication is **seal/compaction
//! granular**: the cell is swapped when a seal freezes the buffer
//! (at which point the frozen view shares the sealed run by `Arc` — no
//! data is copied), when a compaction installs, eagerly when a handle
//! is taken, and in any case after every `buffer_cap` mutations (so a
//! hot set overwriting in place, which never overflows the buffer,
//! still publishes) — never per buffered write, so a mutation while
//! readers exist costs refcount bumps at merge cadence instead of an
//! `O(cap)` buffer clone per op. A `Reader` therefore yields, at any
//! moment, the state after some recent prefix of the writer's
//! operations (at most one buffer's worth behind; call
//! [`DynamicMap::compact_buffer`] to publish the current buffer
//! immediately), and successive snapshots never go backwards. Merges
//! complete entirely before the pointer swap, so a reader is never
//! stalled behind one, and the runs a `Frozen` references are kept
//! alive by refcounts even after the writer compacts them away. When
//! the last `Reader` drops, the next mutation releases the cell's
//! frozen view, so a departed reader population does not pin a stale
//! copy of the map.

use crate::index::default_kind_for_layout;
use crate::map::StaticMap;
use crate::sync::{
    spawn, yield_now, Arc, AtomicBool, AtomicUsize, JoinHandle, Mutex, MutexGuard, Ordering,
};
use ist_core::{Algorithm, Error, Layout};
use ist_query::QueryKind;

/// Default write-buffer capacity (entries buffered between seals).
///
/// Small enough that buffer probes and the (move-only) seal stay
/// cache-resident, large enough that merge amortization works; see
/// [`DynamicMap::with_config`] to tune.
pub const DEFAULT_BUFFER_CAP: usize = 256;

/// Maximum number of sealed L0 runs allowed to accumulate while a
/// compaction is in flight. Sealing past this limit blocks the writer
/// on the in-flight merge — the backpressure that bounds read fan-out
/// and resident memory, and the only point where a write waits for a
/// merge.
///
/// Sized so a full-depth merge comfortably finishes within the writes
/// that fill the budget: sealed runs are tiny (≤ `buffer_cap` sorted
/// entries each, probed by binary search), so the cost of a deep
/// budget is a few extra micro-run probes on reads, while too shallow
/// a budget puts the merge back on the writer's path exactly when it
/// is longest.
pub const MAX_SEALED_RUNS: usize = 16;

/// Where the compact half of the overflow path runs; see the
/// [module docs](self) for the seal/compact state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionMode {
    /// Merge + rebuild on the calling thread at every seal, like the
    /// classic synchronous logarithmic method. Deterministic tier
    /// shapes; the full merge cost lands on the overflowing write.
    Inline,
    /// Merge + rebuild on a background worker thread (the default).
    /// The overflowing write pays only for the seal; the merged run is
    /// installed atomically at a later mutation (or on
    /// [`DynamicMap::quiesce`]). Reads stay exact throughout.
    Background,
}

/// Merges smaller than this never split into parallel slices: the
/// boundary descents and stitch would cost more than the merge.
const PARALLEL_MERGE_MIN_SLICE: usize = 1024;

/// How the compactor arranges runs into tiers; see [`CompactionPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionStyle {
    /// **Size-tiered**: each tier accumulates up to `fanout` runs of
    /// similar size before they are merged one tier down. Lowest write
    /// amplification (each version is merged once per tier crossing),
    /// but reads fan out over up to `fanout` runs per tier.
    /// `fanout = 1` is the classic binomial-counter logarithmic method
    /// (the default): every tier holds at most one run and a merge
    /// targets the first tier with a free slot.
    Tiered,
    /// **Leveled**: every tier holds a single run bounded by
    /// `buffer_cap · fanout^(tier+1)` versions; a merge folds the
    /// overflowing prefix of tiers into the first tier whose budget
    /// absorbs it (consuming that tier's run too). Lowest read fan-out
    /// (≤ 1 run per tier), at up to `fanout`× the write amplification.
    Leveled,
}

/// Tunable knobs for the compact half of the overflow path: how runs
/// are arranged into tiers (write amplification vs read fan-out) and
/// how many threads the k-way merge may use.
///
/// Configured at construction via [`DynamicMap::with_policy`] (and
/// plumbed through the `ShardedMap` builders). The default —
/// [`CompactionStyle::Tiered`] with `fanout = 1`, no lazy bottom,
/// auto merge threads — reproduces the binomial-counter schedule the
/// differential suites pin, so switching policies is purely a
/// performance decision: observable answers are identical under every
/// policy (the fuzz suites assert exactly this).
///
/// # Examples
/// ```
/// use implicit_search_trees::{CompactionPolicy, CompactionStyle, DynamicMap, Layout};
///
/// let policy = CompactionPolicy::tiered(4).with_lazy_bottom(true);
/// let mut m: DynamicMap<u64, u64> = DynamicMap::new(Layout::Veb).with_policy(policy);
/// m.insert(1, 10);
/// assert_eq!(m.get(&1), Some(&10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Tier growth factor: runs-per-tier under [`CompactionStyle::Tiered`]
    /// (≥ 1), per-tier size ratio under [`CompactionStyle::Leveled`]
    /// (≥ 2).
    pub fanout: usize,
    /// Tiered (write-optimized) vs leveled (read-optimized) shape.
    pub style: CompactionStyle,
    /// Keep the bottom (largest) run out of merges until the data above
    /// it reaches `1/fanout` of its size. Bulk-loaded maps churn their
    /// upper tiers without repeatedly rewriting the big run, at the
    /// cost of retaining tombstones (no annihilation) until the bottom
    /// run is finally folded in.
    pub lazy_bottom: bool,
    /// Thread count for the sliced parallel merge: `0` = auto (the
    /// rayon-shim's effective parallelism, overridable process-wide via
    /// the `IST_PARALLEL` environment variable), `1` = always the
    /// classic sequential merge.
    pub merge_threads: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self::tiered(1)
    }
}

impl CompactionPolicy {
    /// Size-tiered policy with up to `fanout` runs per tier (`fanout =
    /// 1` is the default binomial schedule).
    pub fn tiered(fanout: usize) -> Self {
        Self {
            fanout,
            style: CompactionStyle::Tiered,
            lazy_bottom: false,
            merge_threads: 0,
        }
    }

    /// Leveled policy: one run per tier, tier `t` bounded by
    /// `buffer_cap · fanout^(t+1)` versions.
    pub fn leveled(fanout: usize) -> Self {
        Self {
            fanout,
            style: CompactionStyle::Leveled,
            lazy_bottom: false,
            merge_threads: 0,
        }
    }

    /// Builder-style override of [`CompactionPolicy::lazy_bottom`].
    #[must_use]
    pub fn with_lazy_bottom(mut self, lazy: bool) -> Self {
        self.lazy_bottom = lazy;
        self
    }

    /// Builder-style override of [`CompactionPolicy::merge_threads`].
    #[must_use]
    pub fn with_merge_threads(mut self, threads: usize) -> Self {
        self.merge_threads = threads;
        self
    }

    fn validate(&self) {
        match self.style {
            CompactionStyle::Tiered => {
                assert!(self.fanout >= 1, "tiered fanout must be at least 1")
            }
            CompactionStyle::Leveled => {
                assert!(self.fanout >= 2, "leveled fanout must be at least 2")
            }
        }
    }
}

/// One buffered write: the newest version of `key`. An empty `slot` is
/// a tombstone. `weight` maintains the per-key sum invariant described
/// in the [module docs](self).
#[derive(Clone)]
pub(crate) struct BufEntry<K, V> {
    pub(crate) key: K,
    pub(crate) slot: Option<V>,
    pub(crate) weight: i64,
}

/// A `(key, payload-or-tombstone, weight)` triple streamed out of a
/// source during a merge.
type MergedEntry<K, V> = (K, Option<V>, i64);

/// One merged slice in column form — `(keys, slots, weights)` — as
/// [`merge_slice`] produces it and the stitch step concatenates it.
type MergedColumns<K, V> = (Vec<K>, Vec<Option<V>>, Vec<i64>);

/// Rank-indexed prefix sums of a run's per-version weights.
///
/// Fully compacted runs have unit weights everywhere, making the
/// prefix the identity `0, 1, …, n`; `Unit` represents that without
/// materializing 8 bytes per version — which matters on the recovery
/// path, where every resident run is reloaded at once.
#[derive(Debug, Clone)]
pub(crate) enum Prefix {
    /// Every version weighs 1: `prefix[r] == r`, over `n` versions.
    Unit(usize),
    /// Explicit sums, length `n + 1`, starting at 0.
    Explicit(Vec<i64>),
}

impl Prefix {
    /// Build from per-version weights, collapsing the all-unit case.
    pub(crate) fn from_weights(weights: &[i64]) -> Self {
        if weights.iter().all(|&w| w == 1) {
            return Prefix::Unit(weights.len());
        }
        let mut prefix = Vec::with_capacity(weights.len() + 1);
        let mut acc = 0i64;
        prefix.push(0);
        for &w in weights {
            acc += w;
            prefix.push(acc);
        }
        Prefix::Explicit(prefix)
    }

    /// `prefix[r]`: summed weight of the `r` smallest versions.
    #[inline]
    pub(crate) fn at(&self, r: usize) -> i64 {
        match self {
            Prefix::Unit(_) => r as i64,
            Prefix::Explicit(p) => p[r],
        }
    }

    /// Weight of the rank-`r` version (`prefix[r+1] - prefix[r]`).
    #[inline]
    pub(crate) fn span(&self, r: usize) -> i64 {
        match self {
            Prefix::Unit(_) => 1,
            Prefix::Explicit(p) => p[r + 1] - p[r],
        }
    }

    /// The run's total weight (`prefix[n]`).
    pub(crate) fn total(&self) -> i64 {
        match self {
            Prefix::Unit(n) => *n as i64,
            Prefix::Explicit(p) => *p.last().expect("prefix is never empty"),
        }
    }
}

/// One immutable run: a static layout over this run's versions plus the
/// rank-indexed prefix sums of their weights.
pub(crate) struct Run<K, V> {
    pub(crate) map: StaticMap<K, Option<V>>,
    /// Rank-indexed (sorted order), not layout-indexed.
    pub(crate) prefix: Prefix,
}

impl<K: Ord + Send + Sync + 'static, V: Send> Run<K, V> {
    fn build(
        keys: Vec<K>,
        slots: Vec<Option<V>>,
        weights: &[i64],
        kind: QueryKind,
        algorithm: Algorithm,
    ) -> Result<Self, Error> {
        debug_assert_eq!(keys.len(), weights.len());
        Ok(Self {
            map: StaticMap::build_presorted(keys, slots, kind, algorithm)?,
            prefix: Prefix::from_weights(weights),
        })
    }

    /// Number of resident versions (live + tombstones).
    fn versions(&self) -> usize {
        self.map.len()
    }

    /// Total weight of the run (its contribution to `len`).
    fn total_weight(&self) -> i64 {
        self.prefix.total()
    }

    /// Summed weight of versions with key strictly below `key`.
    fn weight_below(&self, key: &K) -> i64 {
        self.prefix.at(self.map.rank(key))
    }

    /// Weight of this run's version of `key` (0 if absent): one rank
    /// descent, then the closed-form position map plus a key equality
    /// decides presence (run keys are distinct, so `rank`/`rank_upper`
    /// can only differ by the key itself).
    fn weight_of(&self, key: &K) -> i64 {
        let s = self.map.searcher();
        let r = s.rank(key);
        match s.position_of_rank(r) {
            Some(p) if self.map.keys()[p] == *key => self.prefix.span(r),
            _ => 0,
        }
    }

    /// Stream the run's versions with rank in `lo..hi` in sorted-key
    /// order (cloning) — each merge slice's view of a source: walks
    /// ranks through the closed-form position maps, so no sorted copy
    /// of the run is ever materialized. `(0, len)` streams the whole
    /// run.
    fn iter_sorted_range(
        &self,
        lo: usize,
        hi: usize,
    ) -> impl Iterator<Item = MergedEntry<K, V>> + '_
    where
        K: Clone,
        V: Clone,
    {
        debug_assert!(lo <= hi && hi <= self.map.len());
        let searcher = self.map.searcher();
        (lo..hi).map(move |r| {
            let p = searcher
                .position_of_rank(r)
                .expect("rank below len resolves");
            (
                self.map.keys()[p].clone(),
                self.map.values()[p].clone(),
                self.prefix.span(r),
            )
        })
    }
}

/// Lock that shrugs off poisoning: publication is a single pointer
/// store, so a panicked writer cannot leave the cell torn.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Binary-search the sorted write buffer (one entry per key) for
/// `key`: `Ok(index)` of the entry, or `Err(insert position)`. The
/// single home of the buffer's probe semantics — mutations and every
/// read path go through it.
fn buffer_slot<K: Ord, V>(buffer: &[BufEntry<K, V>], key: &K) -> Result<usize, usize> {
    buffer.binary_search_by(|e| e.key.cmp(key))
}

/// A compaction plan: which **contiguous newest prefix** of the
/// resident runs the merge consumes, and where the merged run lands.
/// Consuming a contiguous prefix and installing at its boundary is what
/// keeps the global newest-first run order valid under every
/// [`CompactionPolicy`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Plan {
    /// How many sealed runs (the oldest prefix of `l0`) the merge
    /// consumes — always all of them.
    pub(crate) consumed_l0: usize,
    /// Tiers `0..full_tiers` are consumed entirely…
    pub(crate) full_tiers: usize,
    /// …plus the `partial_runs` **newest** runs of tier `full_tiers`
    /// (non-zero only for lazy-bottom plans that stop short of the
    /// bottom run).
    pub(crate) partial_runs: usize,
    /// The merged run is pushed as the **newest** run of this tier.
    /// After the consumed runs are removed, every tier above `target`
    /// is empty.
    pub(crate) target: usize,
    /// Whether any run survives below the consumed prefix (tombstones
    /// are annihilated iff `false`).
    deeper_occupied: bool,
}

/// An in-flight background compaction: the plan it executes. The worker
/// owns `Arc` clones of the source runs, so the writer and readers keep
/// using them until install.
struct Pending<K, V> {
    plan: Plan,
    /// Set by the worker after the merged run is fully built, so the
    /// writer's install check is one atomic load, never a join of a
    /// still-running merge.
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<Option<Run<K, V>>>>,
}

impl<K, V> Drop for Pending<K, V> {
    fn drop(&mut self) {
        // Dropping the map mid-compaction: wait the worker out rather
        // than leaking a detached thread past the owner's lifetime.
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// How many entries the background worker streams between cooperative
/// [`std::thread::yield_now`] calls. On a host with spare cores the
/// yields are nearly free; on a saturated or single-core host they are
/// what keeps the latency-sensitive writer scheduling promptly while a
/// long merge is CPU-bound (the same reason production LSM engines run
/// compaction threads at low priority).
const MERGE_YIELD_STRIDE: usize = 256;

/// The compact half of the overflow path: k-way merge `sources`
/// (newest first; each source's keys are distinct) and rebuild the
/// result as a single run. Newest version wins per key, weights are
/// summed, and tombstones are annihilated iff no occupied tier remains
/// below the merge target (`deeper_occupied == false`). Returns `None`
/// when everything annihilated.
///
/// When `threads` (0 = the rayon-shim's effective parallelism) exceeds
/// 1 and the merge is large enough, the merged key space is split into
/// near-equal **slices**: boundary keys are drawn from the largest
/// source at evenly spaced ranks (closed-form `position_of_rank`, no
/// scan), each source is cut at those keys with one rank descent per
/// boundary, the slices are merged concurrently on the rayon-shim, and
/// the outputs are stitched back together. Per-key resolution
/// (newest-wins, weight sums, annihilation) is local to a slice, so the
/// stitched output is bit-identical to the sequential merge — the fuzz
/// suites pin this at parallelism {1, 4}.
///
/// Runs on the background worker in [`CompactionMode::Background`]
/// (with `cooperative = true`: yield the timeslice every
/// [`MERGE_YIELD_STRIDE`] entries) and on the caller in
/// [`CompactionMode::Inline`]; it touches only the immutable
/// `Arc`-shared runs, never the map.
fn merge_runs<K, V>(
    sources: &[Arc<Run<K, V>>],
    deeper_occupied: bool,
    kind: QueryKind,
    algorithm: Algorithm,
    cooperative: bool,
    threads: usize,
) -> Option<Run<K, V>>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync,
{
    let total: usize = sources.iter().map(|r| r.versions()).sum();
    let threads = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    let want = threads.min(total / PARALLEL_MERGE_MIN_SLICE).max(1);

    let full: Vec<(usize, usize)> = sources.iter().map(|r| (0, r.versions())).collect();
    let (keys, slots, weights) = if want <= 1 {
        merge_slice(sources, &full, deeper_occupied, cooperative)
    } else {
        // Slice boundaries: evenly spaced ranks of the largest source
        // approximate evenly sized merged slices (smaller sources can
        // only add proportionally less to any slice).
        let largest = sources
            .iter()
            .max_by_key(|r| r.versions())
            .expect("merge has at least one source");
        let searcher = largest.map.searcher();
        let mut bounds: Vec<K> = Vec::with_capacity(want - 1);
        for i in 1..want {
            let r = i * largest.versions() / want;
            let p = searcher
                .position_of_rank(r)
                .expect("rank below len resolves");
            let k = largest.map.keys()[p].clone();
            if bounds.last().is_none_or(|b| *b < k) {
                bounds.push(k);
            }
        }
        // Cut every source at the boundary keys: slice `i` covers keys
        // in `[bounds[i-1], bounds[i])`, i.e. source ranks
        // `[rank(bounds[i-1]), rank(bounds[i]))` — one descent per
        // (source, boundary).
        let cuts: Vec<Vec<usize>> = sources
            .iter()
            .map(|run| {
                let mut c = Vec::with_capacity(bounds.len() + 2);
                c.push(0);
                c.extend(bounds.iter().map(|b| run.map.rank(b)));
                c.push(run.versions());
                c
            })
            .collect();
        let slices = bounds.len() + 1;
        let mut parts: Vec<MergedColumns<K, V>> = (0..slices).map(|_| Default::default()).collect();
        rayon::scope(|s| {
            for (i, part) in parts.iter_mut().enumerate() {
                let ranges: Vec<(usize, usize)> = cuts.iter().map(|c| (c[i], c[i + 1])).collect();
                s.spawn(move |_| {
                    *part = merge_slice(sources, &ranges, deeper_occupied, cooperative);
                });
            }
        });
        // Stitch: slices are disjoint and ordered, so concatenation is
        // the merged output.
        let mut keys = Vec::with_capacity(total);
        let mut slots = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        for (k, s, w) in parts {
            keys.extend(k);
            slots.extend(s);
            weights.extend(w);
        }
        (keys, slots, weights)
    };
    if keys.is_empty() {
        None
    } else {
        Some(
            Run::build(keys, slots, &weights, kind, algorithm)
                .expect("configuration validated at construction"),
        )
    }
}

/// Sequential k-way merge of one slice: each source restricted to its
/// rank sub-range `ranges[i]`. The whole merge is one slice in the
/// sequential case.
fn merge_slice<K, V>(
    sources: &[Arc<Run<K, V>>],
    ranges: &[(usize, usize)],
    deeper_occupied: bool,
    cooperative: bool,
) -> MergedColumns<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync,
{
    let mut srcs: Vec<Source<'_, K, V>> = sources
        .iter()
        .zip(ranges)
        .map(|(run, &(lo, hi))| Source::new(Box::new(run.iter_sorted_range(lo, hi))))
        .collect();
    let mut keys = Vec::new();
    let mut slots = Vec::new();
    let mut weights = Vec::new();
    let mut streamed = 0usize;
    loop {
        streamed += 1;
        if cooperative && streamed.is_multiple_of(MERGE_YIELD_STRIDE) {
            yield_now();
        }
        // Newest source holding the minimum head key (strict `<` keeps
        // the earliest source on ties).
        let mut min_idx: Option<usize> = None;
        for i in 0..srcs.len() {
            let Some((k, _, _)) = &srcs[i].head else {
                continue;
            };
            let better = match min_idx {
                Some(j) => {
                    let (mk, _, _) = srcs[j].head.as_ref().expect("tracked head");
                    k < mk
                }
                None => true,
            };
            if better {
                min_idx = Some(i);
            }
        }
        let Some(first) = min_idx else { break };
        let (key, slot, mut weight) = srcs[first].advance();
        // Older sources may hold the same key (each source's keys are
        // distinct): collapse them, newest version wins.
        for src in srcs.iter_mut().skip(first + 1) {
            if src.head.as_ref().is_some_and(|(k, _, _)| *k == key) {
                weight += src.advance().2;
            }
        }
        if slot.is_none() && !deeper_occupied {
            // Tombstone reaching the bottom: annihilate.
            debug_assert_eq!(weight, 0, "annihilated key retains weight");
            continue;
        }
        keys.push(key);
        slots.push(slot);
        weights.push(weight);
    }
    (keys, slots, weights)
}

/// An immutable snapshot of a [`DynamicMap`]: the whole read API over
/// the state after some prefix of the writer's operations.
///
/// Cheap to clone (two `Arc` bumps), `Send + Sync` when the key and
/// value types are, and independent of the writer: merges that retire
/// the referenced runs only drop refcounts.
pub struct Frozen<K, V> {
    buffer: Arc<Vec<BufEntry<K, V>>>,
    /// Non-empty runs, newest first.
    runs: Arc<Vec<Arc<Run<K, V>>>>,
}

impl<K, V> Clone for Frozen<K, V> {
    fn clone(&self) -> Self {
        Self {
            buffer: Arc::clone(&self.buffer),
            runs: Arc::clone(&self.runs),
        }
    }
}

/// A cloneable handle to a [`DynamicMap`]'s published-snapshot cell.
///
/// Obtained from [`DynamicMap::reader`] before handing the map to a
/// writer thread; [`Reader::snapshot`] then yields, at any moment, a
/// [`Frozen`] view of the state after some prefix of the writer's
/// operations (publication order is the operation order, so successive
/// snapshots never go backwards).
pub struct Reader<K, V> {
    cell: Arc<Mutex<Arc<Frozen<K, V>>>>,
}

impl<K, V> Clone for Reader<K, V> {
    fn clone(&self) -> Self {
        Self {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<K, V> Reader<K, V> {
    /// The latest published snapshot. The lock is held only to clone an
    /// `Arc` — never while a merge or rebuild runs.
    pub fn snapshot(&self) -> Frozen<K, V> {
        lock(&self.cell).as_ref().clone()
    }
}

/// A write-capable key→value map: a sorted write buffer plus
/// geometrically-tiered immutable runs, each run a [`StaticMap`] in a
/// cache-optimal implicit layout. See the [module docs](self) for the
/// design.
///
/// Semantics mirror `std::collections::BTreeMap`: one live value per
/// key, `insert` overwrites, `remove` deletes; `rank`, `range_count`,
/// `lower_bound`, `successor`, and `predecessor` see only live keys.
///
/// # Examples
/// ```
/// use implicit_search_trees::{DynamicMap, Layout};
///
/// let mut m: DynamicMap<u64, &str> = DynamicMap::new(Layout::Veb);
/// assert!(!m.insert(2, "two")); // false: no live value replaced
/// m.insert(1, "one");
/// m.insert(3, "three");
/// assert_eq!(m.get(&2), Some(&"two"));
/// assert_eq!(m.rank(&3), 2);
/// assert_eq!(m.successor(&1), Some((&2, &"two")));
///
/// let snap = m.snapshot(); // frozen view
/// assert!(m.remove(&2));
/// assert_eq!(m.get(&2), None);
/// assert_eq!(m.len(), 2);
/// assert_eq!(snap.len(), 3); // unaffected by later writes
/// assert_eq!(snap.get(&2), Some(&"two"));
/// ```
pub struct DynamicMap<K, V> {
    /// Sorted by key, at most one entry per key (the newest version).
    pub(crate) buffer: Vec<BufEntry<K, V>>,
    /// Sealed-but-uncompacted L0 runs, **oldest first** (seals push to
    /// the back); all are newer than every tier run.
    pub(crate) l0: Vec<Arc<Run<K, V>>>,
    /// `tiers[0]` is the shallowest (newest-data) tier; within a tier,
    /// runs are **newest first**. Under the default policy every tier
    /// holds at most one run; tiered policies with `fanout > 1` (and
    /// lazy-bottom debt) hold several.
    pub(crate) tiers: Vec<Vec<Arc<Run<K, V>>>>,
    /// The single in-flight compaction, if any.
    pending: Option<Pending<K, V>>,
    pub(crate) kind: QueryKind,
    pub(crate) algorithm: Algorithm,
    pub(crate) buffer_cap: usize,
    mode: CompactionMode,
    policy: CompactionPolicy,
    /// Cumulative count of buffer entries displaced toward the back by
    /// out-of-order mutations (the cost the bulk append fast path
    /// avoids); see [`DynamicMap::buffer_element_moves`].
    buffer_moves: u64,
    /// Snapshot cell swapped at seal/compaction granularity; [`Reader`]s
    /// share it.
    published: Arc<Mutex<Arc<Frozen<K, V>>>>,
    /// Whether `published` currently holds a non-trivial snapshot that
    /// should be released once the last [`Reader`] is gone.
    published_dirty: AtomicBool,
    /// Mutations since the last publication. Overwrite-heavy workloads
    /// can churn forever inside a never-overflowing buffer (every write
    /// hits an existing entry, so no seal fires); this counter forces a
    /// publication every `buffer_cap` mutations regardless, which is
    /// what makes the reader-lag bound an *operation* bound.
    muts_since_publish: AtomicUsize,
    /// The attached durability engine, if this map is persistent (see
    /// the [`crate::persist`] module). Behind a `Mutex` only so the map
    /// stays `Sync` — every access is `&mut self`, so the lock is
    /// uncontended.
    pub(crate) store: Option<Mutex<Box<dyn crate::persist::RunSink<K, V>>>>,
    /// Set during WAL replay: overflow seals are deferred until the
    /// durability engine is attached (see [`DynamicMap::maybe_seal`]).
    pub(crate) seal_suppressed: bool,
    /// Model-check hook: the next background worker panics inside its
    /// `DoneGuard` scope (exercises panic propagation to the writer).
    #[cfg(ist_loom)]
    panic_next_compaction: bool,
}

impl<K, V> DynamicMap<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    /// An empty map storing its runs in `layout` (best default descent,
    /// [`DEFAULT_BUFFER_CAP`], cycle-leader construction).
    ///
    /// # Panics
    /// Panics on `Layout::Btree { b: 0 }`.
    pub fn new(layout: Layout) -> Self {
        Self::with_config(
            default_kind_for_layout(layout),
            Algorithm::CycleLeader,
            DEFAULT_BUFFER_CAP,
        )
    }

    /// Full-control constructor: explicit query descent, construction
    /// algorithm, and write-buffer capacity (`buffer_cap` writes are
    /// absorbed between seals; small values make seals and merges
    /// adversarially frequent, which the differential suite exploits).
    /// Compaction runs in [`CompactionMode::Background`]; chain
    /// [`DynamicMap::with_compaction_mode`] to override.
    ///
    /// # Panics
    /// Panics if `buffer_cap == 0` or `kind` is `QueryKind::Btree(0)`.
    pub fn with_config(kind: QueryKind, algorithm: Algorithm, buffer_cap: usize) -> Self {
        assert!(buffer_cap >= 1, "buffer_cap must be at least 1");
        if let QueryKind::Btree(b) = kind {
            assert!(b >= 1, "B-tree node capacity B must be at least 1");
        }
        let empty = Frozen {
            buffer: Arc::new(Vec::new()),
            runs: Arc::new(Vec::new()),
        };
        Self {
            buffer: Vec::new(),
            l0: Vec::new(),
            tiers: Vec::new(),
            pending: None,
            kind,
            algorithm,
            buffer_cap,
            mode: CompactionMode::Background,
            policy: CompactionPolicy::default(),
            buffer_moves: 0,
            published: Arc::new(Mutex::new(Arc::new(empty))),
            published_dirty: AtomicBool::new(false),
            muts_since_publish: AtomicUsize::new(0),
            store: None,
            seal_suppressed: false,
            #[cfg(ist_loom)]
            panic_next_compaction: false,
        }
    }

    /// The attached durability sink, if any — `&mut self` access never
    /// contends, so the mutex is bypassed via `get_mut`.
    pub(crate) fn sink_mut(&mut self) -> Option<&mut Box<dyn crate::persist::RunSink<K, V>>> {
        self.store.as_mut().map(|m| {
            m.get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        })
    }

    /// Builder-style override of the [`CompactionMode`] (the
    /// constructors default to [`CompactionMode::Background`]).
    /// Switching an existing map to `Inline` does not disturb an
    /// already-in-flight background merge — it is installed normally.
    #[must_use]
    pub fn with_compaction_mode(mut self, mode: CompactionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder-style override of the [`CompactionPolicy`] (the
    /// constructors default to `CompactionPolicy::tiered(1)`, the
    /// classic binomial schedule). Policies change **only** where
    /// versions reside and how merges are scheduled — observable
    /// answers are identical under every policy.
    ///
    /// # Panics
    /// Panics on an invalid policy (tiered `fanout == 0`, leveled
    /// `fanout < 2`).
    #[must_use]
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        policy.validate();
        self.policy = policy;
        self
    }

    /// Bulk-load from unsorted `(keys, values)` pairs (duplicate keys:
    /// the **last** pair wins, like repeated `BTreeMap::insert`). The
    /// data lands in a single run on a deep tier, leaving the shallow
    /// tiers free so subsequent writes don't immediately re-merge it.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths.
    pub fn build(keys: Vec<K>, values: Vec<V>, layout: Layout) -> Result<Self, Error> {
        Self::build_for_kind(
            keys,
            values,
            default_kind_for_layout(layout),
            Algorithm::CycleLeader,
            DEFAULT_BUFFER_CAP,
        )
    }

    /// [`DynamicMap::build`] with explicit descent, algorithm, and
    /// buffer capacity.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths, or on the
    /// invalid configurations [`DynamicMap::with_config`] rejects.
    pub fn build_for_kind(
        keys: Vec<K>,
        values: Vec<V>,
        kind: QueryKind,
        algorithm: Algorithm,
        buffer_cap: usize,
    ) -> Result<Self, Error> {
        assert_eq!(
            keys.len(),
            values.len(),
            "DynamicMap::build: {} keys but {} values",
            keys.len(),
            values.len()
        );
        let mut pairs: Vec<(K, V)> = keys.into_iter().zip(values).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0)); // stable: later duplicate stays later
        pairs.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(later, kept); // keep the later pair's value
                true
            } else {
                false
            }
        });
        let (keys, values): (Vec<K>, Vec<V>) = pairs.into_iter().unzip();
        Self::build_presorted(keys, values, kind, algorithm, buffer_cap)
    }

    /// Bulk-load from `(keys, values)` pairs that are **already sorted**
    /// by key with **distinct** keys, skipping the sort and dedup
    /// entirely: the fast path for callers that pre-partition sorted
    /// data (a `ShardedMap` bulk load builds every shard this way).
    /// Mirrors [`crate::StaticMap::build_presorted`].
    ///
    /// Sortedness and distinctness are the caller's contract; debug
    /// builds assert them.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths, or on the
    /// invalid configurations [`DynamicMap::with_config`] rejects.
    pub fn build_presorted(
        keys: Vec<K>,
        values: Vec<V>,
        kind: QueryKind,
        algorithm: Algorithm,
        buffer_cap: usize,
    ) -> Result<Self, Error> {
        assert_eq!(
            keys.len(),
            values.len(),
            "DynamicMap::build_presorted: {} keys but {} values",
            keys.len(),
            values.len()
        );
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "DynamicMap::build_presorted: keys are not sorted and distinct"
        );
        let mut map = Self::with_config(kind, algorithm, buffer_cap);
        let n = keys.len();
        if n > 0 {
            // Deep enough that `t` buffer flushes fit above the bulk run.
            let mut t = 0usize;
            while (buffer_cap << t) < n {
                t += 1;
            }
            let slots: Vec<Option<V>> = values.into_iter().map(Some).collect();
            map.tiers = vec![Vec::new(); t + 1];
            map.tiers[t].push(Arc::new(Run::build(
                keys,
                slots,
                &vec![1i64; n],
                kind,
                algorithm,
            )?));
        }
        Ok(map)
    }

    // ----- mutation -----

    /// Insert or overwrite; returns `true` iff a live value for `key`
    /// was replaced (what `BTreeMap::insert(..).is_some()` reports).
    ///
    /// On buffer overflow this **seals** the buffer into a sorted L0
    /// run (a move plus a weight prefix sum — no layout permutation)
    /// and hands the k-way merge to the compactor — a background worker
    /// by default ([`CompactionMode`]), so the merge is off this call's
    /// path unless [`MAX_SEALED_RUNS`] backpressure engages.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        self.try_install();
        // Durability: the write is in the WAL before it is applied. A
        // poisoned or failing sink rejects the mutation outright (see
        // [`DynamicMap::store_error`]).
        if let Some(sink) = self.sink_mut() {
            if !sink.log_put(&key, &value) {
                return false;
            }
        }
        let live_before;
        match buffer_slot(&self.buffer, &key) {
            Ok(i) => {
                // Buffer hit: the entry's weight already encodes the
                // runs' summed weight for this key (weight = liveness −
                // s, see the module docs), so the overwrite needs no
                // run descent at all.
                let entry = &mut self.buffer[i];
                let s = if entry.slot.is_some() {
                    1 - entry.weight
                } else {
                    -entry.weight
                };
                live_before = entry.slot.is_some();
                entry.slot = Some(value);
                entry.weight = 1 - s;
            }
            Err(i) => {
                let s = self.runs_weight_of(&key);
                live_before = s == 1;
                self.buffer_moves += (self.buffer.len() - i) as u64;
                self.buffer.insert(
                    i,
                    BufEntry {
                        key,
                        slot: Some(value),
                        weight: 1 - s,
                    },
                );
                self.maybe_seal();
            }
        }
        self.after_mutation();
        live_before
    }

    /// Delete; returns `true` iff a live value for `key` was removed
    /// (what `BTreeMap::remove(..).is_some()` reports). Removing an
    /// absent or already-deleted key is a no-op.
    ///
    /// A delete that must shadow older resident versions buffers a
    /// tombstone, annihilated when a merge reaches the bottom tier.
    pub fn remove(&mut self, key: &K) -> bool {
        self.try_install();
        // Log-before-apply, as in `insert` (no-op removes are logged
        // too: replay reproduces them as no-ops).
        if let Some(sink) = self.sink_mut() {
            if !sink.log_del(key) {
                return false;
            }
        }
        let live_before;
        match buffer_slot(&self.buffer, key) {
            Ok(i) => {
                // Buffer hit: recover `s` from the entry itself, no run
                // descent (see `insert`).
                let entry = &mut self.buffer[i];
                let s = if entry.slot.is_some() {
                    1 - entry.weight
                } else {
                    -entry.weight
                };
                live_before = entry.slot.is_some();
                entry.slot = None;
                entry.weight = -s;
            }
            Err(i) => {
                let s = self.runs_weight_of(key);
                if s == 1 {
                    live_before = true;
                    self.buffer_moves += (self.buffer.len() - i) as u64;
                    self.buffer.insert(
                        i,
                        BufEntry {
                            key: key.clone(),
                            slot: None,
                            weight: -1,
                        },
                    );
                    self.maybe_seal();
                } else {
                    debug_assert_eq!(s, 0, "per-key weight invariant violated");
                    live_before = false;
                }
            }
        }
        self.after_mutation();
        live_before
    }

    /// Bulk insert: apply every `(key, value)` pair as one delta
    /// (duplicate keys in the batch: the **last** pair wins, like
    /// repeated [`DynamicMap::insert`]). Returns how many **distinct**
    /// batch keys were live before the batch — the batch analog of the
    /// scalar `bool`s summed, except that intra-batch overwrites of
    /// the same key count once, not per pair.
    ///
    /// The delta is sorted **once**, its per-key run weights are
    /// resolved with one software-pipelined `batch_rank` sweep per
    /// resident run (instead of one descent cascade per key), and the
    /// result is combined with the write buffer in a single linear
    /// merge — no per-key `O(cap)` memmove. A batch that lands
    /// entirely above the current buffer maximum appends without
    /// touching existing entries at all (see
    /// [`DynamicMap::buffer_element_moves`]). If the combined buffer
    /// overflows `buffer_cap` it is sealed directly into a presorted
    /// L0 run and handed to the compactor, exactly like a scalar
    /// overflow.
    ///
    /// # Examples
    /// ```
    /// use implicit_search_trees::{DynamicMap, Layout};
    ///
    /// let mut m: DynamicMap<u64, &str> = DynamicMap::new(Layout::Veb);
    /// m.insert(1, "old");
    /// let replaced = m.batch_insert(vec![(1, "new"), (2, "two"), (3, "three")]);
    /// assert_eq!(replaced, 1); // only key 1 was live before
    /// assert_eq!(m.len(), 3);
    /// assert_eq!(m.get(&1), Some(&"new"));
    /// ```
    pub fn batch_insert(&mut self, pairs: Vec<(K, V)>) -> usize {
        self.apply_batch(pairs.into_iter().map(|(k, v)| (k, Some(v))).collect())
    }

    /// Bulk delete: apply every key as one delta (duplicates
    /// collapse). Returns how many keys were live before the batch.
    /// Keys that are absent (or already deleted) are no-ops and buffer
    /// no tombstone.
    ///
    /// Costs mirror [`DynamicMap::batch_insert`]: one sort, one
    /// pipelined weight sweep per resident run, one linear buffer
    /// merge.
    ///
    /// # Examples
    /// ```
    /// use implicit_search_trees::{DynamicMap, Layout};
    ///
    /// let mut m: DynamicMap<u64, u64> = DynamicMap::new(Layout::Veb);
    /// m.batch_insert((0..10u64).map(|k| (k, k)).collect());
    /// assert_eq!(m.batch_remove(&[3, 4, 99]), 2); // 99 was never live
    /// assert_eq!(m.len(), 8);
    /// ```
    pub fn batch_remove(&mut self, keys: &[K]) -> usize {
        self.apply_batch(keys.iter().map(|k| (k.clone(), None)).collect())
    }

    /// Shared bulk-delta path: `Some(v)` entries insert, `None` entries
    /// remove. Returns the number of delta keys that were live before.
    pub(crate) fn apply_batch(&mut self, mut delta: Vec<(K, Option<V>)>) -> usize {
        if delta.is_empty() {
            return 0;
        }
        self.try_install();
        // One WAL record for the whole delta, logged **before** the
        // sort so replay applies the verbatim batch through this same
        // path (sort + dedup are deterministic).
        if let Some(sink) = self.sink_mut() {
            if !sink.log_delta(&delta) {
                return 0;
            }
        }
        // Sort once; stable, so "last pair wins" survives the dedup.
        delta.sort_by(|a, b| a.0.cmp(&b.0));
        delta.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(later, kept);
                true
            } else {
                false
            }
        });
        // Per-key summed run weights, one pipelined rank sweep per run
        // (the bulk analog of `runs_weight_of`).
        let keys: Vec<K> = delta.iter().map(|(k, _)| k.clone()).collect();
        let mut s_runs = vec![0i64; keys.len()];
        for run in self.all_runs() {
            let ranks = run.map.index().batch_rank(&keys);
            let searcher = run.map.searcher();
            for (s, (&r, key)) in s_runs.iter_mut().zip(ranks.iter().zip(&keys)) {
                if let Some(p) = searcher.position_of_rank(r) {
                    if run.map.keys()[p] == *key {
                        *s += run.prefix.span(r);
                    }
                }
            }
        }
        // Combine the delta with the buffer in one linear merge (delta
        // wins per key). A batch strictly above the buffer max appends
        // without displacing a single existing entry.
        let batch_len = delta.len();
        let mut changed = 0usize;
        let append = match (self.buffer.last(), delta.first()) {
            (Some(last), Some((first, _))) => last.key < *first,
            _ => true,
        };
        let (old, mut merged) = if append {
            (Vec::new(), std::mem::take(&mut self.buffer))
        } else {
            let old = std::mem::take(&mut self.buffer);
            let cap = old.len() + batch_len;
            (old, Vec::with_capacity(cap))
        };
        let mut old_it = old.into_iter().peekable();
        let mut displaced = 0u64;
        let mut delta_started = false;
        for (i, (key, slot)) in delta.into_iter().enumerate() {
            while old_it.peek().is_some_and(|e| e.key < key) {
                if delta_started {
                    displaced += 1;
                }
                merged.push(old_it.next().expect("peeked"));
            }
            let s = s_runs[i];
            let buffered = old_it
                .peek()
                .is_some_and(|e| e.key == key)
                .then(|| old_it.next().expect("peeked").weight);
            let live_before = s + buffered.unwrap_or(0) == 1;
            if live_before {
                changed += 1;
            }
            delta_started = true;
            match slot {
                Some(v) => merged.push(BufEntry {
                    key,
                    slot: Some(v),
                    weight: 1 - s,
                }),
                // A tombstone only needs buffering if run versions hold
                // non-zero weight; with `s == 0` the runs' newest
                // version (if any) is already dead, so the key can
                // simply vanish from the buffer.
                None if s != 0 => merged.push(BufEntry {
                    key,
                    slot: None,
                    weight: -s,
                }),
                None => {}
            }
        }
        for e in old_it {
            displaced += 1;
            merged.push(e);
        }
        self.buffer = merged;
        self.buffer_moves += displaced;
        self.maybe_seal();
        self.after_mutations(batch_len);
        changed
    }

    /// Seal the buffer now, regardless of fill level, and start (or, in
    /// [`CompactionMode::Inline`], complete) a compaction — so
    /// subsequent reads skip the buffer probe, and outstanding
    /// [`Reader`]s see the current state immediately (publication is
    /// otherwise seal-granular). Note the merge targets the policy's
    /// chosen tier: if tier 0 currently has room this *adds* a shallow
    /// run rather than reducing the run count.
    pub fn compact_buffer(&mut self) {
        self.try_install();
        self.seal();
        self.ensure_compaction();
        self.after_mutation();
    }

    /// Drain all deferred compaction work: block until the in-flight
    /// merge (if any) installs and every sealed L0 run has been
    /// compacted into a tier. The buffer is left as-is (it is the
    /// normal resting state for recent writes). Afterwards
    /// [`DynamicMap::sealed_runs`] is 0 and
    /// [`DynamicMap::compaction_in_flight`] is `false`.
    ///
    /// Observable state is unchanged — compaction never alters answers,
    /// only where versions reside. Worth calling at the end of a write
    /// burst: installs otherwise happen at the start of the **next**
    /// mutation, so a map that goes read-only mid-compaction keeps both
    /// the merge's source runs and the finished merged run resident
    /// (up to 2× the compacted data) until some later write or this
    /// call installs it.
    pub fn quiesce(&mut self) {
        loop {
            self.wait_for_pending();
            if self.l0.is_empty() {
                break;
            }
            self.start_compaction();
        }
        self.after_mutation();
    }

    // ----- model-check hooks (compiled only under `--cfg ist_loom`) -----

    /// Make the next background compaction worker panic after arming
    /// its `DoneGuard`, to model-check panic propagation to the writer.
    #[cfg(ist_loom)]
    pub fn debug_panic_next_compaction(&mut self) {
        self.panic_next_compaction = true;
    }

    /// Size of the published cell's snapshot as `(buffer entries,
    /// runs)` — `(0, 0)` once the departed-reader release has fired.
    #[cfg(ist_loom)]
    pub fn debug_published_size(&self) -> (usize, usize) {
        let frozen = Arc::clone(&lock(&self.published));
        (frozen.buffer.len(), frozen.runs.len())
    }

    // ----- snapshots -----

    /// An immutable view of the current state; later writes to `self`
    /// are invisible to it. Cost: one copy of the (≤ `buffer_cap`-entry)
    /// buffer plus one `Arc` bump per resident run.
    pub fn snapshot(&self) -> Frozen<K, V> {
        self.freeze()
    }

    /// A handle to the published-snapshot cell, for concurrent readers;
    /// see [`Reader`]. The current state is published immediately;
    /// afterwards, for as long as any handle exists, the cell is
    /// re-published at **seal/compaction granularity** — when the
    /// buffer is sealed into an L0 run (sharing the run by `Arc`, no
    /// data copy), when a compaction installs, and in any case after
    /// every `buffer_cap` mutations (so overwrite-heavy hot sets that
    /// never overflow the buffer still publish) — never per buffered
    /// write. A reader therefore lags the writer by at most
    /// `buffer_cap` operations, at an amortized cost of one ≤-cap
    /// buffer copy per cap mutations; [`DynamicMap::compact_buffer`]
    /// publishes the current state on demand. With no outstanding
    /// handle, mutations skip publication entirely (and release the
    /// cell's last snapshot) — writers don't pay for readers they
    /// don't have.
    pub fn reader(&self) -> Reader<K, V> {
        self.publish();
        Reader {
            cell: Arc::clone(&self.published),
        }
    }

    // ----- reads (shared with Frozen via ViewRef) -----

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.view().len()
    }

    /// `true` iff no key is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live value under `key`, if any (buffer first, then runs
    /// newest-first, stopping at the first version found).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.view().get(key)
    }

    /// `true` iff `key` is live.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of live keys strictly smaller than `key` — exact, via the
    /// per-run weight prefixes (see the [module docs](self)).
    pub fn rank(&self, key: &K) -> usize {
        self.view().rank(key)
    }

    /// Number of live keys in `[lo, hi)`. Reversed bounds (`lo > hi`)
    /// describe an empty interval and yield 0 — never a panic (the same
    /// contract as [`crate::StaticIndex::range_count`]).
    pub fn range_count(&self, lo: &K, hi: &K) -> usize {
        self.view().range_count(lo, hi)
    }

    /// The smallest live entry with key `≥ key`, if any.
    pub fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        self.view().lower_bound(key)
    }

    /// The smallest live entry with key **strictly greater** than
    /// `key`, if any.
    pub fn successor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().successor(key)
    }

    /// The largest live entry with key **strictly smaller** than `key`,
    /// if any.
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().predecessor(key)
    }

    /// Batched [`DynamicMap::get`]: unresolved keys cascade run by run
    /// (newest first), each run driven by the software-pipelined
    /// parallel `batch_search` engine. `out[i]` is exactly
    /// `get(&keys[i])`.
    pub fn batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.view().batch_get(&as_refs(keys))
    }

    /// [`DynamicMap::batch_get`] over **borrowed** keys: bit-identical
    /// results without a contiguous owned key array, so routing layers
    /// (`ShardedMap`, the serve-layer coalescer) can partition a batch
    /// by reference instead of cloning every key into per-shard staging
    /// buffers.
    pub fn batch_get_ref(&self, keys: &[&K]) -> Vec<Option<&V>> {
        self.view().batch_get(keys)
    }

    /// Batched [`DynamicMap::rank`] on the pipelined per-run rank
    /// engine.
    pub fn batch_rank(&self, keys: &[K]) -> Vec<usize> {
        self.view().batch_rank(&as_refs(keys))
    }

    /// [`DynamicMap::batch_rank`] over **borrowed** keys (see
    /// [`DynamicMap::batch_get_ref`]).
    pub fn batch_rank_ref(&self, keys: &[&K]) -> Vec<usize> {
        self.view().batch_rank(keys)
    }

    /// Per-pair [`DynamicMap::range_count`] (reversed pairs yield 0);
    /// all endpoint ranks go through the pipelined engine.
    pub fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        self.view().batch_range_count(ranges)
    }

    // ----- introspection -----

    /// Writes currently absorbed by the buffer (not yet sealed).
    pub fn buffered_versions(&self) -> usize {
        self.buffer.len()
    }

    /// Resident versions per run, per tier: element `t` lists tier
    /// `t`'s runs newest-first (empty = empty tier; more than one run
    /// appears under tiered `fanout > 1` or lazy-bottom debt). Sealed
    /// L0 runs are **not** included (see
    /// [`DynamicMap::sealed_versions`]). Sums can exceed
    /// [`DynamicMap::len`]: overwrites, re-inserts, and tombstones all
    /// hold versions until a merge collapses them.
    pub fn tier_versions(&self) -> Vec<Vec<usize>> {
        self.tiers
            .iter()
            .map(|t| t.iter().map(|r| r.versions()).collect())
            .collect()
    }

    /// Cumulative count of buffer entries displaced toward the back of
    /// the sorted write buffer by mutations (each scalar out-of-order
    /// insert shifts `len − i` entries; a bulk delta that interleaves
    /// re-positions the tail it overlaps). A batch that lands entirely
    /// above the buffer maximum takes the **append fast path** and
    /// displaces nothing — the regression meter for it.
    pub fn buffer_element_moves(&self) -> u64 {
        self.buffer_moves
    }

    /// The configured [`CompactionPolicy`].
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// Resident versions per sealed-but-uncompacted L0 run, newest
    /// first.
    pub fn sealed_versions(&self) -> Vec<usize> {
        self.l0.iter().rev().map(|r| r.versions()).collect()
    }

    /// Number of sealed L0 runs awaiting compaction.
    pub fn sealed_runs(&self) -> usize {
        self.l0.len()
    }

    /// `true` while a background compaction is in flight (started but
    /// not yet installed). Inline compactions never appear here.
    pub fn compaction_in_flight(&self) -> bool {
        self.pending.is_some()
    }

    /// The configured [`CompactionMode`].
    pub fn compaction_mode(&self) -> CompactionMode {
        self.mode
    }

    /// Number of resident runs (sealed L0 runs plus tier runs).
    pub fn run_count(&self) -> usize {
        self.l0.len() + self.tiers.iter().map(Vec::len).sum::<usize>()
    }

    // ----- internals -----

    /// All resident runs, newest first: sealed L0 runs (newest sealed
    /// last in `l0`), then tiers shallow-to-deep. Every read, weight
    /// probe, and snapshot derives its run order from this.
    fn all_runs(&self) -> impl Iterator<Item = &Arc<Run<K, V>>> {
        self.l0.iter().rev().chain(self.tiers.iter().flatten())
    }

    fn view(&self) -> ViewRef<'_, K, V> {
        ViewRef {
            buffer: &self.buffer,
            runs: self.all_runs().map(|a| a.as_ref()).collect(),
        }
    }

    fn freeze(&self) -> Frozen<K, V> {
        Frozen {
            buffer: Arc::new(self.buffer.clone()),
            runs: Arc::new(self.all_runs().cloned().collect()),
        }
    }

    fn publish(&self) {
        let frozen = Arc::new(self.freeze());
        *lock(&self.published) = frozen;
        // Relaxed: both flags are only read and written on the writer
        // thread (mutation paths hold `&mut self`); readers receive
        // the snapshot itself through the `published` mutex, which
        // provides all cross-thread ordering.
        self.published_dirty.store(true, Ordering::Relaxed);
        // Relaxed: same argument — writer-thread-private bookkeeping.
        self.muts_since_publish.store(0, Ordering::Relaxed);
    }

    /// One atomic load: [`Reader`] handles share the cell's `Arc`.
    fn has_readers(&self) -> bool {
        Arc::strong_count(&self.published) > 1
    }

    /// Publish after a reader-visible structural event (seal or
    /// compaction install) — the publication points of the
    /// seal-granular contract. No-op without outstanding readers.
    fn publish_event(&self) {
        if self.has_readers() {
            self.publish();
        }
    }

    /// Mutation epilogue. With readers outstanding: count the mutation
    /// and force a publication once `buffer_cap` of them have gone
    /// unpublished — in-place buffer overwrites never seal, so without
    /// this an under-cap hot set would leave readers unboundedly stale;
    /// with the counter, the reader-lag bound really is "at most
    /// `buffer_cap` operations" (amortized cost: one ≤ cap buffer copy
    /// per cap mutations, same as a seal). With the last [`Reader`]
    /// gone: release the published cell's snapshot (swap in an empty
    /// view) so a departed reader population cannot pin a stale copy of
    /// the map — the regression behind
    /// `published_cell_releases_after_last_reader`.
    fn after_mutation(&self) {
        self.after_mutations(1);
    }

    /// [`DynamicMap::after_mutation`] for a batch of `n` mutations
    /// (bulk deltas count every key toward the publication bound).
    fn after_mutations(&self, n: usize) {
        if self.has_readers() {
            // Relaxed: writer-thread-private counter (see `publish`);
            // no other thread observes it.
            if self.muts_since_publish.fetch_add(n, Ordering::Relaxed) + n >= self.buffer_cap {
                self.publish();
            }
        // Relaxed: writer-thread-private flag (see `publish`); the
        // reader-visible effect (the cell swap below) is mutex-ordered.
        } else if self.published_dirty.load(Ordering::Relaxed) {
            *lock(&self.published) = Arc::new(Frozen {
                buffer: Arc::new(Vec::new()),
                runs: Arc::new(Vec::new()),
            });
            // Relaxed: same writer-thread-private flag as above.
            self.published_dirty.store(false, Ordering::Relaxed);
        }
    }

    /// Summed weight of `key`'s versions across all resident runs
    /// (excluding the buffer): one rank descent per run.
    fn runs_weight_of(&self, key: &K) -> i64 {
        self.all_runs().map(|r| r.weight_of(key)).sum()
    }

    /// `pub(crate)` for WAL recovery: replay suppresses sealing (the
    /// engine's manifest mirror is not attached yet, so a replay seal
    /// would create a run the store never hears about), then triggers
    /// the deferred overflow through here once the engine is attached.
    pub(crate) fn maybe_seal(&mut self) {
        if self.seal_suppressed {
            return;
        }
        if self.buffer.len() >= self.buffer_cap {
            self.seal();
            self.ensure_compaction();
        }
    }

    /// The seal half of the overflow path: freeze the sorted buffer
    /// into an immutable L0 run — the only construction work on the
    /// writer's critical path — and publish to readers, who share the
    /// new run by `Arc` without any data copy.
    ///
    /// Sealed runs stay in **sorted order** ([`QueryKind::Sorted`]):
    /// they hold ≤ `buffer_cap` entries, where binary search is already
    /// cache-resident, and they live only until the next compaction
    /// rebuilds them into the configured layout — so the seal is a
    /// `move` of the buffer plus a weight prefix sum, with no layout
    /// permutation at all on the write path.
    fn seal(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let buffer = std::mem::take(&mut self.buffer);
        let mut keys = Vec::with_capacity(buffer.len());
        let mut slots = Vec::with_capacity(buffer.len());
        let mut weights = Vec::with_capacity(buffer.len());
        for e in buffer {
            keys.push(e.key);
            slots.push(e.slot);
            weights.push(e.weight);
        }
        let run = Run::build(keys, slots, &weights, QueryKind::Sorted, self.algorithm)
            .expect("sorted runs never fail to build");
        self.l0.push(Arc::new(run));
        // Durable seal: write the run file, rotate the WAL (whose
        // records are now all represented by the run), and point the
        // manifest at the new file set.
        if self.store.is_some() {
            let sealed = Arc::clone(self.l0.last().expect("just pushed"));
            if let Some(sink) = self.sink_mut() {
                sink.on_seal(&sealed);
            }
        }
        self.publish_event();
    }

    /// Make sure sealed runs are on their way into a tier, applying
    /// [`MAX_SEALED_RUNS`] backpressure first: past the limit the
    /// writer blocks on the in-flight merge before continuing.
    fn ensure_compaction(&mut self) {
        if self.pending.is_some() && self.l0.len() >= MAX_SEALED_RUNS {
            self.wait_for_pending();
        }
        if self.pending.is_none() {
            self.start_compaction();
        }
    }

    /// Decide what the next compaction consumes and where the merged
    /// run lands, per the configured [`CompactionPolicy`]. Every plan
    /// consumes all sealed runs plus a **contiguous newest prefix** of
    /// the tier runs, and installs at that prefix's boundary — the
    /// invariant that keeps global newest-first order valid.
    fn plan_compaction(&mut self) -> Plan {
        let consumed_l0 = self.l0.len();
        let fanout = self.policy.fanout;
        let (mut full_tiers, mut partial_runs, mut target) = match self.policy.style {
            CompactionStyle::Tiered => {
                // First tier with a free run slot; tiers above it are
                // full and fold in.
                let target = self
                    .tiers
                    .iter()
                    .position(|t| t.len() < fanout)
                    .unwrap_or(self.tiers.len());
                (target, 0, target)
            }
            CompactionStyle::Leveled => {
                // First tier whose size budget `cap·fanout^(t+1)`
                // absorbs everything above it plus its own run; the
                // deepest occupied tier absorbs unconditionally.
                let mut est: usize = self.l0.iter().map(|r| r.versions()).sum();
                let mut budget = self.buffer_cap.saturating_mul(fanout);
                let mut t = 0;
                loop {
                    let here: usize = self
                        .tiers
                        .get(t)
                        .map_or(0, |v| v.iter().map(|r| r.versions()).sum());
                    let deeper = self
                        .tiers
                        .get(t + 1..)
                        .is_some_and(|rest| rest.iter().any(|v| !v.is_empty()));
                    est += here;
                    if !deeper || est <= budget {
                        break (t + 1, 0, t);
                    }
                    budget = budget.saturating_mul(fanout);
                    t += 1;
                }
            }
        };
        // Lazy bottom: when the plan would fold in the bottom (largest)
        // run but everything above it is still small, stop short of it
        // — merge the rest and stack the result on the bottom tier as
        // newer runs ("debt") until the trigger is reached.
        if self.policy.lazy_bottom {
            if let Some(bottom) = self.tiers.iter().rposition(|t| !t.is_empty()) {
                let consumes_bottom = full_tiers > bottom;
                if consumes_bottom {
                    let bottom_run = self.tiers[bottom].last().expect("non-empty tier");
                    let above: usize = self.l0.iter().map(|r| r.versions()).sum::<usize>()
                        + self
                            .tiers
                            .iter()
                            .flatten()
                            .map(|r| r.versions())
                            .sum::<usize>()
                        - bottom_run.versions();
                    if above.saturating_mul(fanout.max(2)) < bottom_run.versions() {
                        full_tiers = bottom;
                        partial_runs = self.tiers[bottom].len() - 1;
                        target = bottom;
                    }
                }
            }
        }
        while self.tiers.len() <= target {
            self.tiers.push(Vec::new());
        }
        // Anything below the consumed prefix that survives the merge?
        let boundary_leftover = self
            .tiers
            .get(full_tiers)
            .is_some_and(|t| t.len() > partial_runs);
        let deeper_occupied = boundary_leftover
            || self
                .tiers
                .get(full_tiers + 1..)
                .is_some_and(|rest| rest.iter().any(|t| !t.is_empty()));
        Plan {
            consumed_l0,
            full_tiers,
            partial_runs,
            target,
            deeper_occupied,
        }
    }

    /// Start compacting every sealed run plus the policy-chosen prefix
    /// of the tier runs (see [`DynamicMap::plan_compaction`]). In
    /// [`CompactionMode::Background`] the merge runs on a worker thread
    /// over `Arc`-shared sources while the map keeps serving from the
    /// originals; in [`CompactionMode::Inline`] it completes (and
    /// installs) before returning.
    fn start_compaction(&mut self) {
        debug_assert!(self.pending.is_none(), "at most one compaction in flight");
        if self.l0.is_empty() {
            return;
        }
        let plan = self.plan_compaction();
        // Newest-first sources: sealed runs (newest sealed sits last in
        // `l0`), then the consumed tier prefix shallow-to-deep.
        let mut sources: Vec<Arc<Run<K, V>>> = self.l0.iter().rev().cloned().collect();
        for tier in &self.tiers[..plan.full_tiers] {
            sources.extend(tier.iter().cloned());
        }
        if plan.partial_runs > 0 {
            sources.extend(
                self.tiers[plan.full_tiers][..plan.partial_runs]
                    .iter()
                    .cloned(),
            );
        }
        let deeper_occupied = plan.deeper_occupied;
        let (kind, algorithm) = (self.kind, self.algorithm);
        let threads = self.policy.merge_threads;
        match self.mode {
            CompactionMode::Inline => {
                let merged = merge_runs(&sources, deeper_occupied, kind, algorithm, false, threads);
                self.install(plan, merged);
            }
            CompactionMode::Background => {
                // One short-lived thread per compaction: the spawn
                // (~tens of µs) lands once per `buffer_cap` writes, not
                // per write, which keeps it out of the latency profile
                // the tail_latency bench guards. A long-lived worker
                // fed by a channel would shave it if profiles ever say
                // otherwise.
                let done = Arc::new(AtomicBool::new(false));
                let worker_done = Arc::clone(&done);
                #[cfg(ist_loom)]
                let inject_panic = std::mem::take(&mut self.panic_next_compaction);
                #[cfg(not(ist_loom))]
                let inject_panic = false;
                let handle = spawn(move || {
                    /// Sets `done` even when the merge panics, so the
                    /// writer's next `try_install` joins the worker and
                    /// re-raises the panic instead of sealing on top of
                    /// a compaction that will never finish.
                    struct DoneGuard(Arc<AtomicBool>);
                    impl Drop for DoneGuard {
                        fn drop(&mut self) {
                            self.0.store(true, Ordering::Release);
                        }
                    }
                    let _guard = DoneGuard(worker_done);
                    if inject_panic {
                        panic!("injected compaction worker panic (ist-loom test hook)");
                    }
                    merge_runs(&sources, deeper_occupied, kind, algorithm, true, threads)
                });
                self.pending = Some(Pending {
                    plan,
                    done,
                    handle: Some(handle),
                });
            }
        }
    }

    /// Atomically swap the compacted sources for the merged run: the
    /// consumed L0 prefix and tier-run prefix go out, `merged` becomes
    /// the newest run of the target tier, all under `&mut self` —
    /// readers hold `Arc`s and can never observe a torn state.
    /// Observable answers are identical before and after (the merge
    /// preserves newest-wins resolution and per-key weight sums).
    fn install(&mut self, plan: Plan, merged: Option<Run<K, V>>) {
        let merged = merged.map(Arc::new);
        // Durable install first: the merged run file and rotated
        // manifest hit storage before the in-memory swap, so a sink
        // error leaves the on-disk state at the (fully consistent)
        // pre-merge file set.
        if self.store.is_some() {
            let run = merged.clone();
            if let Some(sink) = self.sink_mut() {
                sink.on_install(plan, run.as_deref());
            }
        }
        self.l0.drain(..plan.consumed_l0);
        for tier in &mut self.tiers[..plan.full_tiers] {
            tier.clear();
        }
        if plan.partial_runs > 0 {
            self.tiers[plan.full_tiers].drain(..plan.partial_runs);
        }
        debug_assert!(
            self.tiers[..plan.target].iter().all(Vec::is_empty),
            "merged run would sit below an occupied shallower tier"
        );
        if let Some(run) = merged {
            self.tiers[plan.target].insert(0, run);
        }
        self.publish_event();
    }

    /// Block until the in-flight compaction (if any) finishes, then
    /// install it. Worker panics propagate to the writer here.
    fn wait_for_pending(&mut self) {
        let Some(mut pending) = self.pending.take() else {
            return;
        };
        let handle = pending.handle.take().expect("pending owns its worker");
        let merged = handle
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        self.install(pending.plan, merged);
    }

    /// Non-blocking install check, run at the start of every mutation:
    /// one atomic load while the merge is still running, a join of an
    /// already-finished thread (cheap) plus the pointer swaps when it
    /// is done. Immediately starts compacting any sealed runs that
    /// accumulated while the previous merge was in flight.
    fn try_install(&mut self) {
        let finished = self
            .pending
            .as_ref()
            .is_some_and(|p| p.done.load(Ordering::Acquire));
        if finished {
            self.wait_for_pending();
            if !self.l0.is_empty() {
                self.start_compaction();
            }
        }
    }
}

/// A merge source with one-entry lookahead.
struct Source<'s, K, V> {
    head: Option<MergedEntry<K, V>>,
    rest: Box<dyn Iterator<Item = MergedEntry<K, V>> + 's>,
}

impl<'s, K, V> Source<'s, K, V> {
    fn new(mut rest: Box<dyn Iterator<Item = MergedEntry<K, V>> + 's>) -> Self {
        let head = rest.next();
        Self { head, rest }
    }

    fn advance(&mut self) -> MergedEntry<K, V> {
        let head = self.head.take().expect("advance() requires a head");
        self.head = self.rest.next();
        head
    }
}

impl<K, V> Frozen<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync,
{
    /// Number of live keys in the snapshot.
    pub fn len(&self) -> usize {
        self.view().len()
    }

    /// `true` iff the snapshot has no live key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`DynamicMap::get`].
    pub fn get(&self, key: &K) -> Option<&V> {
        self.view().get(key)
    }

    /// See [`DynamicMap::contains_key`].
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// See [`DynamicMap::rank`].
    pub fn rank(&self, key: &K) -> usize {
        self.view().rank(key)
    }

    /// See [`DynamicMap::range_count`] (reversed bounds yield 0).
    pub fn range_count(&self, lo: &K, hi: &K) -> usize {
        self.view().range_count(lo, hi)
    }

    /// See [`DynamicMap::lower_bound`].
    pub fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        self.view().lower_bound(key)
    }

    /// See [`DynamicMap::successor`].
    pub fn successor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().successor(key)
    }

    /// See [`DynamicMap::predecessor`].
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().predecessor(key)
    }

    /// See [`DynamicMap::batch_get`].
    pub fn batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.view().batch_get(&as_refs(keys))
    }

    /// See [`DynamicMap::batch_get_ref`].
    pub fn batch_get_ref(&self, keys: &[&K]) -> Vec<Option<&V>> {
        self.view().batch_get(keys)
    }

    /// See [`DynamicMap::batch_rank`].
    pub fn batch_rank(&self, keys: &[K]) -> Vec<usize> {
        self.view().batch_rank(&as_refs(keys))
    }

    /// See [`DynamicMap::batch_rank_ref`].
    pub fn batch_rank_ref(&self, keys: &[&K]) -> Vec<usize> {
        self.view().batch_rank(keys)
    }

    /// See [`DynamicMap::batch_range_count`].
    pub fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        self.view().batch_range_count(ranges)
    }

    fn view(&self) -> ViewRef<'_, K, V> {
        ViewRef {
            buffer: &self.buffer,
            runs: self.runs.iter().map(|a| a.as_ref()).collect(),
        }
    }
}

/// Borrowed multi-run state — the single implementation of every read,
/// shared by [`DynamicMap`] (live state) and [`Frozen`] (snapshots).
struct ViewRef<'a, K, V> {
    buffer: &'a [BufEntry<K, V>],
    /// Non-empty runs, newest first.
    runs: Vec<&'a Run<K, V>>,
}

impl<'a, K, V> ViewRef<'a, K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync,
{
    /// The newest resident version of `key`: `None` = absent from every
    /// run and the buffer, `Some(None)` = tombstone, `Some(Some(v))` =
    /// live.
    fn version(&self, key: &K) -> Option<&'a Option<V>> {
        if let Ok(i) = buffer_slot(self.buffer, key) {
            return Some(&self.buffer[i].slot);
        }
        for run in &self.runs {
            if let Some(slot) = run.map.get(key) {
                return Some(slot);
            }
        }
        None
    }

    fn get(&self, key: &K) -> Option<&'a V> {
        self.version(key)?.as_ref()
    }

    fn buffer_weight_below(&self, key: &K) -> i64 {
        let i = self.buffer.partition_point(|e| e.key < *key);
        self.buffer[..i].iter().map(|e| e.weight).sum()
    }

    fn rank(&self, key: &K) -> usize {
        let mut w = self.buffer_weight_below(key);
        for run in &self.runs {
            w += run.weight_below(key);
        }
        debug_assert!(w >= 0, "weight invariant violated: negative rank");
        w as usize
    }

    fn len(&self) -> usize {
        let w: i64 = self.buffer.iter().map(|e| e.weight).sum::<i64>()
            + self.runs.iter().map(|r| r.total_weight()).sum::<i64>();
        debug_assert!(w >= 0, "weight invariant violated: negative len");
        w as usize
    }

    fn range_count(&self, lo: &K, hi: &K) -> usize {
        if lo >= hi {
            return 0; // reversed or empty bounds: defined as 0
        }
        self.rank(hi).saturating_sub(self.rank(lo))
    }

    /// Smallest version key `≥ key` across buffer and runs (dead
    /// versions included — callers resolve liveness).
    fn version_at_least(&self, key: &K) -> Option<&'a K> {
        let i = self.buffer.partition_point(|e| e.key < *key);
        let mut best = self.buffer.get(i).map(|e| &e.key);
        for run in &self.runs {
            if let Some((k, _)) = run.map.lower_bound(key) {
                best = Some(match best {
                    Some(b) if b <= k => b,
                    _ => k,
                });
            }
        }
        best
    }

    /// Smallest version key strictly greater than `key`.
    fn version_after(&self, key: &K) -> Option<&'a K> {
        let i = self.buffer.partition_point(|e| e.key <= *key);
        let mut best = self.buffer.get(i).map(|e| &e.key);
        for run in &self.runs {
            if let Some((k, _)) = run.map.successor(key) {
                best = Some(match best {
                    Some(b) if b <= k => b,
                    _ => k,
                });
            }
        }
        best
    }

    /// Largest version key strictly smaller than `key`.
    fn version_before(&self, key: &K) -> Option<&'a K> {
        let i = self.buffer.partition_point(|e| e.key < *key);
        let mut best = i.checked_sub(1).map(|j| &self.buffer[j].key);
        for run in &self.runs {
            if let Some((k, _)) = run.map.predecessor(key) {
                best = Some(match best {
                    Some(b) if b >= k => b,
                    _ => k,
                });
            }
        }
        best
    }

    /// Walk candidates rightward until one is live.
    fn resolve_forward(&self, mut cand: &'a K) -> Option<(&'a K, &'a V)> {
        loop {
            match self.version(cand).expect("candidate keys have a version") {
                Some(v) => return Some((cand, v)),
                None => cand = self.version_after(cand)?,
            }
        }
    }

    /// Walk candidates leftward until one is live.
    fn resolve_backward(&self, mut cand: &'a K) -> Option<(&'a K, &'a V)> {
        loop {
            match self.version(cand).expect("candidate keys have a version") {
                Some(v) => return Some((cand, v)),
                None => cand = self.version_before(cand)?,
            }
        }
    }

    fn lower_bound(&self, key: &K) -> Option<(&'a K, &'a V)> {
        self.resolve_forward(self.version_at_least(key)?)
    }

    fn successor(&self, key: &K) -> Option<(&'a K, &'a V)> {
        self.resolve_forward(self.version_after(key)?)
    }

    fn predecessor(&self, key: &K) -> Option<(&'a K, &'a V)> {
        self.resolve_backward(self.version_before(key)?)
    }

    /// Batched get over **borrowed** keys — the single implementation
    /// behind both `batch_get` flavors; nothing below this point ever
    /// clones a key (probes cascade as `&K` straight into the engine's
    /// position→key closures).
    fn batch_get(&self, keys: &[&K]) -> Vec<Option<&'a V>> {
        let mut out: Vec<Option<&'a V>> = vec![None; keys.len()];
        // Buffer pass: cheap binary searches over ≤ cap entries.
        let mut pending: Vec<usize> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            match buffer_slot(self.buffer, key) {
                Ok(j) => out[i] = self.buffer[j].slot.as_ref(),
                Err(_) => pending.push(i),
            }
        }
        // Cascade the unresolved keys run by run, newest first, each
        // run on the pipelined parallel engine.
        for run in &self.runs {
            if pending.is_empty() {
                break;
            }
            let probe: Vec<&K> = pending.iter().map(|&i| keys[i]).collect();
            let positions = run.map.index().batch_search_ref(&probe);
            let mut still = Vec::with_capacity(pending.len());
            for (j, &i) in pending.iter().enumerate() {
                match positions[j] {
                    Some(p) => out[i] = run.map.values()[p].as_ref(),
                    None => still.push(i),
                }
            }
            pending = still;
        }
        out
    }

    fn batch_rank(&self, keys: &[&K]) -> Vec<usize> {
        let mut acc: Vec<i64> = keys.iter().map(|&k| self.buffer_weight_below(k)).collect();
        for run in &self.runs {
            for (a, r) in acc.iter_mut().zip(run.map.index().batch_rank_ref(keys)) {
                *a += run.prefix.at(r);
            }
        }
        acc.into_iter()
            .map(|w| {
                debug_assert!(w >= 0, "weight invariant violated: negative rank");
                w as usize
            })
            .collect()
    }

    fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        let mut flat: Vec<&K> = Vec::with_capacity(2 * ranges.len());
        for (lo, hi) in ranges {
            flat.push(lo);
            flat.push(hi);
        }
        let ranks = self.batch_rank(&flat);
        ranges
            .iter()
            .enumerate()
            .map(|(i, (lo, hi))| {
                if lo >= hi {
                    0
                } else {
                    ranks[2 * i + 1].saturating_sub(ranks[2 * i])
                }
            })
            .collect()
    }
}

/// Borrow every element of `keys` (the shim between the public
/// owned-slice batch API and the ref-based implementation).
fn as_refs<K>(keys: &[K]) -> Vec<&K> {
    keys.iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    impl<K, V> DynamicMap<K, V>
    where
        K: Ord + Clone + Send + Sync + 'static,
        V: Clone + Send + Sync + 'static,
    {
        /// Test-only exhaustive check of the per-key weight invariant:
        /// for every resident key, weights sum to 1 iff the newest
        /// version is live. Holds at every instant, including while a
        /// background compaction is mid-flight (sealed runs included).
        fn validate_weights(&self) {
            let mut keys: Vec<K> = self.buffer.iter().map(|e| e.key.clone()).collect();
            for run in self.all_runs() {
                keys.extend(run.iter_sorted_range(0, run.map.len()).map(|(k, _, _)| k));
            }
            keys.sort();
            keys.dedup();
            for k in keys {
                let total = self.runs_weight_of(&k)
                    + self
                        .buffer
                        .iter()
                        .find(|e| e.key == k)
                        .map_or(0, |e| e.weight);
                let live = self.view().version(&k).expect("resident").is_some();
                assert_eq!(total, i64::from(live), "weight invariant for resident key");
            }
        }
    }

    #[test]
    fn tier_evolution_is_binomial() {
        // Inline mode: deterministic tier shapes (background compaction
        // preserves answers, not shapes).
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4)
                .with_compaction_mode(CompactionMode::Inline);
        for k in 0..16u64 {
            m.insert(k, k * 10);
            m.validate_weights();
        }
        // 16 inserts at cap 4 = 4 seal+compact cycles: binomial counter
        // 100 -> tier 2 holds everything, tiers 0/1 empty.
        assert_eq!(m.tier_versions(), vec![vec![], vec![], vec![16]]);
        assert_eq!(m.sealed_runs(), 0);
        assert_eq!(m.len(), 16);
        assert_eq!(m.buffered_versions(), 0);
        for k in 0..16u64 {
            assert_eq!(m.get(&k), Some(&(k * 10)));
            assert_eq!(m.rank(&k), k as usize);
        }
    }

    #[test]
    fn tiered_fanout_two_accumulates_runs_before_folding() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4)
                .with_compaction_mode(CompactionMode::Inline)
                .with_policy(CompactionPolicy::tiered(2));
        for k in 0..16u64 {
            m.insert(k, k);
            m.validate_weights();
        }
        // Tiered(2): a tier holds up to 2 runs before folding deeper.
        // Seals 1-2 stack tier 0; seal 3 folds l0+tier0 into tier 1;
        // seal 4 restarts tier 0.
        assert_eq!(m.tier_versions(), vec![vec![4], vec![12]]);
        for k in 16..32u64 {
            m.insert(k, k);
        }
        assert_eq!(m.tier_versions(), vec![vec![4, 4], vec![12, 12]]);
        // Newest-first order within a tier: run 0 of tier 0 holds the
        // most recent seal.
        assert_eq!(m.len(), 32);
        for k in 0..32u64 {
            assert_eq!(m.get(&k), Some(&k));
            assert_eq!(m.rank(&k), k as usize);
        }
    }

    #[test]
    fn leveled_folds_into_the_deepest_occupied_tier() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4)
                .with_compaction_mode(CompactionMode::Inline)
                .with_policy(CompactionPolicy::leveled(2));
        for k in 0..24u64 {
            m.insert(k, k);
            m.validate_weights();
        }
        // Leveled: every compaction leaves at most one run per tier;
        // the deepest occupied tier absorbs unconditionally, so with
        // no deeper neighbors everything folds into one bottom run.
        assert_eq!(m.run_count(), 1);
        assert_eq!(m.tier_versions(), vec![vec![24]]);
        assert_eq!(m.len(), 24);
    }

    #[test]
    fn lazy_bottom_defers_rewriting_the_big_run() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4)
                .with_compaction_mode(CompactionMode::Inline)
                .with_policy(CompactionPolicy::leveled(2).with_lazy_bottom(true));
        // Grow a 12-version bottom run (the first three seals merge
        // normally: the accumulated-above trigger is not yet met).
        for k in 0..12u64 {
            m.insert(k, k);
        }
        assert_eq!(m.tier_versions(), vec![vec![12]]);
        let bottom = Arc::clone(&m.tiers[0][0]);
        // The next seal would fold the bottom in, but 4 versions of
        // debt × fanout 2 < 12: lazy bottom stops short and stacks the
        // merged debt as a newer run of the same tier.
        for k in 12..16u64 {
            m.insert(k, k);
            m.validate_weights();
        }
        assert_eq!(m.tier_versions(), vec![vec![4, 12]]);
        assert!(
            Arc::ptr_eq(&bottom, m.tiers[0].last().expect("bottom run")),
            "lazy bottom must not rewrite the big run below the trigger"
        );
        // One more seal crosses the trigger (8 × 2 ≥ 12): the bottom
        // run finally folds in.
        for k in 16..20u64 {
            m.insert(k, k);
        }
        assert_eq!(m.tier_versions(), vec![vec![20]]);
        assert!(!Arc::ptr_eq(&bottom, &m.tiers[0][0]));
        for k in 0..20u64 {
            assert_eq!(m.get(&k), Some(&k));
            assert_eq!(m.rank(&k), k as usize);
        }
    }

    #[test]
    #[should_panic(expected = "leveled fanout must be at least 2")]
    fn leveled_fanout_one_is_rejected() {
        let _ = DynamicMap::<u64, u64>::new(Layout::Veb).with_policy(CompactionPolicy {
            fanout: 1,
            style: CompactionStyle::Leveled,
            lazy_bottom: false,
            merge_threads: 0,
        });
    }

    #[test]
    fn batch_append_fast_path_moves_no_elements() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 64);
        // Even keys only, so later odd-key writes miss the buffer.
        assert_eq!(m.batch_insert((0..16u64).map(|k| (2 * k, k)).collect()), 0);
        assert_eq!(
            m.buffer_element_moves(),
            0,
            "first batch fills empty buffer"
        );
        // A sorted batch strictly above the buffer max appends without
        // displacing a single existing entry.
        assert_eq!(m.batch_insert((16..32u64).map(|k| (2 * k, k)).collect()), 0);
        assert_eq!(m.buffer_element_moves(), 0, "above-max batch must append");
        // An overlapping batch pays only for the entries it passes.
        assert_eq!(m.batch_insert(vec![(10, 500)]), 1);
        let after_overlap = m.buffer_element_moves();
        assert!(after_overlap > 0, "overlapping batch displaces the tail");
        // A per-key buffer-miss insert below the max pays the O(cap)
        // memmove the batch path avoids.
        m.insert(1, 100);
        assert!(m.buffer_element_moves() > after_overlap);
        m.validate_weights();
        assert_eq!(m.len(), 33);
        assert_eq!(m.get(&10), Some(&500));
    }

    #[test]
    fn batch_ops_match_scalar_loop() {
        let mut batched: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4)
                .with_compaction_mode(CompactionMode::Inline);
        let mut scalar = DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4)
            .with_compaction_mode(CompactionMode::Inline);
        // Duplicate keys in one batch: last pair wins, exactly like the
        // scalar loop; the count is per **distinct** key live before
        // (the scalar loop would also count intra-batch overwrites).
        let pairs = vec![(5u64, 1u64), (3, 2), (5, 3), (9, 4), (3, 5)];
        for &(k, v) in &pairs {
            scalar.insert(k, v);
        }
        assert_eq!(batched.batch_insert(pairs), 0, "nothing was live before");
        batched.validate_weights();
        // Re-inserting over live keys counts each distinct key once.
        assert_eq!(batched.batch_insert(vec![(5, 7), (5, 8), (11, 9)]), 1);
        assert!(scalar.insert(5, 7));
        assert!(scalar.insert(5, 8));
        assert!(!scalar.insert(11, 9));
        let keys = [3u64, 3, 7, 9];
        let expect_removed = [3u64, 7, 9]
            .iter()
            .map(|k| usize::from(scalar.remove(k)))
            .sum::<usize>();
        assert_eq!(batched.batch_remove(&keys), expect_removed);
        batched.validate_weights();
        for k in 0..12u64 {
            assert_eq!(batched.get(&k), scalar.get(&k));
            assert_eq!(batched.rank(&k), scalar.rank(&k));
        }
        assert_eq!(batched.len(), scalar.len());
        // Empty batches are free no-ops.
        assert_eq!(batched.batch_insert(Vec::new()), 0);
        assert_eq!(batched.batch_remove(&[]), 0);
    }

    #[test]
    fn annihilation_empties_the_structure() {
        let mut m: DynamicMap<u64, &str> =
            DynamicMap::with_config(QueryKind::BstPrefetch, Algorithm::Involution, 1)
                .with_compaction_mode(CompactionMode::Inline);
        m.insert(7, "seven"); // seal+compact -> tier 0 live
        assert!(m.remove(&7)); // tombstone merge reaches bottom -> annihilated
        m.validate_weights();
        assert_eq!(m.len(), 0);
        assert_eq!(m.run_count(), 0, "tombstone + value must annihilate");
        assert_eq!(m.get(&7), None);
        assert!(!m.remove(&7), "double delete is a no-op");
    }

    #[test]
    fn background_annihilation_after_quiesce() {
        let mut m: DynamicMap<u64, &str> =
            DynamicMap::with_config(QueryKind::BstPrefetch, Algorithm::Involution, 1);
        assert_eq!(m.compaction_mode(), CompactionMode::Background);
        m.insert(7, "seven");
        assert!(m.remove(&7));
        m.validate_weights();
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&7), None);
        m.quiesce();
        assert_eq!(m.sealed_runs(), 0);
        assert!(!m.compaction_in_flight());
        assert_eq!(m.run_count(), 0, "tombstone + value must annihilate");
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn reinsert_across_runs_keeps_ranks_exact() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Btree(2), Algorithm::CycleLeader, 2);
        // Spread versions of key 5 across several runs.
        for round in 0..5u64 {
            m.insert(5, round);
            m.insert(100 + round, round);
            m.validate_weights();
        }
        assert_eq!(m.get(&5), Some(&4));
        assert_eq!(m.len(), 6); // 5 plus 100..=104
        assert_eq!(m.rank(&100), 1, "key 5 must count once despite re-inserts");
        assert_eq!(m.range_count(&0, &200), 6);
        assert!(m.remove(&5));
        m.validate_weights();
        assert_eq!(m.rank(&100), 0);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn bulk_build_last_duplicate_wins() {
        let m = DynamicMap::build(
            vec![3u64, 1, 3, 2, 1],
            vec!["a", "b", "c", "d", "e"],
            Layout::Bst,
        )
        .unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&1), Some(&"e"));
        assert_eq!(m.get(&3), Some(&"c"));
        assert_eq!(m.get(&2), Some(&"d"));
        assert_eq!(m.run_count(), 1);
    }

    #[test]
    fn reversed_bounds_yield_zero() {
        let mut m: DynamicMap<u64, u64> = DynamicMap::new(Layout::Veb);
        for k in 0..50u64 {
            m.insert(k, k);
        }
        assert_eq!(m.range_count(&30, &10), 0);
        assert_eq!(m.range_count(&10, &10), 0);
        assert_eq!(
            m.batch_range_count(&[(30, 10), (0, 50), (49, 49)]),
            vec![0, 50, 0]
        );
        assert_eq!(m.snapshot().range_count(&u64::MAX, &0), 0);
    }

    #[test]
    fn snapshots_are_isolated_and_readers_advance() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 3);
        let reader = m.reader();
        assert_eq!(reader.snapshot().len(), 0);
        let mut snaps = Vec::new();
        for k in 0..10u64 {
            m.insert(k, k);
            snaps.push(m.snapshot());
        }
        for (i, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.len(), i + 1, "snapshot pinned at its prefix");
            assert_eq!(snap.get(&(i as u64)), Some(&(i as u64)));
            assert_eq!(snap.get(&(i as u64 + 1)), None);
        }
        // Publication is seal-granular: the reader's cell reflects the
        // last seal (after the 9th insert at cap 3); the 10th insert is
        // still buffered and unpublished.
        assert_eq!(reader.snapshot().len(), 9);
        assert_eq!(reader.snapshot().batch_get(&[0, 9]), vec![Some(&0), None]);
        // compact_buffer publishes the current state on demand.
        m.compact_buffer();
        assert_eq!(reader.snapshot().len(), 10);
        assert_eq!(
            reader.snapshot().batch_get(&[0, 9]),
            vec![Some(&0), Some(&9)]
        );
    }

    #[test]
    fn reader_lag_is_op_bounded_even_without_seals() {
        // A hot set smaller than the buffer never overflows, so no seal
        // ever fires — the mutation counter must publish instead,
        // keeping the reader at most `buffer_cap` operations behind.
        let cap = 8usize;
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, cap);
        m.insert(1, 0);
        let reader = m.reader();
        for i in 1..=1_000u64 {
            m.insert(1, i); // always the in-place overwrite arm
            assert_eq!(m.buffered_versions(), 1, "hot set must never seal");
            let seen = *reader.snapshot().get(&1).expect("key 1 is live");
            assert!(
                i - seen < cap as u64,
                "reader is {} ops behind at op {i} (cap {cap})",
                i - seen
            );
        }
    }

    #[test]
    fn published_cell_releases_after_last_reader() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4)
                .with_compaction_mode(CompactionMode::Inline);
        for k in 0..8u64 {
            m.insert(k, k);
        }
        let run = m
            .all_runs()
            .next()
            .expect("8 inserts at cap 4 leave a resident run")
            .clone();
        assert_eq!(Arc::strong_count(&run), 2, "map + this test's clone");
        let reader = m.reader(); // eager publish pins the run in the cell
        assert_eq!(Arc::strong_count(&run), 3);
        assert_eq!(reader.snapshot().len(), 8);
        drop(reader);
        // The cell still pins the frozen view until the writer re-checks…
        assert_eq!(Arc::strong_count(&run), 3);
        // …which happens on the next mutation (no seal needed).
        m.insert(100, 0);
        assert_eq!(
            Arc::strong_count(&run),
            2,
            "published cell must release its snapshot after the last reader drops"
        );
    }

    /// A value whose clones are counted: the write-amplification
    /// contract in types.
    #[derive(Debug)]
    struct CountedVal {
        n: u64,
        clones: Arc<std::sync::atomic::AtomicUsize>,
    }

    impl Clone for CountedVal {
        fn clone(&self) -> Self {
            self.clones.fetch_add(1, Ordering::SeqCst);
            Self {
                n: self.n,
                clones: Arc::clone(&self.clones),
            }
        }
    }

    #[test]
    fn publication_is_seal_granular_not_per_write() {
        let clones = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut m: DynamicMap<u64, CountedVal> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 64)
                .with_compaction_mode(CompactionMode::Inline);
        let _reader = m.reader();
        for k in 0..63u64 {
            m.insert(
                k,
                CountedVal {
                    n: k,
                    clones: Arc::clone(&clones),
                },
            );
        }
        // The write-amplification contract: buffered writes while a
        // reader is outstanding clone NOTHING (the old behavior cloned
        // the whole buffer per mutation — O(cap) value clones per op).
        assert_eq!(
            clones.load(Ordering::SeqCst),
            0,
            "buffered writes must not clone for publication"
        );
        // An explicit snapshot still copies the live buffer — exactly
        // once, on demand.
        let snap = m.snapshot();
        assert_eq!(clones.load(Ordering::SeqCst), 63);
        assert_eq!(snap.len(), 63);
        drop(snap);
        // The 64th insert seals: entries move into the L0 run without
        // cloning, publication shares it by Arc, and the inline merge
        // streams each version exactly once.
        m.insert(
            63,
            CountedVal {
                n: 63,
                clones: Arc::clone(&clones),
            },
        );
        assert_eq!(
            clones.load(Ordering::SeqCst),
            63 + 64,
            "seal + publish + one merge stream, nothing else"
        );
    }

    /// A value whose clone panics once armed: the only clones in the
    /// write path happen on the merge worker, so arming it detonates
    /// the background compaction.
    struct Grenade {
        armed: bool,
    }

    impl Clone for Grenade {
        fn clone(&self) -> Self {
            assert!(!self.armed, "merge grenade");
            Self { armed: self.armed }
        }
    }

    #[test]
    fn background_worker_panics_propagate_to_writer() {
        let result = std::panic::catch_unwind(|| {
            let mut m: DynamicMap<u64, Grenade> =
                DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4);
            // Armed values reach the worker via a seal; the writer must
            // observe the worker's panic at a later install (or at the
            // quiesce() below at the latest), not seal forever on top
            // of a compaction that will never finish.
            for k in 0..200u64 {
                m.insert(k, Grenade { armed: true });
            }
            m.quiesce();
        });
        let payload = result.expect_err("worker panic must reach the writer");
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(msg.contains("merge grenade"), "unexpected panic: {msg}");
    }

    #[test]
    fn background_matches_inline_observably() {
        let mut inline: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Btree(2), Algorithm::CycleLeader, 4)
                .with_compaction_mode(CompactionMode::Inline);
        let mut bg: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Btree(2), Algorithm::CycleLeader, 4);
        // A deterministic mutation mix with overwrites and deletes.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..600u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (x >> 33) % 50;
            if x.is_multiple_of(5) {
                assert_eq!(inline.remove(&k), bg.remove(&k), "op {i}");
            } else {
                assert_eq!(inline.insert(k, i), bg.insert(k, i), "op {i}");
            }
            assert_eq!(inline.len(), bg.len(), "op {i}");
            bg.validate_weights();
        }
        bg.quiesce();
        assert_eq!(bg.sealed_runs(), 0);
        for k in 0..52u64 {
            assert_eq!(inline.get(&k), bg.get(&k));
            assert_eq!(inline.rank(&k), bg.rank(&k));
            assert_eq!(
                inline.successor(&k).map(|(a, b)| (*a, *b)),
                bg.successor(&k).map(|(a, b)| (*a, *b))
            );
        }
    }
}
