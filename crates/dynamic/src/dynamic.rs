//! [`DynamicMap`]: a write-capable key→value map built as
//! log-structured tiers of static layouts.
//!
//! The paper's contribution — fast parallel **in-place rebuild** of an
//! implicit search-tree layout — makes rebuilding cheap enough to be
//! the mutation primitive. This module applies the classic logarithmic
//! method (LSM-style) on top of it:
//!
//! ```text
//!        writes
//!          │
//!          ▼
//!   ┌─────────────┐   sorted write buffer (≤ cap entries, newest data)
//!   │   buffer    │
//!   └─────────────┘
//!          │ overflow: k-way merge into the first empty tier
//!          ▼
//!   tier 0 ▓             (≈ cap entries)        newest run
//!   tier 1 ▓▓            (≈ 2·cap)                  │
//!   tier 2 (empty)                                  │ age
//!   tier 3 ▓▓▓▓▓▓▓▓      (≈ 8·cap)              oldest run
//! ```
//!
//! Every occupied tier holds one immutable **run**: a [`StaticMap`]
//! whose keys sit in a cache-optimal layout, built by the parallel
//! in-place construction. When the buffer fills, it is merged with the
//! runs of every tier up to the first empty one (a k-way merge of
//! already-sorted sources) and the result is rebuilt into that tier via
//! [`StaticMap::build_presorted`] — no argsort, just the oblivious
//! layout permutation. Amortized, an element is merged `O(log(n/cap))`
//! times over its lifetime.
//!
//! ## Deletes, overwrites, and exact ranks: per-version weights
//!
//! Runs are immutable, so a delete is a **tombstone** (a version whose
//! payload slot is empty) that shadows older versions of its key; a
//! merge annihilates tombstones when (and only when) no older tier
//! remains below the merge target. Overwrites and re-inserts leave
//! multiple versions of one key resident at once, which would make the
//! natural "sum the per-run ranks" answer overcount. Every version
//! therefore carries an integer **weight**, assigned at write time so
//! that the invariant
//!
//! > for every key, the weights of all resident versions sum to **1 if
//! > the key is live and 0 if it is not**
//!
//! always holds: a fresh insert weighs `+1`, an overwrite of a live key
//! weighs `0`, a tombstone weighs minus the summed weight of the older
//! versions it shadows, and merges add the weights of the versions they
//! collapse. Each run stores its weights as a rank-indexed prefix-sum
//! array, so the run's contribution to a global rank is
//! `prefix[run.rank(key)]` — one descent — and
//!
//! `rank(k) = Σ_runs prefix[rank_r(k)] + Σ_{buffer, key < k} weight`
//!
//! is **exactly** the number of live keys strictly below `k`, no matter
//! how keys were overwritten, deleted, or re-inserted across runs.
//! `range_count` is a rank difference (reversed bounds yield 0), and
//! `len` is the total weight.
//!
//! ## Queries
//!
//! Point lookups probe the buffer, then runs newest-first, and stop at
//! the first version found (live → the value, tombstone → absent).
//! [`DynamicMap::batch_get`] does the same run-by-run but drives every
//! run with the software-pipelined batched engine
//! (`StaticIndex::batch_search`), so batched read throughput survives
//! dynamization. Order queries (`lower_bound` / `successor` /
//! `predecessor`) combine per-run candidates and skip dead versions.
//!
//! ## Snapshots: readers never block on a merge
//!
//! [`DynamicMap::snapshot`] returns a [`Frozen`] view — `Arc`s of the
//! current runs plus a copy of the (small) buffer — with the same read
//! API. The map also maintains a published snapshot cell, swapped
//! atomically after **every** mutation while any [`Reader`] handle is
//! outstanding (and skipped entirely while none is, so writers don't
//! pay for readers they don't have); a cloneable [`Reader`]
//! ([`DynamicMap::reader`]) can be sent to other threads and yields, at
//! any moment, the state after some prefix of the writer's operations.
//! Merges happen entirely before the swap, so a reader is never stalled
//! behind one, and the runs a `Frozen` references are kept alive by
//! refcounts even if the writer merges them away.

use crate::index::default_kind_for_layout;
use crate::map::StaticMap;
use ist_core::{Algorithm, Error, Layout};
use ist_query::QueryKind;
use std::sync::{Arc, Mutex, MutexGuard};

/// Default write-buffer capacity (entries buffered between merges).
///
/// Small enough that per-operation snapshot publication (which copies
/// the buffer) stays cheap, large enough that merge amortization works;
/// see [`DynamicMap::with_config`] to tune.
pub const DEFAULT_BUFFER_CAP: usize = 256;

/// One buffered write: the newest version of `key`. An empty `slot` is
/// a tombstone. `weight` maintains the per-key sum invariant described
/// in the [module docs](self).
#[derive(Clone)]
struct BufEntry<K, V> {
    key: K,
    slot: Option<V>,
    weight: i64,
}

/// A `(key, payload-or-tombstone, weight)` triple streamed out of a
/// source during a merge.
type MergedEntry<K, V> = (K, Option<V>, i64);

/// One immutable run: a static layout over this run's versions plus the
/// rank-indexed prefix sums of their weights.
struct Run<K, V> {
    map: StaticMap<K, Option<V>>,
    /// `prefix[r]` = summed weight of the `r` smallest versions;
    /// `prefix[len]` is the run's total weight. Rank-indexed (sorted
    /// order), not layout-indexed.
    prefix: Vec<i64>,
}

impl<K: Ord + Send + Sync, V: Send> Run<K, V> {
    fn build(
        keys: Vec<K>,
        slots: Vec<Option<V>>,
        weights: &[i64],
        kind: QueryKind,
        algorithm: Algorithm,
    ) -> Result<Self, Error> {
        debug_assert_eq!(keys.len(), weights.len());
        let mut prefix = Vec::with_capacity(weights.len() + 1);
        let mut acc = 0i64;
        prefix.push(0);
        for &w in weights {
            acc += w;
            prefix.push(acc);
        }
        Ok(Self {
            map: StaticMap::build_presorted(keys, slots, kind, algorithm)?,
            prefix,
        })
    }

    /// Number of resident versions (live + tombstones).
    fn versions(&self) -> usize {
        self.map.len()
    }

    /// Total weight of the run (its contribution to `len`).
    fn total_weight(&self) -> i64 {
        *self.prefix.last().expect("prefix is never empty")
    }

    /// Summed weight of versions with key strictly below `key`.
    fn weight_below(&self, key: &K) -> i64 {
        self.prefix[self.map.rank(key)]
    }

    /// Weight of this run's version of `key` (0 if absent).
    fn weight_of(&self, key: &K) -> i64 {
        let s = self.map.searcher();
        self.prefix[s.rank_upper(key)] - self.prefix[s.rank(key)]
    }

    /// Stream the run's versions in sorted-key order (cloning), for
    /// merges: walks ranks through the closed-form position maps, so no
    /// sorted copy of the run is ever materialized.
    fn iter_sorted(&self) -> impl Iterator<Item = MergedEntry<K, V>> + '_
    where
        K: Clone,
        V: Clone,
    {
        let searcher = self.map.searcher();
        (0..self.map.len()).map(move |r| {
            let p = searcher
                .position_of_rank(r)
                .expect("rank below len resolves");
            (
                self.map.keys()[p].clone(),
                self.map.values()[p].clone(),
                self.prefix[r + 1] - self.prefix[r],
            )
        })
    }
}

/// Lock that shrugs off poisoning: publication is a single pointer
/// store, so a panicked writer cannot leave the cell torn.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Binary-search the sorted write buffer (one entry per key) for
/// `key`: `Ok(index)` of the entry, or `Err(insert position)`. The
/// single home of the buffer's probe semantics — mutations and every
/// read path go through it.
fn buffer_slot<K: Ord, V>(buffer: &[BufEntry<K, V>], key: &K) -> Result<usize, usize> {
    buffer.binary_search_by(|e| e.key.cmp(key))
}

/// An immutable snapshot of a [`DynamicMap`]: the whole read API over
/// the state after some prefix of the writer's operations.
///
/// Cheap to clone (two `Arc` bumps), `Send + Sync` when the key and
/// value types are, and independent of the writer: merges that retire
/// the referenced runs only drop refcounts.
pub struct Frozen<K, V> {
    buffer: Arc<Vec<BufEntry<K, V>>>,
    /// Non-empty runs, newest first.
    runs: Arc<Vec<Arc<Run<K, V>>>>,
}

impl<K, V> Clone for Frozen<K, V> {
    fn clone(&self) -> Self {
        Self {
            buffer: Arc::clone(&self.buffer),
            runs: Arc::clone(&self.runs),
        }
    }
}

/// A cloneable handle to a [`DynamicMap`]'s published-snapshot cell.
///
/// Obtained from [`DynamicMap::reader`] before handing the map to a
/// writer thread; [`Reader::snapshot`] then yields, at any moment, a
/// [`Frozen`] view of the state after some prefix of the writer's
/// operations (publication order is the operation order, so successive
/// snapshots never go backwards).
pub struct Reader<K, V> {
    cell: Arc<Mutex<Arc<Frozen<K, V>>>>,
}

impl<K, V> Clone for Reader<K, V> {
    fn clone(&self) -> Self {
        Self {
            cell: Arc::clone(&self.cell),
        }
    }
}

impl<K, V> Reader<K, V> {
    /// The latest published snapshot. The lock is held only to clone an
    /// `Arc` — never while a merge or rebuild runs.
    pub fn snapshot(&self) -> Frozen<K, V> {
        lock(&self.cell).as_ref().clone()
    }
}

/// A write-capable key→value map: a sorted write buffer plus
/// geometrically-tiered immutable runs, each run a [`StaticMap`] in a
/// cache-optimal implicit layout. See the [module docs](self) for the
/// design.
///
/// Semantics mirror `std::collections::BTreeMap`: one live value per
/// key, `insert` overwrites, `remove` deletes; `rank`, `range_count`,
/// `lower_bound`, `successor`, and `predecessor` see only live keys.
///
/// # Examples
/// ```
/// use implicit_search_trees::{DynamicMap, Layout};
///
/// let mut m: DynamicMap<u64, &str> = DynamicMap::new(Layout::Veb);
/// assert!(!m.insert(2, "two")); // false: no live value replaced
/// m.insert(1, "one");
/// m.insert(3, "three");
/// assert_eq!(m.get(&2), Some(&"two"));
/// assert_eq!(m.rank(&3), 2);
/// assert_eq!(m.successor(&1), Some((&2, &"two")));
///
/// let snap = m.snapshot(); // frozen view
/// assert!(m.remove(&2));
/// assert_eq!(m.get(&2), None);
/// assert_eq!(m.len(), 2);
/// assert_eq!(snap.len(), 3); // unaffected by later writes
/// assert_eq!(snap.get(&2), Some(&"two"));
/// ```
pub struct DynamicMap<K, V> {
    /// Sorted by key, at most one entry per key (the newest version).
    buffer: Vec<BufEntry<K, V>>,
    /// `tiers[0]` is the newest run; `None` marks an empty tier.
    tiers: Vec<Option<Arc<Run<K, V>>>>,
    kind: QueryKind,
    algorithm: Algorithm,
    buffer_cap: usize,
    /// Snapshot cell swapped after every mutation; [`Reader`]s share it.
    published: Arc<Mutex<Arc<Frozen<K, V>>>>,
}

impl<K, V> DynamicMap<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    /// An empty map storing its runs in `layout` (best default descent,
    /// [`DEFAULT_BUFFER_CAP`], cycle-leader construction).
    ///
    /// # Panics
    /// Panics on `Layout::Btree { b: 0 }`.
    pub fn new(layout: Layout) -> Self {
        Self::with_config(
            default_kind_for_layout(layout),
            Algorithm::CycleLeader,
            DEFAULT_BUFFER_CAP,
        )
    }

    /// Full-control constructor: explicit query descent, construction
    /// algorithm, and write-buffer capacity (`buffer_cap` writes are
    /// absorbed between merges; small values make merges adversarially
    /// frequent, which the differential suite exploits).
    ///
    /// # Panics
    /// Panics if `buffer_cap == 0` or `kind` is `QueryKind::Btree(0)`.
    pub fn with_config(kind: QueryKind, algorithm: Algorithm, buffer_cap: usize) -> Self {
        assert!(buffer_cap >= 1, "buffer_cap must be at least 1");
        if let QueryKind::Btree(b) = kind {
            assert!(b >= 1, "B-tree node capacity B must be at least 1");
        }
        let empty = Frozen {
            buffer: Arc::new(Vec::new()),
            runs: Arc::new(Vec::new()),
        };
        Self {
            buffer: Vec::new(),
            tiers: Vec::new(),
            kind,
            algorithm,
            buffer_cap,
            published: Arc::new(Mutex::new(Arc::new(empty))),
        }
    }

    /// Bulk-load from unsorted `(keys, values)` pairs (duplicate keys:
    /// the **last** pair wins, like repeated `BTreeMap::insert`). The
    /// data lands in a single run on a deep tier, leaving the shallow
    /// tiers free so subsequent writes don't immediately re-merge it.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths.
    pub fn build(keys: Vec<K>, values: Vec<V>, layout: Layout) -> Result<Self, Error> {
        Self::build_for_kind(
            keys,
            values,
            default_kind_for_layout(layout),
            Algorithm::CycleLeader,
            DEFAULT_BUFFER_CAP,
        )
    }

    /// [`DynamicMap::build`] with explicit descent, algorithm, and
    /// buffer capacity.
    ///
    /// # Panics
    /// Panics if `keys` and `values` have different lengths, or on the
    /// invalid configurations [`DynamicMap::with_config`] rejects.
    pub fn build_for_kind(
        keys: Vec<K>,
        values: Vec<V>,
        kind: QueryKind,
        algorithm: Algorithm,
        buffer_cap: usize,
    ) -> Result<Self, Error> {
        assert_eq!(
            keys.len(),
            values.len(),
            "DynamicMap::build: {} keys but {} values",
            keys.len(),
            values.len()
        );
        let mut pairs: Vec<(K, V)> = keys.into_iter().zip(values).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0)); // stable: later duplicate stays later
        pairs.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(later, kept); // keep the later pair's value
                true
            } else {
                false
            }
        });
        let mut map = Self::with_config(kind, algorithm, buffer_cap);
        let n = pairs.len();
        if n > 0 {
            // Deep enough that `t` buffer flushes fit above the bulk run.
            let mut t = 0usize;
            while (buffer_cap << t) < n {
                t += 1;
            }
            let (keys, slots): (Vec<K>, Vec<Option<V>>) =
                pairs.into_iter().map(|(k, v)| (k, Some(v))).unzip();
            map.tiers = vec![None; t + 1];
            map.tiers[t] = Some(Arc::new(Run::build(
                keys,
                slots,
                &vec![1i64; n],
                kind,
                algorithm,
            )?));
        }
        Ok(map)
    }

    // ----- mutation -----

    /// Insert or overwrite; returns `true` iff a live value for `key`
    /// was replaced (what `BTreeMap::insert(..).is_some()` reports).
    ///
    /// May trigger a buffer flush — a k-way merge plus one in-place
    /// layout rebuild — and, while any [`Reader`] handle exists,
    /// publishes a fresh snapshot.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        let s = self.runs_weight_of(&key);
        let live_before;
        match buffer_slot(&self.buffer, &key) {
            Ok(i) => {
                let entry = &mut self.buffer[i];
                live_before = entry.slot.is_some();
                entry.slot = Some(value);
                entry.weight = 1 - s;
            }
            Err(i) => {
                live_before = s == 1;
                self.buffer.insert(
                    i,
                    BufEntry {
                        key,
                        slot: Some(value),
                        weight: 1 - s,
                    },
                );
                self.maybe_flush();
            }
        }
        self.maybe_publish();
        live_before
    }

    /// Delete; returns `true` iff a live value for `key` was removed
    /// (what `BTreeMap::remove(..).is_some()` reports). Removing an
    /// absent or already-deleted key is a no-op.
    ///
    /// A delete that must shadow older resident versions buffers a
    /// tombstone, annihilated when a merge reaches the bottom tier.
    pub fn remove(&mut self, key: &K) -> bool {
        let s = self.runs_weight_of(key);
        let live_before;
        match buffer_slot(&self.buffer, key) {
            Ok(i) => {
                let entry = &mut self.buffer[i];
                live_before = entry.slot.is_some();
                entry.slot = None;
                entry.weight = -s;
            }
            Err(i) if s == 1 => {
                live_before = true;
                self.buffer.insert(
                    i,
                    BufEntry {
                        key: key.clone(),
                        slot: None,
                        weight: -1,
                    },
                );
                self.maybe_flush();
            }
            Err(_) => {
                debug_assert_eq!(s, 0, "per-key weight invariant violated");
                live_before = false;
            }
        }
        self.maybe_publish();
        live_before
    }

    /// Merge the buffer down now, regardless of fill level, so
    /// subsequent reads skip the buffer probe and serve from layout
    /// runs only. Note the merge targets the first **empty** tier: if
    /// tier 0 is currently empty this *adds* a shallow run rather than
    /// reducing the run count.
    pub fn compact_buffer(&mut self) {
        self.flush();
        self.maybe_publish();
    }

    // ----- snapshots -----

    /// An immutable view of the current state; later writes to `self`
    /// are invisible to it. Cost: one copy of the (≤ `buffer_cap`-entry)
    /// buffer plus one `Arc` bump per resident run.
    pub fn snapshot(&self) -> Frozen<K, V> {
        self.freeze()
    }

    /// A handle to the published-snapshot cell, for concurrent readers;
    /// see [`Reader`]. The current state is published immediately, and
    /// the cell is re-published after every subsequent mutation for as
    /// long as any handle exists (with no outstanding handle, mutations
    /// skip publication entirely — writers don't pay for readers they
    /// don't have).
    pub fn reader(&self) -> Reader<K, V> {
        self.publish();
        Reader {
            cell: Arc::clone(&self.published),
        }
    }

    // ----- reads (shared with Frozen via ViewRef) -----

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.view().len()
    }

    /// `true` iff no key is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live value under `key`, if any (buffer first, then runs
    /// newest-first, stopping at the first version found).
    pub fn get(&self, key: &K) -> Option<&V> {
        self.view().get(key)
    }

    /// `true` iff `key` is live.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Number of live keys strictly smaller than `key` — exact, via the
    /// per-run weight prefixes (see the [module docs](self)).
    pub fn rank(&self, key: &K) -> usize {
        self.view().rank(key)
    }

    /// Number of live keys in `[lo, hi)`. Reversed bounds (`lo > hi`)
    /// describe an empty interval and yield 0 — never a panic (the same
    /// contract as [`crate::StaticIndex::range_count`]).
    pub fn range_count(&self, lo: &K, hi: &K) -> usize {
        self.view().range_count(lo, hi)
    }

    /// The smallest live entry with key `≥ key`, if any.
    pub fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        self.view().lower_bound(key)
    }

    /// The smallest live entry with key **strictly greater** than
    /// `key`, if any.
    pub fn successor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().successor(key)
    }

    /// The largest live entry with key **strictly smaller** than `key`,
    /// if any.
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().predecessor(key)
    }

    /// Batched [`DynamicMap::get`]: unresolved keys cascade run by run
    /// (newest first), each run driven by the software-pipelined
    /// parallel `batch_search` engine. `out[i]` is exactly
    /// `get(&keys[i])`.
    pub fn batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.view().batch_get(keys)
    }

    /// Batched [`DynamicMap::rank`] on the pipelined per-run rank
    /// engine.
    pub fn batch_rank(&self, keys: &[K]) -> Vec<usize> {
        self.view().batch_rank(keys)
    }

    /// Per-pair [`DynamicMap::range_count`] (reversed pairs yield 0);
    /// all endpoint ranks go through the pipelined engine.
    pub fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        self.view().batch_range_count(ranges)
    }

    // ----- introspection -----

    /// Writes currently absorbed by the buffer (not yet merged).
    pub fn buffered_versions(&self) -> usize {
        self.buffer.len()
    }

    /// Resident versions per tier, newest tier first (`None` = empty
    /// tier). Sums can exceed [`DynamicMap::len`]: overwrites,
    /// re-inserts, and tombstones all hold versions until a merge
    /// collapses them.
    pub fn tier_versions(&self) -> Vec<Option<usize>> {
        self.tiers
            .iter()
            .map(|t| t.as_ref().map(|r| r.versions()))
            .collect()
    }

    /// Number of resident runs.
    pub fn run_count(&self) -> usize {
        self.tiers.iter().flatten().count()
    }

    // ----- internals -----

    fn view(&self) -> ViewRef<'_, K, V> {
        ViewRef {
            buffer: &self.buffer,
            runs: self.tiers.iter().flatten().map(|a| a.as_ref()).collect(),
        }
    }

    fn freeze(&self) -> Frozen<K, V> {
        Frozen {
            buffer: Arc::new(self.buffer.clone()),
            runs: Arc::new(self.tiers.iter().flatten().cloned().collect()),
        }
    }

    fn publish(&self) {
        let frozen = Arc::new(self.freeze());
        *lock(&self.published) = frozen;
    }

    /// Publish only if a [`Reader`] handle is outstanding (they share
    /// the cell's `Arc`, so one atomic load detects them); with no
    /// readers, mutations skip the buffer copy entirely. [`reader()`]
    /// publishes eagerly, so a handle taken after unpublished mutations
    /// still starts from the current state.
    ///
    /// [`reader()`]: DynamicMap::reader
    fn maybe_publish(&self) {
        if Arc::strong_count(&self.published) > 1 {
            self.publish();
        }
    }

    /// Summed weight of `key`'s versions across all resident runs
    /// (excluding the buffer): two rank descents per run.
    fn runs_weight_of(&self, key: &K) -> i64 {
        self.tiers.iter().flatten().map(|r| r.weight_of(key)).sum()
    }

    fn maybe_flush(&mut self) {
        if self.buffer.len() >= self.buffer_cap {
            self.flush();
        }
    }

    /// Merge the buffer and every run above the first empty tier into
    /// that tier: one k-way merge (newest source wins per key, weights
    /// summed, tombstones annihilated iff no deeper tier remains), then
    /// one argsort-free layout rebuild.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let t = match self.tiers.iter().position(Option::is_none) {
            Some(t) => t,
            None => {
                self.tiers.push(None);
                self.tiers.len() - 1
            }
        };
        let deeper_occupied = self.tiers[t + 1..].iter().any(Option::is_some);
        let buffer = std::mem::take(&mut self.buffer);
        let merged_runs: Vec<Arc<Run<K, V>>> = self.tiers[..t]
            .iter_mut()
            .map(|slot| {
                slot.take()
                    .expect("tiers above the first empty tier are occupied")
            })
            .collect();

        // Newest-first sources: the buffer, then tiers 0..t in order.
        let mut sources: Vec<Source<'_, K, V>> = Vec::with_capacity(merged_runs.len() + 1);
        sources.push(Source::new(Box::new(
            buffer.into_iter().map(|e| (e.key, e.slot, e.weight)),
        )));
        for run in &merged_runs {
            sources.push(Source::new(Box::new(run.iter_sorted())));
        }

        let mut keys = Vec::new();
        let mut slots = Vec::new();
        let mut weights = Vec::new();
        loop {
            // Newest source holding the minimum head key (strict `<`
            // keeps the earliest source on ties).
            let mut min_idx: Option<usize> = None;
            for i in 0..sources.len() {
                let Some((k, _, _)) = &sources[i].head else {
                    continue;
                };
                let better = match min_idx {
                    Some(j) => {
                        let (mk, _, _) = sources[j].head.as_ref().expect("tracked head");
                        k < mk
                    }
                    None => true,
                };
                if better {
                    min_idx = Some(i);
                }
            }
            let Some(first) = min_idx else { break };
            let (key, slot, mut weight) = sources[first].advance();
            // Older sources may hold the same key (each source's keys
            // are distinct): collapse them, newest version wins.
            for src in sources.iter_mut().skip(first + 1) {
                if src.head.as_ref().is_some_and(|(k, _, _)| *k == key) {
                    weight += src.advance().2;
                }
            }
            if slot.is_none() && !deeper_occupied {
                // Tombstone reaching the bottom: annihilate.
                debug_assert_eq!(weight, 0, "annihilated key retains weight");
                continue;
            }
            keys.push(key);
            slots.push(slot);
            weights.push(weight);
        }
        drop(sources);
        drop(merged_runs); // snapshots may still hold these runs

        self.tiers[t] = if keys.is_empty() {
            None
        } else {
            Some(Arc::new(
                Run::build(keys, slots, &weights, self.kind, self.algorithm)
                    .expect("configuration validated at construction"),
            ))
        };
    }
}

/// A merge source with one-entry lookahead.
struct Source<'s, K, V> {
    head: Option<MergedEntry<K, V>>,
    rest: Box<dyn Iterator<Item = MergedEntry<K, V>> + 's>,
}

impl<'s, K, V> Source<'s, K, V> {
    fn new(mut rest: Box<dyn Iterator<Item = MergedEntry<K, V>> + 's>) -> Self {
        let head = rest.next();
        Self { head, rest }
    }

    fn advance(&mut self) -> MergedEntry<K, V> {
        let head = self.head.take().expect("advance() requires a head");
        self.head = self.rest.next();
        head
    }
}

impl<K, V> Frozen<K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    /// Number of live keys in the snapshot.
    pub fn len(&self) -> usize {
        self.view().len()
    }

    /// `true` iff the snapshot has no live key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`DynamicMap::get`].
    pub fn get(&self, key: &K) -> Option<&V> {
        self.view().get(key)
    }

    /// See [`DynamicMap::contains_key`].
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// See [`DynamicMap::rank`].
    pub fn rank(&self, key: &K) -> usize {
        self.view().rank(key)
    }

    /// See [`DynamicMap::range_count`] (reversed bounds yield 0).
    pub fn range_count(&self, lo: &K, hi: &K) -> usize {
        self.view().range_count(lo, hi)
    }

    /// See [`DynamicMap::lower_bound`].
    pub fn lower_bound(&self, key: &K) -> Option<(&K, &V)> {
        self.view().lower_bound(key)
    }

    /// See [`DynamicMap::successor`].
    pub fn successor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().successor(key)
    }

    /// See [`DynamicMap::predecessor`].
    pub fn predecessor(&self, key: &K) -> Option<(&K, &V)> {
        self.view().predecessor(key)
    }

    /// See [`DynamicMap::batch_get`].
    pub fn batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.view().batch_get(keys)
    }

    /// See [`DynamicMap::batch_rank`].
    pub fn batch_rank(&self, keys: &[K]) -> Vec<usize> {
        self.view().batch_rank(keys)
    }

    /// See [`DynamicMap::batch_range_count`].
    pub fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        self.view().batch_range_count(ranges)
    }

    fn view(&self) -> ViewRef<'_, K, V> {
        ViewRef {
            buffer: &self.buffer,
            runs: self.runs.iter().map(|a| a.as_ref()).collect(),
        }
    }
}

/// Borrowed multi-run state — the single implementation of every read,
/// shared by [`DynamicMap`] (live state) and [`Frozen`] (snapshots).
struct ViewRef<'a, K, V> {
    buffer: &'a [BufEntry<K, V>],
    /// Non-empty runs, newest first.
    runs: Vec<&'a Run<K, V>>,
}

impl<'a, K, V> ViewRef<'a, K, V>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
{
    /// The newest resident version of `key`: `None` = absent from every
    /// run and the buffer, `Some(None)` = tombstone, `Some(Some(v))` =
    /// live.
    fn version(&self, key: &K) -> Option<&'a Option<V>> {
        if let Ok(i) = buffer_slot(self.buffer, key) {
            return Some(&self.buffer[i].slot);
        }
        for run in &self.runs {
            if let Some(slot) = run.map.get(key) {
                return Some(slot);
            }
        }
        None
    }

    fn get(&self, key: &K) -> Option<&'a V> {
        self.version(key)?.as_ref()
    }

    fn buffer_weight_below(&self, key: &K) -> i64 {
        let i = self.buffer.partition_point(|e| e.key < *key);
        self.buffer[..i].iter().map(|e| e.weight).sum()
    }

    fn rank(&self, key: &K) -> usize {
        let mut w = self.buffer_weight_below(key);
        for run in &self.runs {
            w += run.weight_below(key);
        }
        debug_assert!(w >= 0, "weight invariant violated: negative rank");
        w as usize
    }

    fn len(&self) -> usize {
        let w: i64 = self.buffer.iter().map(|e| e.weight).sum::<i64>()
            + self.runs.iter().map(|r| r.total_weight()).sum::<i64>();
        debug_assert!(w >= 0, "weight invariant violated: negative len");
        w as usize
    }

    fn range_count(&self, lo: &K, hi: &K) -> usize {
        if lo >= hi {
            return 0; // reversed or empty bounds: defined as 0
        }
        self.rank(hi).saturating_sub(self.rank(lo))
    }

    /// Smallest version key `≥ key` across buffer and runs (dead
    /// versions included — callers resolve liveness).
    fn version_at_least(&self, key: &K) -> Option<&'a K> {
        let i = self.buffer.partition_point(|e| e.key < *key);
        let mut best = self.buffer.get(i).map(|e| &e.key);
        for run in &self.runs {
            if let Some((k, _)) = run.map.lower_bound(key) {
                best = Some(match best {
                    Some(b) if b <= k => b,
                    _ => k,
                });
            }
        }
        best
    }

    /// Smallest version key strictly greater than `key`.
    fn version_after(&self, key: &K) -> Option<&'a K> {
        let i = self.buffer.partition_point(|e| e.key <= *key);
        let mut best = self.buffer.get(i).map(|e| &e.key);
        for run in &self.runs {
            if let Some((k, _)) = run.map.successor(key) {
                best = Some(match best {
                    Some(b) if b <= k => b,
                    _ => k,
                });
            }
        }
        best
    }

    /// Largest version key strictly smaller than `key`.
    fn version_before(&self, key: &K) -> Option<&'a K> {
        let i = self.buffer.partition_point(|e| e.key < *key);
        let mut best = i.checked_sub(1).map(|j| &self.buffer[j].key);
        for run in &self.runs {
            if let Some((k, _)) = run.map.predecessor(key) {
                best = Some(match best {
                    Some(b) if b >= k => b,
                    _ => k,
                });
            }
        }
        best
    }

    /// Walk candidates rightward until one is live.
    fn resolve_forward(&self, mut cand: &'a K) -> Option<(&'a K, &'a V)> {
        loop {
            match self.version(cand).expect("candidate keys have a version") {
                Some(v) => return Some((cand, v)),
                None => cand = self.version_after(cand)?,
            }
        }
    }

    /// Walk candidates leftward until one is live.
    fn resolve_backward(&self, mut cand: &'a K) -> Option<(&'a K, &'a V)> {
        loop {
            match self.version(cand).expect("candidate keys have a version") {
                Some(v) => return Some((cand, v)),
                None => cand = self.version_before(cand)?,
            }
        }
    }

    fn lower_bound(&self, key: &K) -> Option<(&'a K, &'a V)> {
        self.resolve_forward(self.version_at_least(key)?)
    }

    fn successor(&self, key: &K) -> Option<(&'a K, &'a V)> {
        self.resolve_forward(self.version_after(key)?)
    }

    fn predecessor(&self, key: &K) -> Option<(&'a K, &'a V)> {
        self.resolve_backward(self.version_before(key)?)
    }

    fn batch_get(&self, keys: &[K]) -> Vec<Option<&'a V>> {
        let mut out: Vec<Option<&'a V>> = vec![None; keys.len()];
        // Buffer pass: cheap binary searches over ≤ cap entries.
        let mut pending: Vec<usize> = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            match buffer_slot(self.buffer, key) {
                Ok(j) => out[i] = self.buffer[j].slot.as_ref(),
                Err(_) => pending.push(i),
            }
        }
        // Cascade the unresolved keys run by run, newest first, each
        // run on the pipelined parallel engine.
        for run in &self.runs {
            if pending.is_empty() {
                break;
            }
            let probe: Vec<K> = pending.iter().map(|&i| keys[i].clone()).collect();
            let positions = run.map.index().batch_search(&probe);
            let mut still = Vec::with_capacity(pending.len());
            for (j, &i) in pending.iter().enumerate() {
                match positions[j] {
                    Some(p) => out[i] = run.map.values()[p].as_ref(),
                    None => still.push(i),
                }
            }
            pending = still;
        }
        out
    }

    fn batch_rank(&self, keys: &[K]) -> Vec<usize> {
        let mut acc: Vec<i64> = keys.iter().map(|k| self.buffer_weight_below(k)).collect();
        for run in &self.runs {
            for (a, r) in acc.iter_mut().zip(run.map.index().batch_rank(keys)) {
                *a += run.prefix[r];
            }
        }
        acc.into_iter()
            .map(|w| {
                debug_assert!(w >= 0, "weight invariant violated: negative rank");
                w as usize
            })
            .collect()
    }

    fn batch_range_count(&self, ranges: &[(K, K)]) -> Vec<usize> {
        let mut flat = Vec::with_capacity(2 * ranges.len());
        for (lo, hi) in ranges {
            flat.push(lo.clone());
            flat.push(hi.clone());
        }
        let ranks = self.batch_rank(&flat);
        ranges
            .iter()
            .enumerate()
            .map(|(i, (lo, hi))| {
                if lo >= hi {
                    0
                } else {
                    ranks[2 * i + 1].saturating_sub(ranks[2 * i])
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl<K, V> DynamicMap<K, V>
    where
        K: Ord + Clone + Send + Sync,
        V: Clone + Send + Sync,
    {
        /// Test-only exhaustive check of the per-key weight invariant:
        /// for every resident key, weights sum to 1 iff the newest
        /// version is live.
        fn validate_weights(&self) {
            let mut keys: Vec<K> = self.buffer.iter().map(|e| e.key.clone()).collect();
            for run in self.tiers.iter().flatten() {
                keys.extend(run.iter_sorted().map(|(k, _, _)| k));
            }
            keys.sort();
            keys.dedup();
            for k in keys {
                let total = self.runs_weight_of(&k)
                    + self
                        .buffer
                        .iter()
                        .find(|e| e.key == k)
                        .map_or(0, |e| e.weight);
                let live = self.view().version(&k).expect("resident").is_some();
                assert_eq!(total, i64::from(live), "weight invariant for resident key");
            }
        }
    }

    #[test]
    fn tier_evolution_is_binomial() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 4);
        for k in 0..16u64 {
            m.insert(k, k * 10);
            m.validate_weights();
        }
        // 16 inserts at cap 4 = 4 flushes: binomial counter 100 -> tier 2
        // holds everything, tiers 0/1 empty.
        assert_eq!(m.tier_versions(), vec![None, None, Some(16)]);
        assert_eq!(m.len(), 16);
        assert_eq!(m.buffered_versions(), 0);
        for k in 0..16u64 {
            assert_eq!(m.get(&k), Some(&(k * 10)));
            assert_eq!(m.rank(&k), k as usize);
        }
    }

    #[test]
    fn annihilation_empties_the_structure() {
        let mut m: DynamicMap<u64, &str> =
            DynamicMap::with_config(QueryKind::BstPrefetch, Algorithm::Involution, 1);
        m.insert(7, "seven"); // flush -> tier 0 live
        assert!(m.remove(&7)); // tombstone flush merges to bottom -> annihilated
        m.validate_weights();
        assert_eq!(m.len(), 0);
        assert_eq!(m.run_count(), 0, "tombstone + value must annihilate");
        assert_eq!(m.get(&7), None);
        assert!(!m.remove(&7), "double delete is a no-op");
    }

    #[test]
    fn reinsert_across_runs_keeps_ranks_exact() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Btree(2), Algorithm::CycleLeader, 2);
        // Spread versions of key 5 across several runs.
        for round in 0..5u64 {
            m.insert(5, round);
            m.insert(100 + round, round);
            m.validate_weights();
        }
        assert_eq!(m.get(&5), Some(&4));
        assert_eq!(m.len(), 6); // 5 plus 100..=104
        assert_eq!(m.rank(&100), 1, "key 5 must count once despite re-inserts");
        assert_eq!(m.range_count(&0, &200), 6);
        assert!(m.remove(&5));
        m.validate_weights();
        assert_eq!(m.rank(&100), 0);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn bulk_build_last_duplicate_wins() {
        let m = DynamicMap::build(
            vec![3u64, 1, 3, 2, 1],
            vec!["a", "b", "c", "d", "e"],
            Layout::Bst,
        )
        .unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&1), Some(&"e"));
        assert_eq!(m.get(&3), Some(&"c"));
        assert_eq!(m.get(&2), Some(&"d"));
        assert_eq!(m.run_count(), 1);
    }

    #[test]
    fn reversed_bounds_yield_zero() {
        let mut m: DynamicMap<u64, u64> = DynamicMap::new(Layout::Veb);
        for k in 0..50u64 {
            m.insert(k, k);
        }
        assert_eq!(m.range_count(&30, &10), 0);
        assert_eq!(m.range_count(&10, &10), 0);
        assert_eq!(
            m.batch_range_count(&[(30, 10), (0, 50), (49, 49)]),
            vec![0, 50, 0]
        );
        assert_eq!(m.snapshot().range_count(&u64::MAX, &0), 0);
    }

    #[test]
    fn snapshots_are_isolated_and_readers_advance() {
        let mut m: DynamicMap<u64, u64> =
            DynamicMap::with_config(QueryKind::Veb, Algorithm::CycleLeader, 3);
        let reader = m.reader();
        assert_eq!(reader.snapshot().len(), 0);
        let mut snaps = Vec::new();
        for k in 0..10u64 {
            m.insert(k, k);
            snaps.push(m.snapshot());
        }
        for (i, snap) in snaps.iter().enumerate() {
            assert_eq!(snap.len(), i + 1, "snapshot pinned at its prefix");
            assert_eq!(snap.get(&(i as u64)), Some(&(i as u64)));
            assert_eq!(snap.get(&(i as u64 + 1)), None);
        }
        // The reader's cell tracks the newest published state.
        assert_eq!(reader.snapshot().len(), 10);
        assert_eq!(reader.snapshot().batch_get(&[0, 10]), vec![Some(&0), None]);
    }
}
